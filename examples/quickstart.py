#!/usr/bin/env python3
"""Quickstart: the memory system, refresh overheads, and ROP in ~60 lines.

Builds the paper's DDR4-1600 single-rank memory, replays one streaming
read sequence against three systems — the auto-refresh baseline, an
idealized no-refresh memory, and ROP — and prints what refresh costs and
how much of it ROP recovers.

Run:  python examples/quickstart.py
"""

from repro import MemorySystem, RefreshMode, SystemConfig


def run_system(label: str, config: SystemConfig, n_reads: int = 40_000) -> None:
    """Replay a fixed read stream (one read every 20 cycles) and report."""
    memory = MemorySystem(config)
    for i in range(n_reads):
        memory.schedule_read(line=i, cycle=i * 20)
    memory.run()
    stats = memory.finish()

    print(f"\n== {label} ==")
    print(f"  demand reads      : {stats.reads}")
    print(f"  avg read latency  : {stats.avg_read_latency:6.2f} cycles")
    print(f"  max read latency  : {stats.read_latency_max} cycles")
    print(f"  refreshes issued  : {stats.refreshes}")
    print(f"  row-buffer hits   : {stats.row_hit_rate:.1%}")
    if config.rop.enabled:
        print(f"  SRAM hits (lock)  : {stats.sram_hits_in_lock}")
        print(f"  SRAM hits (other) : {stats.sram_hits_out_of_lock}")
        print(f"  Fig-9 hit rate    : {stats.lock_hit_rate:.2f}")
        summary = memory.rop_summary()
        lam_beta = summary["lam_beta"]["ch0.rank0"]
        if lam_beta:
            print(f"  profiled λ, β     : {lam_beta[0]:.2f}, {lam_beta[1]:.2f}")


def main() -> None:
    base = SystemConfig.single_core()

    print("ROP quickstart — DDR4-1600, 1 rank, tREFI=7.8 µs, tRFC=350 ns")
    print(f"refresh duty cycle: {base.timings.refresh_duty_cycle:.1%} of time frozen")

    run_system("Baseline (auto-refresh)", base)
    run_system("Idealized (no refresh)", base.with_refresh_mode(RefreshMode.NONE))
    # a short training phase suits this short demo run; the paper uses 50
    run_system("ROP (64-line SRAM buffer)", base.with_rop(training_refreshes=10))

    print(
        "\nROP's average latency approaches — and for this stream beats —"
        " the idealized\nmemory: reads arriving while the rank is frozen are"
        " answered from the prefetch\nbuffer in 3 cycles instead of waiting"
        " out the 280-cycle refresh lock, and warm\nbuffer lines keep"
        " serving 3-cycle hits between refreshes (the paper's\n"
        "\"ROP even slightly outperforms an idealized memory\" effect)."
    )


if __name__ == "__main__":
    main()
