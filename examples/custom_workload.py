#!/usr/bin/env python3
"""Bring your own workload: custom phase models and raw traces.

Two ways to drive the simulator with your own memory behaviour:

1. a :class:`~repro.workloads.PhaseModel` — describe busy/idle phases,
   access density and address patterns, and let the generator + LLC
   produce the memory trace (shown below with a bursty multi-delta
   stencil);
2. a raw :class:`~repro.workloads.AccessTrace` — hand the core model an
   explicit list of accesses (shown with a tiny pointer-chasing loop).

Both are run against the baseline and ROP to show how predictability
drives the prefetcher's usefulness.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro import RefreshMode, SystemConfig
from repro.cpu import filter_trace, run_cores
from repro.workloads import AccessTrace, PhaseModel, generate_trace


def evaluate(label: str, memory_trace: AccessTrace) -> None:
    """Run a memory trace on baseline / no-refresh / ROP and report."""
    cfg = SystemConfig.single_core()
    base = run_cores([memory_trace], cfg)
    ideal = run_cores([memory_trace], cfg.with_refresh_mode(RefreshMode.NONE))
    rop = run_cores([memory_trace], cfg.with_rop(training_refreshes=10))
    gap = ideal.ipc - base.ipc
    recovered = (rop.ipc - base.ipc) / gap * 100 if gap > 1e-9 else float("nan")
    print(f"\n== {label} ==")
    print(f"  requests          : {len(memory_trace)}")
    print(f"  IPC  base/ideal   : {base.ipc:.4f} / {ideal.ipc:.4f}")
    print(f"  IPC  ROP          : {rop.ipc:.4f}  (recovered {recovered:.0f}% of the gap)")
    print(f"  armed hit rate    : {rop.rop_summary['armed_hit_rate']:.2f}")


def stencil_workload() -> AccessTrace:
    """A bursty 2-delta stencil: highly predictable, ROP's best case."""
    model = PhaseModel(
        busy_instr=150_000,
        idle_instr=150_000,
        access_density=0.25,
        pattern_frac=0.06,
        ws_frac=0.0,
        pattern="multidelta",
        deltas=(1, 3),
        write_frac=0.2,
    )
    cpu = generate_trace(model, total_instructions=3_000_000, seed=7)
    return filter_trace(cpu, SystemConfig.single_core().llc).memory_trace


def pointer_chase_workload() -> AccessTrace:
    """A pseudo-random pointer chase: adversarial, ROP should stand down."""
    rng = np.random.default_rng(13)
    n = 60_000
    perm = rng.permutation(1 << 18).astype(np.int64)  # 16 MB working set
    idx = 0
    lines = np.empty(n, dtype=np.int64)
    for i in range(n):
        idx = int(perm[idx])
        lines[i] = idx
    cpu = AccessTrace(
        gaps=np.full(n, 50, dtype=np.int64),
        lines=lines,
        writes=np.zeros(n, dtype=bool),
    )
    return filter_trace(cpu, SystemConfig.single_core().llc).memory_trace


def main() -> None:
    evaluate("bursty (1,3)-stencil — predictable", stencil_workload())
    evaluate("pointer chase — unpredictable", pointer_chase_workload())
    print(
        "\nThe stencil recovers most of the refresh gap; for the chase, the"
        " utilization\nharm-guard detects useless prefetches and falls back"
        " to Training, so ROP costs\n(nearly) nothing instead of wasting"
        " bandwidth."
    )


if __name__ == "__main__":
    main()
