#!/usr/bin/env python3
"""Multi-programmed evaluation (the paper's Figs. 10/11).

Runs four-benchmark workload mixes on a 4-rank DDR4 memory under the
paper's three systems — Baseline (shared mapping), Baseline-RP (rank
partitioning) and ROP — and prints normalized weighted speedups and
energy, plus the LLC-size sensitivity sweep (Figs. 12/13/14) on request.

Run:  python examples/multiprogram_speedup.py [WL1 WL2 ...] [--llc-sweep]
"""

import argparse

from repro.harness import (
    RunScale,
    fig10_11_weighted_speedup,
    fig12_13_14_llc_sensitivity,
    reporting,
)
from repro.workloads import WORKLOAD_MIXES, mix_profiles


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "mixes",
        nargs="*",
        default=["WL1", "WL6"],
        help=f"workload mixes (choices: {', '.join(WORKLOAD_MIXES)})",
    )
    parser.add_argument("--instructions", type=int, default=1_500_000)
    parser.add_argument(
        "--llc-sweep",
        action="store_true",
        help="also run the Figs. 12-14 LLC-size sensitivity sweep",
    )
    args = parser.parse_args()
    scale = RunScale(instructions=args.instructions, training_refreshes=10)
    mixes = tuple(args.mixes)

    for mix in mixes:
        members = ", ".join(p.name for p in mix_profiles(mix))
        print(f"{mix}: {members}")

    print("\n— Figs. 10/11: weighted speedup and energy (normalized to Baseline) —")
    rows = fig10_11_weighted_speedup(mixes, scale)
    print(reporting.render_fig10_11(rows))

    if args.llc_sweep:
        print("\n— Figs. 12/13/14: LLC-size sensitivity —")
        srows = fig12_13_14_llc_sensitivity(
            mixes, scale, llc_sweep=tuple(m << 20 for m in (1, 2, 4, 8))
        )
        print("\nROP weighted speedup (normalized to Baseline at each size):")
        print(reporting.render_llc_sensitivity(srows, "norm_ws"))
        print("\nROP energy (normalized to Baseline at each size):")
        print(reporting.render_llc_sensitivity(srows, "norm_energy"))
        print("\nROP armed SRAM hit rate:")
        print(reporting.render_llc_sensitivity(srows, "rop_armed_hit_rate"))


if __name__ == "__main__":
    main()
