#!/usr/bin/env python3
"""Refresh/traffic correlation analysis (the paper's Section III).

Records every request arrival and refresh window of a baseline run, then
reproduces the paper's motivating statistics: the fraction of
non-blocking refreshes (Fig. 2), the number of requests each blocking
refresh stalls (Fig. 3), the dominance of the E1/E2 events (Fig. 4), and
the conditional probabilities λ and β (Table I) that make probabilistic
refresh-oriented prefetching viable.

Run:  python examples/refresh_analysis.py [bench ...] [--instructions N]
"""

import argparse

from repro.harness import RunScale, fig2_to_4_and_table1, reporting
from repro.workloads import SPEC_PROFILES, profile


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "benchmarks",
        nargs="*",
        default=["lbm", "bzip2", "gobmk"],
        help=f"benchmark names (choices: {', '.join(SPEC_PROFILES)})",
    )
    parser.add_argument("--instructions", type=int, default=3_000_000)
    args = parser.parse_args()

    scale = RunScale(instructions=args.instructions)
    rows = fig2_to_4_and_table1(tuple(args.benchmarks), scale)

    print("— Table I: λ = P{A>0|B>0} and β = P{A=0|B=0} —")
    print(reporting.render_table1(rows))
    print("\npaper's Table I targets (1×):")
    for r in rows:
        p = profile(r.benchmark)
        print(f"  {r.benchmark:12s} λ={p.paper_lambda:.2f}  β={p.paper_beta:.2f}")

    print("\n— Fig. 2: non-blocking refreshes —")
    print(reporting.render_fig2(rows))

    print("\n— Fig. 3: requests blocked per blocking refresh —")
    print(reporting.render_fig3(rows))

    print("\n— Fig. 4: dominance of E1 (busy→busy) and E2 (quiet→quiet) —")
    print(reporting.render_fig4(rows))

    print(
        "\nThe high E1+E2 coverage and the stability of λ/β across window"
        " lengths are what\nlet ROP throttle prefetching on a single"
        " observation: was the window before the\nrefresh busy?"
    )


if __name__ == "__main__":
    main()
