#!/usr/bin/env python3
"""Single-core SPEC stand-in evaluation (the paper's Figs. 1, 7, 8, 9).

For each selected benchmark profile this script runs the full pipeline —
synthetic CPU trace → LLC filter → trace-driven core + DDR4 co-simulation
— on the baseline, the idealized no-refresh memory, and ROP, then prints
the normalized results exactly as the paper's figures report them.

Run:  python examples/spec_single_core.py [bench ...] [--instructions N]
"""

import argparse

from repro.harness import (
    RunScale,
    fig1_refresh_overheads,
    fig7_8_9_rop_comparison,
    reporting,
)
from repro.workloads import SPEC_PROFILES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "benchmarks",
        nargs="*",
        default=["lbm", "libquantum", "GemsFDTD", "bzip2"],
        help=f"benchmark names (choices: {', '.join(SPEC_PROFILES)})",
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=3_000_000,
        help="trace length per benchmark (default 3M)",
    )
    parser.add_argument(
        "--sram-sizes",
        type=int,
        nargs="+",
        default=[64],
        help="SRAM buffer capacities to evaluate (paper: 16 32 64 128)",
    )
    args = parser.parse_args()

    scale = RunScale(instructions=args.instructions, training_refreshes=25)
    benches = tuple(args.benchmarks)

    print("— Fig. 1: what refresh costs (baseline vs idealized memory) —")
    rows = fig1_refresh_overheads(benches, scale)
    print(reporting.render_fig1(rows))

    print("\n— Figs. 7/8/9: ROP vs baseline (IPC, energy, SRAM hit rate) —")
    rows = fig7_8_9_rop_comparison(benches, scale, sram_sizes=tuple(args.sram_sizes))
    print(reporting.render_fig7_8_9(rows))
    print(
        "\nReading: values are normalized to the baseline; 'noref IPC' is the"
        " upper bound.\nROP columns near (or above) it mean the refresh"
        " overhead was recovered."
    )


if __name__ == "__main__":
    main()
