#!/usr/bin/env python3
"""Perf-regression gate for the epoch engine's simulation throughput.

Reads the committed ``BENCH_runner.json``, finds the most recent
``runner_scaling`` record whose headline single-spec number was taken
under the **epoch** engine, re-measures the same metrics on this machine
(lbm+ROP smoke spec, plus the WL1 quad-core+ROP mix spec when the
record carries ``multicore_spec_cycles_per_sec``; traces
pre-materialized, best of ``--reps``) and fails if either fresh
cycles/s number fell more than ``--tolerance`` (default 20 %) below the
committed value.

When the record carries ``auto_spec_cycles_per_sec`` (the plain
AUTO_1X baseline, no ROP), that metric is additionally gated at the
tighter ``--auto-tolerance`` (default 5 %): the refresh-policy registry
sits on every simulated cycle's dispatch path, so a regression there is
held to a stricter budget than end-to-end plan noise.

The gate applies to the epoch engine only: the scalar interpreter is the
bit-exactness reference, not a performance target, and older records
that predate the ``engine`` field are ignored.

Usage::

    python benchmarks/perf_gate.py [--bench BENCH_runner.json]
                                   [--tolerance 0.20] [--reps 5]

Exit codes: 0 pass, 1 regression, 2 no committed epoch record (gate
vacuously passes with a warning unless --strict).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def committed_epoch_record(path: Path) -> dict | None:
    """Newest runner_scaling record with an epoch-engine headline."""
    try:
        history = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    for record in reversed(history):
        if (
            record.get("bench") == "runner_scaling"
            and record.get("engine") == "epoch"
            and record.get("single_spec_cycles_per_sec")
        ):
            return record
    return None


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", default="BENCH_runner.json",
                    help="committed timing-record file")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional drop below the committed "
                         "cycles/s before failing (default 0.20)")
    ap.add_argument("--auto-tolerance", type=float, default=0.05,
                    help="tighter budget for the AUTO_1X baseline spec "
                         "(refresh-policy dispatch path; default 0.05)")
    ap.add_argument("--reps", type=int, default=5,
                    help="timing repetitions, best-of (default 5)")
    ap.add_argument("--scale", default="smoke",
                    choices=("smoke", "default", "paper"))
    ap.add_argument("--strict", action="store_true",
                    help="fail (exit 2) when no committed epoch record "
                         "exists instead of passing vacuously")
    args = ap.parse_args()

    record = committed_epoch_record(Path(args.bench))
    if record is None:
        print(f"perf-gate: no committed epoch record in {args.bench}; "
              f"{'failing (--strict)' if args.strict else 'nothing to gate'}")
        return 2 if args.strict else 0
    import os
    import tempfile

    from bench_scaling import auto_spec, multicore_spec, reset_state, single_spec

    from repro.harness import RunScale

    scale = RunScale.named(args.scale)
    gates = [
        ("single-spec", record["single_spec_cycles_per_sec"], single_spec,
         args.tolerance)
    ]
    if record.get("multicore_spec_cycles_per_sec"):
        gates.append(
            (
                "multicore-mix",
                record["multicore_spec_cycles_per_sec"],
                multicore_spec,
                args.tolerance,
            )
        )
    if record.get("auto_spec_cycles_per_sec"):
        gates.append(
            (
                "auto-baseline",
                record["auto_spec_cycles_per_sec"],
                auto_spec,
                args.auto_tolerance,
            )
        )
    else:
        print("perf-gate: committed record predates auto_spec_cycles_per_sec; "
              "skipping the AUTO_1X dispatch-path gate")
    failed = False
    with tempfile.TemporaryDirectory(prefix="repro-perf-gate-") as tmp:
        for name, committed, timer, tolerance in gates:
            reset_state(os.path.join(tmp, name))
            t_best, cycles = timer(scale, args.reps, "epoch")
            fresh = cycles / t_best
            floor = committed * (1.0 - tolerance)
            verdict = "PASS" if fresh >= floor else "FAIL"
            failed |= fresh < floor
            print(f"perf-gate [{verdict}] epoch {name}: "
                  f"{fresh / 1e3:,.0f}k cycles/s fresh vs {committed / 1e3:,.0f}k "
                  f"committed (floor {floor / 1e3:,.0f}k at "
                  f"-{tolerance:.0%} tolerance, best of {args.reps})")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
