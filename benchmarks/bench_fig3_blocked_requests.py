"""FIG3 — Fig. 3: average requests blocked per blocking refresh.

Expected shape: each blocking refresh blocks only a handful of reads
(the paper observed an average of a few and a maximum of 12) — the
observation that justifies a small SRAM buffer.
"""

from conftest import run_once

from repro.harness import fig2_to_4_and_table1, reporting


def test_fig3_blocked_requests(benchmark, scale, bench_benchmarks):
    rows = run_once(benchmark, fig2_to_4_and_table1, bench_benchmarks, scale)
    print("\n" + reporting.render_fig3(rows))
    for r in rows:
        assert r.avg_blocked < 16, f"{r.benchmark} blocks too many requests"
