"""SENS — sensitivity of ROP to its own parameters (Section V-A choices).

The paper fixes the training length (50 refreshes), hit-rate threshold
(0.6, "conservatively") and observational window (one refresh period)
without sweeping them. This bench sweeps each around the paper's value on
a predictable intensive stream and checks the choices are *robust*: small
parameter changes must not change the outcome materially.
"""

from conftest import run_once

from repro import SystemConfig, WindowBase
from repro.cpu import run_cores
from repro.harness import reporting
from repro.workloads import profile


def run_variant(scale, **rop_kwargs):
    rop_kwargs.setdefault("training_refreshes", scale.training_refreshes)
    cfg = SystemConfig.single_core().with_rop(**rop_kwargs)
    mt = profile("libquantum").memory_trace(scale.instructions, cfg.llc, seed=1)
    r = run_cores([mt], cfg)
    return r.ipc, r.rop_summary["armed_hit_rate"]


def test_parameter_sensitivity(benchmark, scale):
    def sweep():
        out = {}
        base_training = scale.training_refreshes
        for tr in (max(2, base_training // 2), base_training, base_training * 2):
            out[f"training={tr}"] = run_variant(scale, training_refreshes=tr)
        for th in (0.4, 0.6, 0.8):
            out[f"threshold={th}"] = run_variant(scale, hit_rate_threshold=th)
        for mult in (0.5, 1.0, 2.0):
            out[f"window={mult}x tREFI"] = run_variant(scale, window_mult=mult)
        out["window=4x tRFC"] = run_variant(
            scale, window_base=WindowBase.TRFC, window_mult=4.0
        )
        return out

    out = run_once(benchmark, sweep)
    body = [[k, f"{ipc:.4f}", f"{hr:.3f}"] for k, (ipc, hr) in out.items()]
    print("\n" + reporting.format_table(["variant", "IPC", "armed HR"], body))

    ipcs = [ipc for ipc, _ in out.values()]
    spread = (max(ipcs) - min(ipcs)) / max(ipcs)
    # robustness: no parameter choice shifts IPC by more than ~2 %
    assert spread < 0.02, f"parameter sensitivity too high: {spread:.3f}"
    # the paper's defaults sit within the swept set and perform well
    default_ipc = out[f"training={scale.training_refreshes}"][0]
    assert default_ipc >= max(ipcs) * 0.99
