"""ABL — design-choice ablations called out in DESIGN.md.

Each ablation flips one ROP design decision on the lbm stream (the
clearest signal) and reports the IPC and hit-rate consequence:

* probabilistic throttle off (always-prefetch),
* literal tumbling delta matching (mis-phased projections),
* per-window table reset disabled is structural (not togglable), so the
  mapping ablation stands in: conventional bank-interleaved mapping
  destroys the bank locality the per-bank table needs,
* drain-before-refresh off,
* fixed fill-to-capacity depth vs adaptive depth,
* observational window length (0.25×, 1×) — Table I's insensitivity claim.
"""

import pytest
from conftest import run_once

from repro import AddressMapScheme, SystemConfig
from repro.cpu import run_cores
from repro.workloads import profile


def run_variant(scale, **rop_kwargs):
    cfg_kwargs = rop_kwargs.pop("_config", {})
    cfg = SystemConfig.single_core(**cfg_kwargs).with_rop(
        training_refreshes=10, **rop_kwargs
    )
    mt = profile("lbm").memory_trace(scale.instructions, cfg.llc, seed=1)
    r = run_cores([mt], cfg)
    return r.ipc, r.rop_summary["armed_hit_rate"]


def test_ablations(benchmark, scale):
    def all_variants():
        out = {}
        out["default"] = run_variant(scale)
        out["always-prefetch"] = run_variant(scale, probabilistic=False)
        out["no-drain"] = run_variant(scale, drain_before_refresh=False)
        out["fixed-depth"] = run_variant(scale, adaptive_depth=False)
        out["window-0.25x"] = run_variant(scale, window_mult=0.25)
        out["interleaved-map"] = run_variant(
            scale, _config=dict(address_map=AddressMapScheme.ROW_RANK_BANK_COL)
        )
        return out

    out = run_once(benchmark, all_variants)
    print("\nablation             IPC      armed hit rate")
    for name, (ipc, hr) in out.items():
        print(f"{name:20s} {ipc:.4f}   {hr:.3f}")

    default_ipc, default_hr = out["default"]
    # λ≈1 for lbm: the throttle and always-prefetch behave alike
    assert out["always-prefetch"][0] == pytest.approx(default_ipc, rel=0.02)
    # bank-interleaved mapping destroys per-bank patterns → hit rate drops
    assert out["interleaved-map"][1] < default_hr
    # Table I insensitivity: a much shorter window barely moves the result
    assert out["window-0.25x"][0] == pytest.approx(default_ipc, rel=0.03)
