"""FIG7 — Fig. 7: single-core IPC, ROP vs baseline vs idealized memory.

Expected shape: ROP sits between the baseline and the no-refresh bound
(recovering most of the refresh loss for predictable intensive
benchmarks), never materially below baseline, and occasionally above the
ideal thanks to 3-cycle SRAM hits.
"""

import os

from conftest import run_once

from repro.harness import fig7_8_9_rop_comparison, reporting

SIZES = (16, 32, 64, 128) if os.environ.get("REPRO_SCALE") == "paper" else (64,)


def test_fig7_single_core_ipc(benchmark, scale, bench_benchmarks):
    rows = run_once(
        benchmark, fig7_8_9_rop_comparison, bench_benchmarks, scale, sram_sizes=SIZES
    )
    print("\n" + reporting.render_fig7_8_9(rows))
    for row in rows:
        ideal = row["norm_ipc_norefresh"]
        for size, data in row["rop"].items():
            assert data["norm_ipc"] > 0.985, (row["benchmark"], size)
            assert data["norm_ipc"] < ideal * 1.05
