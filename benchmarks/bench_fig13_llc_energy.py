"""FIG13 — Fig. 13: normalized energy vs LLC size.

Expected shape: ROP consumes no more energy than the Baseline at any LLC
size, with savings largest for memory-intensive mixes at small LLCs.
"""

import os

from conftest import run_once

from repro.harness import fig12_13_14_llc_sensitivity, reporting

SWEEP = (
    tuple(m << 20 for m in (1, 2, 4, 8))
    if os.environ.get("REPRO_SCALE") == "paper"
    else tuple(m << 20 for m in (1, 4))
)


def test_fig13_llc_energy(benchmark, scale, bench_mixes):
    rows = run_once(
        benchmark, fig12_13_14_llc_sensitivity, bench_mixes, scale, llc_sweep=SWEEP
    )
    print("\nROP energy normalized to Baseline, by LLC size:")
    print(reporting.render_llc_sensitivity(rows, "norm_energy"))
    for row in rows:
        for llc, data in row["llc"].items():
            assert data["norm_energy"]["ROP"] < 1.03, (row["mix"], llc)
