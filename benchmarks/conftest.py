"""Shared benchmark configuration.

Each benchmark module regenerates one table or figure of the paper via the
harness drivers. ``REPRO_SCALE`` (smoke / default / paper) controls run
length; benchmarks default to the *smoke* scale so that
``pytest benchmarks/ --benchmark-only`` completes in minutes, while
``REPRO_SCALE=paper`` reproduces the numbers recorded in EXPERIMENTS.md.

Every benchmark runs exactly once per session (``rounds=1``) — these are
whole-experiment timings, not microbenchmarks — and prints the paper-style
table as it completes so the run doubles as a results report.
"""

from __future__ import annotations

import os

import pytest

from repro.harness import RunScale


@pytest.fixture(scope="session")
def scale() -> RunScale:
    """Experiment scale selected by REPRO_SCALE (default: smoke)."""
    return RunScale.named(os.environ.get("REPRO_SCALE", "smoke"))


@pytest.fixture(scope="session")
def bench_benchmarks() -> tuple[str, ...]:
    """Benchmark set: 4 representative profiles at smoke scale, all 12 otherwise."""
    if os.environ.get("REPRO_SCALE", "smoke") == "smoke":
        return ("lbm", "libquantum", "bzip2", "gobmk")
    from repro.harness import DEFAULT_BENCHMARKS

    return DEFAULT_BENCHMARKS


@pytest.fixture(scope="session")
def bench_mixes() -> tuple[str, ...]:
    """Mix set: two mixes at smoke scale, all six otherwise."""
    if os.environ.get("REPRO_SCALE", "smoke") == "smoke":
        return ("WL1", "WL6")
    from repro.workloads import WORKLOAD_MIXES

    return tuple(WORKLOAD_MIXES)


def run_once(benchmark, fn, *args, **kwargs):
    """Execute an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
