"""PERF — micro-benchmark guarding the vectorized ``filter_trace``.

``cpu/llc.py::filter_trace`` is the hot path of every experiment (each
trace is filtered once per LLC geometry before it can be cached).  The
optimized version records only miss/write-back *positions* inside the
sequential LRU walk and assembles the output arrays — including the
inter-request gaps — with vectorized NumPy afterwards.  This bench pits
it against the naive append-per-access reference implementation on a
realistic trace and asserts:

* identical output (trace, counters, tail), and
* the optimized path is not slower (with slack for timer noise).
"""

from __future__ import annotations

import time

import numpy as np
from conftest import run_once

from repro.config import LlcConfig
from repro.cpu.llc import Llc, filter_trace
from repro.workloads import profile
from repro.workloads.trace import AccessTrace


def filter_trace_reference(trace: AccessTrace, cfg: LlcConfig):
    """The pre-optimization implementation: append-per-access lists."""
    cache = Llc(cfg)
    sets = cache._sets
    ways = cache.ways
    mask = cache.num_sets - 1
    out_gaps: list[int] = []
    out_lines: list[int] = []
    out_writes: list[bool] = []
    pending = 0
    gaps = trace.gaps.tolist()
    lines = trace.lines.tolist()
    writes = trace.writes.tolist()
    misses = 0
    writebacks = 0
    for gap, line, wr in zip(gaps, lines, writes):
        pending += gap
        s = sets[line & mask]
        if line in s:
            dirty = s.pop(line)
            s[line] = dirty or wr
            continue
        misses += 1
        out_gaps.append(pending)
        out_lines.append(line)
        out_writes.append(False)
        pending = 0
        if len(s) >= ways:
            vline = next(iter(s))
            vdirty = s.pop(vline)
            if vdirty:
                writebacks += 1
                out_gaps.append(0)
                out_lines.append(vline)
                out_writes.append(True)
        s[line] = wr
    mem = AccessTrace(
        np.asarray(out_gaps, dtype=np.int64),
        np.asarray(out_lines, dtype=np.int64),
        np.asarray(out_writes, dtype=bool),
        tail_instructions=pending + trace.tail_instructions,
    )
    return mem, misses, writebacks


def _time(fn, *args, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def test_filter_trace_speed_and_equivalence(benchmark, scale):
    # gcc has the richest mix of misses, hits and dirty evictions
    cpu = profile("gcc").cpu_trace(scale.instructions, seed=1)
    cfg = LlcConfig(size_bytes=512 * 1024, ways=8)

    def compare():
        ref_mem, ref_m, ref_w = filter_trace_reference(cpu, cfg)
        res = filter_trace(cpu, cfg)
        assert res.misses == ref_m and res.writebacks == ref_w
        assert np.array_equal(res.memory_trace.gaps, ref_mem.gaps)
        assert np.array_equal(res.memory_trace.lines, ref_mem.lines)
        assert np.array_equal(res.memory_trace.writes, ref_mem.writes)
        assert res.memory_trace.tail_instructions == ref_mem.tail_instructions
        return _time(filter_trace_reference, cpu, cfg), _time(filter_trace, cpu, cfg)

    t_ref, t_new = run_once(benchmark, compare)
    speedup = t_ref / t_new if t_new > 0 else float("inf")
    print(f"\nfilter_trace: reference {t_ref * 1e3:.1f} ms, "
          f"optimized {t_new * 1e3:.1f} ms (×{speedup:.2f})")
    # guard: the optimization must never regress below the naive loop
    # (10% slack absorbs timer noise on loaded CI hosts)
    assert t_new <= t_ref * 1.10, (
        f"vectorized filter_trace slower than reference: "
        f"{t_new:.4f}s vs {t_ref:.4f}s"
    )
