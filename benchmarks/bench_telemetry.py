"""PERF — micro-benchmark guarding the telemetry hook overhead.

The telemetry sink threads ``if self._t_x: sink.emit(...)`` guards
through the controller and ROP hot paths.  The contract (DESIGN.md) is
that a run with telemetry *disabled* pays essentially nothing for those
guards: under **3%** simulated-time overhead versus a controller with no
hooks compiled in at all.

The "no-hooks" baseline is recreated here by monkeypatching the
pre-telemetry bodies of the per-request hot-path methods —
``MemoryController.submit`` / ``_issue`` / ``_account_read`` /
``_complete_from_sram`` and ``RopEngine.on_request`` — over the
instrumented ones.  Refresh-path guards fire once per tREFI tick per
rank and are left in place for both variants; they are off the
per-request hot path and cannot move the comparison.

The bench asserts:

* baseline and telemetry-disabled runs are **bit-identical** (hooks only
  observe), and
* the telemetry-disabled run is within the 3% budget (plus slack for
  timer noise on loaded CI hosts),

and *reports* the telemetry-enabled overhead (collection is allowed to
cost more; it is opt-in).
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from conftest import run_once

from repro.config import SystemConfig
from repro.core.rop_engine import RopEngine
from repro.cpu import run_cores
from repro.dram.bank import AccessPlan
from repro.dram.controller import MemoryController
from repro.dram.request import ReqKind, Request, ServiceKind
from repro.telemetry import TraceSink
from repro.workloads import profile


# ----------------------------------------------------------- reference bodies
# Pre-telemetry implementations: the instrumented methods with every
# ``if self._t_x: self.sink.emit(...)`` block removed.


def _reference_submit(self, kind, line, cycle, core_id=0, on_complete=None):
    coord = self.mapper.decode(line)
    req = Request(self._rid, kind, line, coord, cycle, core_id, on_complete)
    self._rid += 1
    ch = self.channels[coord.channel]
    rank = ch.ranks[coord.rank]
    if kind is ReqKind.READ:
        self.stats.reads += 1
        self.read_q[coord.channel].append(req)
        if rank.is_locked(cycle):
            self.stats.reads_arriving_in_lock += 1
            if self.rop is not None:
                self.rop.on_read_arrival_in_lock(coord.channel, coord.rank, cycle)
    else:
        self.stats.writes += 1
        self.write_q[coord.channel].append(req)
        if self.rop is not None:
            self.rop.invalidate_line(line, cycle)
    if self.rop is not None:
        self.rop.on_request(req, cycle)
    self._try_issue(coord.channel, cycle)
    return req


def _reference_issue(self, ci, req, cycle):
    ch = self.channels[ci]
    c = req.coord
    rank = ch.ranks[c.rank]
    is_write = req.kind is not ReqKind.READ and req.kind is not ReqKind.PREFETCH
    plan = rank.plan(cycle, c.bank, c.row, is_write, self.t)
    shift = ch.bus_free_at - plan.data_start
    if shift > 0:
        plan = AccessPlan(
            plan.col_cycle + shift,
            plan.data_start + shift,
            plan.data_end + shift,
            plan.act_cycle,
            plan.category,
        )
    rank.commit(plan, c.bank, c.row, is_write, self.t)
    ch.bus_free_at = plan.data_end
    ch.busy_cycles += plan.data_end - plan.data_start
    req.issue_cycle = plan.col_cycle
    req.complete_cycle = plan.data_end
    req.service = plan.category
    if plan.category is ServiceKind.DRAM_HIT:
        self.stats.row_hits += 1
    elif plan.category is ServiceKind.DRAM_CLOSED:
        self.stats.row_closed += 1
    else:
        self.stats.row_conflicts += 1
    if req.kind is ReqKind.READ:
        self.events.push(plan.data_end, self._make_read_completion(req))


def _reference_account_read(self, req, cycle):
    lat = cycle - req.arrival
    self.stats.reads_completed += 1
    self.stats.read_latency_sum += lat
    if lat > self.stats.read_latency_max:
        self.stats.read_latency_max = lat
    self.stats.end_cycle = max(self.stats.end_cycle, cycle)
    if req.on_complete is not None:
        req.on_complete(cycle)


def _reference_complete_from_sram(self, req, cycle):
    done = cycle + self.cfg.rop.sram_latency
    req.issue_cycle = cycle
    req.complete_cycle = done
    req.service = ServiceKind.SRAM
    rank = self.channels[req.coord.channel].ranks[req.coord.rank]
    in_lock = rank.is_locked(cycle)
    if in_lock:
        self.stats.sram_hits_in_lock += 1
    else:
        self.stats.sram_hits_out_of_lock += 1
    self.rop.on_sram_hit(req, cycle, in_lock)
    self.events.push(done, self._make_read_completion(req))


def _reference_rop_on_request(self, req, cycle):
    self._close_stale_locks(cycle)
    key = (req.coord.channel, req.coord.rank)
    self.profilers[key].on_request(cycle, req.is_read)
    if (req.is_read or not self.rop.table_reads_only) and self.in_observational_window(
        *key, cycle
    ):
        offset = req.coord.row * self._mapper.org.columns + req.coord.col
        self.tables[key].update(req.coord.bank, offset)


_PATCHES = [
    (MemoryController, "submit", _reference_submit),
    (MemoryController, "_issue", _reference_issue),
    (MemoryController, "_account_read", _reference_account_read),
    (MemoryController, "_complete_from_sram", _reference_complete_from_sram),
    (RopEngine, "on_request", _reference_rop_on_request),
]


@contextmanager
def _no_hooks():
    """Swap the pre-telemetry method bodies in; restore on exit."""
    saved = [(cls, name, getattr(cls, name)) for cls, name, _ in _PATCHES]
    for cls, name, fn in _PATCHES:
        setattr(cls, name, fn)
    try:
        yield
    finally:
        for cls, name, fn in saved:
            setattr(cls, name, fn)


def _time(fn, *args, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def test_telemetry_disabled_overhead(benchmark, scale):
    # lbm is the most memory-intensive profile: the densest request
    # stream maximizes guard executions per wall-clock second
    cfg = SystemConfig.single_core().with_rop(training_refreshes=3)
    mt = profile("lbm").memory_trace(scale.instructions, cfg.llc, seed=1)

    def compare():
        # equivalence first: hooks must only observe
        with _no_hooks():
            base = run_cores([mt], cfg)
        off = run_cores([mt], cfg)
        assert off.cores == base.cores
        assert vars(off.stats) == vars(base.stats)
        assert off.end_cycle == base.end_cycle
        assert off.rop_summary == base.rop_summary
        assert off.metrics == base.metrics

        def run_off():
            run_cores([mt], cfg)

        def run_on():
            run_cores([mt], cfg, sink=TraceSink())

        with _no_hooks():
            t_base = _time(run_off)
        t_off = _time(run_off)
        t_on = _time(run_on)
        return t_base, t_off, t_on

    t_base, t_off, t_on = run_once(benchmark, compare)
    off_pct = 100.0 * (t_off / t_base - 1.0)
    on_pct = 100.0 * (t_on / t_base - 1.0)
    print(
        f"\ntelemetry: no-hooks {t_base * 1e3:.1f} ms, "
        f"disabled {t_off * 1e3:.1f} ms ({off_pct:+.1f}%), "
        f"enabled {t_on * 1e3:.1f} ms ({on_pct:+.1f}%)"
    )
    # guard: disabled-telemetry guards must stay within the 3% budget
    # (a further 10-point slack absorbs timer noise on loaded CI hosts)
    assert t_off <= t_base * 1.03 + t_base * 0.10, (
        f"telemetry-disabled run exceeds the 3% hook budget: "
        f"{t_off:.4f}s vs no-hooks {t_base:.4f}s ({off_pct:+.1f}%)"
    )
