"""EXT — extension study: ROP vs the related-work refresh schemes.

The paper compares ROP only against auto-refresh and the idealized
memory, arguing other schemes' gains "can be extrapolated". This bench
makes the comparison explicit, in two layers:

* the original single-density matrix — JEDEC fine-grained refresh
  (2x/4x), Elastic-Refresh-style postponement, Refresh-Pausing-style
  interruptible refresh, per-bank refresh and ROP on the same workloads;
* the **refresh-policy zoo sweep** — every registered policy (including
  DARP, SARP, RAIDR and the ROP compositions) × device density
  (4–32 Gb, tRFC 260–780 ns), reporting IPC and energy normalized to
  auto-refresh at the same density. As density grows the refresh tax
  grows, and the zoo shows which schemes keep paying it.

Run as a script (``python benchmarks/bench_refresh_schemes.py``) to
append a ``zoo_sweep`` record to ``BENCH_runner.json``.
"""

from conftest import run_once

from repro import RefreshMode, SystemConfig
from repro.cpu import run_cores
from repro.harness import reporting, render_zoo, zoo_matrix, zoo_sweep
from repro.workloads import profile

MODES = (
    RefreshMode.AUTO_1X,
    RefreshMode.FGR_2X,
    RefreshMode.FGR_4X,
    RefreshMode.ELASTIC,
    RefreshMode.PAUSING,
    RefreshMode.PER_BANK,
    RefreshMode.DARP,
    RefreshMode.SARP,
    RefreshMode.RAIDR,
    RefreshMode.NONE,
)

#: zoo slice exercised under pytest-benchmark: the policies the ISSUE's
#: figure needs (both ROP compositions) at the density extremes
ZOO_BENCH_POLICIES = (
    "auto_1x",
    "per_bank",
    "darp",
    "sarp",
    "raidr",
    "rop",
    "rop_per_bank",
    "rop_darp",
)
ZOO_BENCH_DENSITIES = (8, 32)


def run_matrix(scale, benches):
    rows = []
    for name in benches:
        cfg = SystemConfig.single_core()
        mt = profile(name).memory_trace(scale.instructions, cfg.llc, seed=scale.seed)
        ipcs = {}
        for mode in MODES:
            ipcs[mode.value] = run_cores([mt], cfg.with_refresh_mode(mode)).ipc
        ipcs["rop"] = run_cores(
            [mt], cfg.with_rop(training_refreshes=scale.training_refreshes)
        ).ipc
        rows.append({"benchmark": name, "ipc": ipcs})
    return rows


def test_refresh_scheme_comparison(benchmark, scale, bench_benchmarks):
    rows = run_once(benchmark, run_matrix, scale, bench_benchmarks)
    headers = ["benchmark"] + [m.value for m in MODES] + ["rop"]
    body = []
    for r in rows:
        base = r["ipc"]["auto_1x"]
        body.append(
            [r["benchmark"]]
            + [f"{r['ipc'][m.value] / base:.4f}" for m in MODES]
            + [f"{r['ipc']['rop'] / base:.4f}"]
        )
    print("\nIPC normalized to auto-refresh baseline:")
    print(reporting.format_table(headers, body))
    for r in rows:
        ipc = r["ipc"]
        assert ipc["none"] >= ipc["auto_1x"] * 0.999  # ideal is the bound
        assert ipc["rop"] >= ipc["auto_1x"] * 0.985  # ROP never collapses


def test_zoo_policy_density_sweep(benchmark, scale, bench_benchmarks):
    rows = run_once(
        benchmark,
        zoo_sweep,
        bench_benchmarks,
        scale,
        densities=ZOO_BENCH_DENSITIES,
        policies=ZOO_BENCH_POLICIES,
    )
    print()
    print(render_zoo(rows))
    cells = {(m["policy"], m["density_gbit"]): m for m in zoo_matrix(rows)}
    for gbit in ZOO_BENCH_DENSITIES:
        # ROP composes: it never loses IPC against its own refresh scheme
        assert cells[("rop", gbit)]["norm_ipc"] >= 0.995
        assert cells[("rop_darp", gbit)]["norm_ipc"] >= (
            cells[("darp", gbit)]["norm_ipc"] * 0.995
        )
    # the refresh energy tax grows with density (the zoo's reason to exist)
    assert (
        cells[("auto_1x", 32)]["refresh_fraction"]
        > cells[("auto_1x", 8)]["refresh_fraction"]
    )


def main() -> int:
    """Full zoo grid; appends a ``zoo_sweep`` record to BENCH_runner.json."""
    import argparse
    import json
    import os
    import time
    from pathlib import Path

    from repro.harness import RunScale, ZOO_DENSITIES

    ap = argparse.ArgumentParser(description=main.__doc__)
    ap.add_argument("--scale", default="smoke", choices=("smoke", "default", "paper"))
    ap.add_argument("--benchmarks", nargs="+",
                    default=["lbm", "libquantum", "bzip2", "gobmk"])
    ap.add_argument("--jobs", type=int, default=None)
    ap.add_argument("--out", default="BENCH_runner.json",
                    help="timing-record file (appended to)")
    args = ap.parse_args()

    scale = RunScale.named(args.scale)
    t0 = time.perf_counter()
    rows = zoo_sweep(tuple(args.benchmarks), scale, jobs=args.jobs)
    wall = time.perf_counter() - t0
    print(render_zoo(rows))
    record = {
        "bench": "zoo_sweep",
        "scale": args.scale,
        "cpus": os.cpu_count(),
        "benchmarks": args.benchmarks,
        "densities_gbit": list(ZOO_DENSITIES),
        "points": len(rows),
        "wall_s": round(wall, 2),
        "matrix": [
            {
                "policy": m["policy"],
                "density_gbit": m["density_gbit"],
                "norm_ipc": round(m["norm_ipc"], 4),
                "norm_energy": round(m["norm_energy"], 4),
                "refresh_fraction": round(m["refresh_fraction"], 4),
            }
            for m in sorted(
                zoo_matrix(rows), key=lambda m: (m["density_gbit"], m["policy"])
            )
        ],
    }
    out = Path(args.out)
    history = []
    if out.exists():
        try:
            history = json.loads(out.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(record)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(f"recorded -> {out} ({len(rows)} points, {wall:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
