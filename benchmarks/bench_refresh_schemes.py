"""EXT — extension study: ROP vs the related-work refresh schemes.

The paper compares ROP only against auto-refresh and the idealized
memory, arguing other schemes' gains "can be extrapolated". This bench
makes the comparison explicit: JEDEC fine-grained refresh (2x/4x),
Elastic-Refresh-style postponement, Refresh-Pausing-style interruptible
refresh, per-bank refresh (the paper's future work), and ROP — all on the
same workloads.

Expected shape: ROP and Pausing recover most of the refresh loss for
predictable streams; FGR is not a one-size-fits-all win (more total lock
time); per-bank refresh helps by localizing the freeze.
"""

from conftest import run_once

from repro import RefreshMode, SystemConfig
from repro.cpu import run_cores
from repro.harness import reporting
from repro.workloads import profile

MODES = (
    RefreshMode.AUTO_1X,
    RefreshMode.FGR_2X,
    RefreshMode.FGR_4X,
    RefreshMode.ELASTIC,
    RefreshMode.PAUSING,
    RefreshMode.PER_BANK,
    RefreshMode.NONE,
)


def run_matrix(scale, benches):
    rows = []
    for name in benches:
        cfg = SystemConfig.single_core()
        mt = profile(name).memory_trace(scale.instructions, cfg.llc, seed=scale.seed)
        ipcs = {}
        for mode in MODES:
            ipcs[mode.value] = run_cores([mt], cfg.with_refresh_mode(mode)).ipc
        ipcs["rop"] = run_cores(
            [mt], cfg.with_rop(training_refreshes=scale.training_refreshes)
        ).ipc
        rows.append({"benchmark": name, "ipc": ipcs})
    return rows


def test_refresh_scheme_comparison(benchmark, scale, bench_benchmarks):
    rows = run_once(benchmark, run_matrix, scale, bench_benchmarks)
    headers = ["benchmark"] + [m.value for m in MODES] + ["rop"]
    body = []
    for r in rows:
        base = r["ipc"]["auto_1x"]
        body.append(
            [r["benchmark"]]
            + [f"{r['ipc'][m.value] / base:.4f}" for m in MODES]
            + [f"{r['ipc']['rop'] / base:.4f}"]
        )
    print("\nIPC normalized to auto-refresh baseline:")
    print(reporting.format_table(headers, body))
    for r in rows:
        ipc = r["ipc"]
        assert ipc["none"] >= ipc["auto_1x"] * 0.999  # ideal is the bound
        assert ipc["rop"] >= ipc["auto_1x"] * 0.985  # ROP never collapses
