"""TAB1 — Table I: the conditional probabilities λ and β per benchmark.

Expected shape: λ high for memory-intensive benchmarks (busy windows stay
busy), β high for sparse/bursty ones (quiet windows stay quiet), and both
fairly insensitive to the window length — the paper's justification for
the 1× observational window.
"""

import math

from conftest import run_once

from repro.harness import fig2_to_4_and_table1, reporting
from repro.workloads import profile


def test_table1_lambda_beta(benchmark, scale, bench_benchmarks):
    rows = run_once(benchmark, fig2_to_4_and_table1, bench_benchmarks, scale)
    print("\n" + reporting.render_table1(rows))
    for r in rows:
        wa = r.windows[1.0]
        if wa.refreshes < 30:
            continue
        p = profile(r.benchmark)
        if not math.isnan(wa.lam):
            assert abs(wa.lam - p.paper_lambda) < 0.35, (
                f"{r.benchmark}: λ={wa.lam:.2f} vs paper {p.paper_lambda}"
            )
        if not math.isnan(wa.beta) and p.paper_beta > 0.05:
            assert abs(wa.beta - p.paper_beta) < 0.35, (
                f"{r.benchmark}: β={wa.beta:.2f} vs paper {p.paper_beta}"
            )
