#!/usr/bin/env python3
"""Scaling benchmark: sequential vs parallel fan-out, plus hot-loop speed.

Builds a 16-spec plan (8 benchmarks x {baseline, ROP}) and executes it
cold at ``jobs=1`` and each ``--jobs`` level against fresh cache
directories, recording wall-clock and simulated cycles/second.  A
single-spec timing (trace pre-materialized, best of ``--reps``) isolates
the simulator hot loop from fan-out effects.  Results are appended to
``BENCH_runner.json`` so successive PRs accumulate a trajectory.

Parallel speedup only materializes on multi-core hosts (the record
carries ``cpus`` so single-core CI numbers are interpretable); the
single-spec cycles/second figure tracks hot-loop regressions anywhere.

Usage::

    python benchmarks/bench_scaling.py [--scale smoke] [--jobs 2 4]
                                       [--out BENCH_runner.json]

Exit code 0 means every parallel run reproduced the sequential results
bit for bit.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

BENCHMARKS = (
    "lbm", "libquantum", "gcc", "cactusADM", "bzip2", "gobmk", "astar", "omnetpp",
)


def build_specs(scale):
    from repro import SystemConfig
    from repro.harness import RunSpec

    base = SystemConfig.single_core()
    rop = base.with_rop(training_refreshes=scale.training_refreshes)
    return [
        RunSpec.benchmark(name, cfg, scale)
        for name in BENCHMARKS
        for cfg in (base, rop)
    ]


def reset_state(cache_dir: str) -> None:
    from repro.harness.runner import clear_result_memo
    from repro.workloads.spec_profiles import clear_trace_cache

    os.environ["REPRO_CACHE_DIR"] = cache_dir
    clear_result_memo()
    clear_trace_cache()


def run_plan(specs, jobs: int, cache_dir: str):
    """One cold plan execution; returns (digest map, wall s, total cycles)."""
    import hashlib
    import pickle

    from repro.harness import execute_plan

    reset_state(cache_dir)
    t0 = time.perf_counter()
    results = execute_plan(specs, jobs=jobs)
    wall = time.perf_counter() - t0
    digests = {
        s.key: hashlib.sha256(pickle.dumps(results[s])).hexdigest() for s in specs
    }
    cycles = sum(results[s].end_cycle for s in specs)
    return digests, wall, cycles


def single_spec(scale, reps: int):
    """Hot-loop timing: one ROP spec, trace pre-materialized, best of reps."""
    from repro import SystemConfig
    from repro.harness import RunSpec
    from repro.harness.runner import run_spec
    from repro.workloads import profile

    cfg = SystemConfig.single_core().with_rop(
        training_refreshes=scale.training_refreshes
    )
    spec = RunSpec.benchmark("lbm", cfg, scale)
    profile("lbm").memory_trace(scale.instructions, cfg.llc, seed=scale.seed)
    best, cycles = float("inf"), 0
    for _ in range(reps):
        t0 = time.perf_counter()
        result = run_spec(spec)
        best = min(best, time.perf_counter() - t0)
        cycles = result.end_cycle
    return best, cycles


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", default="smoke", choices=("smoke", "default", "paper"))
    ap.add_argument("--jobs", type=int, nargs="+", default=[2, 4],
                    help="parallel worker counts to measure (default: 2 4)")
    ap.add_argument("--reps", type=int, default=3,
                    help="repetitions for the single-spec timing (default 3)")
    ap.add_argument("--out", default="BENCH_runner.json",
                    help="timing-record file (appended to)")
    args = ap.parse_args()

    from repro.harness import RunScale, last_stats

    scale = RunScale.named(args.scale)
    specs = build_specs(scale)

    with tempfile.TemporaryDirectory(prefix="repro-scaling-") as tmp:
        seq_digests, t_seq, cycles = run_plan(specs, 1, os.path.join(tmp, "j1"))
        print(f"cold jobs=1 : {t_seq:6.2f}s  ({cycles / t_seq / 1e3:,.0f}k cycles/s)")
        t_jobs = {1: t_seq}
        for jobs in args.jobs:
            digests, t_par, _ = run_plan(specs, jobs, os.path.join(tmp, f"j{jobs}"))
            stats = last_stats()
            print(f"cold jobs={jobs} : {t_par:6.2f}s  (x{t_seq / t_par:.2f}, "
                  f"{stats.chunks} chunks)")
            if digests != seq_digests:
                print("FAIL parallel results diverged from sequential", file=sys.stderr)
                return 1
            t_jobs[jobs] = t_par
        print(f"OK  jobs=1 and jobs={args.jobs} results are bit-identical")

        reset_state(os.path.join(tmp, "single"))
        t_single, single_cycles = single_spec(scale, args.reps)
        print(f"single spec : {t_single:6.3f}s  "
              f"({single_cycles / t_single / 1e3:,.0f}k cycles/s, lbm+ROP)")

    record = {
        "bench": "runner_scaling",
        "scale": args.scale,
        "cpus": os.cpu_count(),
        "unique_specs": len(specs),
        "t_jobs_s": {str(j): round(t, 3) for j, t in sorted(t_jobs.items())},
        "speedup": {
            str(j): round(t_seq / t, 3) for j, t in sorted(t_jobs.items()) if j > 1
        },
        "plan_cycles_per_sec": round(cycles / t_seq),
        "single_spec_s": round(t_single, 4),
        "single_spec_cycles_per_sec": round(single_cycles / t_single),
    }
    out = Path(args.out)
    history = []
    if out.exists():
        try:
            history = json.loads(out.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(record)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(f"recorded -> {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
