#!/usr/bin/env python3
"""Scaling benchmark: sequential vs parallel fan-out, plus hot-loop speed.

Builds a 16-spec plan (8 benchmarks x {baseline, ROP}) and executes it
cold at ``jobs=1`` and each ``--jobs`` level against fresh cache
directories, recording wall-clock and simulated cycles/second.  Because
the smoke plan is small, fixed costs — ProcessPoolExecutor spin-up and
the parent-side trace-plane prewarm — eat most of the parallel win, so
both are measured and reported separately, and a second, *amortized*
plan (the same 8 traces fanned across extra ROP training variants)
shows the speedup once there is enough work per fixed cost.

A single-spec timing (trace pre-materialized, best of ``--reps``)
isolates the simulator hot loop from fan-out effects; it is taken under
**both** engines (``scalar`` reference interpreter and the array-native
``epoch`` kernel) and the ratio lands in the record as
``scalar_vs_epoch``.  A 4-core mix spec (WL1 on the quad-core ROP
system) is timed the same way and recorded as
``multicore_spec_cycles_per_sec`` / ``scalar_vs_epoch_multicore``.  The
perf-regression gate (``benchmarks/perf_gate.py``) tracks both
cycles/s records.

Usage::

    python benchmarks/bench_scaling.py [--scale smoke] [--jobs 2 4]
                                       [--out BENCH_runner.json]

Exit code 0 means every parallel run reproduced the sequential results
bit for bit.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

BENCHMARKS = (
    "lbm", "libquantum", "gcc", "cactusADM", "bzip2", "gobmk", "astar", "omnetpp",
)

#: extra ROP training-length variants for the amortized plan; each reuses
#: the same 8 traces, so sim work scales while prewarm cost does not
AMORTIZE_VARIANTS = 4


def build_specs(scale, amortize: int = 0):
    from repro import SystemConfig
    from repro.harness import RunSpec

    base = SystemConfig.single_core()
    t = scale.training_refreshes
    configs = [base, base.with_rop(training_refreshes=t)]
    configs += [
        base.with_rop(training_refreshes=t + 1 + i) for i in range(amortize)
    ]
    return [
        RunSpec.benchmark(name, cfg, scale)
        for name in BENCHMARKS
        for cfg in configs
    ]


def reset_state(cache_dir: str) -> None:
    from repro.harness.runner import clear_result_memo
    from repro.workloads.spec_profiles import clear_trace_cache

    os.environ["REPRO_CACHE_DIR"] = cache_dir
    clear_result_memo()
    clear_trace_cache()


def run_plan(specs, jobs: int, cache_dir: str):
    """One cold plan execution; returns (digest map, wall s, total cycles)."""
    import hashlib
    import pickle

    from repro.harness import execute_plan

    reset_state(cache_dir)
    t0 = time.perf_counter()
    results = execute_plan(specs, jobs=jobs)
    wall = time.perf_counter() - t0
    digests = {
        s.key: hashlib.sha256(pickle.dumps(results[s])).hexdigest() for s in specs
    }
    cycles = sum(results[s].end_cycle for s in specs)
    return digests, wall, cycles


def _noop(i: int) -> int:
    return i


def measure_pool_spinup(jobs: int) -> float:
    """Wall cost of standing up a worker pool and round-tripping one no-op
    per worker — the fixed price every cold parallel plan pays."""
    t0 = time.perf_counter()
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        list(pool.map(_noop, range(jobs)))
    return time.perf_counter() - t0


def _time_spec(spec, reps: int, engine: str):
    """Best-of-``reps`` wall time for one spec under ``engine``.

    Traces are pre-materialized by the caller; the result memo is
    cleared between reps so every iteration simulates.
    """
    from repro.harness.runner import clear_result_memo, run_spec

    prev = os.environ.get("REPRO_ENGINE")
    os.environ["REPRO_ENGINE"] = engine
    try:
        best, cycles = float("inf"), 0
        for _ in range(reps):
            clear_result_memo()
            t0 = time.perf_counter()
            result = run_spec(spec)
            best = min(best, time.perf_counter() - t0)
            cycles = result.end_cycle
    finally:
        if prev is None:
            os.environ.pop("REPRO_ENGINE", None)
        else:
            os.environ["REPRO_ENGINE"] = prev
    return best, cycles


def single_spec(scale, reps: int, engine: str):
    """Hot-loop timing: one ROP spec, trace pre-materialized, best of reps."""
    from repro import SystemConfig
    from repro.harness import RunSpec
    from repro.workloads import profile

    cfg = SystemConfig.single_core().with_rop(
        training_refreshes=scale.training_refreshes
    )
    spec = RunSpec.benchmark("lbm", cfg, scale)
    profile("lbm").memory_trace(scale.instructions, cfg.llc, seed=scale.seed)
    return _time_spec(spec, reps, engine)


def auto_spec(scale, reps: int, engine: str):
    """Plain AUTO_1X baseline timing (no ROP): the refresh-policy
    dispatch hot path every other configuration builds on."""
    from repro import SystemConfig
    from repro.harness import RunSpec
    from repro.workloads import profile

    cfg = SystemConfig.single_core()
    spec = RunSpec.benchmark("lbm", cfg, scale)
    profile("lbm").memory_trace(scale.instructions, cfg.llc, seed=scale.seed)
    return _time_spec(spec, reps, engine)


def multicore_spec(scale, reps: int, engine: str, mix: str = "WL1"):
    """Multicore hot-loop timing: a Fig. 10-style 4-core mix spec on the
    quad-core ROP system, traces pre-materialized, best of reps."""
    from repro import SystemConfig
    from repro.harness import RunSpec
    from repro.workloads import profile

    cfg = SystemConfig.quad_core().with_rop(
        training_refreshes=scale.training_refreshes
    )
    spec = RunSpec.mix(mix, cfg, scale)
    for name in spec.workloads:
        profile(name).memory_trace(spec.instructions, spec.trace_llc, seed=spec.seed)
    return _time_spec(spec, reps, engine)


def fig10_sweep(scale, tmp: str):
    """The paper's headline sweep cold under both engines, jobs=1.

    The sweep's input traces are pre-materialized outside the timed
    region (matching :func:`single_spec` / :func:`multicore_spec`):
    trace generation is engine-independent, so leaving it inside the
    timers would only dilute the scalar/epoch comparison.  The result
    cache stays cold — each engine simulates all specs from scratch.

    Returns ``(t_scalar, t_epoch, fallbacks)`` where ``fallbacks`` is
    the epoch pass's engine-fallback count; the rendered rows must be
    bit-identical across engines.
    """
    import hashlib
    import pickle

    from repro.harness import (
        fig10_11_specs,
        fig10_11_weighted_speedup,
        last_stats,
        prewarm_traces,
    )

    walls, digests, fallbacks = {}, {}, 0
    prev = os.environ.get("REPRO_ENGINE")
    try:
        for engine in ("scalar", "epoch"):
            os.environ["REPRO_ENGINE"] = engine
            reset_state(os.path.join(tmp, f"fig10-{engine}"))
            prewarm_traces(fig10_11_specs(scale=scale))
            t0 = time.perf_counter()
            rows = fig10_11_weighted_speedup(scale=scale, jobs=1)
            walls[engine] = time.perf_counter() - t0
            digests[engine] = hashlib.sha256(pickle.dumps(rows)).hexdigest()
            if engine == "epoch":
                fallbacks = last_stats().engine_fallbacks
    finally:
        if prev is None:
            os.environ.pop("REPRO_ENGINE", None)
        else:
            os.environ["REPRO_ENGINE"] = prev
    if digests["scalar"] != digests["epoch"]:
        raise AssertionError("fig10 sweep rows diverged between engines")
    return walls["scalar"], walls["epoch"], fallbacks


def _scaling_pass(label, specs, jobs_levels, tmp, keep_digests=True):
    """Run one plan cold at jobs=1 and each jobs level; return timing dict."""
    from repro.harness import last_stats

    seq_digests, t_seq, cycles = run_plan(specs, 1, os.path.join(tmp, f"{label}-j1"))
    print(f"[{label}] cold jobs=1 : {t_seq:6.2f}s  "
          f"({cycles / t_seq / 1e3:,.0f}k cycles/s, {len(specs)} specs)")
    t_jobs = {1: t_seq}
    prewarm = {}
    for jobs in jobs_levels:
        digests, t_par, _ = run_plan(
            specs, jobs, os.path.join(tmp, f"{label}-j{jobs}")
        )
        stats = last_stats()
        prewarm[jobs] = stats.prewarm_s
        print(f"[{label}] cold jobs={jobs} : {t_par:6.2f}s  (x{t_seq / t_par:.2f}, "
              f"{stats.chunks} chunks, prewarm {stats.prewarm_s:.2f}s, "
              f"pool {stats.pool_spinup_s * 1e3:.0f}ms)")
        if keep_digests and digests != seq_digests:
            print("FAIL parallel results diverged from sequential", file=sys.stderr)
            return None
        t_jobs[jobs] = t_par
    return {"t_jobs": t_jobs, "t_seq": t_seq, "cycles": cycles, "prewarm": prewarm}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", default="smoke", choices=("smoke", "default", "paper"))
    ap.add_argument("--jobs", type=int, nargs="+", default=[2, 4],
                    help="parallel worker counts to measure (default: 2 4)")
    ap.add_argument("--reps", type=int, default=3,
                    help="repetitions for the single-spec timing (default 3)")
    ap.add_argument("--out", default="BENCH_runner.json",
                    help="timing-record file (appended to)")
    args = ap.parse_args()

    from repro.harness import RunScale

    scale = RunScale.named(args.scale)
    specs = build_specs(scale)
    big_specs = build_specs(scale, amortize=AMORTIZE_VARIANTS)

    spinup = {j: measure_pool_spinup(j) for j in args.jobs}
    for j, s in spinup.items():
        print(f"pool spin-up jobs={j}: {s * 1e3:6.0f}ms (no-op round trip)")

    with tempfile.TemporaryDirectory(prefix="repro-scaling-") as tmp:
        smoke = _scaling_pass("smoke", specs, args.jobs, tmp)
        if smoke is None:
            return 1
        big = _scaling_pass("amortized", big_specs, args.jobs, tmp)
        if big is None:
            return 1
        print(f"OK  jobs=1 and jobs={args.jobs} results are bit-identical "
              f"(both plans)")

        reset_state(os.path.join(tmp, "single"))
        t_scalar, _ = single_spec(scale, args.reps, "scalar")
        t_epoch, single_cycles = single_spec(scale, args.reps, "epoch")
        print(f"single spec : scalar {t_scalar:6.3f}s, epoch {t_epoch:6.3f}s "
              f"({single_cycles / t_epoch / 1e3:,.0f}k cycles/s, "
              f"scalar/epoch x{t_scalar / t_epoch:.2f}, lbm+ROP)")

        reset_state(os.path.join(tmp, "auto"))
        t_auto, auto_cycles = auto_spec(scale, args.reps, "epoch")
        print(f"auto spec   : epoch {t_auto:6.3f}s "
              f"({auto_cycles / t_auto / 1e3:,.0f}k cycles/s, lbm AUTO_1X "
              f"baseline — the refresh-policy dispatch path)")

        reset_state(os.path.join(tmp, "multicore"))
        t_mc_scalar, _ = multicore_spec(scale, args.reps, "scalar")
        t_mc_epoch, mc_cycles = multicore_spec(scale, args.reps, "epoch")
        print(f"4-core mix  : scalar {t_mc_scalar:6.3f}s, epoch {t_mc_epoch:6.3f}s "
              f"({mc_cycles / t_mc_epoch / 1e3:,.0f}k cycles/s, "
              f"scalar/epoch x{t_mc_scalar / t_mc_epoch:.2f}, WL1 quad+ROP)")

        t_f10_scalar, t_f10_epoch, f10_fallbacks = fig10_sweep(scale, tmp)
        print(f"fig10 sweep : scalar {t_f10_scalar:6.2f}s, epoch {t_f10_epoch:6.2f}s "
              f"(x{t_f10_scalar / t_f10_epoch:.2f} cold jobs=1, traces prewarmed, "
              f"{f10_fallbacks} fallbacks, rows bit-identical)")

    t_seq, t_jobs = smoke["t_seq"], smoke["t_jobs"]
    record = {
        "bench": "runner_scaling",
        "scale": args.scale,
        "cpus": os.cpu_count(),
        "unique_specs": len(specs),
        "t_jobs_s": {str(j): round(t, 3) for j, t in sorted(t_jobs.items())},
        "speedup": {
            str(j): round(t_seq / t, 3) for j, t in sorted(t_jobs.items()) if j > 1
        },
        "plan_cycles_per_sec": round(smoke["cycles"] / t_seq),
        "pool_spinup_s": {str(j): round(s, 3) for j, s in sorted(spinup.items())},
        "prewarm_s": {
            str(j): round(s, 3) for j, s in sorted(smoke["prewarm"].items())
        },
        "amortized": {
            "unique_specs": len(big_specs),
            "t_jobs_s": {
                str(j): round(t, 3) for j, t in sorted(big["t_jobs"].items())
            },
            "speedup": {
                str(j): round(big["t_seq"] / t, 3)
                for j, t in sorted(big["t_jobs"].items())
                if j > 1
            },
        },
        "engine": "epoch",
        "single_spec_s": round(t_epoch, 4),
        "single_spec_cycles_per_sec": round(single_cycles / t_epoch),
        "scalar_single_spec_s": round(t_scalar, 4),
        "scalar_vs_epoch": round(t_scalar / t_epoch, 2),
        "auto_spec_s": round(t_auto, 4),
        "auto_spec_cycles_per_sec": round(auto_cycles / t_auto),
        "multicore_spec_s": round(t_mc_epoch, 4),
        "multicore_spec_cycles_per_sec": round(mc_cycles / t_mc_epoch),
        "scalar_multicore_spec_s": round(t_mc_scalar, 4),
        "scalar_vs_epoch_multicore": round(t_mc_scalar / t_mc_epoch, 2),
        "fig10_sweep": {
            "scalar_s": round(t_f10_scalar, 2),
            "epoch_s": round(t_f10_epoch, 2),
            "speedup": round(t_f10_scalar / t_f10_epoch, 2),
            "traces_prematerialized": True,
            "engine_fallbacks": f10_fallbacks,
        },
    }
    out = Path(args.out)
    history = []
    if out.exists():
        try:
            history = json.loads(out.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(record)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(f"recorded -> {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
