"""FIG10 — Fig. 10: normalized weighted speedup of 4-core mixes.

Expected shape: Baseline-RP (rank partitioning) clearly beats the shared
Baseline; ROP at least matches Baseline-RP and beats Baseline by a factor
that grows with the mix's memory intensity (the paper's 1.29X geomean).
"""

from conftest import run_once

from repro.harness import fig10_11_weighted_speedup, reporting


def test_fig10_weighted_speedup(benchmark, scale, bench_mixes):
    rows = run_once(benchmark, fig10_11_weighted_speedup, bench_mixes, scale)
    print("\n" + reporting.render_fig10_11(rows))
    for row in rows:
        assert row["norm_ws"]["Baseline-RP"] > 0.99
        assert row["norm_ws"]["ROP"] > 0.99
        assert row["norm_ws"]["ROP"] > row["norm_ws"]["Baseline-RP"] * 0.97
    # intensity ordering: the heaviest mix gains the most from ROP
    if {"WL1", "WL6"} <= {r["mix"] for r in rows}:
        gain = {r["mix"]: r["norm_ws"]["ROP"] for r in rows}
        assert gain["WL1"] >= gain["WL6"]
