"""FIG9 — Fig. 9: SRAM buffer hit rate per buffer capacity.

Expected shape: predictable (streaming/strided) benchmarks sustain armed
hit rates above the 0.6 threshold; capacity growth does not hurt.
"""

import os

from conftest import run_once

from repro.harness import fig7_8_9_rop_comparison, reporting
from repro.workloads import profile

SIZES = (16, 32, 64, 128) if os.environ.get("REPRO_SCALE") == "paper" else (16, 64)


def test_fig9_sram_hit_rate(benchmark, scale, bench_benchmarks):
    rows = run_once(
        benchmark, fig7_8_9_rop_comparison, bench_benchmarks, scale, sram_sizes=SIZES
    )
    print("\n" + reporting.render_fig7_8_9(rows))
    for row in rows:
        p = profile(row["benchmark"])
        hr = row["rop"][max(SIZES)]["armed_hit_rate"]
        if p.intensive and p.name in ("lbm", "libquantum", "bwaves"):
            assert hr > 0.55, (row["benchmark"], hr)
