"""FIG1 — Fig. 1: performance and energy overheads of auto-refresh.

Regenerates the baseline vs idealized no-refresh comparison. Expected
shape: a few percent IPC degradation (more for memory-intensive
benchmarks) and ~10–40 % extra energy.
"""

from conftest import run_once

from repro.harness import fig1_refresh_overheads, reporting


def test_fig1_refresh_overheads(benchmark, scale, bench_benchmarks):
    rows = run_once(benchmark, fig1_refresh_overheads, bench_benchmarks, scale)
    print("\n" + reporting.render_fig1(rows))
    for row in rows:
        assert row["perf_degradation_pct"] >= -0.5
        assert row["energy_overhead_pct"] > 0
