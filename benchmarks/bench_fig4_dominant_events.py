"""FIG4 — Fig. 4: dominance of events E1 (B>0∧A>0) and E2 (B=0∧A=0).

Expected shape: E1+E2 covers the large majority of refreshes, so a
predictor keyed on window occupancy achieves high coverage.
"""

from conftest import run_once

from repro.harness import fig2_to_4_and_table1, reporting


def test_fig4_dominant_events(benchmark, scale, bench_benchmarks):
    rows = run_once(benchmark, fig2_to_4_and_table1, bench_benchmarks, scale)
    print("\n" + reporting.render_fig4(rows))
    for r in rows:
        if r.windows[1.0].refreshes >= 20:
            assert r.windows[1.0].dominant_fraction > 0.5, r.benchmark
