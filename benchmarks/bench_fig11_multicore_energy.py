"""FIG11 — Fig. 11: normalized 4-core energy consumption.

Expected shape: rank partitioning (and ROP on top of it) shortens
execution and therefore reduces energy versus the shared Baseline; the
more intensive the mix, the larger the saving.
"""

from conftest import run_once

from repro.harness import fig10_11_weighted_speedup, reporting


def test_fig11_multicore_energy(benchmark, scale, bench_mixes):
    rows = run_once(benchmark, fig10_11_weighted_speedup, bench_mixes, scale)
    print("\n" + reporting.render_fig10_11(rows))
    for row in rows:
        assert row["norm_energy"]["ROP"] < 1.02
        assert row["norm_energy"]["Baseline-RP"] < 1.02
    if {"WL1", "WL6"} <= {r["mix"] for r in rows}:
        sav = {r["mix"]: r["norm_energy"]["ROP"] for r in rows}
        assert sav["WL1"] <= sav["WL6"] + 0.02  # heavier mix saves more
