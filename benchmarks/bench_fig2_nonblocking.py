"""FIG2 — Fig. 2: fraction of non-blocking refreshes at 1×/2×/4× windows.

Expected shape: sparse (non-intensive) benchmarks leave most refreshes
non-blocking; streaming benchmarks block almost every refresh.
"""

from conftest import run_once

from repro.harness import fig2_to_4_and_table1, reporting


def test_fig2_nonblocking_refreshes(benchmark, scale, bench_benchmarks):
    rows = run_once(benchmark, fig2_to_4_and_table1, bench_benchmarks, scale)
    print("\n" + reporting.render_fig2(rows))
    by_name = {r.benchmark: r for r in rows}
    if "gobmk" in by_name:
        assert by_name["gobmk"].windows[1.0].non_blocking_fraction > 0.5
    if "lbm" in by_name:
        assert by_name["lbm"].windows[1.0].non_blocking_fraction < 0.2
    # wider examined windows can only reduce the non-blocking fraction
    for r in rows:
        assert (
            r.windows[4.0].non_blocking_fraction
            <= r.windows[1.0].non_blocking_fraction + 1e-9
        )
