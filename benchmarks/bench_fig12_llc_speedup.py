"""FIG12 — Fig. 12: normalized weighted speedup vs LLC size.

Expected shape: ROP's advantage over the Baseline exists at every LLC
size and shrinks as the LLC grows (bigger caches filter more requests and
narrow the baseline/ideal gap) — the paper's third conclusion.
"""

import os

from conftest import run_once

from repro.harness import fig12_13_14_llc_sensitivity, reporting

SWEEP = (
    tuple(m << 20 for m in (1, 2, 4, 8))
    if os.environ.get("REPRO_SCALE") == "paper"
    else tuple(m << 20 for m in (1, 4))
)


def test_fig12_llc_speedup(benchmark, scale, bench_mixes):
    rows = run_once(
        benchmark, fig12_13_14_llc_sensitivity, bench_mixes, scale, llc_sweep=SWEEP
    )
    print("\nROP weighted speedup normalized to Baseline, by LLC size:")
    print(reporting.render_llc_sensitivity(rows, "norm_ws"))
    for row in rows:
        for llc, data in row["llc"].items():
            assert data["norm_ws"]["ROP"] > 0.97, (row["mix"], llc)
    # the heaviest mix's ROP gain shrinks as the LLC grows (generous
    # tolerance: short runs are noisy on this second-order trend)
    heavy = rows[0]["llc"]
    assert (
        heavy[max(SWEEP)]["norm_ws"]["ROP"]
        <= heavy[min(SWEEP)]["norm_ws"]["ROP"] + 0.12
    )
