"""FIG8 — Fig. 8: single-core memory energy, normalized to the baseline.

Expected shape: ROP's energy tracks its runtime savings (background power
dominates), staying at or below the baseline; the no-refresh ideal is the
lower bound.
"""

import os

from conftest import run_once

from repro.harness import fig7_8_9_rop_comparison, reporting

SIZES = (16, 32, 64, 128) if os.environ.get("REPRO_SCALE") == "paper" else (64,)


def test_fig8_single_core_energy(benchmark, scale, bench_benchmarks):
    rows = run_once(
        benchmark, fig7_8_9_rop_comparison, bench_benchmarks, scale, sram_sizes=SIZES
    )
    print("\n" + reporting.render_fig7_8_9(rows))
    for row in rows:
        assert row["norm_energy_norefresh"] < 1.0  # ideal saves energy
        for size, data in row["rop"].items():
            assert data["norm_energy"] < 1.04, (row["benchmark"], size)
