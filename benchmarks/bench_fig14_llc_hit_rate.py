"""FIG14 — Fig. 14: SRAM buffer hit rate vs LLC size.

Expected shape: the armed hit rate stays at a workable level across LLC
sizes — prediction quality is a property of the access patterns, not of
cache capacity.
"""

import os

from conftest import run_once

from repro.harness import fig12_13_14_llc_sensitivity, reporting

SWEEP = (
    tuple(m << 20 for m in (1, 2, 4, 8))
    if os.environ.get("REPRO_SCALE") == "paper"
    else tuple(m << 20 for m in (1, 4))
)


def test_fig14_llc_hit_rate(benchmark, scale, bench_mixes):
    rows = run_once(
        benchmark, fig12_13_14_llc_sensitivity, bench_mixes, scale, llc_sweep=SWEEP
    )
    print("\nROP armed hit rate by LLC size:")
    print(reporting.render_llc_sensitivity(rows, "rop_armed_hit_rate"))
    # report-only at smoke scale; hit rates depend on how much traffic the
    # mixes push through the shared bus (the pressure guard may disarm)
    assert rows
