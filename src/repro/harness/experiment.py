"""Core experiment plumbing shared by all table/figure drivers.

An *experiment* is one co-simulation of a workload against a memory
configuration; :class:`RunScale` fixes its length and seed so every driver
(and every pytest-benchmark target) can be shrunk or grown uniformly via
the ``REPRO_SCALE`` environment variable:

* ``REPRO_SCALE=smoke`` — seconds-long runs for CI / unit use,
* ``REPRO_SCALE=default`` — minutes-long runs with stable statistics,
* ``REPRO_SCALE=paper`` — the scale used to produce EXPERIMENTS.md.

Alone-run IPCs (the denominator of weighted speedup) are pure functions
of (benchmark, LLC share, scale, memory configuration) and are served
through the runner's memo + artifact cache, keyed on a full config
fingerprint — two different ``SystemConfig``s never share an IPC.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..config import LlcConfig, RefreshMode, SystemConfig
from ..cpu import MulticoreResult
from ..energy import EnergyBreakdown, system_energy

__all__ = ["RunScale", "SystemRun", "run_benchmark", "alone_ipc", "scale_from_env"]

_SCALES = {
    # (instructions, ROP training refreshes): training shrinks with run
    # length so the paper's 50-refresh training (negligible over 1 B
    # instructions) stays proportionally negligible in shortened runs
    "smoke": (400_000, 5),
    "default": (3_000_000, 25),
    "paper": (8_000_000, 50),
}


@dataclass(frozen=True)
class RunScale:
    """Length, seed and training budget of one experiment run."""

    instructions: int = _SCALES["default"][0]
    seed: int = 1
    #: ROP training length the harness configures for this scale
    training_refreshes: int = _SCALES["default"][1]

    @classmethod
    def named(cls, name: str, seed: int = 1) -> "RunScale":
        """One of the predefined scales: smoke / default / paper."""
        try:
            instructions, training = _SCALES[name]
        except KeyError:
            raise KeyError(f"unknown scale {name!r}; known: {sorted(_SCALES)}") from None
        return cls(instructions=instructions, seed=seed, training_refreshes=training)


def scale_from_env(default: str = "default") -> RunScale:
    """Scale selected by the ``REPRO_SCALE`` environment variable."""
    return RunScale.named(os.environ.get("REPRO_SCALE", default))


@dataclass(frozen=True)
class SystemRun:
    """One benchmark × one memory system, with derived metrics."""

    benchmark: str
    system: str
    result: MulticoreResult
    energy: EnergyBreakdown

    @property
    def ipc(self) -> float:
        """IPC of core 0 (single-core experiments)."""
        return self.result.ipc

    @property
    def lock_hit_rate(self) -> float:
        """The Fig. 9 SRAM hit-rate metric."""
        return self.result.stats.lock_hit_rate

    @property
    def armed_hit_rate(self) -> float:
        """Hit rate over armed locks only (training excluded)."""
        if self.result.rop_summary is None:
            return 0.0
        return self.result.rop_summary["armed_hit_rate"]


def run_benchmark(
    name: str,
    config: SystemConfig,
    scale: RunScale,
    *,
    system: str = "",
    record_events: bool = False,
) -> SystemRun:
    """Run one benchmark profile on one memory configuration.

    Routed through the runner, so repeated identical runs (across
    drivers, processes or invocations) are served from the memo or the
    persistent artifact cache.
    """
    from .runner import RunSpec, execute_plan

    spec = RunSpec.benchmark(name, config, scale, record_events=record_events)
    result = execute_plan([spec], jobs=1)[spec]
    return SystemRun(
        benchmark=name,
        system=system or "custom",
        result=result,
        energy=system_energy(result.stats, config),
    )


def alone_ipc(name: str, llc: LlcConfig, scale: RunScale, config: SystemConfig) -> float:
    """IPC of a benchmark running alone (weighted-speedup denominator).

    Computed on the non-partitioned baseline memory with refresh on —
    the conventional choice for Eq. 4.  Cached through the runner under a
    *full* config fingerprint (refresh mode, timings, address mapping,
    scheduler — everything), so two different memory systems never
    silently share an alone IPC.
    """
    from .runner import RunSpec, execute_plan

    spec = RunSpec.alone(name, llc, scale, config)
    return execute_plan([spec], jobs=1)[spec].ipc


def no_refresh(config: SystemConfig) -> SystemConfig:
    """The idealized upper-bound memory for a configuration."""
    return config.with_refresh_mode(RefreshMode.NONE)
