"""Quarantine: keep the evidence when an artifact or an engine misbehaves.

Two kinds of material land under ``<cache-dir>/quarantine/``:

* **corrupt store entries** — a torn pickle in the artifact cache or a
  torn ``.npy``/meta file in the trace plane used to be unlinked after
  counting; now the bytes are *moved* here (renamed with a ``.quar``
  suffix so no store glob ever picks them back up), preserving the
  evidence for triage while the store still recovers by recomputing;
* **engine-fault bundles** — when a spec faults inside the epoch engine
  and the runner transparently re-runs it on the scalar engine (the
  degradation ladder, DESIGN.md §10), a JSON bundle records everything
  needed to reproduce the fault offline: the spec (both as canonical
  JSON and as a pickled round-trippable object), the seed, the
  exception with its traceback, and the scalar rerun's result digest.

Bundle schema (``engine-fault-<key>.json``)::

    {
      "schema": 1,
      "kind": "engine-fault",
      "key": ..., "label": ..., "engine": "epoch",
      "workloads": [...], "instructions": N, "seed": N,
      "config": {...canonical SystemConfig...},
      "trace_llc": {...canonical LlcConfig...},
      "exc_type": ..., "message": ..., "traceback": ...,
      "spec_pickle": "<hex>",            # pickle.loads(bytes.fromhex(...))
      "scalar_result_digest": "<sha256>" # added after the scalar rerun
    }

Everything here is best-effort: quarantine exists to aid debugging, so a
full disk or read-only cache dir silently degrades to the old behaviour
(drop / skip) rather than failing the run it is documenting.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import traceback as _traceback
from pathlib import Path
from typing import TYPE_CHECKING, Any

from .cache import _canonical, default_cache_dir

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runner import RunSpec

__all__ = [
    "QUARANTINE_SCHEMA",
    "quarantine_dir",
    "quarantine_file",
    "write_engine_fault_bundle",
    "attach_result_digest",
    "load_bundle",
    "bundle_spec",
    "list_bundles",
    "result_digest",
]

QUARANTINE_SCHEMA = 1


def quarantine_dir(root: str | Path | None = None) -> Path:
    """The quarantine directory under ``root`` (default: the cache dir)."""
    base = Path(root) if root is not None else default_cache_dir()
    return base / "quarantine"


def quarantine_file(path: Path, root: str | Path | None = None) -> Path | None:
    """Move a corrupt artifact into quarantine; returns its new path.

    The destination name gains a ``.quar`` suffix so the stores' entry
    globs (``*/*.pkl``, ``*/*.npy``, ``*/*.meta.json``) never match a
    quarantined file.  On any failure the original is unlinked instead
    (the pre-quarantine behaviour) and None is returned.
    """
    dest_dir = quarantine_dir(root)
    try:
        dest_dir.mkdir(parents=True, exist_ok=True)
        dest = dest_dir / (path.name + ".quar")
        if dest.exists():
            # a second corruption of the same entry: keep both
            dest = dest_dir / f"{path.name}.{os.getpid()}.quar"
        os.replace(path, dest)
        return dest
    except OSError:
        try:
            path.unlink()
        except OSError:
            pass
        return None


def result_digest(result: Any) -> str:
    """Stable digest of a pickled result (the bit-identity currency)."""
    return hashlib.sha256(
        pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    ).hexdigest()


def _write_json(path: Path, payload: dict) -> None:
    """Atomic JSON write (temp + replace), matching the stores' discipline."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_engine_fault_bundle(
    spec: "RunSpec", exc: BaseException, root: str | Path | None = None
) -> Path | None:
    """Persist an engine-fault bundle for ``spec``; returns its path.

    Written *before* the scalar rerun so the evidence survives even if
    the rerun also dies.  Returns None when the quarantine dir is
    unwritable — the fallback itself must still proceed.
    """
    bundle = {
        "schema": QUARANTINE_SCHEMA,
        "kind": "engine-fault",
        "key": spec.key,
        "label": spec.label,
        "engine": "epoch",
        "workloads": list(spec.workloads),
        "instructions": spec.instructions,
        "seed": spec.seed,
        "config": _canonical(spec.config),
        "trace_llc": _canonical(spec.trace_llc),
        "exc_type": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(_traceback.format_exception(exc)),
        "spec_pickle": pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL).hex(),
    }
    path = quarantine_dir(root) / f"engine-fault-{spec.key}.json"
    try:
        _write_json(path, bundle)
    except OSError:
        return None
    return path


def attach_result_digest(path: Path, result: Any) -> None:
    """Record the scalar rerun's digest in an existing bundle (best-effort)."""
    try:
        bundle = json.loads(path.read_text())
        bundle["scalar_result_digest"] = result_digest(result)
        _write_json(path, bundle)
    except (OSError, ValueError):
        pass


def load_bundle(path: str | Path) -> dict:
    """Parse a quarantine bundle; raises ValueError on schema mismatch."""
    bundle = json.loads(Path(path).read_text())
    if bundle.get("schema") != QUARANTINE_SCHEMA:
        raise ValueError(
            f"quarantine bundle schema {bundle.get('schema')} != {QUARANTINE_SCHEMA}"
        )
    return bundle


def bundle_spec(bundle: dict) -> "RunSpec":
    """Reconstruct the quarantined :class:`RunSpec` for an offline rerun."""
    return pickle.loads(bytes.fromhex(bundle["spec_pickle"]))


def list_bundles(root: str | Path | None = None) -> list[Path]:
    """Every engine-fault bundle under the quarantine dir, sorted by name."""
    qdir = quarantine_dir(root)
    if not qdir.is_dir():
        return []
    return sorted(qdir.glob("engine-fault-*.json"))
