"""Seeded, randomized chaos injection (``REPRO_CHAOS=<seed>:<rate>``).

:mod:`~repro.harness.faults` injects *named* faults into *named* specs —
perfect for unit tests, useless for answering "does the whole harness
survive a storm of everything at once?".  Chaos mode arms every fault
site with one env var::

    REPRO_CHAOS=<seed>:<rate>[:<site>,<site>,...]

e.g. ``REPRO_CHAOS=7:0.2`` fires every site on ~20% of spec keys, and
``REPRO_CHAOS=7:1.0:epoch-fault`` forces an epoch-engine fault on every
spec.  Sites:

* ``worker-crash`` — ``os._exit`` inside a pool worker (the
  ``BrokenProcessPool`` → rebuild → culprit-isolation path); a no-op
  in the parent process, which must survive to drain the plan;
* ``cache-write``  — ``OSError`` inside ``ArtifactCache.put`` (counted
  as a cache write error; the result survives in memory);
* ``torn-plane``   — truncates one trace-plane array right after its
  store commits (readers detect, quarantine, recompute);
* ``epoch-fault``  — raises :class:`EpochEngineFault` on the epoch
  engine's path in ``run_spec`` (the scalar-fallback ladder);
* ``slow-spec``    — a short sleep, exercising near-timeout skew.

Decisions are **deterministic**: a site fires for a spec key iff
``sha256(seed:site:key)`` maps below ``rate`` — the same seed and plan
always draw the same storm, so a red soak replays exactly.  Each
``(seed, site, key)`` point fires **at most once per cache dir**,
claimed via an ``O_CREAT|O_EXCL`` marker file under
``<cache-dir>/chaos/<seed>/`` that worker processes share; the claim is
what guarantees a crashed spec's retry succeeds instead of crashing
forever.  An unwritable marker dir disarms chaos (never fire what
cannot be claimed) — chaos therefore needs the cache dir enabled and
writable, which the soak harness arranges.

All sites are structurally *recoverable*: every one either falls inside
the runner's retry/fallback budget or degrades a store to recomputation,
so a chaos run must complete with zero failed specs and results
bit-identical to a fault-free run — the invariant the chaos soak
(``scripts/chaos_soak.py``, CI job ``chaos-soak``) enforces.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass
from pathlib import Path

from .cache import default_cache_dir

__all__ = [
    "CHAOS_SITES",
    "ChaosSpec",
    "EpochEngineFault",
    "chaos_enabled",
    "chaos_spec",
    "fired",
    "inject_worker_crash",
    "inject_slow_spec",
    "inject_epoch_fault",
    "inject_cache_write_error",
    "tear_plane_entry",
]

#: every site chaos mode can arm
CHAOS_SITES = (
    "worker-crash",
    "cache-write",
    "torn-plane",
    "epoch-fault",
    "slow-spec",
)

#: exit code a chaos-crashed worker dies with (distinct from faults.py's 13)
CRASH_EXIT_CODE = 66

#: ``slow-spec`` sleep; long enough to skew scheduling, short enough that
#: a storm of them cannot blow a CI job's budget
SLOW_SPEC_S = 0.4


class EpochEngineFault(RuntimeError):
    """Injected epoch-engine failure (exercises the scalar-fallback path)."""


@dataclass(frozen=True)
class ChaosSpec:
    """Parsed ``REPRO_CHAOS`` directive."""

    seed: int
    rate: float
    sites: frozenset[str]


def chaos_enabled() -> bool:
    """Whether chaos mode is armed (cheap guard for lazy imports)."""
    return bool(os.environ.get("REPRO_CHAOS", "").strip())


def chaos_spec() -> ChaosSpec | None:
    """Parse ``REPRO_CHAOS``; None when unset, ConfigError when malformed."""
    raw = os.environ.get("REPRO_CHAOS", "").strip()
    if not raw:
        return None
    from .runner import ConfigError  # deferred: runner imports this package

    parts = raw.split(":")
    if len(parts) not in (2, 3):
        raise ConfigError(
            f"REPRO_CHAOS must be <seed>:<rate>[:<site>,...], got {raw!r}"
        )
    try:
        seed = int(parts[0])
        rate = float(parts[1])
    except ValueError:
        raise ConfigError(
            f"REPRO_CHAOS must be <seed>:<rate>[:<site>,...], got {raw!r}"
        ) from None
    if not 0.0 <= rate <= 1.0:
        raise ConfigError(f"REPRO_CHAOS rate must be in [0, 1], got {rate}")
    sites = frozenset(s.strip() for s in parts[2].split(",") if s.strip()) \
        if len(parts) == 3 else frozenset(CHAOS_SITES)
    unknown = sites - set(CHAOS_SITES)
    if unknown:
        raise ConfigError(
            f"REPRO_CHAOS sites {sorted(unknown)} unknown; known: {CHAOS_SITES}"
        )
    return ChaosSpec(seed=seed, rate=rate, sites=sites)


def _fraction(seed: int, site: str, key: str) -> float:
    """Deterministic draw in [0, 1) for one (seed, site, key) point."""
    digest = hashlib.sha256(f"{seed}:{site}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def _marker_dir(seed: int) -> Path:
    return default_cache_dir() / "chaos" / str(seed)


def _claim(seed: int, site: str, key: str) -> bool:
    """Atomically claim one firing; False when already fired or unclaimable.

    The marker file is the cross-process once-only guarantee: the claim
    happens *before* the destructive act, so a worker that crashes right
    after claiming leaves the marker behind and the spec's retry runs
    clean.  An unclaimable dir (cache off, read-only) returns False —
    chaos never fires a fault it could fire again forever.
    """
    marker = _marker_dir(seed) / f"{site}--{key}"
    try:
        marker.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    except FileExistsError:
        return False
    except OSError:
        return False
    os.close(fd)
    return True


def _should_fire(site: str, key: str) -> bool:
    spec = chaos_spec()
    if spec is None or site not in spec.sites:
        return False
    if _fraction(spec.seed, site, key) >= spec.rate:
        return False
    return _claim(spec.seed, site, key)


def fired(seed: int | None = None) -> dict[str, int]:
    """Per-site count of firings claimed so far (soak reporting)."""
    if seed is None:
        spec = chaos_spec()
        if spec is None:
            return {}
        seed = spec.seed
    counts: dict[str, int] = {}
    mdir = _marker_dir(seed)
    if mdir.is_dir():
        for marker in mdir.iterdir():
            site = marker.name.split("--", 1)[0]
            counts[site] = counts.get(site, 0) + 1
    return counts


# ------------------------------------------------------------- fault sites


def inject_worker_crash(key: str) -> None:
    """Kill this process if it is a pool worker and the draw says so."""
    if multiprocessing.parent_process() is None:
        return  # never kill the parent: it must drain and persist
    if _should_fire("worker-crash", key):
        os._exit(CRASH_EXIT_CODE)


def inject_slow_spec(key: str) -> None:
    """Sleep briefly, skewing this spec toward any armed timeout."""
    if _should_fire("slow-spec", key):
        time.sleep(SLOW_SPEC_S)


def inject_epoch_fault(key: str) -> None:
    """Raise inside the epoch engine's path (scalar fallback must absorb)."""
    if _should_fire("epoch-fault", key):
        raise EpochEngineFault(f"chaos: injected epoch-engine fault for {key[:12]}")


def inject_cache_write_error(key: str) -> None:
    """Raise the OSError ``ArtifactCache.put`` counts as a write error."""
    if _should_fire("cache-write", key):
        raise OSError(f"chaos: injected cache write failure for {key[:12]}")


def tear_plane_entry(key: str, path: Path) -> bool:
    """Truncate one just-committed plane array; True when torn."""
    if not _should_fire("torn-plane", key):
        return False
    try:
        with open(path, "r+b") as fh:
            fh.truncate(16)
    except OSError:
        return False
    return True
