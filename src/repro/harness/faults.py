"""Failure injection ("failpoints") for exercising runner fault tolerance.

Point ``REPRO_FAULTS`` at a JSON file mapping a spec identity — either
the spec's content ``key`` or its workload label (``"lbm"``,
``"lbm+gobmk+milc+bzip2"``) — to a fault directive, and
:func:`~repro.harness.runner.run_spec` will trigger the fault at the top
of that simulation.  The environment variable is inherited by worker
processes, so injection works identically at any ``--jobs`` level and
under any multiprocessing start method.  With ``REPRO_FAULTS`` unset
this module is a single dictionary lookup per simulation.

Directives (``{"<identity>": {"mode": ..., ...}}``):

* ``{"mode": "error"}`` — raise ``RuntimeError`` (deterministic, never
  retried);
* ``{"mode": "transient"}`` — raise ``OSError`` (classified transient,
  retried with backoff);
* ``{"mode": "flaky", "fails": N}`` — transient ``OSError`` for the
  first N calls, success afterwards; the attempt counter lives in a
  sidecar file next to the JSON so it survives worker processes;
* ``{"mode": "crash"}`` — ``os._exit(13)``: kills the worker outright,
  breaking the process pool (the ``BrokenProcessPool`` path);
* ``{"mode": "hang", "seconds": S}`` — sleep S seconds (default 3600),
  the per-spec timeout path.

This is a test/ops facility: chaos-testing a deployment's retry and
timeout configuration uses the same directives as the unit tests.

The same file also arms **golden-model skews** for the validation
subsystem: a ``"golden:<check>"`` key (e.g. ``"golden:ddr-timing"``)
maps to a numeric skew that :mod:`repro.validation.golden` applies to
the *golden* side of the named check, deliberately breaking the model.
The differential gate must then report the disagreement — the
self-test behind ``repro validate``'s acceptance criterion.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .runner import RunSpec

__all__ = ["maybe_inject", "golden_skew"]


def golden_skew(check: str):
    """Armed skew for golden check ``check`` (None when not armed).

    Reads ``REPRO_FAULTS`` the same way :func:`maybe_inject` does but
    looks up the ``"golden:<check>"`` key. Unreadable or malformed
    fault files disarm quietly — validation must never fail because a
    chaos-test fixture vanished.
    """
    path = os.environ.get("REPRO_FAULTS")
    if not path:
        return None
    try:
        table = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    return table.get(f"golden:{check}")


def maybe_inject(spec: "RunSpec") -> None:
    """Trigger the configured fault for ``spec``, if any (else no-op)."""
    path = os.environ.get("REPRO_FAULTS")
    if not path:
        return
    table = json.loads(Path(path).read_text())
    directive = table.get(spec.key) or table.get("+".join(spec.workloads))
    if directive:
        _apply(directive, spec, Path(path))


def _apply(directive: dict, spec: "RunSpec", faults_path: Path) -> None:
    mode = directive.get("mode", "error")
    label = "+".join(spec.workloads)
    if mode == "error":
        raise RuntimeError(directive.get("message", f"injected fault for {label}"))
    if mode == "transient":
        raise OSError(directive.get("message", f"injected transient fault for {label}"))
    if mode == "flaky":
        fails = int(directive.get("fails", 1))
        counter = faults_path.parent / f"fault-{spec.key}.count"
        seen = int(counter.read_text()) if counter.exists() else 0
        counter.write_text(str(seen + 1))
        if seen < fails:
            raise OSError(f"injected flaky fault for {label} (call {seen + 1}/{fails})")
        return
    if mode == "crash":
        os._exit(int(directive.get("code", 13)))
    if mode == "hang":
        time.sleep(float(directive.get("seconds", 3600)))
        return
    raise ValueError(f"unknown fault mode {mode!r} in {faults_path}")
