"""Size-quota garbage collection for the shared artifact store.

A service that runs policy-matrix sweeps (DARP/SARP-sized grids, RAIDR
density sweeps) against one shared ``REPRO_CACHE_DIR`` grows it without
bound: every result pickle and every trace-plane artifact persists
forever.  This module makes the store reclaimable:

* ``REPRO_CACHE_QUOTA`` (or ``repro cache gc --quota``) bounds the
  store's total size — ``500M``, ``2G``, or plain bytes;
* eviction is **LRU by mtime**: both stores touch an entry's anchor
  file on every read hit, so recently-used artifacts survive;
* entries referenced by a live plan are **protected**: the runner's
  end-of-plan auto-GC passes the plan's result and trace keys, so a
  quota too small for the working set evicts cold history, never the
  results the caller is about to read;
* ``verify`` load-checks every entry through the stores' own read
  paths, so corruption is detected — and quarantined — before a sweep
  trips over it.

An *entry* is one result pickle (``<kk>/<key>.pkl``) or one trace-plane
artifact group (``trace-plane/<kk>/<key>.{gaps,lines,writes}.npy`` +
``.meta.json``), always evicted whole.  Lock files, temp files and the
quarantine/chaos administrative trees are never touched.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from pathlib import Path

from .cache import ArtifactCache, default_cache_dir
from .trace_plane import _ARRAYS, TracePlane

__all__ = [
    "CacheEntry",
    "GcResult",
    "parse_quota",
    "quota_from_env",
    "iter_entries",
    "usage",
    "collect",
    "verify",
]

_SHARD = re.compile(r"^[0-9a-f]{2}$")


@dataclass(frozen=True)
class CacheEntry:
    """One evictable unit: a result pickle or a trace artifact group."""

    key: str
    kind: str  #: ``result`` | ``trace``
    paths: tuple[Path, ...]
    bytes: int
    mtime: float


@dataclass
class GcResult:
    """Outcome of one :func:`collect` pass."""

    quota: int
    bytes_before: int
    bytes_after: int
    evicted: int = 0
    freed_bytes: int = 0
    kept: int = 0
    protected: int = 0
    dry_run: bool = False
    evicted_keys: list[str] = field(default_factory=list)


def parse_quota(raw: str | int) -> int:
    """``"500M"`` / ``"2G"`` / ``"1024K"`` / plain bytes → byte count."""
    if isinstance(raw, int):
        value = raw
    else:
        m = re.fullmatch(r"\s*(\d+(?:\.\d+)?)\s*([kKmMgGtT]?)[bB]?\s*", str(raw))
        if not m:
            from .runner import ConfigError

            raise ConfigError(
                f"cache quota must be bytes or <n>[K|M|G|T], got {raw!r}"
            )
        scale = {"": 1, "k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}
        value = int(float(m.group(1)) * scale[m.group(2).lower()])
    if value <= 0:
        from .runner import ConfigError

        raise ConfigError(f"cache quota must be positive, got {raw!r}")
    return value


def quota_from_env() -> int | None:
    """``REPRO_CACHE_QUOTA`` as bytes, or None when unset."""
    raw = os.environ.get("REPRO_CACHE_QUOTA", "").strip()
    return parse_quota(raw) if raw else None


def _shard_dirs(root: Path) -> list[Path]:
    if not root.is_dir():
        return []
    return [d for d in root.iterdir() if d.is_dir() and _SHARD.match(d.name)]


def iter_entries(root: str | Path | None = None) -> list[CacheEntry]:
    """Every entry under the cache dir, as whole evictable units."""
    root = Path(root) if root is not None else default_cache_dir()
    entries: list[CacheEntry] = []
    for shard in _shard_dirs(root):
        for pkl in shard.glob("*.pkl"):
            try:
                st = pkl.stat()
            except OSError:
                continue
            entries.append(
                CacheEntry(pkl.stem, "result", (pkl,), st.st_size, st.st_mtime)
            )
    plane_root = root / "trace-plane"
    for shard in _shard_dirs(plane_root):
        for meta in shard.glob("*.meta.json"):
            key = meta.name[: -len(".meta.json")]
            paths = [shard / f"{key}.{name}.npy" for name in _ARRAYS] + [meta]
            size = 0
            for p in paths:
                try:
                    size += p.stat().st_size
                except OSError:
                    pass
            try:
                mtime = meta.stat().st_mtime
            except OSError:
                continue
            entries.append(CacheEntry(key, "trace", tuple(paths), size, mtime))
    return entries


def _dir_usage(path: Path) -> tuple[int, int]:
    """(file count, total bytes) under ``path``, recursively."""
    files = total = 0
    if path.is_dir():
        for p in path.rglob("*"):
            if p.is_file():
                files += 1
                try:
                    total += p.stat().st_size
                except OSError:
                    pass
    return files, total


def usage(root: str | Path | None = None) -> dict:
    """Store statistics for ``repro cache stats``.

    Beyond live entries, the administrative trees are reported too:
    the ``quarantine/`` directory (corrupt entries + engine-fault
    bundles, as a count and byte total) and any ``chaos/<seed>/``
    marker directories left behind by :mod:`~repro.harness.chaos`
    soaks — both are invisible to the GC, so this is the only place a
    growing pile of triage material becomes visible.
    """
    root = Path(root) if root is not None else default_cache_dir()
    entries = iter_entries(root)
    by_kind: dict[str, dict] = {}
    for e in entries:
        agg = by_kind.setdefault(e.kind, {"entries": 0, "bytes": 0})
        agg["entries"] += 1
        agg["bytes"] += e.bytes
    quarantined, quarantine_bytes = _dir_usage(root / "quarantine")
    chaos_root = root / "chaos"
    chaos_seeds = (
        sorted(d.name for d in chaos_root.iterdir() if d.is_dir())
        if chaos_root.is_dir()
        else []
    )
    chaos_markers, chaos_bytes = _dir_usage(chaos_root)
    return {
        "root": str(root),
        "entries": len(entries),
        "bytes": sum(e.bytes for e in entries),
        "by_kind": by_kind,
        "quarantined": quarantined,
        "quarantine_bytes": quarantine_bytes,
        "chaos_seeds": chaos_seeds,
        "chaos_markers": chaos_markers,
        "chaos_bytes": chaos_bytes,
    }


def collect(
    quota: int,
    *,
    root: str | Path | None = None,
    protect: frozenset[str] | set[str] = frozenset(),
    dry_run: bool = False,
) -> GcResult:
    """Evict least-recently-used entries until the store fits ``quota``.

    ``protect`` holds keys a live plan still references (result keys and
    trace keys); protected entries are never evicted, even if the
    protected set alone exceeds the quota.
    """
    entries = sorted(iter_entries(root), key=lambda e: (e.mtime, e.key))
    total = sum(e.bytes for e in entries)
    res = GcResult(quota=quota, bytes_before=total, bytes_after=total, dry_run=dry_run)
    for entry in entries:
        if res.bytes_after <= quota:
            break
        if entry.key in protect:
            continue
        if not dry_run:
            for p in entry.paths:
                try:
                    p.unlink()
                except OSError:
                    pass
        res.evicted += 1
        res.freed_bytes += entry.bytes
        res.bytes_after -= entry.bytes
        res.evicted_keys.append(entry.key)
    res.kept = len(entries) - res.evicted
    res.protected = sum(
        1 for e in entries if e.key in protect and e.key not in res.evicted_keys
    )
    return res


def verify(root: str | Path | None = None) -> dict:
    """Load-check every entry through the stores' own read paths.

    Corrupt entries are moved to quarantine by the stores themselves
    (:meth:`ArtifactCache.get` / :meth:`TracePlane.load`), so a verify
    pass both *reports* and *heals* the store.
    """
    root = Path(root) if root is not None else default_cache_dir()
    cache = ArtifactCache(root)
    plane = TracePlane(root / "trace-plane")
    checked = corrupt = 0
    bad_keys: list[str] = []
    miss = object()
    for entry in iter_entries(root):
        checked += 1
        if entry.kind == "result":
            ok = cache.get(entry.key, miss) is not miss
        else:
            ok = plane.load(entry.key) is not None
        if not ok:
            corrupt += 1
            bad_keys.append(f"{entry.kind}:{entry.key}")
    return {"checked": checked, "corrupt": corrupt, "bad": bad_keys}
