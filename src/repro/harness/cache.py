"""Persistent, content-keyed artifact cache for experiment results.

Every simulation in this repository is a pure function of its
configuration: traces are seeded, the controller is deterministic, and a
``(workload, SystemConfig, RunScale)`` point always produces the same
:class:`~repro.cpu.MulticoreResult`.  That makes results *content
addressable* — the cache key is a fingerprint of everything the result
depends on, and a stored artifact never goes stale as long as the
fingerprint covers its inputs.

Two kinds of artifact are cached:

* **LLC-filtered memory traces** (``SpecProfile.memory_trace``) — keyed on
  the benchmark's phase-model parameters, run length, seed and LLC
  geometry;
* **simulation results** (the runner's ``RunSpec`` executions) — keyed on
  the workload set, full ``SystemConfig`` and run length/seed.

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache directory (default
  ``~/.cache/repro-artifacts``);
* ``REPRO_CACHE=off`` (or ``0``) — disable the disk cache entirely; the
  CLI's ``--no-cache`` flag does the same per invocation.

Entries are pickled with an atomic write (temp file + ``os.replace``) so
concurrent worker processes can populate the same cache safely, and a
per-key advisory lock (:mod:`~repro.harness.locks`) deduplicates
concurrent writers: the loser waits, sees the winner's entry, and skips
its own write.  A corrupted or truncated entry is treated as a miss,
moved to ``<cache-dir>/quarantine/`` for triage, and recomputed — never
a crash.  Read hits touch the entry's mtime, giving the size-quota
garbage collector (:mod:`~repro.harness.cache_gc`, ``REPRO_CACHE_QUOTA``)
an LRU signal.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
import warnings
from pathlib import Path
from typing import Any

__all__ = [
    "CACHE_SCHEMA",
    "fingerprint",
    "ArtifactCache",
    "NullCache",
    "get_cache",
    "cache_enabled",
    "set_cache_enabled",
    "default_cache_dir",
    "MISS",
]

#: Bump when simulator semantics change in a way fingerprints cannot see
#: (e.g. a scheduling-policy fix): invalidates every stored artifact.
CACHE_SCHEMA = 4  # v4: rop_summary carries frozen (B,A) category_counts

#: Sentinel distinguishing "cached None" from "not cached".
MISS = object()


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-stable structure for fingerprinting.

    Dataclasses flatten to ``{class, field: value, ...}`` dicts so adding
    a field (with a new value) changes the fingerprint, enums reduce to
    their qualified name, and containers recurse.  Python's salted
    ``hash()`` is never used — fingerprints must agree across processes.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: dict[str, Any] = {"__class__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = _canonical(getattr(obj, f.name))
        return out
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (bytes, bytearray)):
        return obj.hex()
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    raise TypeError(f"cannot fingerprint {type(obj).__name__}: {obj!r}")


def fingerprint(*parts: Any) -> str:
    """Stable hex digest of ``parts`` (configs, scales, scalars, tuples)."""
    blob = json.dumps(
        [CACHE_SCHEMA, [_canonical(p) for p in parts]],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:40]


class ArtifactCache:
    """A directory of pickled artifacts, addressed by fingerprint."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.quarantined = 0  #: corrupt entries moved to quarantine
        self.write_errors = 0
        self.bytes_written = 0  #: payload bytes persisted (size on disk)
        self.bytes_read = 0  #: payload bytes served from disk
        self._warned_unwritable = False

    @property
    def enabled(self) -> bool:
        return True

    def _path(self, key: str) -> Path:
        # two-level sharding keeps directory listings manageable
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str, default: Any = None) -> Any:
        """Load the artifact for ``key``, or ``default`` on any failure."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return default
        except Exception:
            # truncated write, foreign bytes, unpicklable class — recover
            # by quarantining the entry (the evidence survives for triage)
            # and recomputing.
            from .quarantine import quarantine_file

            self.corrupt += 1
            self.misses += 1
            if quarantine_file(path, self.root) is not None:
                self.quarantined += 1
            return default
        self.hits += 1
        try:
            self.bytes_read += path.stat().st_size
            os.utime(path)  # LRU signal for the size-quota GC
        except OSError:
            pass
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically (safe under contention).

        A per-key advisory lock deduplicates concurrent writers: the
        loser waits for the winner, sees the entry exists, and skips its
        own serialization+write.  The lock is best-effort — without it
        (non-POSIX, unwritable dir) both writers proceed, which the
        atomic replace still makes safe, just duplicated.
        """
        path = self._path(key)
        try:
            if "REPRO_CHAOS" in os.environ:  # deferred: chaos imports cache
                from .chaos import inject_cache_write_error

                inject_cache_write_error(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            from .locks import file_lock

            with file_lock(path.parent / f"{key}.lock"):
                if path.exists():
                    return  # a concurrent writer already persisted this key
                fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
                try:
                    with os.fdopen(fd, "wb") as fh:
                        pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                        self.bytes_written += fh.tell()
                    os.replace(tmp, path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
        except OSError as exc:
            # a read-only or full cache dir degrades to a no-op, not a
            # crash — but say so once, or every future run re-simulates
            # without the user ever learning why
            self.write_errors += 1
            # an injected chaos failure is not a broken cache dir — the
            # warning would be a false alarm in every soak log
            if not self._warned_unwritable and "REPRO_CHAOS" not in os.environ:
                self._warned_unwritable = True
                warnings.warn(
                    f"artifact cache at {self.root} is not writable "
                    f"({type(exc).__name__}: {exc}); results will not persist and "
                    f"future runs will re-simulate (set REPRO_CACHE_DIR to a "
                    f"writable directory, or REPRO_CACHE=off to silence this)",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        if self.root.is_dir():
            for p in self.root.glob("*/*.pkl"):
                try:
                    p.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


class NullCache:
    """Disabled cache: every get misses, every put is dropped."""

    root = None
    hits = 0
    misses = 0
    corrupt = 0
    quarantined = 0
    write_errors = 0
    bytes_written = 0
    bytes_read = 0

    @property
    def enabled(self) -> bool:
        return False

    def get(self, key: str, default: Any = None) -> Any:
        return default

    def put(self, key: str, value: Any) -> None:
        pass

    def clear(self) -> int:
        return 0


_NULL = NullCache()
_INSTANCES: dict[Path, ArtifactCache] = {}
#: process-wide override set by ``set_cache_enabled`` (None → env decides)
_ENABLED_OVERRIDE: bool | None = None


def default_cache_dir() -> Path:
    """Cache directory honoring ``REPRO_CACHE_DIR``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-artifacts"


def cache_enabled() -> bool:
    """Whether the disk cache is active (override, else env, else on)."""
    if _ENABLED_OVERRIDE is not None:
        return _ENABLED_OVERRIDE
    return os.environ.get("REPRO_CACHE", "on").lower() not in ("0", "off", "false", "no")


def set_cache_enabled(enabled: bool | None) -> None:
    """Force the cache on/off for this process (``None`` restores env control)."""
    global _ENABLED_OVERRIDE
    _ENABLED_OVERRIDE = enabled


def get_cache() -> ArtifactCache | NullCache:
    """The artifact cache for the current environment (re-read per call,
    so tests and the CLI can repoint ``REPRO_CACHE_DIR`` at any time)."""
    if not cache_enabled():
        return _NULL
    root = default_cache_dir()
    inst = _INSTANCES.get(root)
    if inst is None:
        inst = _INSTANCES[root] = ArtifactCache(root)
    return inst
