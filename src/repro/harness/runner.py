"""Parallel experiment execution: declare a grid, run it on all cores.

The paper's figures and tables are embarrassingly parallel grids of
independent, deterministic simulations (12 benchmarks × 6 systems for
Figs. 7–9; 6 mixes × 4 LLC sizes × 3 systems for Figs. 12–14).  Instead
of looping, a driver *declares* its grid as :class:`RunSpec` points on a
:class:`RunPlan` and executes the plan once:

* identical specs are **deduplicated** — Fig. 1 and Fig. 7 both need the
  same baseline and no-refresh runs, which used to simulate twice;
* results are served from a process-local memo, then the persistent
  content-keyed :mod:`~repro.harness.cache`, and only then simulated;
* cache misses fan out over a ``ProcessPoolExecutor`` (``REPRO_JOBS``
  env var or the ``jobs=`` argument; ``jobs=1`` runs in-process,
  preserving the sequential behaviour bit for bit — determinism is
  seeded, so parallel and sequential execution produce identical
  results).

Every execution updates :func:`last_stats` (wall clock, dedup and
cache-hit counters) which the CLI prints after each figure.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable

from ..config import LlcConfig, SystemConfig
from ..cpu import MulticoreResult, run_cores
from ..workloads import mix_profiles, profile
from .cache import MISS, fingerprint, get_cache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .experiment import RunScale

__all__ = [
    "RunSpec",
    "RunPlan",
    "PlanResults",
    "RunnerStats",
    "execute_plan",
    "run_spec",
    "resolve_jobs",
    "core_llc_share",
    "last_stats",
    "session_stats",
    "clear_result_memo",
]


def core_llc_share(llc_bytes: int, cores: int = 4) -> LlcConfig:
    """Per-core slice of the statically partitioned shared LLC."""
    return LlcConfig(size_bytes=max(64 * 1024, llc_bytes // cores))


@dataclass(frozen=True)
class RunSpec:
    """One deterministic co-simulation point.

    Identity (and therefore the cache key) covers everything the result
    depends on: the per-core workload names, the full ``SystemConfig``,
    the LLC geometry the traces are filtered through, and the run
    length/seed.  Presentation details (system labels, normalization)
    live in the drivers, so the same spec declared by two figures is one
    simulation.
    """

    workloads: tuple[str, ...]
    config: SystemConfig
    #: per-core LLC slice the traces are filtered through (equals
    #: ``config.llc`` for single-core runs, a quarter slice for mixes)
    trace_llc: LlcConfig
    instructions: int
    seed: int
    record_events: bool = False

    @property
    def key(self) -> str:
        """Content fingerprint — the artifact-cache address."""
        return fingerprint(
            "run",
            list(self.workloads),
            self.config,
            self.trace_llc,
            self.instructions,
            self.seed,
            self.record_events,
        )

    # -- constructors matching the paper's experiment shapes ---------------

    @classmethod
    def benchmark(
        cls,
        name: str,
        config: SystemConfig,
        scale: "RunScale",
        *,
        record_events: bool = False,
    ) -> "RunSpec":
        """Single benchmark on a single-core system."""
        return cls(
            workloads=(name,),
            config=config,
            trace_llc=config.llc,
            instructions=scale.instructions,
            seed=scale.seed,
            record_events=record_events,
        )

    @classmethod
    def mix(
        cls,
        mix: str,
        config: SystemConfig,
        scale: "RunScale",
        *,
        llc_bytes: int | None = None,
    ) -> "RunSpec":
        """Four-benchmark workload mix on a multi-core system."""
        names = tuple(p.name for p in mix_profiles(mix))
        share = core_llc_share(llc_bytes if llc_bytes is not None else config.llc.size_bytes)
        return cls(
            workloads=names,
            config=config,
            trace_llc=share,
            instructions=scale.instructions,
            seed=scale.seed,
        )

    @classmethod
    def alone(
        cls, name: str, llc: LlcConfig, scale: "RunScale", config: SystemConfig
    ) -> "RunSpec":
        """Alone run (weighted-speedup denominator): ROP off, same memory."""
        base = replace(config, rop=replace(config.rop, enabled=False))
        return cls(
            workloads=(name,),
            config=base,
            trace_llc=llc,
            instructions=scale.instructions,
            seed=scale.seed,
        )


def run_spec(spec: RunSpec) -> MulticoreResult:
    """Execute one spec (pure function; also the worker-process entry)."""
    traces = [
        profile(name).memory_trace(spec.instructions, spec.trace_llc, seed=spec.seed)
        for name in spec.workloads
    ]
    return run_cores(traces, spec.config, record_events=spec.record_events)


@dataclass
class RunnerStats:
    """Counters for one ``execute_plan`` call (or a session aggregate)."""

    requested: int = 0  #: specs declared (before dedup)
    unique: int = 0  #: distinct simulations after dedup
    memo_hits: int = 0  #: served from the in-process memo
    cache_hits: int = 0  #: served from the persistent artifact cache
    executed: int = 0  #: actually simulated
    jobs: int = 1  #: worker processes used
    wall_s: float = 0.0  #: wall-clock seconds for the whole plan

    @property
    def hits(self) -> int:
        """Total results served without simulating."""
        return self.memo_hits + self.cache_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of unique specs served from a cache layer."""
        return self.hits / self.unique if self.unique else 0.0

    def absorb(self, other: "RunnerStats") -> None:
        """Accumulate ``other`` into this aggregate."""
        self.requested += other.requested
        self.unique += other.unique
        self.memo_hits += other.memo_hits
        self.cache_hits += other.cache_hits
        self.executed += other.executed
        self.jobs = max(self.jobs, other.jobs)
        self.wall_s += other.wall_s


#: in-process L1 over the disk cache: spec key → result
_RESULT_MEMO: dict[str, MulticoreResult] = {}
_LAST_STATS = RunnerStats()
_SESSION_STATS = RunnerStats()


def clear_result_memo() -> None:
    """Drop the in-process result memo (tests and equivalence checks)."""
    _RESULT_MEMO.clear()


def last_stats() -> RunnerStats:
    """Counters of the most recent ``execute_plan`` call."""
    return _LAST_STATS


def session_stats() -> RunnerStats:
    """Counters accumulated over the whole process."""
    return _SESSION_STATS


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit argument, else ``REPRO_JOBS``, else 1.

    ``REPRO_JOBS=0`` (or ``auto``) means one worker per CPU.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "1").strip().lower()
        try:
            jobs = 0 if raw == "auto" else int(raw or 1)
        except ValueError:
            raise SystemExit(
                f"REPRO_JOBS must be an integer or 'auto', got {raw!r}"
            ) from None
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


class PlanResults:
    """Results of an executed plan, indexed by :class:`RunSpec`."""

    def __init__(self, by_key: dict[str, MulticoreResult], stats: RunnerStats) -> None:
        self._by_key = by_key
        self.stats = stats

    def __getitem__(self, spec: RunSpec) -> MulticoreResult:
        return self._by_key[spec.key]

    def __len__(self) -> int:
        return len(self._by_key)


def execute_plan(
    specs: "Iterable[RunSpec] | RunPlan",
    *,
    jobs: int | None = None,
    cache=None,
) -> PlanResults:
    """Run every spec (deduplicated, cached, parallel) and map results.

    ``jobs=1`` executes in-process in declaration order — exactly the
    legacy sequential path.  ``jobs>1`` fans cache misses out over a
    process pool; results are identical because every simulation is a
    pure function of its spec.
    """
    global _LAST_STATS
    t0 = time.perf_counter()
    spec_list = list(specs.specs if isinstance(specs, RunPlan) else specs)
    jobs = resolve_jobs(jobs)
    cache = get_cache() if cache is None else cache

    unique: dict[str, RunSpec] = {}
    for spec in spec_list:
        unique.setdefault(spec.key, spec)

    stats = RunnerStats(requested=len(spec_list), unique=len(unique), jobs=jobs)
    results: dict[str, MulticoreResult] = {}
    todo: list[tuple[str, RunSpec]] = []
    for key, spec in unique.items():
        memoized = _RESULT_MEMO.get(key)
        if memoized is not None:
            results[key] = memoized
            stats.memo_hits += 1
            continue
        cached = cache.get(key, MISS)
        if cached is not MISS:
            results[key] = cached
            _RESULT_MEMO[key] = cached
            stats.cache_hits += 1
            continue
        todo.append((key, spec))

    if todo:
        stats.executed = len(todo)
        if jobs > 1 and len(todo) > 1:
            with ProcessPoolExecutor(max_workers=min(jobs, len(todo))) as pool:
                computed = list(pool.map(run_spec, [s for _, s in todo]))
        else:
            computed = [run_spec(s) for _, s in todo]
        for (key, spec), result in zip(todo, computed):
            results[key] = result
            _RESULT_MEMO[key] = result
            cache.put(key, result)

    stats.wall_s = time.perf_counter() - t0
    _LAST_STATS = stats
    _SESSION_STATS.absorb(stats)
    return PlanResults(results, stats)


class RunPlan:
    """A declared grid of runs; drivers build one and execute it once."""

    def __init__(self) -> None:
        self.specs: list[RunSpec] = []

    def add(self, spec: RunSpec) -> RunSpec:
        """Declare one spec; returns it as the result-lookup handle."""
        self.specs.append(spec)
        return spec

    # -- declaration sugar mirroring RunSpec constructors -------------------

    def benchmark(self, name, config, scale, *, record_events=False) -> RunSpec:
        return self.add(
            RunSpec.benchmark(name, config, scale, record_events=record_events)
        )

    def mix(self, mix, config, scale, *, llc_bytes=None) -> RunSpec:
        return self.add(RunSpec.mix(mix, config, scale, llc_bytes=llc_bytes))

    def alone(self, name, llc, scale, config) -> RunSpec:
        return self.add(RunSpec.alone(name, llc, scale, config))

    def __len__(self) -> int:
        return len(self.specs)

    def execute(self, *, jobs: int | None = None, cache=None) -> PlanResults:
        """Execute the declared grid (dedup → cache → parallel fan-out)."""
        return execute_plan(self, jobs=jobs, cache=cache)
