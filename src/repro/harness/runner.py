"""Parallel experiment execution: declare a grid, run it on all cores.

The paper's figures and tables are embarrassingly parallel grids of
independent, deterministic simulations (12 benchmarks × 6 systems for
Figs. 7–9; 6 mixes × 4 LLC sizes × 3 systems for Figs. 12–14).  Instead
of looping, a driver *declares* its grid as :class:`RunSpec` points on a
:class:`RunPlan` and executes the plan once:

* identical specs are **deduplicated** — Fig. 1 and Fig. 7 both need the
  same baseline and no-refresh runs, which used to simulate twice;
* results are served from a process-local memo, then the persistent
  content-keyed :mod:`~repro.harness.cache`, and only then simulated;
* cache misses fan out over a ``ProcessPoolExecutor`` (``REPRO_JOBS``
  env var or the ``jobs=`` argument; ``jobs=1`` runs in-process,
  preserving the sequential behaviour bit for bit — determinism is
  seeded, so parallel and sequential execution produce identical
  results);
* before fanning out, the parent **prewarms the trace plane**
  (:mod:`~repro.harness.trace_plane`): every unique memory trace is
  materialized once as ``.npy`` artifacts that workers memory-map
  instead of regenerating per process;
* specs are dispatched in **chunks** of K per future (auto-sized from
  plan size and worker count, or pinned via
  ``ExecutionPolicy.chunk_size`` / ``REPRO_CHUNK``), amortizing
  submission and result-pipe overhead on large plans.

Execution is **fault tolerant**: outcomes are tracked per *spec*, never
per chunk, so one worker crash, hang or pathological config loses only
the culprit spec.  The behaviour is governed by
:class:`ExecutionPolicy`:

* failures are classified (:class:`SpecFailure` — ``transient``,
  ``worker-lost``, ``timeout``, ``invariant``, ``error``) *inside the
  worker*, so a deterministic error in one spec never poisons its
  chunk-mates; transient failures are retried with exponential backoff
  up to ``max_attempts``, resubmitting only the failed spec;
* a broken process pool is rebuilt (suspect specs are re-run one at a
  time to isolate the culprit) and, past ``max_pool_rebuilds``,
  execution degrades to in-process;
* ``spec_timeout_s`` bounds each spec's wall clock — a hung worker is
  killed, reported as a ``timeout`` failure, and innocent in-flight
  specs are resubmitted without penalty;
* completed results are flushed to the artifact cache *as they finish*,
  so a killed or crashed sweep resumes by simply re-running the same
  plan: only failed/missing specs simulate again;
* ``keep_going`` returns partial :class:`PlanResults` with a
  ``failures`` report instead of raising :class:`PlanExecutionError`
  on the first final failure;
* ``SIGINT``/``SIGTERM`` drain in-flight work, persist what completed
  and print a resume hint before re-raising ``KeyboardInterrupt``.

Every execution updates :func:`last_stats` (wall clock, dedup, cache-hit
and failure counters) and :func:`last_failures`, which the CLI prints
after each figure.
"""

from __future__ import annotations

import os
import pickle
import signal
import sys
import threading
import time
import traceback as _traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable

from ..config import LlcConfig, SystemConfig
from ..cpu import MulticoreResult, run_cores
from ..stats.invariants import InvariantViolation
from ..workloads import mix_profiles, profile
from .cache import MISS, fingerprint, get_cache
from .faults import maybe_inject

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .experiment import RunScale

__all__ = [
    "ConfigError",
    "EngineFallback",
    "ExecutionPolicy",
    "PlanExecutionError",
    "RunSpec",
    "RunPlan",
    "PlanResults",
    "RunnerStats",
    "SpecFailure",
    "cached_result",
    "classify_failure",
    "current_policy",
    "execute_plan",
    "run_spec",
    "spec_fingerprint",
    "validation_enabled",
    "resolve_jobs",
    "core_llc_share",
    "last_stats",
    "last_failures",
    "last_fallbacks",
    "session_stats",
    "set_execution_policy",
    "clear_result_memo",
]


class ConfigError(ValueError):
    """A runner knob (CLI flag or ``REPRO_*`` env var) is malformed.

    Raised from library code; only the CLI boundary translates it into
    an exit message.
    """


def core_llc_share(llc_bytes: int, cores: int = 4) -> LlcConfig:
    """Per-core slice of the statically partitioned shared LLC."""
    return LlcConfig(size_bytes=max(64 * 1024, llc_bytes // cores))


@dataclass(frozen=True)
class RunSpec:
    """One deterministic co-simulation point.

    Identity (and therefore the cache key) covers everything the result
    depends on: the per-core workload names, the full ``SystemConfig``,
    the LLC geometry the traces are filtered through, and the run
    length/seed.  Presentation details (system labels, normalization)
    live in the drivers, so the same spec declared by two figures is one
    simulation.  ``audit``, ``telemetry`` and ``validate`` are *excluded*
    from the key: invariant checks and golden models validate a result
    without changing it, and the trace sink observes a run without
    changing it.
    """

    workloads: tuple[str, ...]
    config: SystemConfig
    #: per-core LLC slice the traces are filtered through (equals
    #: ``config.llc`` for single-core runs, a quarter slice for mixes)
    trace_llc: LlcConfig
    instructions: int
    seed: int
    record_events: bool = False
    #: run the invariant audit (:func:`repro.stats.invariants.check_run`)
    #: on the finished simulation before the result enters the cache
    audit: bool = False
    #: attach a cycle-level trace sink and export a Perfetto trace file
    #: (also forced by ``REPRO_TELEMETRY=1``); never changes the result
    telemetry: bool = False
    #: run the differential golden-model checks
    #: (:mod:`repro.validation`) over the finished simulation, raising
    #: :class:`~repro.validation.GoldenMismatchError` on disagreement
    #: (also forced by ``REPRO_VALIDATE=1``); never changes the result
    validate: bool = False

    @property
    def key(self) -> str:
        """Content fingerprint — the artifact-cache address."""
        return fingerprint(
            "run",
            list(self.workloads),
            self.config,
            self.trace_llc,
            self.instructions,
            self.seed,
            self.record_events,
        )

    @property
    def label(self) -> str:
        """Human-readable identity for failure reports."""
        return "+".join(self.workloads)

    # -- constructors matching the paper's experiment shapes ---------------

    @classmethod
    def benchmark(
        cls,
        name: str,
        config: SystemConfig,
        scale: "RunScale",
        *,
        record_events: bool = False,
    ) -> "RunSpec":
        """Single benchmark on a single-core system."""
        return cls(
            workloads=(name,),
            config=config,
            trace_llc=config.llc,
            instructions=scale.instructions,
            seed=scale.seed,
            record_events=record_events,
        )

    @classmethod
    def mix(
        cls,
        mix: str,
        config: SystemConfig,
        scale: "RunScale",
        *,
        llc_bytes: int | None = None,
    ) -> "RunSpec":
        """Four-benchmark workload mix on a multi-core system."""
        names = tuple(p.name for p in mix_profiles(mix))
        share = core_llc_share(llc_bytes if llc_bytes is not None else config.llc.size_bytes)
        return cls(
            workloads=names,
            config=config,
            trace_llc=share,
            instructions=scale.instructions,
            seed=scale.seed,
        )

    @classmethod
    def alone(
        cls, name: str, llc: LlcConfig, scale: "RunScale", config: SystemConfig
    ) -> "RunSpec":
        """Alone run (weighted-speedup denominator): ROP off, same memory."""
        base = replace(config, rop=replace(config.rop, enabled=False))
        return cls(
            workloads=(name,),
            config=base,
            trace_llc=llc,
            instructions=scale.instructions,
            seed=scale.seed,
        )


def spec_fingerprint(spec: RunSpec) -> str:
    """Stable public content fingerprint of ``spec`` — its cache address.

    This is the promoted, supported form of the internal cache-key
    computation (``RunSpec.key``): a 40-hex-char sha256 prefix over the
    canonicalized workload set, full :class:`~repro.config.SystemConfig`,
    trace-LLC geometry, run length, seed and ``record_events`` flag, all
    under the current ``CACHE_SCHEMA``.  Two processes (or two hosts)
    always agree on it, which is what lets the service plane
    (:mod:`repro.service`) use fingerprints as public result addresses
    and ETags.  Observation-only fields (``audit``, ``telemetry``,
    ``validate``) are excluded — they never change the result.
    """
    return spec.key


def cached_result(key: str) -> MulticoreResult | None:
    """The stored result for a spec fingerprint, or None when absent.

    Read-through order matches :func:`execute_plan`: the in-process memo
    first, then the persistent artifact cache (a disk hit is promoted
    into the memo).  Never simulates — this is the service plane's
    cheap ``GET`` path.
    """
    memoized = _RESULT_MEMO.get(key)
    if memoized is not None:
        return memoized
    cached = get_cache().get(key, MISS)
    if cached is MISS:
        return None
    _RESULT_MEMO[key] = cached
    return cached


def telemetry_enabled(spec: RunSpec | None = None) -> bool:
    """Whether a run should attach a trace sink (spec flag or env)."""
    return (spec is not None and spec.telemetry) or _env_flag("REPRO_TELEMETRY")


def validation_enabled(spec: RunSpec | None = None) -> bool:
    """Whether a run should attach the golden-model validation checks."""
    return (spec is not None and spec.validate) or _env_flag("REPRO_VALIDATE")


def trace_dir() -> "Path":
    """Directory worker trace files land in.

    ``REPRO_TRACE_DIR`` wins (the CLI sets it so spawned workers agree);
    the default is a ``traces/`` sibling inside the artifact-cache dir.
    """
    from pathlib import Path

    env = os.environ.get("REPRO_TRACE_DIR", "").strip()
    if env:
        return Path(env)
    from .cache import default_cache_dir

    return default_cache_dir() / "traces"


def _export_worker_trace(spec: RunSpec, sink) -> "Path | None":
    """Write this worker's Perfetto trace; failures never fail the run."""
    from ..telemetry import write_chrome_trace

    tck_ns = spec.config.effective_timings().tck_ns
    path = trace_dir() / f"{spec.label}-{spec.key[:12]}.trace.json"
    try:
        return write_chrome_trace(sink, tck_ns, path, label=spec.label)
    except OSError:
        return None


@dataclass(frozen=True)
class EngineFallback:
    """One spec's epoch→scalar engine fallback (threaded per spec).

    Replaces the old module-global ``kernel.last_fallback()``: reasons
    are carried per spec through the chunk result records, so one
    chunk-mate's fallback can never masquerade as another's.
    """

    key: str
    workloads: tuple[str, ...]
    #: ``declined`` (unsupported topology — routine, not counted) or
    #: ``fault`` (the epoch engine raised; quarantined + scalar re-run)
    kind: str
    reason: str
    exc_type: str = ""
    #: quarantine bundle path (``fault`` only; empty if unwritable)
    quarantine: str = ""

    @property
    def label(self) -> str:
        return "+".join(self.workloads)


def run_spec(
    spec: RunSpec,
    audit: bool = False,
    fallbacks: "list[EngineFallback] | None" = None,
) -> MulticoreResult:
    """Execute one spec (pure function; also the worker-process entry).

    ``audit`` (or ``spec.audit``, or ``REPRO_AUDIT=1``) runs the
    invariant checker on the finished simulation so a violated physical
    constraint surfaces as an ``invariant`` failure instead of a silently
    wrong artifact in the cache.

    With telemetry enabled (``spec.telemetry`` or ``REPRO_TELEMETRY=1``)
    a :class:`~repro.telemetry.TraceSink` rides along and the worker
    exports a Perfetto trace file under :func:`trace_dir`; the returned
    result is bit-identical either way.

    With validation enabled (``spec.validate`` or ``REPRO_VALIDATE=1``)
    the differential golden models of :mod:`repro.validation` observe
    the run and any disagreement raises
    :class:`~repro.validation.GoldenMismatchError` (classified
    ``invariant``) instead of returning — and caching — a result the
    analytical models contradict.

    Under the epoch engine this function is the **degradation ladder**
    (DESIGN.md §10): a topology the kernel declines runs scalar inside
    ``run_cores`` and is recorded as a ``declined`` fallback; an
    exception on the epoch path (engine fault, invariant violation,
    golden mismatch) writes a quarantine bundle and transparently
    re-runs the spec on the scalar engine, recorded as a ``fault``
    fallback.  ``fallbacks``, when a list is passed, collects those
    :class:`EngineFallback` records.
    """
    maybe_inject(spec)
    chaos = "REPRO_CHAOS" in os.environ
    if chaos:
        from .chaos import inject_slow_spec, inject_worker_crash

        inject_worker_crash(spec.key)
        inject_slow_spec(spec.key)
    from ..kernel import resolve_engine

    engine = resolve_engine()
    traces = [
        profile(name).memory_trace(spec.instructions, spec.trace_llc, seed=spec.seed)
        for name in spec.workloads
    ]
    do_audit = audit or spec.audit or _env_flag("REPRO_AUDIT")

    def _simulate(eng: str) -> tuple[MulticoreResult, list[str]]:
        sink = None
        session = None
        if validation_enabled(spec):
            # imported lazily: validation pulls in harness.faults, and the
            # harness package imports this module at load time
            from ..validation import GoldenMismatchError, ValidationSession

            session = ValidationSession(spec.config)
            sink = session.sink
        elif telemetry_enabled(spec):
            from ..telemetry import TraceSink

            sink = TraceSink()
        declined: list[str] = []
        result = run_cores(
            traces,
            spec.config,
            record_events=spec.record_events,
            audit=do_audit,
            sink=sink,
            instrument=session.instrument if session is not None else None,
            engine=eng,
            fallback_reasons=declined,
        )
        if session is not None:
            mismatches = session.finish(result)
            if mismatches:
                raise GoldenMismatchError(mismatches)
        if sink is not None and telemetry_enabled(spec):
            _export_worker_trace(spec, sink)
        return result, declined

    if engine != "epoch":
        return _simulate(engine)[0]
    try:
        if chaos:
            from .chaos import inject_epoch_fault

            inject_epoch_fault(spec.key)
        result, declined = _simulate("epoch")
    except Exception as exc:
        # the degradation ladder: quarantine the evidence, then re-run on
        # the reference scalar engine.  A fault the scalar engine shares
        # (a genuine model bug) re-raises from the rerun and fails the
        # spec with its usual classification.
        from .quarantine import attach_result_digest, write_engine_fault_bundle

        bundle = write_engine_fault_bundle(spec, exc)
        result = _simulate("scalar")[0]
        if bundle is not None:
            attach_result_digest(bundle, result)
        if fallbacks is not None:
            fallbacks.append(
                EngineFallback(
                    key=spec.key,
                    workloads=spec.workloads,
                    kind="fault",
                    reason=f"{type(exc).__name__}: {exc}",
                    exc_type=type(exc).__name__,
                    quarantine=str(bundle) if bundle is not None else "",
                )
            )
    else:
        if declined and fallbacks is not None:
            fallbacks.append(
                EngineFallback(
                    key=spec.key,
                    workloads=spec.workloads,
                    kind="declined",
                    reason=declined[0],
                )
            )
    return result


def _run_chunk(specs: list[RunSpec], audit: bool) -> list[tuple]:
    """Worker entry for a batch of specs: per-spec outcome records.

    Failures are captured and classified *here*, in the worker, so a
    deterministic error in one spec is attributed to that spec alone and
    never costs its chunk-mates their results.  Each record is either
    ``(key, "ok", result, fallbacks)`` — ``fallbacks`` a tuple of this
    spec's :class:`EngineFallback` records — or ``(key, "err", kind,
    exc_type, message, traceback)`` — exception *strings*, not exception
    objects, so a result pipe can never fail on an unpicklable
    exception.  A worker that dies outright (crash, OOM kill) returns
    nothing; the parent sees ``BrokenExecutor`` and falls back to serial
    culprit isolation.
    """
    records: list[tuple] = []
    for spec in specs:
        fallbacks: list[EngineFallback] = []
        try:
            result = run_spec(spec, audit=audit, fallbacks=fallbacks)
        except Exception as exc:
            records.append(
                (
                    spec.key,
                    "err",
                    classify_failure(exc),
                    type(exc).__name__,
                    str(exc),
                    "".join(_traceback.format_exception(exc)),
                )
            )
        else:
            records.append((spec.key, "ok", result, tuple(fallbacks)))
    return records


def _auto_chunk_size(n_specs: int, jobs: int) -> int:
    """Specs per dispatch when the policy doesn't pin one.

    Targets ~4 dispatch waves per worker: enough batching to amortize
    pickle/submit overhead on big plans, enough granularity that one
    slow chunk can't serialize the tail.  Small plans (≤ one spec per
    worker) stay unbatched.
    """
    if jobs <= 1 or n_specs <= jobs:
        return 1
    return max(1, min(8, n_specs // (jobs * 4)))


# --------------------------------------------------------------- policy


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "on", "true", "yes")


def _env_float(name: str, default: float | None) -> float | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(f"{name} must be a number of seconds, got {raw!r}") from None
    return value if value > 0 else None


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        raise ConfigError(f"{name} must be an integer, got {raw!r}") from None


def _env_opt_int(name: str, default: int | None) -> int | None:
    raw = os.environ.get(name, "").strip()
    if not raw or raw.lower() == "auto":
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        raise ConfigError(f"{name} must be an integer or 'auto', got {raw!r}") from None


@dataclass(frozen=True)
class ExecutionPolicy:
    """Fault-tolerance knobs for one :func:`execute_plan` call.

    Resolved, in order, from: the explicit ``policy=`` argument, the
    process-wide override installed by :func:`set_execution_policy`
    (the CLI boundary), and the ``REPRO_*`` environment variables.
    """

    #: total executions allowed per spec (first try + transient retries)
    max_attempts: int = 3
    #: base of the exponential backoff between retries, in seconds
    backoff_s: float = 0.25
    #: per-spec wall-clock limit; ``None`` disables (no effect at jobs=1,
    #: where a spec cannot be preempted)
    spec_timeout_s: float | None = None
    #: collect failures and return partial results instead of raising
    keep_going: bool = False
    #: broken-pool rebuilds tolerated before degrading to in-process
    max_pool_rebuilds: int = 5
    #: invariant-audit every simulated result before it enters the cache
    audit: bool = False
    #: specs batched per worker dispatch (``None`` = auto-size from plan
    #: size and worker count; forced to 1 while ``spec_timeout_s`` is set,
    #: so the deadline still attributes to exactly one spec)
    chunk_size: int | None = None

    @classmethod
    def from_env(cls) -> "ExecutionPolicy":
        """Policy from ``REPRO_RETRIES`` / ``REPRO_RETRY_BACKOFF`` /
        ``REPRO_SPEC_TIMEOUT`` / ``REPRO_KEEP_GOING`` / ``REPRO_AUDIT`` /
        ``REPRO_CHUNK``."""
        backoff = _env_float("REPRO_RETRY_BACKOFF", cls.backoff_s)
        return cls(
            max_attempts=_env_int("REPRO_RETRIES", cls.max_attempts),
            backoff_s=backoff if backoff is not None else 0.0,
            spec_timeout_s=_env_float("REPRO_SPEC_TIMEOUT", None),
            keep_going=_env_flag("REPRO_KEEP_GOING"),
            audit=_env_flag("REPRO_AUDIT"),
            chunk_size=_env_opt_int("REPRO_CHUNK", None),
        )


_POLICY_OVERRIDE: ExecutionPolicy | None = None


def set_execution_policy(policy: ExecutionPolicy | None) -> None:
    """Install a process-wide policy (``None`` restores env control)."""
    global _POLICY_OVERRIDE
    _POLICY_OVERRIDE = policy


def current_policy() -> ExecutionPolicy:
    """The policy :func:`execute_plan` uses when none is passed."""
    return _POLICY_OVERRIDE if _POLICY_OVERRIDE is not None else ExecutionPolicy.from_env()


# --------------------------------------------------------- failure taxonomy


@dataclass(frozen=True)
class SpecFailure:
    """One spec's final (post-retry) failure."""

    key: str
    workloads: tuple[str, ...]
    #: taxonomy: ``transient`` | ``worker-lost`` | ``timeout`` |
    #: ``invariant`` | ``error``
    kind: str
    exc_type: str
    message: str
    traceback: str
    attempts: int

    @property
    def label(self) -> str:
        return "+".join(self.workloads)


class PlanExecutionError(RuntimeError):
    """Raised in fail-fast mode when any spec fails terminally.

    Completed results were already flushed to the artifact cache, so
    re-running the same plan resumes from the failure.
    """

    def __init__(self, failures: Iterable[SpecFailure]) -> None:
        self.failures = tuple(failures)
        first = self.failures[0]
        super().__init__(
            f"{len(self.failures)} spec(s) failed; first: {first.label} "
            f"[{first.kind}] {first.exc_type}: {first.message}"
        )


#: exception types treated as transient (worth retrying)
_TRANSIENT_TYPES = (
    BrokenExecutor,  # worker death / broken pool
    OSError,  # resource exhaustion, fork failures, fs hiccups
    EOFError,  # torn pipe to a dying worker
    pickle.PicklingError,
    pickle.UnpicklingError,
)


def classify_failure(exc: BaseException) -> str:
    """Map an exception to the runner's failure taxonomy."""
    if isinstance(exc, InvariantViolation):
        return "invariant"
    if isinstance(exc, BrokenExecutor):
        return "worker-lost"
    if isinstance(exc, _TRANSIENT_TYPES):
        return "transient"
    return "error"


def _is_retryable(kind: str) -> bool:
    return kind in ("transient", "worker-lost")


# ----------------------------------------------------------------- stats


@dataclass
class RunnerStats:
    """Counters for one ``execute_plan`` call (or a session aggregate)."""

    requested: int = 0  #: specs declared (before dedup)
    unique: int = 0  #: distinct simulations after dedup
    memo_hits: int = 0  #: served from the in-process memo
    cache_hits: int = 0  #: served from the persistent artifact cache
    executed: int = 0  #: specs that entered execution at least once
    jobs: int = 1  #: worker processes used
    wall_s: float = 0.0  #: wall-clock seconds for the whole plan
    retries: int = 0  #: resubmissions after transient failures
    timeouts: int = 0  #: specs killed at the per-spec timeout
    failed: int = 0  #: specs that failed terminally (post-retry)
    pool_rebuilds: int = 0  #: broken process pools replaced
    cache_write_errors: int = 0  #: artifact-cache puts that failed (results not persisted)
    engine_fallbacks: int = 0  #: epoch-engine faults absorbed by a scalar re-run
    quarantined: int = 0  #: quarantine items written (fault bundles + corrupt entries)
    cache_evictions: int = 0  #: entries removed by the end-of-plan size-quota GC
    chunks: int = 0  #: worker dispatches (futures) the plan's specs were batched into
    cache_bytes_written: int = 0  #: bytes persisted to disk (results + trace plane)
    prewarm_s: float = 0.0  #: parent-side trace-plane prewarm before fan-out
    pool_spinup_s: float = 0.0  #: ProcessPoolExecutor construction time

    @property
    def hits(self) -> int:
        """Total results served without simulating."""
        return self.memo_hits + self.cache_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of unique specs served from a cache layer."""
        return self.hits / self.unique if self.unique else 0.0

    def absorb(self, other: "RunnerStats") -> None:
        """Accumulate ``other`` into this aggregate."""
        self.requested += other.requested
        self.unique += other.unique
        self.memo_hits += other.memo_hits
        self.cache_hits += other.cache_hits
        self.executed += other.executed
        self.jobs = max(self.jobs, other.jobs)
        self.wall_s += other.wall_s
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.failed += other.failed
        self.pool_rebuilds += other.pool_rebuilds
        self.cache_write_errors += other.cache_write_errors
        self.engine_fallbacks += other.engine_fallbacks
        self.quarantined += other.quarantined
        self.cache_evictions += other.cache_evictions
        self.chunks += other.chunks
        self.cache_bytes_written += other.cache_bytes_written
        self.prewarm_s += other.prewarm_s
        self.pool_spinup_s += other.pool_spinup_s


#: in-process L1 over the disk cache: spec key → result
_RESULT_MEMO: dict[str, MulticoreResult] = {}
_LAST_STATS = RunnerStats()
_SESSION_STATS = RunnerStats()
_LAST_FAILURES: tuple[SpecFailure, ...] = ()
_LAST_FALLBACKS: tuple[EngineFallback, ...] = ()


def clear_result_memo() -> None:
    """Drop the in-process result memo (tests and equivalence checks)."""
    _RESULT_MEMO.clear()


def last_stats() -> RunnerStats:
    """Counters of the most recent ``execute_plan`` call."""
    return _LAST_STATS


def last_failures() -> tuple[SpecFailure, ...]:
    """Failure report of the most recent ``execute_plan`` call."""
    return _LAST_FAILURES


def last_fallbacks() -> tuple[EngineFallback, ...]:
    """Engine-fallback records of the most recent ``execute_plan`` call."""
    return _LAST_FALLBACKS


def session_stats() -> RunnerStats:
    """Counters accumulated over the whole process."""
    return _SESSION_STATS


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit argument, else ``REPRO_JOBS``, else 1.

    ``REPRO_JOBS=0`` (or ``auto``) means one worker per CPU.  A
    malformed value raises :class:`ConfigError` (the CLI boundary turns
    it into an exit message).
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "1").strip().lower()
        try:
            jobs = 0 if raw == "auto" else int(raw or 1)
        except ValueError:
            raise ConfigError(
                f"REPRO_JOBS must be an integer or 'auto', got {raw!r}"
            ) from None
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


class PlanResults:
    """Results of an executed plan, indexed by :class:`RunSpec`.

    In keep-going mode some specs may be missing: ``failures`` reports
    them, :meth:`ok` checks for presence, and :meth:`get` returns a
    default instead of raising.
    """

    def __init__(
        self,
        by_key: dict[str, MulticoreResult],
        stats: RunnerStats,
        failures: tuple[SpecFailure, ...] = (),
        engine_fallbacks: tuple[EngineFallback, ...] = (),
    ) -> None:
        self._by_key = by_key
        self.stats = stats
        self.failures = failures
        #: per-spec epoch→scalar fallback records from this plan's
        #: executed specs (``declined`` and ``fault`` kinds alike)
        self.engine_fallbacks = engine_fallbacks

    def __getitem__(self, spec: RunSpec) -> MulticoreResult:
        return self._by_key[spec.key]

    def __contains__(self, spec: RunSpec) -> bool:
        return spec.key in self._by_key

    def __len__(self) -> int:
        return len(self._by_key)

    def get(self, spec: RunSpec, default=None):
        """Result for ``spec``, or ``default`` when it failed."""
        return self._by_key.get(spec.key, default)

    def ok(self, *specs: RunSpec) -> bool:
        """Whether every given spec produced a result."""
        return all(s.key in self._by_key for s in specs)

    def failure_for(self, spec: RunSpec) -> SpecFailure | None:
        """The failure record for ``spec``, if it failed."""
        for f in self.failures:
            if f.key == spec.key:
                return f
        return None

    def merged_metrics(self) -> dict:
        """Plan-wide metrics: every result's registry snapshot, merged.

        Results are visited in sorted-key order and the merge itself is
        order-independent, so ``jobs=1`` and ``jobs=N`` executions of the
        same plan produce identical merged metrics.
        """
        from ..telemetry import MetricsRegistry

        snaps = [
            self._by_key[key].metrics
            for key in sorted(self._by_key)
            if getattr(self._by_key[key], "metrics", None)
        ]
        return MetricsRegistry.merge(snaps)


# ------------------------------------------------------------ the engine


class _Interrupted(Exception):
    """Internal: a SIGINT/SIGTERM arrived; unwind after persisting."""


def _worker_init() -> None:
    """Worker-process signal hygiene.

    Workers must not inherit the parent's graceful-drain handlers (a
    forked child would otherwise swallow the ``terminate()`` used to
    reclaim hung workers), and they ignore ``SIGINT`` so a terminal
    Ctrl-C reaches only the parent, which drains and persists.
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


class _PlanRunner:
    """Drives one plan's cache misses to completion, fault-tolerantly."""

    def __init__(
        self,
        todo: list[tuple[str, RunSpec]],
        jobs: int,
        policy: ExecutionPolicy,
        cache,
        stats: RunnerStats,
    ) -> None:
        self.specs: dict[str, RunSpec] = dict(todo)
        self.queue: deque[str] = deque(k for k, _ in todo)
        #: specs rerun one at a time after a pool break, to isolate the
        #: culprit: only the poisonous spec can break the fresh pool again
        self.suspects: deque[str] = deque()
        self.jobs = jobs
        self.policy = policy
        self.cache = cache
        self.stats = stats
        self.attempts: dict[str, int] = {k: 0 for k, _ in todo}
        self.needs_backoff: set[str] = set()
        self.results: dict[str, MulticoreResult] = {}
        self.failures: dict[str, SpecFailure] = {}
        self.fallbacks: list[EngineFallback] = []
        self.pool: ProcessPoolExecutor | None = None
        #: in-flight chunks: future → the spec keys it carries
        self.pending: dict[Future, tuple[str, ...]] = {}
        self.deadlines: dict[Future, float] = {}
        self.aborted = False  # fail-fast tripped
        self.interrupted: str | None = None  # signal name
        # per-spec timeouts need the deadline to name exactly one spec,
        # so batching is disabled while one is armed
        if policy.spec_timeout_s is not None:
            self.chunk = 1
        elif policy.chunk_size is not None:
            self.chunk = max(1, policy.chunk_size)
        else:
            self.chunk = _auto_chunk_size(len(todo), jobs)

    # -- shared bookkeeping -------------------------------------------------

    def _record_success(
        self,
        key: str,
        result: MulticoreResult,
        fallbacks: tuple[EngineFallback, ...] = (),
    ) -> None:
        self.results[key] = result
        _RESULT_MEMO[key] = result
        for fb in fallbacks:
            self.fallbacks.append(fb)
            if fb.kind == "fault":
                self.stats.engine_fallbacks += 1
                if fb.quarantine:
                    self.stats.quarantined += 1
        # flush immediately: a later crash or kill must not lose this
        self.cache.put(key, result)

    def _record_failure(self, key: str, exc: BaseException, kind: str) -> None:
        self._record_failure_info(
            key,
            kind,
            type(exc).__name__,
            str(exc),
            "".join(_traceback.format_exception(exc)),
        )

    def _record_failure_info(
        self, key: str, kind: str, exc_type: str, message: str, tb: str
    ) -> None:
        """Terminal-failure bookkeeping from already-stringified exception
        info (worker-side chunk records arrive in this form)."""
        if kind == "timeout":
            self.stats.timeouts += 1
        self.failures[key] = SpecFailure(
            key=key,
            workloads=self.specs[key].workloads,
            kind=kind,
            exc_type=exc_type,
            message=message,
            traceback=tb,
            attempts=self.attempts[key],
        )
        self.stats.failed += 1
        if not self.policy.keep_going:
            self.aborted = True

    def _retry_or_fail_info(
        self, key: str, kind: str, exc_type: str, message: str, tb: str
    ) -> None:
        """Requeue ``key`` if its failure kind has retry budget, else fail it."""
        if self._should_retry(key, kind):
            self.stats.retries += 1
            self.needs_backoff.add(key)
            self.queue.append(key)
        else:
            self._record_failure_info(key, kind, exc_type, message, tb)

    def _backoff(self, key: str) -> None:
        """Exponential backoff before a retry (attempt n sleeps ~base·2ⁿ⁻¹)."""
        if self.policy.backoff_s > 0:
            time.sleep(min(self.policy.backoff_s * 2 ** (self.attempts[key] - 1), 2.0))

    def _should_retry(self, key: str, kind: str) -> bool:
        return _is_retryable(kind) and self.attempts[key] < self.policy.max_attempts

    # -- sequential engine (jobs=1 and the degraded-pool fallback) ----------

    def run_sequential(self, keys: Iterable[str]) -> None:
        for key in keys:
            if self.aborted or self.interrupted:
                break
            spec = self.specs[key]
            while True:
                self.attempts[key] += 1
                fallbacks: list[EngineFallback] = []
                try:
                    result = run_spec(
                        spec, audit=self.policy.audit, fallbacks=fallbacks
                    )
                except KeyboardInterrupt:
                    self.interrupted = "SIGINT"
                    return
                except Exception as exc:
                    kind = classify_failure(exc)
                    if self._should_retry(key, kind):
                        self.stats.retries += 1
                        self._backoff(key)
                        continue
                    self._record_failure(key, exc, kind)
                    break
                else:
                    self._record_success(key, result, tuple(fallbacks))
                    break

    # -- parallel engine ----------------------------------------------------

    def run_parallel(self) -> None:
        with self._signal_guard():
            self.pool = self._new_pool()
            try:
                while (self.queue or self.suspects or self.pending) and not self.aborted:
                    if self.interrupted:
                        raise _Interrupted
                    if self.pool is None:
                        # the pool broke too many times: finish in-process
                        remaining = list(self.suspects) + list(self.queue)
                        self.suspects.clear()
                        self.queue.clear()
                        self.run_sequential(remaining)
                        break
                    self._dispatch()
                    if not self.pending:
                        continue
                    done, _ = wait(
                        set(self.pending), timeout=self._wait_timeout(),
                        return_when=FIRST_COMPLETED,
                    )
                    for fut in done:
                        if fut in self.pending:  # a pool break may clear it
                            self._harvest(fut)
                    self._check_deadlines()
            except _Interrupted:
                pass
            finally:
                self._shutdown_pool(kill=bool(self.pending))
                self.pending.clear()
                self.deadlines.clear()

    def _new_pool(self) -> ProcessPoolExecutor:
        remaining = (
            len(self.queue)
            + len(self.suspects)
            + sum(len(keys) for keys in self.pending.values())
        )
        workers = -(-remaining // self.chunk)  # ceil: chunks, not specs, fill slots
        t0 = time.perf_counter()
        pool = ProcessPoolExecutor(
            max_workers=max(1, min(self.jobs, workers)), initializer=_worker_init
        )
        self.stats.pool_spinup_s += time.perf_counter() - t0
        return pool

    def _shutdown_pool(self, *, kill: bool) -> None:
        pool, self.pool = self.pool, None
        if pool is None:
            return
        if kill:
            # a hung or poisoned worker never returns: kill outright
            # (SIGKILL — a stuck worker may not honour anything milder;
            # private attribute, but the only way to reclaim the worker)
            procs = list((getattr(pool, "_processes", None) or {}).values())
            for proc in procs:
                try:
                    proc.kill()
                except Exception:
                    pass
            for proc in procs:
                try:
                    proc.join(timeout=5)
                except Exception:
                    pass
        try:
            pool.shutdown(wait=not kill, cancel_futures=True)
        except Exception:
            pass

    def _dispatch(self) -> None:
        """Fill worker slots with chunks; suspects run strictly one at a time."""
        while True:
            if self.suspects:
                if self.pending:
                    return  # serial isolation: wait for the lone flight
                keys: tuple[str, ...] = (self.suspects.popleft(),)
            elif self.queue and len(self.pending) < self.jobs:
                count = min(self.chunk, len(self.queue))
                keys = tuple(self.queue.popleft() for _ in range(count))
            else:
                return
            for key in keys:
                if key in self.needs_backoff:
                    self.needs_backoff.discard(key)
                    self._backoff(key)
                self.attempts[key] += 1
            try:
                fut = self.pool.submit(
                    _run_chunk, [self.specs[k] for k in keys], self.policy.audit
                )
            except (BrokenExecutor, RuntimeError) as exc:
                # the pool died between harvest and submit
                for key in reversed(keys):
                    self.attempts[key] -= 1
                    self._requeue_front(key)
                self._handle_pool_break(exc)
                return
            self.pending[fut] = keys
            self.stats.chunks += 1
            if self.policy.spec_timeout_s is not None:
                self.deadlines[fut] = time.monotonic() + self.policy.spec_timeout_s

    def _requeue_front(self, key: str) -> None:
        (self.suspects if self.suspects else self.queue).appendleft(key)

    def _wait_timeout(self) -> float:
        """Poll interval: next deadline if timeouts are armed, else 0.5 s
        (short enough to notice signals promptly)."""
        if self.deadlines:
            nearest = min(self.deadlines.values()) - time.monotonic()
            return max(0.01, min(nearest, 0.5))
        return 0.5

    def _harvest(self, fut: Future) -> None:
        keys = self.pending.pop(fut)
        self.deadlines.pop(fut, None)
        try:
            records = fut.result()
        except BrokenExecutor as exc:
            # a dead worker breaks the whole executor: its chunk and every
            # other in-flight spec fail collaterally; handle them at once
            self._handle_pool_break(exc, casualties=keys)
            return
        except Exception as exc:
            # chunk-level transport failure (e.g. a torn result pipe):
            # the worker-side records are gone, so every spec shares it
            kind = classify_failure(exc)
            tb = "".join(_traceback.format_exception(exc))
            for key in keys:
                self._retry_or_fail_info(key, kind, type(exc).__name__, str(exc), tb)
            return
        seen: set[str] = set()
        for rec in records:
            key = rec[0]
            seen.add(key)
            if rec[1] == "ok":
                self._record_success(key, rec[2], rec[3] if len(rec) > 3 else ())
            else:
                _, _, kind, exc_type, message, tb = rec
                self._retry_or_fail_info(key, kind, exc_type, message, tb)
        for key in keys:
            # defensive: a worker that returned without covering a spec
            if key not in seen:
                self._retry_or_fail_info(
                    key, "worker-lost", "RuntimeError",
                    "spec missing from its chunk's result records", "",
                )

    def _handle_pool_break(
        self, exc: BaseException, casualties: tuple[str, ...] = ()
    ) -> None:
        """Replace a broken pool; casualties retry serially (culprit isolation)."""
        self.stats.pool_rebuilds += 1
        casualties = list(casualties)
        for keys in self.pending.values():
            casualties.extend(keys)
        self.pending.clear()
        self.deadlines.clear()
        self._shutdown_pool(kill=True)
        for key in casualties:
            # every casualty keeps its attempt: the culprit is unknown, and
            # serial re-execution lets innocents succeed on the next try
            if self._should_retry(key, "worker-lost"):
                self.stats.retries += 1
                self.needs_backoff.add(key)
                self.suspects.append(key)
            else:
                self._record_failure(key, exc, "worker-lost")
        if self.aborted:
            return
        if self.stats.pool_rebuilds <= self.policy.max_pool_rebuilds:
            self.pool = self._new_pool()
        # else: pool stays None and run_parallel degrades to in-process

    def _check_deadlines(self) -> None:
        if not self.deadlines:
            return
        now = time.monotonic()
        expired = [fut for fut, dl in self.deadlines.items() if dl <= now and not fut.done()]
        if not expired:
            return
        # harvest whatever finished first, then abandon the stuck pool
        for fut in [f for f in list(self.pending) if f.done()]:
            self._harvest(fut)
        expired = [f for f in expired if f in self.pending]
        if not expired:
            return
        timeout_s = self.policy.spec_timeout_s
        for fut in expired:
            # chunks are single-spec whenever a timeout is armed, so the
            # deadline attributes to exactly one spec
            for key in self.pending.pop(fut):
                exc = TimeoutError(f"spec exceeded --spec-timeout of {timeout_s:g}s")
                self._record_failure(key, exc, "timeout")
            self.deadlines.pop(fut, None)
        # innocents that shared the killed pool go back unpenalized
        for fut, keys in list(self.pending.items()):
            for key in reversed(keys):
                self.attempts[key] -= 1
                self.queue.appendleft(key)
        self.pending.clear()
        self.deadlines.clear()
        self.stats.pool_rebuilds += 1
        self._shutdown_pool(kill=True)
        if not self.aborted:
            if self.stats.pool_rebuilds <= self.policy.max_pool_rebuilds:
                self.pool = self._new_pool()

    # -- signals ------------------------------------------------------------

    def _signal_guard(self):
        runner = self

        class _Guard:
            def __enter__(self):
                self.saved = {}
                if threading.current_thread() is not threading.main_thread():
                    return self  # signal handlers only work on the main thread
                for sig in (signal.SIGINT, signal.SIGTERM):
                    try:
                        self.saved[sig] = signal.signal(sig, self._on_signal)
                    except (ValueError, OSError):  # pragma: no cover
                        pass
                return self

            def _on_signal(self, signum, frame):
                if runner.interrupted:  # second signal: give up immediately
                    raise KeyboardInterrupt
                runner.interrupted = signal.Signals(signum).name

            def __exit__(self, *exc):
                for sig, handler in self.saved.items():
                    try:
                        signal.signal(sig, handler)
                    except (ValueError, OSError):  # pragma: no cover
                        pass

        return _Guard()


def prewarm_traces(specs: Iterable[RunSpec]) -> None:
    """Materialize every unique memory trace once, before fanning out.

    ``SpecProfile.memory_trace`` persists traces through the trace plane
    (:mod:`~repro.harness.trace_plane`), so generating them here, in the
    parent, means every worker memory-maps the shared ``.npy`` artifacts
    instead of regenerating identical traces per process.  Failures are
    swallowed: the worker that actually needs the trace will re-raise
    with proper per-spec attribution.
    """
    from ..workloads import profile as _profile

    seen: set[tuple] = set()
    for spec in specs:
        for name in spec.workloads:
            ident = (name, spec.instructions, spec.seed, spec.trace_llc)
            if ident in seen:
                continue
            seen.add(ident)
            try:
                _profile(name).memory_trace(
                    spec.instructions, spec.trace_llc, seed=spec.seed
                )
            except Exception:
                pass


def execute_plan(
    specs: "Iterable[RunSpec] | RunPlan",
    *,
    jobs: int | None = None,
    cache=None,
    policy: ExecutionPolicy | None = None,
) -> PlanResults:
    """Run every spec (deduplicated, cached, parallel) and map results.

    ``jobs=1`` executes in-process in declaration order — exactly the
    legacy sequential path.  ``jobs>1`` fans cache misses out over a
    process pool; results are identical because every simulation is a
    pure function of its spec.

    Failure semantics follow ``policy`` (see :class:`ExecutionPolicy`):
    by default the first terminal failure raises
    :class:`PlanExecutionError`; with ``keep_going`` the returned
    :class:`PlanResults` carries partial results plus ``failures``.
    Either way, every completed result was already flushed to the
    artifact cache, so re-running the same plan resumes where it
    stopped — only missing specs simulate.
    """
    global _LAST_STATS, _LAST_FAILURES, _LAST_FALLBACKS
    t0 = time.perf_counter()
    spec_list = list(specs.specs if isinstance(specs, RunPlan) else specs)
    jobs = resolve_jobs(jobs)
    policy = current_policy() if policy is None else policy
    cache = get_cache() if cache is None else cache

    unique: dict[str, RunSpec] = {}
    for spec in spec_list:
        unique.setdefault(spec.key, spec)

    stats = RunnerStats(requested=len(spec_list), unique=len(unique), jobs=jobs)
    write_errors_before = getattr(cache, "write_errors", 0)
    from .trace_plane import get_trace_plane

    plane = get_trace_plane()
    bytes_before = getattr(cache, "bytes_written", 0) + plane.bytes_written
    quar_before = getattr(cache, "quarantined", 0) + plane.quarantined
    results: dict[str, MulticoreResult] = {}
    todo: list[tuple[str, RunSpec]] = []
    for key, spec in unique.items():
        if telemetry_enabled(spec) or validation_enabled(spec):
            # a cached result carries no trace and was never checked:
            # force execution so the sink / golden models observe the
            # run (the result is bit-identical anyway)
            todo.append((key, spec))
            continue
        memoized = _RESULT_MEMO.get(key)
        if memoized is not None:
            results[key] = memoized
            stats.memo_hits += 1
            continue
        cached = cache.get(key, MISS)
        if cached is not MISS:
            results[key] = cached
            _RESULT_MEMO[key] = cached
            stats.cache_hits += 1
            continue
        todo.append((key, spec))

    failures: tuple[SpecFailure, ...] = ()
    engine_fallbacks: tuple[EngineFallback, ...] = ()
    interrupted: str | None = None
    if todo:
        runner = _PlanRunner(todo, jobs, policy, cache, stats)
        if jobs > 1 and len(todo) > 1:
            # materialize shared trace artifacts in the parent so workers
            # mmap them instead of regenerating one private copy each
            # (a one-miss plan skips the pool entirely: run_sequential is
            # the whole fan-out, and pool spin-up would dominate it)
            t_warm = time.perf_counter()
            prewarm_traces(spec for _, spec in todo)
            stats.prewarm_s = time.perf_counter() - t_warm
            runner.run_parallel()
        else:
            runner.run_sequential([k for k, _ in todo])
        results.update(runner.results)
        failures = tuple(runner.failures.values())
        engine_fallbacks = tuple(runner.fallbacks)
        interrupted = runner.interrupted
        stats.executed = sum(1 for n in runner.attempts.values() if n > 0)

    # entries the stores quarantined during this plan's reads/writes, on
    # top of the engine-fault bundles counted per spec
    stats.quarantined += (
        getattr(cache, "quarantined", 0) + plane.quarantined - quar_before
    )

    if not interrupted and getattr(cache, "root", None) is not None:
        # end-of-plan auto-GC: a quota keeps a shared cache dir bounded,
        # but never at the expense of the plan the caller is about to read
        from .cache_gc import quota_from_env

        quota = quota_from_env()
        if quota is not None:
            from .cache_gc import collect
            from ..workloads import profile as _profile

            protect: set[str] = set(unique)
            for spec in unique.values():
                for name in spec.workloads:
                    try:
                        protect.add(
                            _profile(name).trace_key(
                                spec.instructions, spec.trace_llc, seed=spec.seed
                            )
                        )
                    except Exception:
                        pass
            gc_res = collect(quota, root=cache.root, protect=protect)
            stats.cache_evictions = gc_res.evicted

    stats.wall_s = time.perf_counter() - t0
    stats.cache_write_errors = getattr(cache, "write_errors", 0) - write_errors_before
    stats.cache_bytes_written = (
        getattr(cache, "bytes_written", 0) + plane.bytes_written - bytes_before
    )
    _LAST_STATS = stats
    _SESSION_STATS.absorb(stats)
    _LAST_FAILURES = failures
    _LAST_FALLBACKS = engine_fallbacks

    if interrupted:
        print(
            f"repro: {interrupted} — {len(results)}/{stats.unique} unique results "
            f"persisted to the artifact cache; re-run the same command to resume "
            f"(only missing specs will simulate)",
            file=sys.stderr,
        )
        raise KeyboardInterrupt(f"plan interrupted by {interrupted}")
    if failures and not policy.keep_going:
        raise PlanExecutionError(failures)
    return PlanResults(results, stats, failures, engine_fallbacks)


class RunPlan:
    """A declared grid of runs; drivers build one and execute it once."""

    def __init__(self) -> None:
        self.specs: list[RunSpec] = []

    def add(self, spec: RunSpec) -> RunSpec:
        """Declare one spec; returns it as the result-lookup handle."""
        self.specs.append(spec)
        return spec

    # -- declaration sugar mirroring RunSpec constructors -------------------

    def benchmark(self, name, config, scale, *, record_events=False) -> RunSpec:
        return self.add(
            RunSpec.benchmark(name, config, scale, record_events=record_events)
        )

    def mix(self, mix, config, scale, *, llc_bytes=None) -> RunSpec:
        return self.add(RunSpec.mix(mix, config, scale, llc_bytes=llc_bytes))

    def alone(self, name, llc, scale, config) -> RunSpec:
        return self.add(RunSpec.alone(name, llc, scale, config))

    def __len__(self) -> int:
        return len(self.specs)

    def execute(
        self,
        *,
        jobs: int | None = None,
        cache=None,
        policy: ExecutionPolicy | None = None,
    ) -> PlanResults:
        """Execute the declared grid (dedup → cache → parallel fan-out)."""
        return execute_plan(self, jobs=jobs, cache=cache, policy=policy)
