"""Refresh-policy zoo sweep: policy × device-density IPC/energy matrix.

ROADMAP item 2's capstone experiment. Every refresh policy the simulator
knows — the JEDEC modes, the related-work schedulers (Elastic, Pausing,
DARP, SARP, RAIDR) and the ROP compositions — runs over the same
benchmarks at each DRAM device density (4–32 Gb, i.e. tRFC from 260 ns
to 780 ns), producing the refresh-scaling picture the paper's Section
VI argues from: as density grows, tRFC grows, and the gap between
auto-refresh and the mitigation schemes widens.

Energy uses the event-count DRAM model with the per-REF energy scaled
by the density's tRFC (refresh current flows for the whole lock), so
the refresh share of total energy grows with density exactly as the
Micron calculator predicts.

All points run through :func:`repro.harness.execute_plan`, so the sweep
is cache-addressed, parallelizable and engine-transparent (DARP/SARP
points fall back to the scalar engine with a structured reason).
"""

from __future__ import annotations

import math

from ..config import RefreshMode, SystemConfig
from ..dram.timings import DDR4_1600, DENSITY_TRFC_NS
from ..energy.dram_power import DramEnergyParams, system_energy
from . import reporting
from .experiment import RunScale
from .runner import RunSpec, execute_plan

__all__ = [
    "ZOO_DENSITIES",
    "ZOO_POLICIES",
    "zoo_configs",
    "zoo_sweep",
    "zoo_matrix",
    "render_zoo",
]

#: device densities swept (Gbit) — keys of DENSITY_TRFC_NS
ZOO_DENSITIES: tuple[int, ...] = tuple(sorted(DENSITY_TRFC_NS))

#: policy label → (refresh mode, ROP composes on top, refresh-config
#: overrides); order is presentation order (plain schemes first, then
#: the ROP compositions). RAIDR uses a short bin window — the default
#: 8192-tick window never wraps inside a sweep-length run, which would
#: degenerate to auto-refresh (every early slot is a 64 ms slot).
ZOO_POLICIES: dict[str, tuple[RefreshMode, bool, dict]] = {
    "auto_1x": (RefreshMode.AUTO_1X, False, {}),
    "fgr_2x": (RefreshMode.FGR_2X, False, {}),
    "per_bank": (RefreshMode.PER_BANK, False, {}),
    "elastic": (RefreshMode.ELASTIC, False, {}),
    "pausing": (RefreshMode.PAUSING, False, {}),
    "darp": (RefreshMode.DARP, False, {}),
    "sarp": (RefreshMode.SARP, False, {}),
    "raidr": (RefreshMode.RAIDR, False, {"raidr_window_ticks": 8}),
    "rop": (RefreshMode.AUTO_1X, True, {}),
    "rop_per_bank": (RefreshMode.PER_BANK, True, {}),
    "rop_darp": (RefreshMode.DARP, True, {}),
    "none": (RefreshMode.NONE, False, {}),
}


def zoo_configs(
    scale: RunScale,
    *,
    densities: tuple[int, ...] = ZOO_DENSITIES,
    policies: tuple[str, ...] | None = None,
) -> dict[tuple[str, int], SystemConfig]:
    """Materialize the (policy, density) configuration grid.

    Unknown policy names raise ``ValueError`` (listing the known ones);
    ``auto_1x`` is always included — it is the normalization baseline.
    """
    names = list(policies) if policies else list(ZOO_POLICIES)
    unknown = [n for n in names if n not in ZOO_POLICIES]
    if unknown:
        raise ValueError(
            f"unknown zoo policies {unknown}; known: {sorted(ZOO_POLICIES)}"
        )
    if "auto_1x" not in names:
        names.insert(0, "auto_1x")
    grid: dict[tuple[str, int], SystemConfig] = {}
    for gbit in densities:
        for name in names:
            mode, rop, opts = ZOO_POLICIES[name]
            cfg = SystemConfig.single_core().with_density(gbit)
            cfg = cfg.with_refresh_mode(mode)
            if opts:
                cfg = cfg.with_refresh_opts(**opts)
            if rop:
                cfg = cfg.with_rop(training_refreshes=scale.training_refreshes)
            grid[(name, gbit)] = cfg
    return grid


def _density_energy_params(cfg: SystemConfig) -> DramEnergyParams:
    """Per-REF energy scaled to the density's tRFC.

    The default 690 nJ/REF is calibrated for the nominal 8 Gb part
    (tRFC = 350 ns); refresh current flows for the whole tRFC window,
    so denser parts pay proportionally more per REF command. FGR /
    per-bank scaling relative to the configured tRFC is applied on top
    by :func:`repro.energy.dram_power.dram_energy` itself.
    """
    scale = cfg.timings.rfc / max(1, DDR4_1600.rfc)
    base = DramEnergyParams()
    return DramEnergyParams(
        background_mw_per_rank=base.background_mw_per_rank,
        act_pre_nj=base.act_pre_nj,
        read_nj=base.read_nj,
        write_nj=base.write_nj,
        refresh_nj=base.refresh_nj * scale,
    )


def zoo_sweep(
    benchmarks: tuple[str, ...],
    scale: RunScale,
    *,
    densities: tuple[int, ...] = ZOO_DENSITIES,
    policies: tuple[str, ...] | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Run the zoo grid; one row per (benchmark, policy, density) point.

    Rows carry raw IPC, total energy (nJ), the refresh share of energy
    and the refresh count — normalization happens in :func:`zoo_matrix`
    so callers can slice the raw points any way they like.
    """
    grid = zoo_configs(scale, densities=densities, policies=policies)
    # one flat plan: (policy, density, benchmark) → spec
    specs = {
        (policy, gbit, name): RunSpec.benchmark(name, grid[(policy, gbit)], scale)
        for (policy, gbit) in grid
        for name in benchmarks
    }
    results = execute_plan(list(specs.values()), jobs=jobs)
    rows = []
    for (policy, gbit, name), spec in specs.items():
        result = results[spec]
        energy = system_energy(
            result.stats, spec.config, _density_energy_params(spec.config)
        )
        rows.append(
            {
                "benchmark": name,
                "policy": policy,
                "density_gbit": gbit,
                "ipc": result.ipc,
                "energy_nj": energy.total,
                "refresh_fraction": energy.refresh_fraction,
                "refreshes": result.stats.refreshes,
            }
        )
    return rows


def zoo_matrix(rows: list[dict]) -> list[dict]:
    """Aggregate sweep rows per (policy, density).

    IPC is the geometric mean across benchmarks normalized to the
    ``auto_1x`` point of the *same benchmark and density*; energy is the
    summed total normalized the same way. Missing baselines raise.
    """
    base_ipc = {
        (r["benchmark"], r["density_gbit"]): r["ipc"]
        for r in rows
        if r["policy"] == "auto_1x"
    }
    base_energy: dict[int, float] = {}
    for r in rows:
        if r["policy"] == "auto_1x":
            base_energy[r["density_gbit"]] = (
                base_energy.get(r["density_gbit"], 0.0) + r["energy_nj"]
            )
    out: dict[tuple[str, int], dict] = {}
    for r in rows:
        key = (r["policy"], r["density_gbit"])
        cell = out.setdefault(
            key, {"log_ipc": 0.0, "n": 0, "energy": 0.0, "ref_frac": 0.0}
        )
        baseline = base_ipc[(r["benchmark"], r["density_gbit"])]
        cell["log_ipc"] += math.log(r["ipc"] / baseline)
        cell["energy"] += r["energy_nj"]
        cell["ref_frac"] += r["refresh_fraction"]
        cell["n"] += 1
    return [
        {
            "policy": policy,
            "density_gbit": gbit,
            "norm_ipc": math.exp(cell["log_ipc"] / cell["n"]),
            "norm_energy": cell["energy"] / base_energy[gbit],
            "refresh_fraction": cell["ref_frac"] / cell["n"],
        }
        for (policy, gbit), cell in out.items()
    ]


def render_zoo(rows: list[dict]) -> str:
    """ASCII zoo figure: policies × densities, ``IPC / energy`` cells.

    Both numbers are normalized to ``auto_1x`` at the same density
    (IPC: geomean across benchmarks, higher is better; energy: total,
    lower is better).
    """
    matrix = zoo_matrix(rows)
    densities = sorted({m["density_gbit"] for m in matrix})
    policies = [
        p
        for p in list(ZOO_POLICIES)
        if any(m["policy"] == p for m in matrix)
    ]
    cells = {(m["policy"], m["density_gbit"]): m for m in matrix}
    headers = ["policy"] + [f"{g}Gb ipc/energy" for g in densities]
    body = []
    for policy in policies:
        row = [policy]
        for gbit in densities:
            m = cells.get((policy, gbit))
            row.append(
                f"{m['norm_ipc']:.4f}/{m['norm_energy']:.3f}" if m else "-"
            )
        body.append(row)
    lines = [
        "Refresh-policy zoo (normalized to auto_1x per density; "
        "ipc higher / energy lower is better):",
        reporting.format_table(headers, body),
        "refresh share of auto_1x energy by density: "
        + "  ".join(
            f"{g}Gb={cells[('auto_1x', g)]['refresh_fraction']:.1%}"
            for g in densities
            if ("auto_1x", g) in cells
        ),
    ]
    return "\n".join(lines)
