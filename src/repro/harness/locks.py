"""Cross-process advisory file locks for the shared artifact stores.

The artifact cache and the trace plane are multi-writer by design: any
number of worker processes (and any number of concurrent invocations
sharing one ``REPRO_CACHE_DIR``) persist entries into the same tree.
Atomic temp-file + ``os.replace`` writes already make torn entries
impossible, but they cannot *deduplicate* work — two processes that miss
on the same key both serialize and both write, and the loser's bytes are
thrown away.  :func:`file_lock` adds a per-key advisory lock so the
loser waits briefly, re-checks for the winner's entry, and skips the
duplicate write.

The lock is strictly best-effort and must never become a new failure
mode, so it degrades to unlocked operation (which is still *safe*, just
duplicated) whenever:

* ``fcntl`` is unavailable (non-POSIX platforms);
* the lock file cannot be created (read-only cache dir — the write
  itself will then fail with proper accounting);
* the lock is not acquired within ``timeout_s`` (a dead holder's lock
  is released by the kernel when its fd closes, so a genuine timeout
  means heavy contention, and proceeding unlocked is the lesser evil).

Lock files (``<key>.lock``) stay behind after use — creating/unlinking
them atomically under contention is not worth the complexity, and every
store's entry globs (``*.pkl``, ``*.npy``, ``*.meta.json``) ignore them.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from pathlib import Path

__all__ = ["file_lock"]

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None


@contextmanager
def file_lock(path: str | Path, timeout_s: float = 10.0):
    """Hold an exclusive advisory lock on ``path`` for the ``with`` body.

    Yields True while the lock is held, False when the implementation
    degraded to unlocked operation (missing fcntl, unwritable lock file,
    or contention past ``timeout_s``).  Callers treat the yielded value
    as a hint only: correctness never depends on the lock.
    """
    if fcntl is None:
        yield False
        return
    try:
        fd = os.open(os.fspath(path), os.O_CREAT | os.O_RDWR, 0o644)
    except OSError:
        yield False
        return
    locked = False
    try:
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                locked = True
                break
            except OSError:
                if time.monotonic() >= deadline:
                    break
                time.sleep(0.01)
        yield locked
    finally:
        if locked:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:  # pragma: no cover - release is best-effort
                pass
        os.close(fd)
