"""Shared-memory trace plane: memory traces as mmap-able ``.npy`` artifacts.

The pickle artifact cache made LLC-filtered traces *persistent*, but every
process that needed one still paid a full unpickle into a private heap
copy — at ``jobs=N`` the same multi-megabyte arrays were duplicated N
times.  The trace plane stores each trace's arrays as raw ``.npy`` files
instead, so any number of worker processes map the *same* page-cache
pages via ``np.load(mmap_mode="r")``: materialize once, share everywhere.
The parent prewarms the plane before fanning a plan out (see
:func:`repro.harness.runner.execute_plan`), so workers never regenerate a
trace another process already built.

Layout, sharded like the pickle cache (``<cache-dir>/trace-plane/<kk>/``)::

    <key>.gaps.npy    int64  instruction gaps
    <key>.lines.npy   int64  cache-line indices
    <key>.writes.npy  bool   store markers
    <key>.meta.json   commit marker: schema, length, tail_instructions

Each array is written through a temp file + ``os.replace`` and the meta
file is written *last*, so a writer that dies mid-store (crashed worker,
kill -9) can never leave a loadable-but-torn entry: loads require the
meta marker and validate every array's length against it.  Any load
failure moves the entry's files to ``<cache-dir>/quarantine/`` and
reports a miss — corruption is recovered by recomputing, never a crash,
and the torn bytes survive for triage.  A per-key advisory lock
(:mod:`~repro.harness.locks`) deduplicates concurrent prewarms of the
same key: the losing writer waits, reads the winner's entry back, and
skips its own store.  Read hits touch the commit marker's mtime, giving
the size-quota GC (:mod:`~repro.harness.cache_gc`) an LRU signal.  The
plane obeys the same ``REPRO_CACHE`` / ``REPRO_CACHE_DIR`` knobs as the
pickle cache.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

import numpy as np

from ..workloads.trace import AccessTrace
from .cache import cache_enabled, default_cache_dir

__all__ = [
    "PLANE_SCHEMA",
    "TracePlane",
    "NullTracePlane",
    "get_trace_plane",
    "trace_plane_dir",
]

#: Bump when the on-disk layout changes; old entries are then dropped on load.
PLANE_SCHEMA = 1

#: the AccessTrace array fields, in on-disk order
_ARRAYS = ("gaps", "lines", "writes")


class TracePlane:
    """A directory of trace arrays, addressed by content fingerprint."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.quarantined = 0  #: corrupt entries moved to quarantine
        self.stores = 0
        self.write_errors = 0
        self.bytes_written = 0

    @property
    def enabled(self) -> bool:
        return True

    # -- paths ---------------------------------------------------------------

    def _dir(self, key: str) -> Path:
        return self.root / key[:2]

    def _array_path(self, key: str, name: str) -> Path:
        return self._dir(key) / f"{key}.{name}.npy"

    def _meta_path(self, key: str) -> Path:
        return self._dir(key) / f"{key}.meta.json"

    def paths(self, key: str) -> list[Path]:
        """Every file backing ``key`` (tests and cache management)."""
        return [self._array_path(key, n) for n in _ARRAYS] + [self._meta_path(key)]

    def _drop(self, key: str) -> None:
        for path in self.paths(key):
            try:
                path.unlink()
            except OSError:
                pass

    def _quarantine(self, key: str) -> None:
        """Move a corrupt entry's surviving files to quarantine."""
        from .quarantine import quarantine_file

        moved = False
        for path in self.paths(key):
            if path.exists():
                moved = quarantine_file(path, self.root.parent) is not None or moved
        if moved:
            self.quarantined += 1

    # -- read ----------------------------------------------------------------

    def _read(self, key: str) -> AccessTrace | None:
        """Mmap-backed trace for ``key``, or None (no hit/miss counting)."""
        meta_path = self._meta_path(key)
        try:
            meta = json.loads(meta_path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self.corrupt += 1
            self._quarantine(key)
            return None
        try:
            if meta.get("schema") != PLANE_SCHEMA:
                raise ValueError(f"schema {meta.get('schema')} != {PLANE_SCHEMA}")
            length = int(meta["length"])
            arrays = {
                name: np.load(self._array_path(key, name), mmap_mode="r")
                for name in _ARRAYS
            }
            if any(len(a) != length for a in arrays.values()):
                raise ValueError("array length disagrees with commit marker")
            return AccessTrace(
                arrays["gaps"],
                arrays["lines"],
                arrays["writes"],
                tail_instructions=int(meta["tail_instructions"]),
            )
        except Exception:
            # torn array, foreign bytes, stale schema — quarantine the
            # evidence and recompute
            self.corrupt += 1
            self._quarantine(key)
            return None

    def load(self, key: str) -> AccessTrace | None:
        """The trace stored under ``key`` as read-only mmap views, or None."""
        trace = self._read(key)
        if trace is None:
            self.misses += 1
        else:
            self.hits += 1
            try:
                os.utime(self._meta_path(key))  # LRU signal for the GC
            except OSError:
                pass
        return trace

    # -- write ---------------------------------------------------------------

    def store(self, key: str, trace: AccessTrace) -> AccessTrace | None:
        """Persist ``trace`` under ``key``; returns the mmap-backed readback.

        The readback view is what callers should hand out: consumers then
        share page-cache pages instead of holding private heap copies.
        Returns None when the plane is unwritable or the readback failed
        (callers keep using the in-memory trace — never a crash).

        A per-key advisory lock deduplicates concurrent prewarms: the
        losing writer waits for the winner, reads the committed entry
        back, and skips its own store (``stores`` is not incremented).
        """
        from .locks import file_lock

        directory = self._dir(key)
        try:
            directory.mkdir(parents=True, exist_ok=True)
            with file_lock(directory / f"{key}.lock"):
                existing = self._read(key)
                if existing is not None:
                    return existing  # a concurrent prewarm beat us to it
                for name in _ARRAYS:
                    self._write_file(
                        directory,
                        self._array_path(key, name),
                        lambda fh, n=name: np.save(fh, np.ascontiguousarray(getattr(trace, n))),
                    )
                meta = {
                    "schema": PLANE_SCHEMA,
                    "length": len(trace),
                    "tail_instructions": int(trace.tail_instructions),
                }
                # the commit marker goes last: readers ignore marker-less entries
                self._write_file(
                    directory,
                    self._meta_path(key),
                    lambda fh: fh.write(json.dumps(meta).encode()),
                )
        except OSError:
            self.write_errors += 1
            return None
        self.stores += 1
        if "REPRO_CHAOS" in os.environ:  # deferred: chaos imports this package
            from .chaos import tear_plane_entry

            tear_plane_entry(key, self._array_path(key, "lines"))
        return self._read(key)

    def _write_file(self, directory: Path, path: Path, write) -> None:
        """Atomic single-file write (temp + ``os.replace``), counting bytes."""
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                write(fh)
                self.bytes_written += fh.tell()
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        if self.root.is_dir():
            for p in list(self.root.glob("*/*.npy")) + list(self.root.glob("*/*.meta.json")):
                try:
                    p.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


class NullTracePlane:
    """Disabled plane: every load misses, every store is dropped."""

    root = None
    hits = 0
    misses = 0
    corrupt = 0
    quarantined = 0
    stores = 0
    write_errors = 0
    bytes_written = 0

    @property
    def enabled(self) -> bool:
        return False

    def load(self, key: str) -> None:
        return None

    def store(self, key: str, trace: AccessTrace) -> None:
        return None

    def paths(self, key: str) -> list[Path]:
        return []

    def clear(self) -> int:
        return 0


_NULL = NullTracePlane()
_INSTANCES: dict[Path, TracePlane] = {}


def trace_plane_dir() -> Path:
    """Plane directory: a sibling of the pickle entries in the cache dir."""
    return default_cache_dir() / "trace-plane"


def get_trace_plane() -> TracePlane | NullTracePlane:
    """The trace plane for the current environment (re-read per call, so
    tests and the CLI can repoint ``REPRO_CACHE_DIR`` at any time)."""
    if not cache_enabled():
        return _NULL
    root = trace_plane_dir()
    inst = _INSTANCES.get(root)
    if inst is None:
        inst = _INSTANCES[root] = TracePlane(root)
    return inst
