"""Paper-style rendering of harness results as plain-text tables."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from ..stats.metrics import geomean

__all__ = [
    "format_table",
    "render_fig1",
    "render_table1",
    "render_fig2",
    "render_fig3",
    "render_fig4",
    "render_fig7_8_9",
    "render_fig10_11",
    "render_llc_sensitivity",
    "render_runner_stats",
    "render_failures",
    "render_engine_fallbacks",
    "render_metrics",
]

#: rendered when keep-going execution left a figure with no surviving rows
EMPTY_NOTE = "(no surviving results — every contributing spec failed)"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Render rows as a fixed-width text table."""
    rows = [list(map(str, r)) for r in rows]
    widths = [len(h) for h in headers]
    for r in rows:
        for i, cell in enumerate(r):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    out = [line(headers), line("-" * w for w in widths)]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


def _pct(x: float) -> str:
    return f"{x:.2f}%"


def _f(x: float, nd: int = 3) -> str:
    return "nan" if (isinstance(x, float) and math.isnan(x)) else f"{x:.{nd}f}"


def render_fig1(rows: list[dict]) -> str:
    """Fig. 1: refresh performance and energy overheads."""
    if not rows:
        return EMPTY_NOTE
    body = [
        (
            r["benchmark"],
            _f(r["ipc_baseline"]),
            _f(r["ipc_norefresh"]),
            _pct(r["perf_degradation_pct"]),
            _pct(r["energy_overhead_pct"]),
        )
        for r in rows
    ]
    avg_perf = sum(r["perf_degradation_pct"] for r in rows) / len(rows)
    avg_energy = sum(r["energy_overhead_pct"] for r in rows) / len(rows)
    body.append(("AVERAGE", "", "", _pct(avg_perf), _pct(avg_energy)))
    return format_table(
        ["benchmark", "IPC(base)", "IPC(noref)", "perf loss", "extra energy"], body
    )


def render_table1(rows) -> str:
    """Table I: λ and β per benchmark at each window multiple."""
    if not rows:
        return EMPTY_NOTE
    mults = sorted(next(iter(rows)).windows)
    headers = ["benchmark"] + [f"λ@{m:g}x" for m in mults] + [f"β@{m:g}x" for m in mults]
    body = []
    for r in rows:
        body.append(
            [r.benchmark]
            + [_f(r.windows[m].lam, 2) for m in mults]
            + [_f(r.windows[m].beta, 2) for m in mults]
        )
    return format_table(headers, body)


def render_fig2(rows) -> str:
    """Fig. 2: percentage of non-blocking refreshes per window multiple."""
    if not rows:
        return EMPTY_NOTE
    mults = sorted(next(iter(rows)).windows)
    headers = ["benchmark"] + [f"non-blocking@{m:g}x" for m in mults]
    body = [
        [r.benchmark]
        + [_pct(100 * r.windows[m].non_blocking_fraction) for m in mults]
        for r in rows
    ]
    return format_table(headers, body)


def render_fig3(rows) -> str:
    """Fig. 3: blocked requests per blocking refresh (physical lock)."""
    if not rows:
        return EMPTY_NOTE
    body = [(r.benchmark, _f(r.avg_blocked, 2), r.max_blocked) for r in rows]
    return format_table(["benchmark", "avg blocked", "max blocked"], body)


def render_fig4(rows) -> str:
    """Fig. 4: dominant events E1 + E2 per window multiple."""
    if not rows:
        return EMPTY_NOTE
    mults = sorted(next(iter(rows)).windows)
    headers = ["benchmark"] + [f"E1+E2@{m:g}x" for m in mults]
    body = [
        [r.benchmark]
        + [_pct(100 * r.windows[m].dominant_fraction) for m in mults]
        for r in rows
    ]
    return format_table(headers, body)


def render_fig7_8_9(rows: list[dict]) -> str:
    """Figs. 7/8/9 combined: normalized IPC, energy and hit rates."""
    if not rows:
        return EMPTY_NOTE
    sizes = sorted(next(iter(rows))["rop"]) if rows else []
    headers = (
        ["benchmark", "noref IPC"]
        + [f"ROP{s} IPC" for s in sizes]
        + ["noref E"]
        + [f"ROP{s} E" for s in sizes]
        + [f"HR{s}" for s in sizes]
    )
    body = []
    for r in rows:
        body.append(
            [r["benchmark"], _f(r["norm_ipc_norefresh"])]
            + [_f(r["rop"][s]["norm_ipc"]) for s in sizes]
            + [_f(r["norm_energy_norefresh"])]
            + [_f(r["rop"][s]["norm_energy"]) for s in sizes]
            + [_f(r["rop"][s]["armed_hit_rate"], 2) for s in sizes]
        )
    return format_table(headers, body)


def render_fig10_11(rows: list[dict]) -> str:
    """Figs. 10/11: normalized weighted speedup and energy per mix."""
    if not rows:
        return EMPTY_NOTE
    systems = list(next(iter(rows))["norm_ws"])
    headers = (
        ["mix"]
        + [f"WS {s}" for s in systems]
        + [f"E {s}" for s in systems]
    )
    body = []
    for r in rows:
        body.append(
            [r["mix"]]
            + [_f(r["norm_ws"][s]) for s in systems]
            + [_f(r["norm_energy"][s]) for s in systems]
        )
    gm_ws = {s: geomean([r["norm_ws"][s] for r in rows]) for s in systems}
    gm_e = {s: geomean([r["norm_energy"][s] for r in rows]) for s in systems}
    body.append(
        ["GEOMEAN"] + [_f(gm_ws[s]) for s in systems] + [_f(gm_e[s]) for s in systems]
    )
    return format_table(headers, body)


def render_runner_stats(stats) -> str:
    """One-line execution summary: dedup, cache hits, jobs, wall clock.

    ``stats`` is a :class:`~repro.harness.runner.RunnerStats` (from
    ``last_stats()`` for the most recent plan, or ``session_stats()``
    for the process aggregate).
    """
    dedup = stats.requested - stats.unique
    line = (
        f"runner: {stats.requested} runs ({stats.unique} unique, {dedup} deduped) | "
        f"cache hits {stats.hits}/{stats.unique} ({100 * stats.hit_rate:.0f}%: "
        f"{stats.memo_hits} memo + {stats.cache_hits} disk) | "
        f"simulated {stats.executed} with jobs={stats.jobs} | "
        f"wall {stats.wall_s:.2f}s"
    )
    chunks = getattr(stats, "chunks", 0)
    if chunks and stats.jobs > 1:
        line += f" | {chunks} chunks"
    written = getattr(stats, "cache_bytes_written", 0)
    if written:
        line += f" | cache +{written / (1 << 20):.1f} MiB"
    # fault-tolerance counters only appear when something went wrong, so
    # the clean-run line stays stable
    extras = [
        f"{count} {label}"
        for label, count in (
            ("retries", stats.retries),
            ("timeouts", stats.timeouts),
            ("failed", stats.failed),
            ("pool rebuilds", stats.pool_rebuilds),
            ("cache write errors", getattr(stats, "cache_write_errors", 0)),
            ("engine fallbacks", getattr(stats, "engine_fallbacks", 0)),
            ("quarantined", getattr(stats, "quarantined", 0)),
            ("cache evictions", getattr(stats, "cache_evictions", 0)),
        )
        if count
    ]
    if extras:
        line += " | " + ", ".join(extras)
    return line


def render_metrics(snapshot: dict, *, prefix: str | None = None) -> str:
    """Table view of a :class:`~repro.telemetry.MetricsRegistry` snapshot.

    ``snapshot`` is either one run's ``MulticoreResult.metrics`` or a
    plan-wide ``PlanResults.merged_metrics()``; ``prefix`` keeps only
    metric names starting with it (e.g. ``"rop."``).
    """
    from ..telemetry import MetricsRegistry

    if not snapshot:
        return "(no metrics recorded)"

    def keep(name: str) -> bool:
        return prefix is None or name.startswith(prefix)

    body: list[tuple[str, str, str]] = []
    for name, value in snapshot.get("counters", {}).items():
        if keep(name):
            body.append((name, "counter", f"{value:g}"))
    for name in snapshot.get("gauges", {}):
        if keep(name):
            body.append((name, "gauge", _f(MetricsRegistry.gauge_value(snapshot, name))))
    for name, h in snapshot.get("histograms", {}).items():
        if not keep(name):
            continue
        n = sum(h["counts"])
        mean = h["sum"] / n if n else 0.0
        body.append((name, "histogram", f"n={n} mean={mean:.1f}"))
    if not body:
        return "(no metrics recorded)"
    body.sort()
    return format_table(["metric", "type", "value"], body)


def render_failures(failures) -> str:
    """Failure report: one row per terminally failed spec.

    ``failures`` is an iterable of
    :class:`~repro.harness.runner.SpecFailure` (``PlanResults.failures``
    or ``last_failures()``).
    """
    failures = list(failures)
    if not failures:
        return "no failures"
    body = [
        (
            f.label,
            f.kind,
            f.attempts,
            f"{f.exc_type}: {f.message}"[:72],
        )
        for f in failures
    ]
    table = format_table(["spec", "kind", "attempts", "error"], body)
    return (
        f"{len(failures)} spec(s) failed (completed results are cached; "
        f"re-run the same command to retry only these):\n{table}"
    )


def render_engine_fallbacks(fallbacks) -> str:
    """One-line warning when specs silently ran on the scalar engine.

    ``fallbacks`` is an iterable of
    :class:`~repro.harness.runner.EngineFallback`
    (``PlanResults.engine_fallbacks`` or ``last_fallbacks()``).  A sweep
    whose specs fell back runs at scalar speed without failing anything,
    which is easy to miss — this surfaces the count and the top decline
    reasons.  Returns ``""`` when every spec rode the requested engine.
    """
    fallbacks = list(fallbacks)
    if not fallbacks:
        return ""
    by_reason: dict[str, int] = {}
    for fb in fallbacks:
        reason = fb.reason if fb.kind == "declined" else f"fault: {fb.exc_type}"
        by_reason[reason] = by_reason.get(reason, 0) + 1
    top = sorted(by_reason.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
    detail = "; ".join(f"{n}x {reason}" for reason, n in top)
    return (
        f"warning: {len(fallbacks)} spec(s) ran on the scalar engine "
        f"({detail})"
    )


def render_llc_sensitivity(rows: list[dict], metric: str = "norm_ws") -> str:
    """Figs. 12/13/14: a metric vs LLC size, ROP normalized to Baseline.

    ``metric`` is one of ``norm_ws``, ``norm_energy``,
    ``rop_lock_hit_rate``, ``rop_armed_hit_rate``.
    """
    if not rows:
        return EMPTY_NOTE
    # union across rows: keep-going mixes may have lost different points
    llcs = sorted({llc for r in rows for llc in r["llc"]})
    headers = ["mix"] + [f"{llc // (1024 * 1024)}MB" for llc in llcs]
    body = []
    for r in rows:
        cells = [r["mix"]]
        for llc in llcs:
            data = r["llc"].get(llc)
            if data is None:  # point lost to a keep-going failure
                cells.append("—")
            elif metric in ("norm_ws", "norm_energy"):
                cells.append(_f(data[metric]["ROP"]))
            else:
                cells.append(_f(data[metric], 2))
        body.append(cells)
    return format_table(headers, body)
