"""Experiment drivers that regenerate every table and figure of the paper."""

from .cache import ArtifactCache, fingerprint, get_cache, set_cache_enabled
from .experiment import RunScale, SystemRun, alone_ipc, run_benchmark, scale_from_env
from .runner import (
    PlanResults,
    RunnerStats,
    RunPlan,
    RunSpec,
    execute_plan,
    last_stats,
    resolve_jobs,
    session_stats,
)
from .multi_core import (
    LLC_SWEEP_BYTES,
    MixRun,
    fig10_11_weighted_speedup,
    fig12_13_14_llc_sensitivity,
    run_mix,
    three_systems,
)
from .single_core import (
    DEFAULT_BENCHMARKS,
    SRAM_SIZES,
    fig1_refresh_overheads,
    fig2_to_4_and_table1,
    fig7_8_9_rop_comparison,
)
from . import reporting

__all__ = [
    "ArtifactCache",
    "fingerprint",
    "get_cache",
    "set_cache_enabled",
    "PlanResults",
    "RunnerStats",
    "RunPlan",
    "RunSpec",
    "execute_plan",
    "last_stats",
    "resolve_jobs",
    "session_stats",
    "RunScale",
    "SystemRun",
    "alone_ipc",
    "run_benchmark",
    "scale_from_env",
    "LLC_SWEEP_BYTES",
    "MixRun",
    "fig10_11_weighted_speedup",
    "fig12_13_14_llc_sensitivity",
    "run_mix",
    "three_systems",
    "DEFAULT_BENCHMARKS",
    "SRAM_SIZES",
    "fig1_refresh_overheads",
    "fig2_to_4_and_table1",
    "fig7_8_9_rop_comparison",
    "reporting",
]
