"""Experiment drivers that regenerate every table and figure of the paper."""

from .experiment import RunScale, SystemRun, alone_ipc, run_benchmark, scale_from_env
from .multi_core import (
    LLC_SWEEP_BYTES,
    MixRun,
    fig10_11_weighted_speedup,
    fig12_13_14_llc_sensitivity,
    run_mix,
    three_systems,
)
from .single_core import (
    DEFAULT_BENCHMARKS,
    SRAM_SIZES,
    fig1_refresh_overheads,
    fig2_to_4_and_table1,
    fig7_8_9_rop_comparison,
)
from . import reporting

__all__ = [
    "RunScale",
    "SystemRun",
    "alone_ipc",
    "run_benchmark",
    "scale_from_env",
    "LLC_SWEEP_BYTES",
    "MixRun",
    "fig10_11_weighted_speedup",
    "fig12_13_14_llc_sensitivity",
    "run_mix",
    "three_systems",
    "DEFAULT_BENCHMARKS",
    "SRAM_SIZES",
    "fig1_refresh_overheads",
    "fig2_to_4_and_table1",
    "fig7_8_9_rop_comparison",
    "reporting",
]
