"""Multi-programmed experiment drivers: Figs. 10–14.

The paper's 4-core setup: four benchmarks per workload mix on a 4-rank
memory; three systems are compared — *Baseline* (shared mapping),
*Baseline-RP* (rank partitioning only) and *ROP* (rank partitioning +
refresh-oriented prefetching). The 4 MB LLC is shared in the paper; we
model it as statically partitioned (each core filters through a
``size / 4`` slice), which keeps LLC filtering a pure per-trace function —
see DESIGN.md.

Each driver declares its full (mix × system [× LLC size]) grid — mix
co-simulations *and* the alone runs that feed the weighted-speedup
denominator — on one :class:`~repro.harness.runner.RunPlan` and executes
it once, so alone runs shared between systems (Baseline-RP and ROP use
the same ROP-off memory) are simulated once and everything fans out over
``REPRO_JOBS`` workers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import LlcConfig, SystemConfig
from ..cpu import MulticoreResult
from ..energy import EnergyBreakdown, system_energy
from ..stats.metrics import weighted_speedup
from ..workloads import WORKLOAD_MIXES, mix_profiles
from .experiment import RunScale
from .runner import PlanExecutionError, PlanResults, RunPlan, RunSpec, core_llc_share

__all__ = [
    "MixRun",
    "LLC_SWEEP_BYTES",
    "run_mix",
    "fig10_11_weighted_speedup",
    "fig12_13_14_llc_sensitivity",
]

#: LLC capacities of the paper's sensitivity study (Figs. 12–14)
LLC_SWEEP_BYTES: tuple[int, ...] = tuple(m * 1024 * 1024 for m in (1, 2, 4, 8))


@dataclass(frozen=True)
class MixRun:
    """One workload mix × one memory system."""

    mix: str
    system: str
    result: MulticoreResult
    energy: EnergyBreakdown
    weighted_speedup: float


def _core_llc_share(llc_bytes: int, cores: int = 4) -> LlcConfig:
    """Per-core slice of the statically partitioned shared LLC."""
    return core_llc_share(llc_bytes, cores)


@dataclass(frozen=True)
class _MixPoint:
    """Declared specs for one (mix, system) grid point."""

    mix: str
    system: str
    config: SystemConfig
    spec: RunSpec
    alone_specs: tuple[RunSpec, ...]

    def complete(self, results: PlanResults) -> bool:
        """Whether every spec of this point survived (keep-going mode)."""
        return results.ok(self.spec, *self.alone_specs)

    def assemble(self, results: PlanResults) -> MixRun:
        """Build the :class:`MixRun` once the plan has executed."""
        result = results[self.spec]
        alone = [results[s].ipc for s in self.alone_specs]
        return MixRun(
            mix=self.mix,
            system=self.system,
            result=result,
            energy=system_energy(result.stats, self.config),
            weighted_speedup=weighted_speedup(result.ipcs, alone),
        )


def _declare_mix(
    plan: RunPlan,
    mix: str,
    config: SystemConfig,
    scale: RunScale,
    *,
    system: str = "",
    llc_bytes: int | None = None,
) -> _MixPoint:
    """Declare the co-simulation and the four alone runs for one point."""
    spec = plan.mix(mix, config, scale, llc_bytes=llc_bytes)
    alone_specs = tuple(
        plan.alone(p.name, spec.trace_llc, scale, config) for p in mix_profiles(mix)
    )
    return _MixPoint(mix, system or "custom", config, spec, alone_specs)


def run_mix(
    mix: str,
    config: SystemConfig,
    scale: RunScale,
    *,
    system: str = "",
    llc_bytes: int | None = None,
    jobs: int | None = None,
) -> MixRun:
    """Run one mix on one memory system and compute its weighted speedup."""
    plan = RunPlan()
    point = _declare_mix(plan, mix, config, scale, system=system, llc_bytes=llc_bytes)
    results = plan.execute(jobs=jobs)
    if not point.complete(results):
        # keep-going cannot salvage a single point: every spec is needed
        raise PlanExecutionError(results.failures)
    return point.assemble(results)


def three_systems(
    llc_bytes: int | None = None, *, training_refreshes: int = 50
) -> dict[str, SystemConfig]:
    """The paper's three multi-core systems, optionally at a given LLC size."""
    base = SystemConfig.quad_core(rank_partitioned=False)
    rp = SystemConfig.quad_core(rank_partitioned=True)
    systems = {
        "Baseline": base,
        "Baseline-RP": rp,
        "ROP": rp.with_rop(training_refreshes=training_refreshes),
    }
    if llc_bytes is not None:
        systems = {k: v.with_llc_size(llc_bytes) for k, v in systems.items()}
    return systems


def fig10_11_specs(
    mixes: tuple[str, ...] = tuple(WORKLOAD_MIXES),
    scale: RunScale = RunScale(),
) -> list[RunSpec]:
    """Every spec the Figs. 10/11 sweep executes (mixes + alone runs).

    Declared against a throwaway plan with the same grid logic as
    :func:`fig10_11_weighted_speedup`, so benchmarks can enumerate the
    sweep's inputs — e.g. to pre-materialize its traces outside a timed
    region — without duplicating the mix/system construction.
    """
    plan = RunPlan()
    systems = three_systems(training_refreshes=scale.training_refreshes)
    specs: list[RunSpec] = []
    for mix in mixes:
        for name, cfg in systems.items():
            point = _declare_mix(plan, mix, cfg, scale, system=name)
            specs.append(point.spec)
            specs.extend(point.alone_specs)
    return specs


def fig10_11_weighted_speedup(
    mixes: tuple[str, ...] = tuple(WORKLOAD_MIXES),
    scale: RunScale = RunScale(),
    *,
    jobs: int | None = None,
) -> list[dict]:
    """Figs. 10/11: normalized weighted speedup and energy, three systems."""
    systems = three_systems(training_refreshes=scale.training_refreshes)
    plan = RunPlan()
    grid = {
        mix: {
            name: _declare_mix(plan, mix, cfg, scale, system=name)
            for name, cfg in systems.items()
        }
        for mix in mixes
    }
    results = plan.execute(jobs=jobs)
    rows = []
    for mix in mixes:
        # keep-going: a mix contributes a row only if all three systems
        # survived — the row normalizes everything to Baseline
        if not all(point.complete(results) for point in grid[mix].values()):
            continue
        runs = {name: point.assemble(results) for name, point in grid[mix].items()}
        base = runs["Baseline"]
        rows.append(
            {
                "mix": mix,
                "ws": {name: r.weighted_speedup for name, r in runs.items()},
                "norm_ws": {
                    name: r.weighted_speedup / base.weighted_speedup
                    for name, r in runs.items()
                },
                "norm_energy": {
                    name: r.energy.total / base.energy.total for name, r in runs.items()
                },
                "rop_lock_hit_rate": runs["ROP"].result.stats.lock_hit_rate,
            }
        )
    return rows


def fig12_13_14_llc_sensitivity(
    mixes: tuple[str, ...] = tuple(WORKLOAD_MIXES),
    scale: RunScale = RunScale(),
    llc_sweep: tuple[int, ...] = LLC_SWEEP_BYTES,
    *,
    jobs: int | None = None,
) -> list[dict]:
    """Figs. 12/13/14: weighted speedup, energy and hit rate vs LLC size.

    Values are normalized to the *Baseline* system at the same LLC size,
    matching the paper's presentation.
    """
    plan = RunPlan()
    grid: dict[str, dict[int, dict[str, _MixPoint]]] = {}
    for mix in mixes:
        grid[mix] = {}
        for llc_bytes in llc_sweep:
            systems = three_systems(
                llc_bytes, training_refreshes=scale.training_refreshes
            )
            grid[mix][llc_bytes] = {
                name: _declare_mix(
                    plan, mix, cfg, scale, system=name, llc_bytes=llc_bytes
                )
                for name, cfg in systems.items()
            }
    results = plan.execute(jobs=jobs)
    rows = []
    for mix in mixes:
        per_llc = {}
        for llc_bytes, points in grid[mix].items():
            # keep-going: drop the (mix, LLC) point unless all three
            # Baseline-normalized systems survived
            if not all(point.complete(results) for point in points.values()):
                continue
            runs = {name: point.assemble(results) for name, point in points.items()}
            base = runs["Baseline"]
            per_llc[llc_bytes] = {
                "norm_ws": {
                    name: r.weighted_speedup / base.weighted_speedup
                    for name, r in runs.items()
                },
                "norm_energy": {
                    name: r.energy.total / base.energy.total for name, r in runs.items()
                },
                "rop_lock_hit_rate": runs["ROP"].result.stats.lock_hit_rate,
                "rop_armed_hit_rate": (
                    runs["ROP"].result.rop_summary["armed_hit_rate"]
                    if runs["ROP"].result.rop_summary
                    else 0.0
                ),
            }
        if per_llc:
            rows.append({"mix": mix, "llc": per_llc})
    return rows
