"""Single-core experiment drivers: Figs. 1–4, 7–9 and Table I.

Every function returns plain data structures (lists of row dicts) that
:mod:`repro.harness.reporting` renders in the paper's format, so the same
drivers back the pytest benchmarks, the examples and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import RefreshMode, SystemConfig
from ..energy import system_energy
from ..stats.refresh_analysis import WindowAnalysis, analyze_rank, blocked_per_refresh
from ..workloads import SPEC_PROFILES
from .experiment import RunScale
from .runner import RunPlan

__all__ = [
    "DEFAULT_BENCHMARKS",
    "SRAM_SIZES",
    "fig1_refresh_overheads",
    "fig2_to_4_and_table1",
    "fig7_8_9_rop_comparison",
]

#: the paper's twelve benchmarks, intensive first (Table II order)
DEFAULT_BENCHMARKS: tuple[str, ...] = tuple(SPEC_PROFILES)

#: SRAM buffer capacities evaluated in Figs. 7–9
SRAM_SIZES: tuple[int, ...] = (16, 32, 64, 128)


# ---------------------------------------------------------------- Fig. 1


def fig1_refresh_overheads(
    benchmarks: tuple[str, ...] = DEFAULT_BENCHMARKS,
    scale: RunScale = RunScale(),
    config: SystemConfig | None = None,
    *,
    jobs: int | None = None,
) -> list[dict]:
    """Fig. 1: baseline vs idealized no-refresh memory.

    Returns one row per benchmark with the IPC degradation and extra
    energy refresh causes.
    """
    cfg = config if config is not None else SystemConfig.single_core()
    ideal_cfg = cfg.with_refresh_mode(RefreshMode.NONE)
    plan = RunPlan()
    grid = {
        name: (plan.benchmark(name, cfg, scale), plan.benchmark(name, ideal_cfg, scale))
        for name in benchmarks
    }
    results = plan.execute(jobs=jobs)
    rows = []
    for name, (base_spec, ideal_spec) in grid.items():
        if not results.ok(base_spec, ideal_spec):
            continue  # keep-going: this benchmark lost a spec, skip its row
        base, ideal = results[base_spec], results[ideal_spec]
        base_e = system_energy(base.stats, cfg)
        ideal_e = system_energy(ideal.stats, ideal_cfg)
        rows.append(
            {
                "benchmark": name,
                "ipc_baseline": base.ipc,
                "ipc_norefresh": ideal.ipc,
                "perf_degradation_pct": (ideal.ipc / base.ipc - 1.0) * 100.0,
                "energy_baseline_mj": base_e.total_mj,
                "energy_norefresh_mj": ideal_e.total_mj,
                "energy_overhead_pct": (base_e.total / ideal_e.total - 1.0) * 100.0,
            }
        )
    return rows


# ---------------------------------------------------------- Figs. 2–4, Table I


@dataclass(frozen=True)
class RefreshAnalysisRow:
    """Per-benchmark offline analysis results across window multiples."""

    benchmark: str
    #: window multiple → WindowAnalysis (λ, β, E1/E2, non-blocking %)
    windows: dict[float, WindowAnalysis]
    #: reads blocked per *blocking* refresh (physical tRFC lock)
    avg_blocked: float
    max_blocked: int


def fig2_to_4_and_table1(
    benchmarks: tuple[str, ...] = DEFAULT_BENCHMARKS,
    scale: RunScale = RunScale(),
    config: SystemConfig | None = None,
    window_mults: tuple[float, ...] = (1.0, 2.0, 4.0),
    *,
    jobs: int | None = None,
) -> list[RefreshAnalysisRow]:
    """One baseline run per benchmark, analyzed at 1×/2×/4× windows.

    Covers Fig. 2 (non-blocking fraction), Fig. 3 (blocked requests per
    blocking refresh), Fig. 4 (dominant events E1/E2) and Table I (λ, β).
    """
    cfg = config if config is not None else SystemConfig.single_core()
    refi = cfg.effective_timings().refi
    plan = RunPlan()
    specs = {
        name: plan.benchmark(name, cfg, scale, record_events=True)
        for name in benchmarks
    }
    results = plan.execute(jobs=jobs)
    rows = []
    for name, spec in specs.items():
        if not results.ok(spec):
            continue  # keep-going: benchmark failed, report has no row
        events = results[spec].events[(0, 0)]
        windows = {
            mult: analyze_rank(events, int(refi * mult)) for mult in window_mults
        }
        blocked = blocked_per_refresh(events)
        blocking = blocked[blocked > 0]
        rows.append(
            RefreshAnalysisRow(
                benchmark=name,
                windows=windows,
                avg_blocked=float(blocking.mean()) if len(blocking) else 0.0,
                max_blocked=int(blocked.max()) if len(blocked) else 0,
            )
        )
    return rows


# ---------------------------------------------------------------- Figs. 7–9


def fig7_8_9_rop_comparison(
    benchmarks: tuple[str, ...] = DEFAULT_BENCHMARKS,
    scale: RunScale = RunScale(),
    config: SystemConfig | None = None,
    sram_sizes: tuple[int, ...] = SRAM_SIZES,
    *,
    jobs: int | None = None,
) -> list[dict]:
    """Figs. 7/8/9: baseline vs ROP (several buffer sizes) vs no-refresh.

    Returns one row per benchmark with normalized IPC (Fig. 7), normalized
    energy (Fig. 8) and the SRAM hit rate per buffer size (Fig. 9).

    The whole (benchmark × system) grid is declared up front and executed
    as one plan, so runs shared with other figures are deduplicated and
    cache misses fan out over ``jobs`` worker processes.
    """
    cfg = config if config is not None else SystemConfig.single_core()
    ideal_cfg = cfg.with_refresh_mode(RefreshMode.NONE)
    rop_cfgs = {
        size: cfg.with_rop(sram_lines=size, training_refreshes=scale.training_refreshes)
        for size in sram_sizes
    }
    plan = RunPlan()
    grid = {
        name: (
            plan.benchmark(name, cfg, scale),
            plan.benchmark(name, ideal_cfg, scale),
            {size: plan.benchmark(name, rop_cfgs[size], scale) for size in sram_sizes},
        )
        for name in benchmarks
    }
    results = plan.execute(jobs=jobs)
    rows = []
    for name, (base_spec, ideal_spec, rop_specs) in grid.items():
        if not results.ok(base_spec, ideal_spec, *rop_specs.values()):
            continue  # keep-going: a system run failed, skip the benchmark
        base, ideal = results[base_spec], results[ideal_spec]
        base_e = system_energy(base.stats, cfg)
        ideal_e = system_energy(ideal.stats, ideal_cfg)
        row: dict = {
            "benchmark": name,
            "ipc_baseline": base.ipc,
            "norm_ipc_norefresh": ideal.ipc / base.ipc,
            "norm_energy_norefresh": ideal_e.total / base_e.total,
            "rop": {},
        }
        for size in sram_sizes:
            rop = results[rop_specs[size]]
            rop_e = system_energy(rop.stats, rop_cfgs[size])
            row["rop"][size] = {
                "norm_ipc": rop.ipc / base.ipc,
                "norm_energy": rop_e.total / base_e.total,
                "lock_hit_rate": rop.stats.lock_hit_rate,
                "armed_hit_rate": (
                    rop.rop_summary["armed_hit_rate"] if rop.rop_summary else 0.0
                ),
            }
        rows.append(row)
    return rows
