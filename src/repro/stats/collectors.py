"""Counters and event recorders populated during a simulation run.

:class:`ControllerStats` holds the scalar counters every run produces
(request mix, row-buffer outcomes, latencies, refresh and SRAM activity);
the energy model and the reporting harness read them. :class:`EventRecorder`
is the per-rank timestamp view the paper's offline analyses (Figs. 2–4,
Table I) consume; since the telemetry subsystem landed it is a thin,
**deprecated** shim over :class:`~repro.telemetry.TraceSink` — events are
stored once, in the sink's columnar buffer, and materialized into
:class:`RankEvents` lists on demand.  New code should query the sink
directly (``sink.select(category=..., kind=...)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..telemetry import Category, Kind, TraceSink

__all__ = ["ControllerStats", "EventRecorder", "RankEvents"]


@dataclass
class ControllerStats:
    """Scalar counters for one memory-controller run."""

    # request mix
    reads: int = 0
    writes: int = 0
    prefetches: int = 0

    # row-buffer outcomes for DRAM-serviced demand accesses
    row_hits: int = 0
    row_closed: int = 0
    row_conflicts: int = 0

    # latency accounting (controller cycles, demand reads only)
    read_latency_sum: int = 0
    read_latency_max: int = 0
    reads_completed: int = 0

    # refresh activity
    refreshes: int = 0
    refresh_locked_cycles: int = 0
    #: demand reads that arrived while their target rank was frozen
    reads_arriving_in_lock: int = 0
    #: of those, reads serviced by the SRAM buffer while the lock was held
    sram_hits_in_lock: int = 0
    #: SRAM hits outside a lock (buffer still warm after the refresh)
    sram_hits_out_of_lock: int = 0
    #: lines filled into the SRAM buffer by prefetches
    sram_fills: int = 0
    #: lines invalidated from the buffer by demand writes
    sram_invalidations: int = 0
    #: prefetch opportunities where the throttle decided not to prefetch
    prefetch_skipped: int = 0
    #: DRAM cycles spent fetching prefetch lines (refresh-delay cost)
    prefetch_fetch_cycles: int = 0

    # simulated time
    end_cycle: int = 0

    @property
    def demand_accesses(self) -> int:
        """Total demand (read + write) requests."""
        return self.reads + self.writes

    @property
    def avg_read_latency(self) -> float:
        """Mean demand-read latency in controller cycles."""
        if self.reads_completed == 0:
            return 0.0
        return self.read_latency_sum / self.reads_completed

    @property
    def sram_hits(self) -> int:
        """Total reads serviced from the SRAM buffer."""
        return self.sram_hits_in_lock + self.sram_hits_out_of_lock

    @property
    def lock_hit_rate(self) -> float:
        """The paper's Fig. 9 metric: SRAM hits ÷ reads arriving in a lock."""
        if self.reads_arriving_in_lock == 0:
            return 0.0
        return self.sram_hits_in_lock / self.reads_arriving_in_lock

    @property
    def row_hit_rate(self) -> float:
        """Row-buffer hit fraction among DRAM-serviced demand accesses."""
        total = self.row_hits + self.row_closed + self.row_conflicts
        return self.row_hits / total if total else 0.0

    def merge(self, other: "ControllerStats") -> None:
        """Accumulate another stats object into this one (for sweeps)."""
        for name in self.__dataclass_fields__:
            if name == "read_latency_max":
                self.read_latency_max = max(self.read_latency_max, other.read_latency_max)
            elif name == "end_cycle":
                self.end_cycle = max(self.end_cycle, other.end_cycle)
            else:
                setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass
class RankEvents:
    """Per-rank event timestamps captured by :class:`EventRecorder`."""

    read_arrivals: list[int] = field(default_factory=list)
    write_arrivals: list[int] = field(default_factory=list)
    refresh_starts: list[int] = field(default_factory=list)
    refresh_ends: list[int] = field(default_factory=list)

    def arrays(self) -> dict[str, np.ndarray]:
        """Snapshot the lists as int64 NumPy arrays."""
        return {
            "reads": np.asarray(self.read_arrivals, dtype=np.int64),
            "writes": np.asarray(self.write_arrivals, dtype=np.int64),
            "refresh_starts": np.asarray(self.refresh_starts, dtype=np.int64),
            "refresh_ends": np.asarray(self.refresh_ends, dtype=np.int64),
        }


class EventRecorder:
    """Per-rank timestamp view for offline refresh analysis.

    .. deprecated::
        The recorder is now a compatibility shim over
        :class:`~repro.telemetry.TraceSink`; its constructor and the
        ``on_request`` / ``on_refresh`` / ``rank_events`` / ``all_events``
        API are unchanged, but storage is the sink's columnar buffer.
        Query the sink directly in new code.
    """

    def __init__(self, channels: int, ranks: int, sink: TraceSink | None = None) -> None:
        self.channels = channels
        self.ranks = ranks
        if sink is None:
            sink = TraceSink(
                capacity=1 << 12,
                categories={Category.REQUEST, Category.REFRESH},
                policy="grow",
            )
        self.sink = sink

    def on_request(self, channel: int, rank: int, cycle: int, is_read: bool) -> None:
        """Record a demand request arrival."""
        kind = Kind.READ_ARRIVAL if is_read else Kind.WRITE_ARRIVAL
        self.sink.emit(Category.REQUEST, kind, cycle, channel, rank)

    def on_refresh(self, channel: int, rank: int, start: int, end: int) -> None:
        """Record one refresh lock window (whole-rank: b=-1)."""
        self.sink.emit(
            Category.REFRESH, Kind.REFRESH_WINDOW, start, channel, rank, a=end, b=-1
        )

    def rank_events(self, channel: int = 0, rank: int = 0) -> RankEvents:
        """Events of one rank, rebuilt from the sink's columns."""
        return self._materialize(self.sink.snapshot(), channel, rank)

    def all_events(self) -> dict[tuple[int, int], RankEvents]:
        """All per-rank event records."""
        snap = self.sink.snapshot()
        return {
            (ch, rk): self._materialize(snap, ch, rk)
            for ch in range(self.channels)
            for rk in range(self.ranks)
        }

    def _materialize(
        self, snap: dict[str, np.ndarray], channel: int, rank: int
    ) -> RankEvents:
        here = (snap["channel"] == channel) & (snap["rank"] == rank)

        def cycles(kind: Kind) -> np.ndarray:
            return snap["cycle"][here & (snap["kind"] == int(kind))]

        windows = here & (snap["kind"] == int(Kind.REFRESH_WINDOW))
        return RankEvents(
            read_arrivals=cycles(Kind.READ_ARRIVAL).tolist(),
            write_arrivals=cycles(Kind.WRITE_ARRIVAL).tolist(),
            refresh_starts=snap["cycle"][windows].tolist(),
            refresh_ends=snap["a"][windows].tolist(),
        )
