"""Counters and event recorders populated during a simulation run.

:class:`ControllerStats` holds the scalar counters every run produces
(request mix, row-buffer outcomes, latencies, refresh and SRAM activity);
the energy model and the reporting harness read them. :class:`EventRecorder`
optionally captures per-event timestamps (request arrivals and refresh
windows) for the paper's offline analyses (Figs. 2–4, Table I); it is off
by default because it costs memory proportional to the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ControllerStats", "EventRecorder", "RankEvents"]


@dataclass
class ControllerStats:
    """Scalar counters for one memory-controller run."""

    # request mix
    reads: int = 0
    writes: int = 0
    prefetches: int = 0

    # row-buffer outcomes for DRAM-serviced demand accesses
    row_hits: int = 0
    row_closed: int = 0
    row_conflicts: int = 0

    # latency accounting (controller cycles, demand reads only)
    read_latency_sum: int = 0
    read_latency_max: int = 0
    reads_completed: int = 0

    # refresh activity
    refreshes: int = 0
    refresh_locked_cycles: int = 0
    #: demand reads that arrived while their target rank was frozen
    reads_arriving_in_lock: int = 0
    #: of those, reads serviced by the SRAM buffer while the lock was held
    sram_hits_in_lock: int = 0
    #: SRAM hits outside a lock (buffer still warm after the refresh)
    sram_hits_out_of_lock: int = 0
    #: lines filled into the SRAM buffer by prefetches
    sram_fills: int = 0
    #: lines invalidated from the buffer by demand writes
    sram_invalidations: int = 0
    #: prefetch opportunities where the throttle decided not to prefetch
    prefetch_skipped: int = 0
    #: DRAM cycles spent fetching prefetch lines (refresh-delay cost)
    prefetch_fetch_cycles: int = 0

    # simulated time
    end_cycle: int = 0

    @property
    def demand_accesses(self) -> int:
        """Total demand (read + write) requests."""
        return self.reads + self.writes

    @property
    def avg_read_latency(self) -> float:
        """Mean demand-read latency in controller cycles."""
        if self.reads_completed == 0:
            return 0.0
        return self.read_latency_sum / self.reads_completed

    @property
    def sram_hits(self) -> int:
        """Total reads serviced from the SRAM buffer."""
        return self.sram_hits_in_lock + self.sram_hits_out_of_lock

    @property
    def lock_hit_rate(self) -> float:
        """The paper's Fig. 9 metric: SRAM hits ÷ reads arriving in a lock."""
        if self.reads_arriving_in_lock == 0:
            return 0.0
        return self.sram_hits_in_lock / self.reads_arriving_in_lock

    @property
    def row_hit_rate(self) -> float:
        """Row-buffer hit fraction among DRAM-serviced demand accesses."""
        total = self.row_hits + self.row_closed + self.row_conflicts
        return self.row_hits / total if total else 0.0

    def merge(self, other: "ControllerStats") -> None:
        """Accumulate another stats object into this one (for sweeps)."""
        for name in self.__dataclass_fields__:
            if name == "read_latency_max":
                self.read_latency_max = max(self.read_latency_max, other.read_latency_max)
            elif name == "end_cycle":
                self.end_cycle = max(self.end_cycle, other.end_cycle)
            else:
                setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass
class RankEvents:
    """Per-rank event timestamps captured by :class:`EventRecorder`."""

    read_arrivals: list[int] = field(default_factory=list)
    write_arrivals: list[int] = field(default_factory=list)
    refresh_starts: list[int] = field(default_factory=list)
    refresh_ends: list[int] = field(default_factory=list)

    def arrays(self) -> dict[str, np.ndarray]:
        """Snapshot the lists as int64 NumPy arrays."""
        return {
            "reads": np.asarray(self.read_arrivals, dtype=np.int64),
            "writes": np.asarray(self.write_arrivals, dtype=np.int64),
            "refresh_starts": np.asarray(self.refresh_starts, dtype=np.int64),
            "refresh_ends": np.asarray(self.refresh_ends, dtype=np.int64),
        }


class EventRecorder:
    """Optional per-rank timestamp capture for offline refresh analysis."""

    def __init__(self, channels: int, ranks: int) -> None:
        self._events = {
            (ch, rk): RankEvents() for ch in range(channels) for rk in range(ranks)
        }

    def on_request(self, channel: int, rank: int, cycle: int, is_read: bool) -> None:
        """Record a demand request arrival."""
        ev = self._events[(channel, rank)]
        (ev.read_arrivals if is_read else ev.write_arrivals).append(cycle)

    def on_refresh(self, channel: int, rank: int, start: int, end: int) -> None:
        """Record one refresh lock window."""
        ev = self._events[(channel, rank)]
        ev.refresh_starts.append(start)
        ev.refresh_ends.append(end)

    def rank_events(self, channel: int = 0, rank: int = 0) -> RankEvents:
        """Events of one rank."""
        return self._events[(channel, rank)]

    def all_events(self) -> dict[tuple[int, int], RankEvents]:
        """All per-rank event records."""
        return self._events
