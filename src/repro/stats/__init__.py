"""Statistics collection and the paper's offline refresh analyses."""

from .collectors import ControllerStats, EventRecorder, RankEvents
from .invariants import InvariantViolation, RequestLog, check_run
from .metrics import geomean, normalize, percent_change, speedup, weighted_speedup
from .refresh_analysis import WindowAnalysis, analyze_rank, blocked_per_refresh

__all__ = [
    "ControllerStats",
    "EventRecorder",
    "RankEvents",
    "InvariantViolation",
    "RequestLog",
    "check_run",
    "geomean",
    "normalize",
    "percent_change",
    "speedup",
    "weighted_speedup",
    "WindowAnalysis",
    "analyze_rank",
    "blocked_per_refresh",
]
