"""Simulator invariant checks.

A transaction-level model is only trustworthy if its shortcuts never
violate the physical constraints it claims to enforce. This module
audits a finished run — via the request log collected by
:class:`RequestLog` and the per-rank event records — against the
invariants the DDR4 model must uphold:

* **causality** — no request completes before it arrives, issues before
  it arrives, or completes before it issues;
* **bus exclusivity** — data bursts on one channel never overlap;
* **lock exclusion** — no DRAM data transfer overlaps its rank's refresh
  lock (SRAM service is exempt: the buffer lives in the controller;
  per-bank refresh freezes only the recorded bank, so the rank's other
  banks may legally keep serving);
* **refresh rate** — each rank performs one refresh per tREFI on average
  (within the JEDEC ±8-interval flexibility);
* **service accounting** — every demand read completes exactly once.

The test suite runs these after randomized workloads; downstream users
can wire :class:`RequestLog` into their own experiments the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dram.request import ReqKind, Request, ServiceKind

__all__ = ["InvariantViolation", "RequestLog", "check_run"]


class InvariantViolation(AssertionError):
    """A physical constraint of the memory model was violated.

    Structured so harness code can aggregate and render violations
    without parsing the message: ``site`` names where the constraint
    lives (e.g. ``causality``, ``bus.ch0``, ``refresh-rate``), ``cycle``
    anchors it in simulated time (−1 when not cycle-specific) and
    ``detail`` is the human-readable explanation.
    """

    def __init__(self, site: str, detail: str, cycle: int = -1) -> None:
        self.site = site
        self.detail = detail
        self.cycle = cycle
        loc = f"[{site}]" + (f" @cycle {cycle}" if cycle >= 0 else "")
        super().__init__(f"{loc} {detail}")


@dataclass
class RequestLog:
    """Collects completed requests for post-run auditing.

    Attach with ``log.attach(memory_system)`` *before* submitting traffic;
    it wraps the controller's submit path to capture every request object.
    ``attach`` returns the log, and the log is a context manager, so the
    patch is always undone::

        with RequestLog().attach(ms) as log:
            ...drive traffic...
        check_run(log, ms)

    Call :meth:`detach` (idempotent) to restore the controller's original
    ``submit`` outside a ``with`` block.
    """

    requests: list[Request] = field(default_factory=list)
    #: (controller, original submit) while attached, else None
    _attached: tuple | None = field(default=None, repr=False, compare=False)

    def attach(self, memory_system) -> "RequestLog":
        """Start capturing every request submitted to ``memory_system``."""
        if self._attached is not None:
            raise RuntimeError("RequestLog is already attached; detach() first")
        controller = memory_system.controller
        original = controller.submit

        def wrapped(kind, line, cycle, core_id=0, on_complete=None, coord=None):
            req = original(kind, line, cycle, core_id, on_complete, coord)
            self.requests.append(req)
            return req

        controller.submit = wrapped  # type: ignore[method-assign]
        self._attached = (controller, original)
        return self

    def detach(self) -> None:
        """Restore the controller's original ``submit`` (idempotent)."""
        if self._attached is not None:
            controller, original = self._attached
            controller.submit = original  # type: ignore[method-assign]
            self._attached = None

    def __enter__(self) -> "RequestLog":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    @property
    def reads(self) -> list[Request]:
        """Captured demand reads."""
        return [r for r in self.requests if r.kind is ReqKind.READ]


def _check_causality(log: RequestLog) -> None:
    for r in log.requests:
        if r.complete_cycle < 0:
            continue
        if r.complete_cycle < r.arrival:
            raise InvariantViolation(
                "causality", f"completes before arrival: {r}", cycle=r.complete_cycle
            )
        if r.issue_cycle >= 0 and r.issue_cycle < r.arrival:
            raise InvariantViolation(
                "causality", f"issues before arrival: {r}", cycle=r.issue_cycle
            )
        if r.issue_cycle >= 0 and r.complete_cycle < r.issue_cycle:
            raise InvariantViolation(
                "causality", f"completes before issue: {r}", cycle=r.complete_cycle
            )


def _check_reads_complete(log: RequestLog) -> None:
    for r in log.reads:
        if r.complete_cycle < 0:
            raise InvariantViolation(
                "service-accounting", f"demand read never completed: {r}"
            )


def _check_bus_exclusive(log: RequestLog, burst: int) -> None:
    """DRAM data bursts on a channel must not overlap in time."""
    per_channel: dict[int, list[tuple[int, int]]] = {}
    for r in log.requests:
        if r.complete_cycle < 0 or r.service is ServiceKind.SRAM:
            continue
        if r.kind is not ReqKind.READ:
            continue  # writes complete silently; their windows are internal
        ch = r.coord.channel
        per_channel.setdefault(ch, []).append(
            (r.complete_cycle - burst, r.complete_cycle)
        )
    for ch, windows in per_channel.items():
        windows.sort()
        for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
            if s2 < e1:
                raise InvariantViolation(
                    f"bus.ch{ch}",
                    f"overlapping data bursts [{s1},{e1}) and [{s2},{e2})",
                    cycle=s2,
                )


def _refresh_locks(memory_system) -> dict[tuple[int, int], list[tuple[int, int, int]]]:
    """Lock windows ``(start, end, bank)`` per rank, from the telemetry sink.

    ``bank`` is -1 for an all-bank refresh (the whole rank freezes); a
    per-bank refresh freezes only the recorded bank, so reads served by
    the rank's other banks during the window are legal.
    """
    from ..telemetry import Category, Kind

    snap = memory_system.recorder.sink.snapshot()
    sel = (snap["cat"] == int(Category.REFRESH)) & (
        snap["kind"] == int(Kind.REFRESH_WINDOW)
    )
    locks: dict[tuple[int, int], list[tuple[int, int, int]]] = {}
    for ch, rk, s, e, b in zip(
        snap["channel"][sel],
        snap["rank"][sel],
        snap["cycle"][sel],
        snap["a"][sel],
        snap["b"][sel],
    ):
        locks.setdefault((int(ch), int(rk)), []).append((int(s), int(e), int(b)))
    for windows in locks.values():
        windows.sort()
    return locks


def _check_lock_exclusion(log: RequestLog, locks) -> None:
    """No DRAM transfer may land inside its bank's/rank's refresh lock."""
    for r in log.requests:
        if r.complete_cycle < 0 or r.service is ServiceKind.SRAM:
            continue
        if r.kind is not ReqKind.READ:
            continue
        key = (r.coord.channel, r.coord.rank)
        for s, e, bank in locks.get(key, ()):
            if bank >= 0 and r.coord.bank != bank:
                continue  # per-bank refresh: other banks keep serving
            if s < r.complete_cycle <= e and r.complete_cycle - 1 >= s:
                # the burst's last beat lies inside the lock window
                raise InvariantViolation(
                    "lock-exclusion",
                    f"DRAM read data during refresh lock [{s},{e}): {r}",
                    cycle=r.complete_cycle,
                )


def _check_refresh_rate(events, refi: int, end_cycle: int) -> None:
    for key, ev in events.items():
        n = len(ev.refresh_starts)
        if end_cycle < 2 * refi:
            continue  # too short to judge
        expected = end_cycle // refi
        if abs(n - expected) > 9:  # JEDEC: up to 8 postponed + 1 in flight
            raise InvariantViolation(
                f"refresh-rate.{key}",
                f"{n} refreshes over {end_cycle} cycles (expected ≈{expected})",
            )


def check_run(
    log: RequestLog,
    memory_system,
    *,
    check_refresh: bool = True,
) -> None:
    """Audit a finished run; raises :class:`InvariantViolation` on failure."""
    t = memory_system.controller.t
    _check_causality(log)
    _check_reads_complete(log)
    _check_bus_exclusive(log, t.burst)
    if memory_system.recorder is not None:
        events = memory_system.recorder.all_events()
        _check_lock_exclusion(log, _refresh_locks(memory_system))
        if check_refresh and memory_system.config.refresh.enabled:
            _check_refresh_rate(events, t.refi, memory_system.stats.end_cycle)
