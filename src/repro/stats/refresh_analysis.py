"""Offline refresh/traffic correlation analysis (Section III of the paper).

Operates on per-rank event timestamps — the
:class:`~repro.stats.collectors.RankEvents` view that
:class:`~repro.stats.collectors.EventRecorder` materializes from the
telemetry :class:`~repro.telemetry.TraceSink` — and reproduces, fully
vectorized with ``numpy.searchsorted``:

* **Fig. 2** — fraction of *non-blocking* refreshes at 1×/2×/4× examined
  windows (no read arrives within the window after the refresh start);
* **Fig. 3** — average number of requests blocked per *blocking* refresh
  (reads arriving while the rank is actually locked);
* **Fig. 4** — fraction of the two dominant events E1 (B>0 ∧ A>0) and
  E2 (B=0 ∧ A=0);
* **Table I** — the conditional probabilities λ = P{A>0 | B>0} and
  β = P{A=0 | B=0}.

``B`` counts reads *and* writes in the window before a refresh; ``A``
counts reads only in the window after the refresh start — exactly the
profiler's definitions (Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .collectors import RankEvents

__all__ = ["WindowAnalysis", "analyze_rank", "blocked_per_refresh", "merge_rank_events"]


@dataclass(frozen=True)
class WindowAnalysis:
    """Per-refresh window occupancy counts and derived paper metrics."""

    window: int  #: B/A window length in controller cycles
    b_counts: np.ndarray  #: requests (R+W) in [T−W, T) per refresh
    a_counts: np.ndarray  #: reads in [T, T+W) per refresh

    @property
    def refreshes(self) -> int:
        """Number of refreshes analyzed."""
        return len(self.b_counts)

    # -- Table I ------------------------------------------------------------------

    @property
    def lam(self) -> float:
        """λ = P{A>0 | B>0}; NaN when B>0 never occurred."""
        b_pos = self.b_counts > 0
        n = int(b_pos.sum())
        if n == 0:
            return float("nan")
        return float((self.a_counts[b_pos] > 0).mean())

    @property
    def beta(self) -> float:
        """β = P{A=0 | B=0}; NaN when B=0 never occurred."""
        b_zero = self.b_counts == 0
        n = int(b_zero.sum())
        if n == 0:
            return float("nan")
        return float((self.a_counts[b_zero] == 0).mean())

    # -- Fig. 4 -------------------------------------------------------------------

    @property
    def e1_fraction(self) -> float:
        """Fraction of refreshes with B>0 ∧ A>0."""
        if self.refreshes == 0:
            return 0.0
        return float(((self.b_counts > 0) & (self.a_counts > 0)).mean())

    @property
    def e2_fraction(self) -> float:
        """Fraction of refreshes with B=0 ∧ A=0."""
        if self.refreshes == 0:
            return 0.0
        return float(((self.b_counts == 0) & (self.a_counts == 0)).mean())

    @property
    def dominant_fraction(self) -> float:
        """E1 + E2 — the prediction coverage the paper's Fig. 4 reports."""
        return self.e1_fraction + self.e2_fraction

    # -- Fig. 2 -------------------------------------------------------------------

    @property
    def non_blocking_fraction(self) -> float:
        """Fraction of refreshes whose A-window saw no read (Fig. 2)."""
        if self.refreshes == 0:
            return 0.0
        return float((self.a_counts == 0).mean())


def _count_between(sorted_times: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Vectorized count of events in [lo, hi) for each (lo, hi) pair."""
    return np.searchsorted(sorted_times, hi, side="left") - np.searchsorted(
        sorted_times, lo, side="left"
    )


def analyze_rank(
    events: RankEvents,
    window: int,
    *,
    a_window: int | None = None,
) -> WindowAnalysis:
    """Compute per-refresh B/A counts for one rank's event record."""
    arr = events.arrays()
    reads = arr["reads"]
    all_requests = np.sort(np.concatenate([reads, arr["writes"]]))
    starts = arr["refresh_starts"]
    aw = a_window if a_window is not None else window
    b = _count_between(all_requests, starts - window, starts)
    a = _count_between(reads, starts, starts + aw)
    return WindowAnalysis(window=window, b_counts=b, a_counts=a)


def blocked_per_refresh(events: RankEvents) -> np.ndarray:
    """Reads arriving inside each refresh's actual lock window (Fig. 3).

    Uses the recorded [start, end) lock intervals, i.e. the physical
    ``tRFC`` freeze rather than an analysis window.
    """
    arr = events.arrays()
    reads = arr["reads"]
    return _count_between(reads, arr["refresh_starts"], arr["refresh_ends"])


def merge_rank_events(records: list[RankEvents]) -> RankEvents:
    """Merge several ranks' events into one record (whole-system view)."""
    merged = RankEvents()
    for ev in records:
        merged.read_arrivals.extend(ev.read_arrivals)
        merged.write_arrivals.extend(ev.write_arrivals)
        merged.refresh_starts.extend(ev.refresh_starts)
        merged.refresh_ends.extend(ev.refresh_ends)
    merged.read_arrivals.sort()
    merged.write_arrivals.sort()
    order = np.argsort(np.asarray(merged.refresh_starts, dtype=np.int64), kind="stable")
    merged.refresh_starts = [merged.refresh_starts[i] for i in order]
    merged.refresh_ends = [merged.refresh_ends[i] for i in order]
    return merged
