"""Performance and comparison metrics used by the evaluation harness."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = [
    "weighted_speedup",
    "geomean",
    "normalize",
    "percent_change",
    "speedup",
]


def weighted_speedup(
    shared_ipcs: Sequence[float], alone_ipcs: Sequence[float]
) -> float:
    """The paper's Eq. 4: Σᵢ IPCᵢ(shared) / IPCᵢ(alone).

    A value of N (the core count) means zero interference; lower values
    quantify slowdown from sharing the memory system.
    """
    if len(shared_ipcs) != len(alone_ipcs):
        raise ValueError(
            f"core-count mismatch: {len(shared_ipcs)} shared vs {len(alone_ipcs)} alone"
        )
    total = 0.0
    for shared, alone in zip(shared_ipcs, alone_ipcs):
        if alone <= 0:
            raise ValueError("alone IPC must be positive")
        total += shared / alone
    return total


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper reports geometric means for speedups)."""
    vals = list(values)
    if not vals:
        raise ValueError("geomean of an empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def normalize(values: Sequence[float], baseline: float) -> list[float]:
    """Divide every value by ``baseline`` (paper figures normalize so)."""
    if baseline == 0:
        raise ValueError("cannot normalize by zero")
    return [v / baseline for v in values]


def percent_change(new: float, baseline: float) -> float:
    """(new − baseline) / baseline × 100."""
    if baseline == 0:
        raise ValueError("cannot compute percent change from zero baseline")
    return (new - baseline) / baseline * 100.0


def speedup(new: float, baseline: float) -> float:
    """new / baseline (for IPC-style higher-is-better metrics)."""
    if baseline == 0:
        raise ValueError("cannot compute speedup from zero baseline")
    return new / baseline
