"""Trace-driven core model — the reproduction's Zsim/Pin stand-in.

The core replays a *memory-level* trace (LLC misses + write-backs) against
a shared :class:`~repro.dram.memory_system.MemorySystem` on the same event
queue:

* between memory requests it retires instructions at ``base_cpi`` CPU
  cycles each (CPU clock = ``cpu_clock_mult`` × the controller clock);
* demand reads are overlapped up to ``mlp`` outstanding misses — a
  reorder-buffer proxy: issuing the ``mlp``-th read stalls the core until
  one returns;
* writes (write-backs) are posted to the controller's write queue and
  never stall the core.

IPC is measured in CPU cycles over the core's *own* instruction count, the
quantity the paper's weighted-speedup metric (Eq. 4) is built from.
"""

from __future__ import annotations

import numpy as np

from ..config import CoreConfig
from ..dram.memory_system import MemorySystem
from ..workloads.trace import AccessTrace

__all__ = ["Core"]


class Core:
    """One trace-replaying core attached to a memory system."""

    def __init__(
        self,
        core_id: int,
        trace: AccessTrace,
        memory: MemorySystem,
        cfg: CoreConfig,
    ) -> None:
        self.core_id = core_id
        self.trace = trace
        self.memory = memory
        self.cfg = cfg
        self.events = memory.events
        # program state
        self._idx = 0
        self._outstanding = 0
        self._stalled = False
        #: core-local clock in CPU cycles
        self._cpu_time = 0
        self.finished = False
        self.finish_cycle = 0  #: memory-controller cycle of completion
        self.reads_issued = 0
        self.writes_issued = 0
        self.stall_events = 0
        # hot-loop local copies of the trace arrays
        self._lines = trace.lines.tolist()
        self._writes = trace.writes.tolist()
        # instruction gaps pre-scaled to CPU cycles: int(gap * base_cpi)
        # element-wise, exactly the per-op arithmetic the replay loop used
        # to do (gaps are non-negative, so trunc ≡ int())
        scaled = trace.gaps * cfg.base_cpi
        if scaled.dtype.kind == "f":
            scaled = np.trunc(scaled)
        self._gap_cpu = scaled.astype(np.int64).tolist()
        # whole-trace vectorized address pre-decode, so the controller
        # skips its per-request shift/mask decode chain; deferred to
        # start() because the epoch kernel consumes the columnar decode
        # directly and never needs per-request Coord tuples
        self._coords: list | None = None

    # ------------------------------------------------------------------ driving

    def start(self) -> None:
        """Schedule the first memory access (call once before running)."""
        if not self._lines:
            self.finished = True
            return
        if self._coords is None:
            self._coords = self.memory.controller.mapper.decode_coords(
                self.trace.lines
            )
        self._advance_to_next_op()

    def _mem_cycle(self) -> int:
        """Current core time converted to memory-controller cycles (ceil)."""
        m = self.cfg.cpu_clock_mult
        return -(-self._cpu_time // m)

    def _advance_to_next_op(self) -> None:
        """Account the instruction gap and schedule the next access event."""
        self._cpu_time += self._gap_cpu[self._idx]
        m = self.cfg.cpu_clock_mult
        when = -(-self._cpu_time // m)  # inlined _mem_cycle (hot path)
        now = self.events.now
        self.events.push(when if when > now else now, self._do_op)

    def _do_op(self, cycle: int) -> None:
        """Issue the current trace access into the memory system.

        The event fires at ``ceil(cpu_time / mult)``; the core clock itself
        is NOT snapped to the memory cycle — ops denser than one per memory
        cycle must not each pay a whole memory cycle.
        """
        i = self._idx
        line = self._lines[i]
        if self._writes[i]:
            self.memory.submit_write(
                line, cycle, core_id=self.core_id, coord=self._coords[i]
            )
            self.writes_issued += 1
        else:
            self.memory.submit_read(
                line,
                cycle,
                core_id=self.core_id,
                on_complete=self._on_read_done,
                coord=self._coords[i],
            )
            self.reads_issued += 1
            self._outstanding += 1
        self._idx += 1
        if self._idx >= len(self._lines):
            self._maybe_finish(cycle)
            return
        if self._outstanding >= self.cfg.mlp:
            self._stalled = True
            self.stall_events += 1
        else:
            self._advance_to_next_op()

    def _on_read_done(self, cycle: int) -> None:
        self._outstanding -= 1
        self._cpu_time = max(self._cpu_time, cycle * self.cfg.cpu_clock_mult)
        if self.finished:
            return
        if self._idx >= len(self._lines):
            self._maybe_finish(cycle)
            return
        if self._stalled:
            self._stalled = False
            self._advance_to_next_op()

    def _maybe_finish(self, cycle: int) -> None:
        """Retire once the trace is replayed and all reads returned."""
        if self._idx >= len(self._lines) and self._outstanding == 0 and not self.finished:
            self._cpu_time += int(self.trace.tail_instructions * self.cfg.base_cpi)
            self.finished = True
            self.finish_cycle = max(self._mem_cycle(), cycle)

    # ------------------------------------------------------------------ results

    @property
    def cpu_cycles(self) -> int:
        """CPU cycles the program took (valid once finished)."""
        return self.finish_cycle * self.cfg.cpu_clock_mult

    @property
    def ipc(self) -> float:
        """Instructions per CPU cycle over the whole run."""
        cycles = self.cpu_cycles
        if cycles <= 0:
            return 0.0
        return self.trace.total_instructions / cycles
