"""Last-level cache model: a set-associative, write-back, write-allocate
LRU cache that filters a CPU-level access trace into the memory-level
trace the DRAM controller sees.

Cache hit/miss outcomes depend only on the *order* of accesses, never on
their timing, so the filter runs once as a pure function and the resulting
memory trace can be reused across every memory configuration — the
decoupling that keeps the paper's LLC-size sensitivity sweeps affordable
(see DESIGN.md §5).

The LLC is the component that creates the bursty, pattern-bearing traffic
ROP's profiler exploits: hit runs produce silence at the memory level,
miss runs produce dense multi-delta request trains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import LlcConfig
from ..workloads.trace import AccessTrace

__all__ = ["LlcResult", "Llc", "filter_trace"]


@dataclass(frozen=True)
class LlcResult:
    """Output of one LLC filtering pass."""

    memory_trace: AccessTrace  #: misses + write-backs, in program order
    accesses: int  #: CPU-level accesses observed
    misses: int  #: demand misses (loads and stores)
    writebacks: int  #: dirty evictions emitted

    @property
    def miss_rate(self) -> float:
        """Demand miss rate (misses / accesses)."""
        return self.misses / self.accesses if self.accesses else 0.0


class Llc:
    """Streaming set-associative LRU cache (write-back, write-allocate).

    Each set is a dict mapping line → dirty flag; dict insertion order
    doubles as LRU order (oldest first), so a hit is re-inserted to move it
    to MRU and eviction pops the first key.
    """

    def __init__(self, cfg: LlcConfig) -> None:
        self.cfg = cfg
        self.num_sets = cfg.sets
        self.ways = cfg.ways
        self._sets: list[dict[int, bool]] = [dict() for _ in range(self.num_sets)]
        self.accesses = 0
        self.misses = 0
        self.writebacks = 0

    def access(self, line: int, is_write: bool) -> tuple[bool, int | None]:
        """One access; returns ``(miss, evicted_dirty_line_or_None)``."""
        self.accesses += 1
        s = self._sets[line & (self.num_sets - 1)]
        if line in s:
            dirty = s.pop(line)
            s[line] = dirty or is_write
            return False, None
        self.misses += 1
        victim: int | None = None
        if len(s) >= self.ways:
            vline, vdirty = next(iter(s.items()))
            del s[vline]
            if vdirty:
                self.writebacks += 1
                victim = vline
        s[line] = is_write
        return True, victim

    def contains(self, line: int) -> bool:
        """True if ``line`` is currently cached."""
        return line in self._sets[line & (self.num_sets - 1)]

    @property
    def occupancy(self) -> int:
        """Lines currently resident."""
        return sum(len(s) for s in self._sets)


def filter_trace(trace: AccessTrace, cfg: LlcConfig) -> LlcResult:
    """Filter a CPU-level trace through the LLC (pure function).

    Misses become memory reads (write-allocate fetches stores too);
    dirty evictions become memory writes with a zero instruction gap.

    The sequential LRU walk only records the misses (gap + line) and
    the dirty evictions; the miss/write-back interleave — positions,
    write flags, zero gaps — is assembled afterwards with vectorized
    NumPy.  The per-access work on the hit path (the common case) is
    exactly the dict bookkeeping; the miss path does two list appends
    instead of four.  ``benchmarks/bench_llc_filter.py`` guards this
    against the naive append-per-access implementation.
    """
    cache = Llc(cfg)
    ways = cache.ways
    sets = cache._sets
    mask = cache.num_sets - 1
    gaps = trace.gaps.tolist()
    lines = trace.lines.tolist()
    writes = trace.writes.tolist()
    miss_gaps: list[int] = []  #: instructions since the previous miss
    miss_lines: list[int] = []
    wb_seq: list[int] = []  #: miss sequence number each write-back follows
    wb_lines: list[int] = []
    pending = 0
    for gap, line, wr in zip(gaps, lines, writes):
        pending += gap
        s = sets[line & mask]
        if line in s:
            dirty = s.pop(line)
            s[line] = dirty or wr
            continue
        miss_gaps.append(pending)
        miss_lines.append(line)
        pending = 0
        if len(s) >= ways:
            vline = next(iter(s))
            vdirty = s.pop(vline)
            if vdirty:
                wb_seq.append(len(miss_gaps) - 1)
                wb_lines.append(vline)
        s[line] = wr
    n_miss = len(miss_gaps)
    n_wb = len(wb_seq)
    wseq = np.asarray(wb_seq, dtype=np.int64)
    # interleave: each write-back lands right after the miss that evicted
    # it, so miss m shifts right by the number of earlier write-backs
    pos_miss = np.arange(n_miss, dtype=np.int64) + np.searchsorted(
        wseq, np.arange(n_miss, dtype=np.int64), side="left"
    )
    pos_wb = pos_miss[wseq] + 1
    total = n_miss + n_wb
    out_gaps = np.zeros(total, dtype=np.int64)
    out_lines = np.empty(total, dtype=np.int64)
    out_writes = np.zeros(total, dtype=bool)
    out_gaps[pos_miss] = np.asarray(miss_gaps, dtype=np.int64)
    out_lines[pos_miss] = np.asarray(miss_lines, dtype=np.int64)
    out_lines[pos_wb] = np.asarray(wb_lines, dtype=np.int64)
    out_writes[pos_wb] = True
    cache.accesses = len(lines)
    cache.misses = n_miss
    cache.writebacks = n_wb
    mem = AccessTrace(
        out_gaps,
        out_lines,
        out_writes,
        tail_instructions=pending + trace.tail_instructions,
    )
    return LlcResult(mem, len(lines), n_miss, n_wb)
