"""Last-level cache model: a set-associative, write-back, write-allocate
LRU cache that filters a CPU-level access trace into the memory-level
trace the DRAM controller sees.

Cache hit/miss outcomes depend only on the *order* of accesses, never on
their timing, so the filter runs once as a pure function and the resulting
memory trace can be reused across every memory configuration — the
decoupling that keeps the paper's LLC-size sensitivity sweeps affordable
(see DESIGN.md §5).

The LLC is the component that creates the bursty, pattern-bearing traffic
ROP's profiler exploits: hit runs produce silence at the memory level,
miss runs produce dense multi-delta request trains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import LlcConfig
from ..workloads.trace import AccessTrace

__all__ = ["LlcResult", "Llc", "filter_trace"]


@dataclass(frozen=True)
class LlcResult:
    """Output of one LLC filtering pass."""

    memory_trace: AccessTrace  #: misses + write-backs, in program order
    accesses: int  #: CPU-level accesses observed
    misses: int  #: demand misses (loads and stores)
    writebacks: int  #: dirty evictions emitted

    @property
    def miss_rate(self) -> float:
        """Demand miss rate (misses / accesses)."""
        return self.misses / self.accesses if self.accesses else 0.0


class Llc:
    """Streaming set-associative LRU cache (write-back, write-allocate).

    Each set is a dict mapping line → dirty flag; dict insertion order
    doubles as LRU order (oldest first), so a hit is re-inserted to move it
    to MRU and eviction pops the first key.
    """

    def __init__(self, cfg: LlcConfig) -> None:
        self.cfg = cfg
        self.num_sets = cfg.sets
        self.ways = cfg.ways
        self._sets: list[dict[int, bool]] = [dict() for _ in range(self.num_sets)]
        self.accesses = 0
        self.misses = 0
        self.writebacks = 0

    def access(self, line: int, is_write: bool) -> tuple[bool, int | None]:
        """One access; returns ``(miss, evicted_dirty_line_or_None)``."""
        self.accesses += 1
        s = self._sets[line & (self.num_sets - 1)]
        if line in s:
            dirty = s.pop(line)
            s[line] = dirty or is_write
            return False, None
        self.misses += 1
        victim: int | None = None
        if len(s) >= self.ways:
            vline, vdirty = next(iter(s.items()))
            del s[vline]
            if vdirty:
                self.writebacks += 1
                victim = vline
        s[line] = is_write
        return True, victim

    def contains(self, line: int) -> bool:
        """True if ``line`` is currently cached."""
        return line in self._sets[line & (self.num_sets - 1)]

    @property
    def occupancy(self) -> int:
        """Lines currently resident."""
        return sum(len(s) for s in self._sets)


def filter_trace(trace: AccessTrace, cfg: LlcConfig) -> LlcResult:
    """Filter a CPU-level trace through the LLC (pure function).

    Misses become memory reads (write-allocate fetches stores too);
    dirty evictions become memory writes with a zero instruction gap.
    """
    cache = Llc(cfg)
    num_sets = cache.num_sets
    ways = cache.ways
    sets = cache._sets
    out_gaps: list[int] = []
    out_lines: list[int] = []
    out_writes: list[bool] = []
    pending = 0
    # local bindings for the hot loop
    gaps = trace.gaps.tolist()
    lines = trace.lines.tolist()
    writes = trace.writes.tolist()
    misses = 0
    writebacks = 0
    mask = num_sets - 1
    for gap, line, wr in zip(gaps, lines, writes):
        pending += gap
        s = sets[line & mask]
        if line in s:
            dirty = s.pop(line)
            s[line] = dirty or wr
            continue
        misses += 1
        out_gaps.append(pending)
        out_lines.append(line)
        out_writes.append(False)
        pending = 0
        if len(s) >= ways:
            vline = next(iter(s))
            vdirty = s.pop(vline)
            if vdirty:
                writebacks += 1
                out_gaps.append(0)
                out_lines.append(vline)
                out_writes.append(True)
        s[line] = wr
    cache.accesses = len(lines)
    cache.misses = misses
    cache.writebacks = writebacks
    mem = AccessTrace(
        np.asarray(out_gaps, dtype=np.int64),
        np.asarray(out_lines, dtype=np.int64),
        np.asarray(out_writes, dtype=bool),
        tail_instructions=pending + trace.tail_instructions,
    )
    return LlcResult(mem, len(lines), misses, writebacks)
