"""CPU-side substrates: trace-driven cores and the LLC filter."""

from .core import Core
from .llc import Llc, LlcResult, filter_trace
from .multicore import CoreResult, MulticoreResult, run_cores

__all__ = [
    "Core",
    "Llc",
    "LlcResult",
    "filter_trace",
    "CoreResult",
    "MulticoreResult",
    "run_cores",
]
