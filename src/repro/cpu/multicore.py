"""Multi-core co-simulation: N trace-driven cores sharing one memory system.

Reproduces the paper's 4-core setup: each benchmark of a workload mix runs
on its own core; under rank partitioning each core's footprint is placed
in its own rank's address slice. The simulation ends when every core has
replayed its trace; per-core IPC feeds the weighted-speedup metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..config import AddressMapScheme, SystemConfig
from ..stats.collectors import ControllerStats
from ..telemetry import MetricsRegistry, TraceSink
from ..workloads.trace import AccessTrace
from ..dram.memory_system import MemorySystem
from .core import Core

__all__ = ["CoreResult", "MulticoreResult", "run_cores"]


@dataclass(frozen=True)
class CoreResult:
    """Outcome of one core's run."""

    core_id: int
    instructions: int
    cpu_cycles: int
    ipc: float
    reads: int
    writes: int


@dataclass(frozen=True)
class MulticoreResult:
    """Outcome of one (possibly single-core) co-simulation."""

    cores: tuple[CoreResult, ...]
    stats: ControllerStats
    end_cycle: int
    rop_summary: dict | None
    #: per-(channel, rank) event records when ``record_events`` was set
    events: dict | None = None
    #: :class:`~repro.telemetry.MetricsRegistry` snapshot for this run
    metrics: dict | None = None

    @property
    def ipc(self) -> float:
        """Single-core convenience accessor (first core's IPC)."""
        return self.cores[0].ipc

    @property
    def ipcs(self) -> list[float]:
        """Per-core IPCs in core order."""
        return [c.ipc for c in self.cores]


def place_traces(
    traces: list[AccessTrace], config: SystemConfig
) -> list[AccessTrace]:
    """Place per-core traces into the address space.

    Under :class:`AddressMapScheme.RANK_PARTITIONED`, core *i*'s trace is
    offset into rank ``i % ranks``'s slice (the paper's rank-aware
    mapping). Under the shared mappings, cores are offset by equal strides
    of the line-address space so footprints do not alias but *do* spread
    across ranks and interfere — the paper's Baseline behaviour.
    """
    from ..dram.address_mapping import AddressMapper

    org = config.organization
    mapper = AddressMapper(org, config.address_map)
    placed = []
    for i, tr in enumerate(traces):
        if config.address_map is AddressMapScheme.RANK_PARTITIONED:
            base = mapper.partition_base(i % org.ranks)
        else:
            base = (i * org.total_lines) // max(1, len(traces))
        placed.append(tr.offset_lines(base))
    return placed


def run_cores(
    traces: list[AccessTrace],
    config: SystemConfig,
    *,
    record_events: bool = False,
    place: bool = True,
    max_cycles: int | None = None,
    audit: bool = False,
    sink: TraceSink | None = None,
    instrument: Callable[[MemorySystem], None] | None = None,
    engine: str | None = None,
    fallback_reasons: list[str] | None = None,
) -> MulticoreResult:
    """Run one co-simulation of ``traces`` (one per core) and return results.

    ``place=False`` replays traces at their given addresses (callers that
    pre-placed them); ``max_cycles`` bounds runaway simulations.

    ``audit=True`` captures every memory request and runs the invariant
    checker (:func:`repro.stats.invariants.check_run`) on the finished
    simulation, raising ``InvariantViolation`` instead of returning a
    physically impossible result.  The audit never changes the result:
    lock/refresh checks additionally need ``record_events=True``.

    ``sink`` wires a telemetry :class:`~repro.telemetry.TraceSink` through
    the memory system; it never changes the simulation outcome.

    ``instrument`` is called with the freshly built :class:`MemorySystem`
    before any traffic flows — the validation subsystem uses it to attach
    its check taps (observers only; they must not alter behaviour).

    ``engine`` selects the simulation engine: ``"scalar"`` (the reference
    object-dispatch loop) or ``"epoch"`` (the flat array-native kernel,
    bit-identical where supported, scalar fallback otherwise). ``None``
    defers to the ``REPRO_ENGINE`` environment variable, then scalar.

    ``fallback_reasons``, when a list is passed, collects the epoch
    kernel's decline reason (if any) for this call — per-call state, so
    concurrent specs in one chunk each see their own reason.
    """
    from ..kernel import resolve_engine, run_epoch_kernel

    engine = resolve_engine(engine)
    memory = MemorySystem(config, record_events=record_events, sink=sink)
    if instrument is not None:
        instrument(memory)
    log = None
    if audit:
        from ..stats.invariants import RequestLog

        log = RequestLog().attach(memory)
    placed = place_traces(traces, config) if place else traces
    cores = [Core(i, tr, memory, config.core) for i, tr in enumerate(placed)]
    kernel_ran = False
    if engine == "epoch":
        declined = run_epoch_kernel(memory, cores, max_cycles, audited=audit)
        kernel_ran = declined is None
        if declined is not None and fallback_reasons is not None:
            fallback_reasons.append(declined)
    if not kernel_ran:
        for c in cores:
            c.start()
        memory.run(until=max_cycles)
    unfinished = [c.core_id for c in cores if not c.finished]
    if unfinished:
        raise RuntimeError(
            f"cores {unfinished} did not finish "
            f"(events now={memory.now}, pending={memory.controller.pending_requests()})"
        )
    # Memory events drain when the last access completes, but a program may
    # end with a compute tail: keep the memory (and its refresh schedule)
    # running until the slowest core actually retires, so refresh counts
    # and background-energy time cover the whole execution.
    last_retire = max(c.finish_cycle for c in cores)
    if not kernel_ran and last_retire > memory.now:
        memory.run(until=last_retire)
    stats = memory.finish()
    stats.end_cycle = max(stats.end_cycle, last_retire)
    if log is not None:
        from ..stats.invariants import check_run

        log.detach()
        check_run(log, memory)
    results = tuple(
        CoreResult(
            core_id=c.core_id,
            instructions=c.trace.total_instructions,
            cpu_cycles=c.cpu_cycles,
            ipc=c.ipc,
            reads=c.reads_issued,
            writes=c.writes_issued,
        )
        for c in cores
    )
    rop_summary = memory.rop_summary()
    return MulticoreResult(
        cores=results,
        stats=stats,
        end_cycle=memory.now,
        rop_summary=rop_summary,
        events=memory.recorder.all_events() if memory.recorder is not None else None,
        metrics=MetricsRegistry.from_run(stats, results, rop_summary).snapshot(),
    )
