"""Command-line interface: run paper experiments without writing code.

Examples
--------
::

    python -m repro info
    python -m repro compare lbm --instructions 3000000
    python -m repro analyze bzip2 gobmk
    python -m repro fig 7 --scale default
    python -m repro fig 10 --scale smoke
    python -m repro schemes libquantum
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from . import SystemConfig, RefreshMode, __version__
from .cpu import run_cores
from .energy import system_energy
from .harness import (
    DEFAULT_BENCHMARKS,
    ZOO_DENSITIES,
    ZOO_POLICIES,
    ConfigError,
    ExecutionPolicy,
    PlanExecutionError,
    RunScale,
    render_zoo,
    zoo_sweep,
    fig1_refresh_overheads,
    fig2_to_4_and_table1,
    fig7_8_9_rop_comparison,
    fig10_11_weighted_speedup,
    fig12_13_14_llc_sensitivity,
    last_failures,
    last_fallbacks,
    last_stats,
    reporting,
    set_cache_enabled,
    set_execution_policy,
)
from .workloads import SPEC_PROFILES, WORKLOAD_MIXES, profile

__all__ = ["main"]


def _runner_opts(args) -> int | None:
    """Apply runner flags (cache, failure policy); return the --jobs value.

    The fault-tolerance policy starts from the ``REPRO_*`` environment
    and is overridden by the explicit flags; it is installed process-wide
    so every driver the command calls inherits it.
    """
    if getattr(args, "no_cache", False):
        set_cache_enabled(False)
    if getattr(args, "telemetry", False):
        # env vars, not process globals: spawned workers must see them too
        os.environ["REPRO_TELEMETRY"] = "1"
    if getattr(args, "validate", False):
        os.environ["REPRO_VALIDATE"] = "1"
    if getattr(args, "trace_dir", None):
        os.environ["REPRO_TRACE_DIR"] = str(args.trace_dir)
    if getattr(args, "engine", None):
        os.environ["REPRO_ENGINE"] = args.engine
    import dataclasses

    policy = ExecutionPolicy.from_env()
    overrides = {}
    if getattr(args, "spec_timeout", None) is not None:
        overrides["spec_timeout_s"] = args.spec_timeout if args.spec_timeout > 0 else None
    if getattr(args, "retries", None) is not None:
        overrides["max_attempts"] = max(1, args.retries)
    if getattr(args, "keep_going", False):
        overrides["keep_going"] = True
    if getattr(args, "fail_fast", False):
        overrides["keep_going"] = False
    if getattr(args, "audit", False):
        overrides["audit"] = True
    if getattr(args, "chunk", None) is not None:
        overrides["chunk_size"] = args.chunk if args.chunk > 0 else None
    set_execution_policy(dataclasses.replace(policy, **overrides) if overrides else policy)
    return getattr(args, "jobs", None)


def _print_runner_stats(args=None) -> None:
    print()
    print(reporting.render_runner_stats(last_stats()))
    if args is not None and getattr(args, "telemetry", False):
        from .harness.runner import trace_dir

        print(f"telemetry: per-run Perfetto traces under {trace_dir()}")
    fallback_note = reporting.render_engine_fallbacks(last_fallbacks())
    if fallback_note:
        print(fallback_note, file=sys.stderr)
    failures = last_failures()
    if failures:
        print()
        print(reporting.render_failures(failures), file=sys.stderr)


def _scale(args) -> RunScale:
    if args.instructions:
        return RunScale(
            instructions=args.instructions,
            seed=args.seed,
            training_refreshes=max(5, min(50, args.instructions // 120_000)),
        )
    return RunScale.named(args.scale, seed=args.seed)


def _cmd_info(args) -> int:
    cfg = SystemConfig.single_core()
    t = cfg.timings
    print(f"repro {__version__} — ROP (ICPP 2016) reproduction")
    print(f"DDR4-1600: tCK={t.tck_ns} ns, CL={t.cl}, tRCD={t.rcd}, tRP={t.rp}")
    print(f"tREFI={t.refi} cycles ({t.ns(t.refi) / 1000:.1f} µs), "
          f"tRFC={t.rfc} cycles ({t.ns(t.rfc):.0f} ns), "
          f"duty={t.refresh_duty_cycle:.2%}")
    print(f"benchmarks: {', '.join(SPEC_PROFILES)}")
    print("mixes: "
          + "; ".join(f"{m}={'+'.join(v)}" for m, v in WORKLOAD_MIXES.items()))
    return 0


def _cmd_compare(args) -> int:
    scale = _scale(args)
    _runner_opts(args)
    cfg = SystemConfig.single_core()
    for name in args.benchmarks:
        mt = profile(name).memory_trace(scale.instructions, cfg.llc, seed=scale.seed)
        base = run_cores([mt], cfg)
        ideal = run_cores([mt], cfg.with_refresh_mode(RefreshMode.NONE))
        rop = run_cores(
            [mt], cfg.with_rop(training_refreshes=scale.training_refreshes)
        )
        e_base = system_energy(base.stats, cfg)
        e_rop = system_energy(rop.stats, cfg.with_rop())
        gap = ideal.ipc - base.ipc
        rec = (rop.ipc - base.ipc) / gap * 100 if gap > 1e-9 else float("nan")
        print(f"\n{name} ({len(mt)} requests)")
        print(f"  IPC    baseline {base.ipc:.4f}  no-refresh {ideal.ipc:.4f}  "
              f"ROP {rop.ipc:.4f} ({rec:.0f}% of gap recovered)")
        print(f"  energy baseline {e_base.total_mj:.3f} mJ  "
              f"ROP {e_rop.total_mj:.3f} mJ "
              f"({(e_rop.total / e_base.total - 1) * 100:+.1f}%)")
        print(f"  SRAM   hit rate {rop.stats.lock_hit_rate:.2f} (Fig. 9 metric), "
              f"armed {rop.rop_summary['armed_hit_rate']:.2f}")
    return 0


def _cmd_analyze(args) -> int:
    scale = _scale(args)
    jobs = _runner_opts(args)
    rows = fig2_to_4_and_table1(tuple(args.benchmarks), scale, jobs=jobs)
    print(reporting.render_table1(rows))
    print()
    print(reporting.render_fig2(rows))
    print()
    print(reporting.render_fig3(rows))
    print()
    print(reporting.render_fig4(rows))
    _print_runner_stats(args)
    return 0


def _cmd_fig(args) -> int:
    scale = _scale(args)
    jobs = _runner_opts(args)
    fig = args.figure
    benches = tuple(args.benchmarks) if args.benchmarks else DEFAULT_BENCHMARKS
    mixes = tuple(args.benchmarks) if args.benchmarks else tuple(WORKLOAD_MIXES)
    if fig == "1":
        print(reporting.render_fig1(fig1_refresh_overheads(benches, scale, jobs=jobs)))
    elif fig in ("2", "3", "4", "t1"):
        rows = fig2_to_4_and_table1(benches, scale, jobs=jobs)
        render = {
            "2": reporting.render_fig2,
            "3": reporting.render_fig3,
            "4": reporting.render_fig4,
            "t1": reporting.render_table1,
        }[fig]
        print(render(rows))
    elif fig in ("7", "8", "9"):
        rows = fig7_8_9_rop_comparison(
            benches, scale, sram_sizes=(16, 32, 64, 128), jobs=jobs
        )
        print(reporting.render_fig7_8_9(rows))
    elif fig in ("10", "11"):
        print(
            reporting.render_fig10_11(fig10_11_weighted_speedup(mixes, scale, jobs=jobs))
        )
    elif fig in ("12", "13", "14"):
        rows = fig12_13_14_llc_sensitivity(
            mixes, scale, llc_sweep=tuple(m << 20 for m in (1, 2, 4, 8)), jobs=jobs
        )
        metric = {"12": "norm_ws", "13": "norm_energy", "14": "rop_armed_hit_rate"}[fig]
        print(reporting.render_llc_sensitivity(rows, metric))
    else:
        print(f"unknown figure {fig!r}; known: 1 2 3 4 t1 7 8 9 10 11 12 13 14",
              file=sys.stderr)
        return 2
    _print_runner_stats(args)
    return 0


def _cmd_schemes(args) -> int:
    scale = _scale(args)
    _runner_opts(args)
    cfg = SystemConfig.single_core()
    modes = [m for m in RefreshMode]
    headers = ["benchmark"] + [m.value for m in modes] + ["rop"]
    body = []
    for name in args.benchmarks:
        mt = profile(name).memory_trace(scale.instructions, cfg.llc, seed=scale.seed)
        ipcs = {
            m.value: run_cores([mt], cfg.with_refresh_mode(m)).ipc for m in modes
        }
        ipcs["rop"] = run_cores(
            [mt], cfg.with_rop(training_refreshes=scale.training_refreshes)
        ).ipc
        base = ipcs[RefreshMode.AUTO_1X.value]
        body.append([name] + [f"{ipcs[h] / base:.4f}" for h in headers[1:]])
    print("IPC normalized to auto-refresh:")
    print(reporting.format_table(headers, body))
    return 0


def _cmd_sweep(args) -> int:
    """Refresh-policy zoo: policy × device-density IPC/energy matrix."""
    scale = _scale(args)
    jobs = _runner_opts(args)
    policies = tuple(args.refresh) if args.refresh else None
    densities = tuple(args.density) if args.density else ZOO_DENSITIES
    benches = tuple(args.benchmarks) if args.benchmarks else ("lbm", "libquantum")
    rows = zoo_sweep(
        benches, scale, densities=densities, policies=policies, jobs=jobs
    )
    print(render_zoo(rows))
    _print_runner_stats(args)
    return 0


def _cmd_trace(args) -> int:
    """Run one benchmark with full telemetry and export its trace."""
    from .telemetry import MetricsRegistry, TraceSink, write_chrome_trace, write_csv, write_jsonl

    scale = _scale(args)
    _runner_opts(args)
    cfg = SystemConfig.single_core()
    if not args.baseline:
        cfg = cfg.with_rop(training_refreshes=scale.training_refreshes)
    mt = profile(args.benchmark).memory_trace(scale.instructions, cfg.llc, seed=scale.seed)
    sink = TraceSink(capacity=args.capacity)
    result = run_cores([mt], cfg, sink=sink)

    suffix = {"chrome": ".trace.json", "jsonl": ".jsonl", "csv": ".csv"}[args.format]
    out = Path(args.out) if args.out else Path(f"{args.benchmark}{suffix}")
    tck_ns = cfg.effective_timings().tck_ns
    if args.format == "chrome":
        write_chrome_trace(sink, tck_ns, out, label=args.benchmark)
    elif args.format == "jsonl":
        write_jsonl(sink, out)
    else:
        write_csv(sink, out)

    s = sink.summary()
    print(f"{args.benchmark}: IPC {result.ipc:.4f}, "
          f"{result.stats.demand_accesses} demand accesses, "
          f"{result.stats.refreshes} refreshes over {result.end_cycle} cycles")
    print(f"trace: {s['stored']} events stored ({s['emitted']} emitted, "
          f"{s['dropped']} dropped, ring capacity {s['capacity']})")
    print()
    merged = MetricsRegistry.merge([result.metrics, MetricsRegistry.from_trace(sink).snapshot()])
    print(reporting.render_metrics(merged, prefix=args.metrics_prefix))
    print()
    print(f"wrote {out}", end="")
    if args.format == "chrome":
        print(" — open it at https://ui.perfetto.dev or chrome://tracing", end="")
    print()
    return 0


def _cmd_profile(args) -> int:
    """cProfile one spec's simulation and print the hottest functions."""
    import cProfile
    import pstats

    from .harness import RunSpec
    from .harness.runner import run_spec

    scale = _scale(args)
    _runner_opts(args)
    if bool(args.mix) == bool(args.benchmark):
        print("repro profile: name a benchmark or pass --mix (not both)",
              file=sys.stderr)
        return 2
    if args.mix:
        if args.mix not in WORKLOAD_MIXES:
            print(f"repro profile: unknown mix {args.mix!r}; known: "
                  + " ".join(WORKLOAD_MIXES), file=sys.stderr)
            return 2
        cfg = SystemConfig.quad_core()
        if not args.baseline:
            cfg = cfg.with_rop(training_refreshes=scale.training_refreshes)
        spec = RunSpec.mix(args.mix, cfg, scale)
        label = f"{args.mix} ({'+'.join(spec.workloads)})"
    else:
        cfg = SystemConfig.single_core()
        if not args.baseline:
            cfg = cfg.with_rop(training_refreshes=scale.training_refreshes)
        spec = RunSpec.benchmark(args.benchmark, cfg, scale)
        label = args.benchmark
    if not args.include_tracegen:
        # materialize the traces first: the steady-state hot path being
        # tuned is the simulation, not one-time trace generation
        for name in spec.workloads:
            profile(name).memory_trace(spec.instructions, spec.trace_llc, seed=spec.seed)
    prof = cProfile.Profile()
    prof.enable()
    result = run_spec(spec)
    prof.disable()
    from .kernel import resolve_engine

    print(f"{label} [{resolve_engine()} engine]: IPC {result.ipc:.4f}, "
          f"{result.stats.demand_accesses} demand accesses, "
          f"{result.end_cycle} controller cycles")
    stats = pstats.Stats(prof)
    if args.out:
        stats.dump_stats(args.out)
        print(f"wrote {args.out} (load with pstats or snakeviz)")
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


def _cmd_validate(args) -> int:
    """Run the committed validation corpus under the golden models."""
    from .validation import load_corpus, render_mismatch_table, run_entry

    entries = load_corpus(args.corpus)
    if args.list:
        for e in entries:
            bands = ", ".join(sorted(e.expect)) or "-"
            print(f"{e.name:22s} {e.system:12s} {'+'.join(e.workloads):14s} "
                  f"{e.instructions:>9,d} instr  bands: {bands}")
        return 0
    if args.only:
        wanted = set(args.only)
        unknown = wanted - {e.name for e in entries}
        if unknown:
            print(f"repro validate: unknown entries {sorted(unknown)}",
                  file=sys.stderr)
            return 2
        entries = [e for e in entries if e.name in wanted]
    all_mismatches = []
    for entry in entries:
        result, mismatches = run_entry(entry)
        status = "FAIL" if mismatches else "ok"
        print(f"{status:4s} {entry.name}: IPC {result.ipc:.4f}, "
              f"{result.stats.refreshes} refreshes, "
              f"{len(mismatches)} mismatch(es)")
        all_mismatches.extend(mismatches)
    if all_mismatches:
        print()
        print(render_mismatch_table(all_mismatches), file=sys.stderr)
        print(f"\nrepro validate: FAIL — {len(all_mismatches)} mismatch(es) "
              f"across {len(entries)} entries", file=sys.stderr)
        return 1
    print(f"\nrepro validate: {len(entries)} entries green")
    return 0


def _fmt_bytes(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n} B"  # pragma: no cover


def _cmd_cache(args) -> int:
    """Inspect, bound, or heal the persistent artifact store."""
    from .harness.cache_gc import collect, parse_quota, quota_from_env, usage, verify

    root = Path(args.dir) if args.dir else None
    if args.cache_cmd == "stats":
        u = usage(root)
        print(f"artifact store at {u['root']}")
        print(f"  entries: {u['entries']} ({_fmt_bytes(u['bytes'])})")
        for kind, agg in sorted(u["by_kind"].items()):
            print(f"    {kind:7s}{agg['entries']:7d} entries  "
                  f"{_fmt_bytes(agg['bytes'])}")
        print(f"  quarantine: {u['quarantined']} files "
              f"({_fmt_bytes(u['quarantine_bytes'])})")
        if u["chaos_seeds"]:
            print(f"  chaos markers: {u['chaos_markers']} files "
                  f"({_fmt_bytes(u['chaos_bytes'])}) across seeds "
                  f"{', '.join(u['chaos_seeds'])}")
        quota = quota_from_env()
        if quota is not None:
            print(f"  quota (REPRO_CACHE_QUOTA): {_fmt_bytes(quota)}")
        return 0
    if args.cache_cmd == "gc":
        quota = parse_quota(args.quota) if args.quota else quota_from_env()
        if quota is None:
            print("repro cache gc: no quota given (pass --quota or set "
                  "REPRO_CACHE_QUOTA)", file=sys.stderr)
            return 2
        res = collect(quota, root=root, dry_run=args.dry_run)
        verb = "would evict" if res.dry_run else "evicted"
        print(f"{verb} {res.evicted} entries ({_fmt_bytes(res.freed_bytes)}): "
              f"{_fmt_bytes(res.bytes_before)} -> {_fmt_bytes(res.bytes_after)} "
              f"against a {_fmt_bytes(res.quota)} quota; {res.kept} kept")
        return 0
    rep = verify(root)
    for bad in rep["bad"]:
        print(f"  quarantined corrupt entry {bad}", file=sys.stderr)
    print(f"checked {rep['checked']} entries: {rep['corrupt']} corrupt "
          f"(corrupt entries are moved to quarantine)")
    return 1 if rep["corrupt"] else 0


def _load_plan_doc(path: str) -> dict:
    """Read a plan-request JSON document from a file or stdin (``-``)."""
    import json

    raw = sys.stdin.read() if path == "-" else Path(path).read_text()
    return json.loads(raw)


def _cmd_fingerprint(args) -> int:
    """Print spec fingerprints for a plan without running anything."""
    from .harness import RunSpec, cached_result, spec_fingerprint
    from .service import parse_plan_request, plan_fingerprint
    from .service.specs import descriptor_label

    if args.plan:
        from .service import PlanRequestError

        try:
            doc = _load_plan_doc(args.plan)
            descriptors, specs, _ = parse_plan_request(doc)
        except (OSError, ValueError, PlanRequestError) as exc:
            print(f"repro fingerprint: {exc}", file=sys.stderr)
            return 2
        labels = [descriptor_label(d) for d in descriptors]
    else:
        if not args.benchmarks:
            print("repro fingerprint: name benchmarks or pass --plan FILE",
                  file=sys.stderr)
            return 2
        scale = _scale(args)
        from .validation import system_config

        cfg = system_config(args.system)
        if cfg.rop.enabled:
            cfg = cfg.with_rop(training_refreshes=scale.training_refreshes)
        specs = [RunSpec.benchmark(name, cfg, scale) for name in args.benchmarks]
        labels = [f"{name}/{args.system}" for name in args.benchmarks]
    for spec, label in zip(specs, labels):
        key = spec_fingerprint(spec)
        state = "cached" if cached_result(key) is not None else "absent"
        print(f"{key}  {state:6s}  {label}")
    print(f"{plan_fingerprint(specs)}  plan    ({len(specs)} specs, "
          f"{len({spec_fingerprint(s) for s in specs})} unique)")
    return 0


def _cmd_serve(args) -> int:
    """Start the HTTP simulation service."""
    from .harness.cache import get_cache
    from .harness.runner import resolve_jobs
    from .service import run_server

    _runner_opts(args)
    if getattr(get_cache(), "root", None) is None:
        print("repro serve: the service requires the artifact cache "
              "(unset REPRO_CACHE=off / drop --no-cache)", file=sys.stderr)
        return 2
    return run_server(args.host, args.port, jobs=resolve_jobs(args.jobs))


def _cmd_characterize(args) -> int:
    from .workloads import characterize

    scale = _scale(args)
    cfg = SystemConfig.single_core()
    headers = [
        "benchmark", "MPKI", "wr%", "busy%", "λ~", "β~", "predict", "dwell",
    ]
    body = []
    for name in args.benchmarks:
        mt = profile(name).memory_trace(scale.instructions, cfg.llc, seed=scale.seed)
        pr = characterize(mt)
        body.append([
            name,
            f"{pr.mpki:.1f}",
            f"{pr.write_fraction:.2f}",
            f"{pr.busy_window_fraction:.2f}",
            f"{pr.busy_persistence:.2f}",
            f"{pr.quiet_persistence:.2f}",
            f"{pr.delta_predictability:.2f}",
            f"{pr.mean_bank_dwell:.1f}",
        ])
    print("memory-level trace characterization "
          "(λ~/β~: busy/quiet window persistence):")
    print(reporting.format_table(headers, body))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    p = argparse.ArgumentParser(prog="repro", description=__doc__)
    p.add_argument("--version", action="version", version=__version__)
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp):
        sp.add_argument("--scale", default="default",
                        choices=("smoke", "default", "paper"))
        sp.add_argument("--instructions", type=int, default=0,
                        help="override the scale's instruction count")
        sp.add_argument("--seed", type=int, default=1)
        sp.add_argument("--jobs", type=int, default=None,
                        help="parallel simulation workers "
                             "(default: REPRO_JOBS or 1; 0 = all CPUs)")
        sp.add_argument("--no-cache", action="store_true",
                        help="disable the persistent artifact cache "
                             "(REPRO_CACHE_DIR) for this invocation")
        sp.add_argument("--chunk", type=int, default=None, metavar="K",
                        help="specs batched per worker dispatch "
                             "(default: REPRO_CHUNK or auto-sized from "
                             "plan size and --jobs; 0 restores auto)")
        sp.add_argument("--spec-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-spec wall-clock limit; a hung worker is "
                             "killed and reported as a timeout failure "
                             "(default: REPRO_SPEC_TIMEOUT; 0 disables)")
        sp.add_argument("--retries", type=int, default=None, metavar="N",
                        help="executions allowed per spec before a transient "
                             "failure becomes terminal (default: REPRO_RETRIES "
                             "or 3)")
        fail = sp.add_mutually_exclusive_group()
        fail.add_argument("--keep-going", action="store_true",
                          help="on spec failure, keep running the remaining "
                               "specs and render figures from surviving "
                               "points (failures are listed at the end)")
        fail.add_argument("--fail-fast", action="store_true",
                          help="abort the plan on the first terminal failure "
                               "(the default; overrides REPRO_KEEP_GOING=1)")
        sp.add_argument("--audit", action="store_true",
                        help="run the physical-invariant checker on every "
                             "simulated result before it enters the cache")
        sp.add_argument("--telemetry", action="store_true",
                        help="attach a cycle-level trace sink to every "
                             "simulated spec and export per-run Perfetto "
                             "traces (results are bit-identical; cached "
                             "results are re-simulated so the trace exists)")
        sp.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="directory for --telemetry trace files "
                             "(default: REPRO_TRACE_DIR or "
                             "<artifact-cache>/traces)")
        sp.add_argument("--engine", default=None,
                        choices=("scalar", "epoch"),
                        help="simulation engine: scalar = reference "
                             "event-queue interpreter, epoch = array-native "
                             "epoch-stepped kernel (default: REPRO_ENGINE "
                             "or scalar; results are bit-identical)")
        sp.add_argument("--validate", action="store_true",
                        help="check every simulated spec against the "
                             "differential golden models (λ/β, Eq. 3, "
                             "refresh schedule, DDR timing, SRAM model); "
                             "a disagreement fails the run")

    sp = sub.add_parser("info", help="print configuration summary")
    sp.set_defaults(func=_cmd_info)

    sp = sub.add_parser("compare", help="baseline vs no-refresh vs ROP")
    sp.add_argument("benchmarks", nargs="+")
    common(sp)
    sp.set_defaults(func=_cmd_compare)

    sp = sub.add_parser("analyze", help="Figs. 2-4 + Table I window analysis")
    sp.add_argument("benchmarks", nargs="+")
    common(sp)
    sp.set_defaults(func=_cmd_analyze)

    sp = sub.add_parser("fig", help="regenerate one paper figure/table")
    sp.add_argument("figure", help="1 2 3 4 t1 7 8 9 10 11 12 13 14")
    sp.add_argument("benchmarks", nargs="*",
                    help="benchmarks (Figs. 1-9) or mixes (Figs. 10-14)")
    common(sp)
    sp.set_defaults(func=_cmd_fig)

    sp = sub.add_parser("schemes", help="compare all refresh schemes + ROP")
    sp.add_argument("benchmarks", nargs="+")
    common(sp)
    sp.set_defaults(func=_cmd_schemes)

    sp = sub.add_parser(
        "sweep",
        help="refresh-policy zoo: every policy (DARP/SARP/RAIDR/ROP "
             "compositions) x device density (4-32 Gb), IPC + energy "
             "normalized to auto-refresh",
    )
    sp.add_argument("benchmarks", nargs="*",
                    help="benchmarks to sweep (default: lbm libquantum)")
    sp.add_argument("--refresh", action="append", default=None,
                    metavar="POLICY", choices=sorted(ZOO_POLICIES),
                    help="restrict to a policy (repeatable; auto_1x is "
                         "always included as the baseline)")
    sp.add_argument("--density", action="append", type=int, default=None,
                    metavar="GBIT", choices=sorted(ZOO_DENSITIES),
                    help="restrict to a device density in Gbit "
                         "(repeatable; default: all of 4 8 16 32)")
    common(sp)
    sp.set_defaults(func=_cmd_sweep)

    sp = sub.add_parser(
        "trace",
        help="run one benchmark with full telemetry and export a "
             "Perfetto-loadable trace",
    )
    sp.add_argument("benchmark")
    sp.add_argument("--out", default=None, metavar="FILE",
                    help="output path (default: <benchmark>.trace.json)")
    sp.add_argument("--format", default="chrome",
                    choices=("chrome", "jsonl", "csv"),
                    help="chrome = trace-event JSON for Perfetto "
                         "(default); jsonl/csv = raw event dumps")
    sp.add_argument("--capacity", type=int, default=1 << 18,
                    help="trace ring-buffer capacity in events; oldest "
                         "events are overwritten beyond it (default 262144)")
    sp.add_argument("--baseline", action="store_true",
                    help="trace the baseline system instead of ROP")
    sp.add_argument("--metrics-prefix", default=None, metavar="PREFIX",
                    help="only print metrics whose name starts with PREFIX "
                         "(e.g. rop. or trace.)")
    common(sp)
    sp.set_defaults(func=_cmd_trace)

    sp = sub.add_parser(
        "profile",
        help="cProfile one benchmark's simulation and print the hot spots",
    )
    sp.add_argument("benchmark", nargs="?", default=None)
    sp.add_argument("--mix", default=None, metavar="MIX",
                    help="profile a 4-core workload mix (e.g. WL1) on the "
                         "quad-core system instead of a single benchmark — "
                         "exercises the multicore hot loop")
    sp.add_argument("--top", type=int, default=25, metavar="N",
                    help="rows of the pstats report to print (default 25)")
    sp.add_argument("--sort", default="tottime",
                    choices=("tottime", "cumulative", "ncalls"),
                    help="pstats sort order (default tottime)")
    sp.add_argument("--baseline", action="store_true",
                    help="profile the baseline system instead of ROP")
    sp.add_argument("--include-tracegen", action="store_true",
                    help="profile trace generation + LLC filtering too "
                         "(default: pre-materialize the trace so only the "
                         "simulation is profiled)")
    sp.add_argument("--out", default=None, metavar="FILE",
                    help="also dump raw cProfile stats to FILE")
    common(sp)
    sp.set_defaults(func=_cmd_profile)

    sp = sub.add_parser(
        "characterize", help="trace statistics (MPKI, burstiness, predictability)"
    )
    sp.add_argument("benchmarks", nargs="+")
    common(sp)
    sp.set_defaults(func=_cmd_characterize)

    sp = sub.add_parser(
        "cache",
        help="inspect, garbage-collect, or verify the persistent artifact "
             "store (REPRO_CACHE_DIR)",
    )
    cache_sub = sp.add_subparsers(dest="cache_cmd", required=True)
    csp = cache_sub.add_parser("stats", help="store size, entry counts, quota")
    csp.add_argument("--dir", default=None, metavar="DIR",
                     help="cache directory (default: REPRO_CACHE_DIR)")
    csp.set_defaults(func=_cmd_cache)
    csp = cache_sub.add_parser(
        "gc", help="evict least-recently-used entries down to a size quota"
    )
    csp.add_argument("--dir", default=None, metavar="DIR",
                     help="cache directory (default: REPRO_CACHE_DIR)")
    csp.add_argument("--quota", default=None, metavar="SIZE",
                     help="target size, e.g. 500M or 2G "
                          "(default: REPRO_CACHE_QUOTA)")
    csp.add_argument("--dry-run", action="store_true",
                     help="report what would be evicted without deleting")
    csp.set_defaults(func=_cmd_cache)
    csp = cache_sub.add_parser(
        "verify",
        help="load-check every entry; corrupt ones are quarantined "
             "(exit 1 if any were found)",
    )
    csp.add_argument("--dir", default=None, metavar="DIR",
                     help="cache directory (default: REPRO_CACHE_DIR)")
    csp.set_defaults(func=_cmd_cache)

    sp = sub.add_parser(
        "serve",
        help="start the HTTP simulation service (async job plane over "
             "the artifact cache; POST /plans, GET /results/{fingerprint})",
    )
    sp.add_argument("--host", default="127.0.0.1",
                    help="bind address (default 127.0.0.1)")
    sp.add_argument("--port", type=int, default=8787,
                    help="TCP port; 0 binds an ephemeral port and prints it "
                         "(default 8787)")
    common(sp)
    sp.set_defaults(func=_cmd_serve)

    sp = sub.add_parser(
        "fingerprint",
        help="print the stable content fingerprints (cache addresses / "
             "service ETags) of a plan without running it",
    )
    sp.add_argument("benchmarks", nargs="*",
                    help="benchmark names (alternative to --plan)")
    sp.add_argument("--plan", default=None, metavar="FILE",
                    help="plan-request JSON file ('-' for stdin) in the "
                         "POST /plans wire format")
    sp.add_argument("--system", default="baseline",
                    help="system flavor for positional benchmarks "
                         "(default baseline; see repro validate --list)")
    common(sp)
    sp.set_defaults(func=_cmd_fingerprint)

    sp = sub.add_parser(
        "validate",
        help="run the committed validation corpus against the analytical "
             "golden models and expected-stat bands (exit 1 on mismatch)",
    )
    sp.add_argument("--corpus", default=None, metavar="FILE",
                    help="corpus YAML file (default: the committed corpus)")
    sp.add_argument("--only", action="append", default=None, metavar="NAME",
                    help="run only the named entry (repeatable)")
    sp.add_argument("--list", action="store_true",
                    help="list corpus entries and exit")
    sp.set_defaults(func=_cmd_validate)
    return p


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Translates library errors into exit codes here, at the boundary:
    malformed configuration (``ConfigError``) exits 2, a fail-fast plan
    failure prints the failure report and exits 1, and an interrupt
    (after the runner has persisted completed results and printed its
    resume hint) exits 130.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ConfigError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    except PlanExecutionError as exc:
        print(reporting.render_failures(exc.failures), file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130
    finally:
        set_execution_policy(None)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
