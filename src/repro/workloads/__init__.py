"""Workload generation: SPEC CPU2006 stand-ins, mixes, trace containers."""

from .analysis import TraceProfile, bank_dwells, characterize, delta_predictability
from .mixes import WORKLOAD_MIXES, mix_intensity, mix_profiles
from .spec_profiles import (
    INTENSIVE,
    NON_INTENSIVE,
    SPEC_PROFILES,
    SpecProfile,
    clear_trace_cache,
    profile,
)
from .synthetic import PhaseModel, generate_trace, pattern_addresses
from .trace import AccessTrace, concat_traces

__all__ = [
    "TraceProfile",
    "bank_dwells",
    "characterize",
    "delta_predictability",
    "WORKLOAD_MIXES",
    "mix_intensity",
    "mix_profiles",
    "INTENSIVE",
    "NON_INTENSIVE",
    "SPEC_PROFILES",
    "SpecProfile",
    "clear_trace_cache",
    "profile",
    "PhaseModel",
    "generate_trace",
    "pattern_addresses",
    "AccessTrace",
    "concat_traces",
]
