"""Trace characterization: the statistics that drove profile calibration.

Quantifies the properties of a (CPU- or memory-level) trace that ROP's
behaviour depends on:

* **intensity** — misses per kilo-instruction (MPKI);
* **burstiness** — busy-fraction of fixed instruction windows and the
  window-to-window activity correlation (the time-domain quantity behind
  the paper's λ and β);
* **delta predictability** — the fraction of accesses whose address a
  cyclic delta matcher of order ≤ 3 would have predicted (an upper-bound
  proxy for the prefetcher's accuracy);
* **bank locality** — how long the stream dwells in one bank under a
  given address mapping.

All computations are NumPy-vectorized except the (linear, single-pass)
predictability scan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AddressMapScheme, MemoryOrganization
from ..dram.address_mapping import AddressMapper
from .trace import AccessTrace

__all__ = ["TraceProfile", "characterize", "delta_predictability", "bank_dwells"]


@dataclass(frozen=True)
class TraceProfile:
    """Summary statistics of one trace (see module docstring)."""

    accesses: int
    instructions: int
    mpki: float
    write_fraction: float
    footprint_lines: int
    #: fraction of fixed windows containing ≥1 access
    busy_window_fraction: float
    #: P(window busy | previous window busy) — the λ analogue
    busy_persistence: float
    #: P(window quiet | previous window quiet) — the β analogue
    quiet_persistence: float
    #: fraction of accesses predicted by an order-≤3 cyclic delta matcher
    delta_predictability: float
    #: mean consecutive accesses to the same bank (given a mapping)
    mean_bank_dwell: float


def _window_activity(trace: AccessTrace, window_instr: int) -> np.ndarray:
    """Boolean activity per fixed instruction window."""
    positions = np.cumsum(trace.gaps)
    total = trace.total_instructions
    n_windows = max(1, int(total // window_instr))
    idx = np.minimum(positions // window_instr, n_windows - 1).astype(np.int64)
    busy = np.zeros(n_windows, dtype=bool)
    busy[idx] = True
    return busy


def delta_predictability(lines: np.ndarray, max_order: int = 3) -> float:
    """Fraction of accesses an order-≤``max_order`` cyclic matcher predicts.

    Mirrors :class:`repro.core.prediction_table.BankEntry`'s matchers on a
    single undivided stream: an access counts as predicted if *any* order's
    current pattern forecasts its delta.
    """
    if len(lines) < max_order + 2:
        return 0.0
    deltas = np.diff(lines)
    deltas = deltas[deltas != 0]
    n = len(deltas)
    if n < max_order + 1:
        return 0.0
    hits = 0
    patterns: list[tuple[tuple[int, ...], int] | None] = [None] * max_order
    history: list[int] = []
    for d in deltas:
        predicted = False
        for k in range(1, max_order + 1):
            state = patterns[k - 1]
            if state is not None:
                pat, phase = state
                if d == pat[phase]:
                    patterns[k - 1] = (pat, (phase + 1) % k)
                    predicted = True
                    continue
            if len(history) >= k - 1:
                anchor = tuple(history[-(k - 1):]) + (int(d),) if k > 1 else (int(d),)
                patterns[k - 1] = (anchor, 0)
        if predicted:
            hits += 1
        history.append(int(d))
        if len(history) > max_order:
            history.pop(0)
    return hits / n


def bank_dwells(
    lines: np.ndarray,
    org: MemoryOrganization,
    scheme: AddressMapScheme = AddressMapScheme.BANK_LOCALITY,
) -> np.ndarray:
    """Lengths of consecutive same-(rank, bank) access runs."""
    if len(lines) == 0:
        return np.empty(0, dtype=np.int64)
    mapper = AddressMapper(org, scheme)
    keys = np.fromiter(
        (
            (c := mapper.decode(int(l))).channel * 1_000_000
            + c.rank * 1_000
            + c.bank
            for l in lines
        ),
        dtype=np.int64,
        count=len(lines),
    )
    change = np.nonzero(np.diff(keys))[0]
    boundaries = np.concatenate([[-1], change, [len(keys) - 1]])
    return np.diff(boundaries).astype(np.int64)


def characterize(
    trace: AccessTrace,
    *,
    window_instr: int = 25_000,
    org: MemoryOrganization | None = None,
    scheme: AddressMapScheme = AddressMapScheme.BANK_LOCALITY,
) -> TraceProfile:
    """Compute a :class:`TraceProfile` for one trace.

    ``window_instr`` defaults to ≈ one refresh interval at 1 IPC (the
    paper's observational window), so ``busy_persistence`` and
    ``quiet_persistence`` approximate λ and β.
    """
    org = org if org is not None else MemoryOrganization()
    instructions = trace.total_instructions
    busy = _window_activity(trace, window_instr)
    if len(busy) > 1:
        prev, nxt = busy[:-1], busy[1:]
        n_busy = int(prev.sum())
        n_quiet = int((~prev).sum())
        busy_persist = float((prev & nxt).sum() / n_busy) if n_busy else float("nan")
        quiet_persist = (
            float((~prev & ~nxt).sum() / n_quiet) if n_quiet else float("nan")
        )
    else:
        busy_persist = quiet_persist = float("nan")
    dwells = bank_dwells(trace.lines, org, scheme)
    return TraceProfile(
        accesses=len(trace),
        instructions=instructions,
        mpki=len(trace) / max(1, instructions) * 1000,
        write_fraction=trace.write_count / max(1, len(trace)),
        footprint_lines=trace.footprint_lines,
        busy_window_fraction=float(busy.mean()),
        busy_persistence=busy_persist,
        quiet_persistence=quiet_persist,
        delta_predictability=delta_predictability(trace.lines),
        mean_bank_dwell=float(dwells.mean()) if len(dwells) else 0.0,
    )
