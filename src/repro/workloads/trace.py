"""Trace containers exchanged between workload generators, the LLC filter
and the CPU core model.

A trace is a NumPy-backed sequence of memory accesses. ``gaps[i]`` is the
number of instructions executed between access ``i-1`` and access ``i``
(the first gap counts from program start), ``lines[i]`` is the cache-line
index, ``writes[i]`` marks stores. The same container is used at both
levels of the hierarchy:

* a **CPU-level trace** lists every load/store the core executes (the
  LLC's input);
* a **memory-level trace** lists only LLC misses and write-backs (the
  memory controller's input). Write-backs carry a zero gap — they are
  side effects of the miss that evicted them, not program progress.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = ["AccessTrace", "concat_traces"]


@dataclass(frozen=True)
class AccessTrace:
    """An immutable sequence of memory accesses (see module docstring)."""

    gaps: np.ndarray  #: int64, instructions since the previous access
    lines: np.ndarray  #: int64, cache-line indices
    writes: np.ndarray  #: bool, True for stores / write-backs
    #: instructions executed after the last access (program tail)
    tail_instructions: int = 0

    def __post_init__(self) -> None:
        if not (len(self.gaps) == len(self.lines) == len(self.writes)):
            raise ValueError(
                f"trace arrays disagree on length: "
                f"{len(self.gaps)}/{len(self.lines)}/{len(self.writes)}"
            )
        if len(self.gaps) and int(self.gaps.min()) < 0:
            raise ValueError("trace gaps must be non-negative")

    def __len__(self) -> int:
        return len(self.lines)

    @property
    def total_instructions(self) -> int:
        """Instructions the program executes over the whole trace."""
        return int(self.gaps.sum()) + self.tail_instructions

    @property
    def read_count(self) -> int:
        """Number of loads (or demand fetches at memory level)."""
        return int((~self.writes).sum())

    @property
    def write_count(self) -> int:
        """Number of stores (or write-backs at memory level)."""
        return int(self.writes.sum())

    @property
    def footprint_lines(self) -> int:
        """Distinct cache lines touched."""
        return int(np.unique(self.lines).size)

    def slice(self, start: int, stop: int) -> "AccessTrace":
        """A view-like sub-trace of accesses [start, stop)."""
        return AccessTrace(
            self.gaps[start:stop],
            self.lines[start:stop],
            self.writes[start:stop],
            tail_instructions=self.tail_instructions if stop >= len(self) else 0,
        )

    def offset_lines(self, base_line: int) -> "AccessTrace":
        """Shift every address by ``base_line`` (rank-partition placement)."""
        return AccessTrace(
            self.gaps,
            self.lines + np.int64(base_line),
            self.writes,
            tail_instructions=self.tail_instructions,
        )

    # -- persistence ----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialize to a compressed ``.npz`` file."""
        np.savez_compressed(
            path,
            gaps=self.gaps,
            lines=self.lines,
            writes=self.writes,
            tail=np.int64(self.tail_instructions),
        )

    @classmethod
    def load(cls, path: str | Path) -> "AccessTrace":
        """Load a trace previously written by :meth:`save`."""
        with np.load(path) as data:
            return cls(
                data["gaps"].astype(np.int64),
                data["lines"].astype(np.int64),
                data["writes"].astype(bool),
                tail_instructions=int(data["tail"]),
            )

    @classmethod
    def from_lists(
        cls,
        gaps,
        lines,
        writes,
        tail_instructions: int = 0,
    ) -> "AccessTrace":
        """Build a trace from Python sequences (tests, tiny examples)."""
        return cls(
            np.asarray(gaps, dtype=np.int64),
            np.asarray(lines, dtype=np.int64),
            np.asarray(writes, dtype=bool),
            tail_instructions=tail_instructions,
        )


def concat_traces(traces: list[AccessTrace]) -> AccessTrace:
    """Concatenate traces in program order.

    Each trace's ``tail_instructions`` becomes part of the gap leading into
    the next trace's first access.
    """
    if not traces:
        raise ValueError("cannot concatenate an empty list of traces")
    gaps_parts: list[np.ndarray] = []
    carry = 0
    for tr in traces:
        g = tr.gaps.copy()
        if len(g):
            g[0] += carry
            carry = tr.tail_instructions
        else:
            carry += tr.tail_instructions
        gaps_parts.append(g)
    return AccessTrace(
        np.concatenate(gaps_parts),
        np.concatenate([t.lines for t in traces]),
        np.concatenate([t.writes for t in traces]),
        tail_instructions=carry,
    )
