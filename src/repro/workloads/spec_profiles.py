"""Calibrated stand-ins for the paper's twelve SPEC CPU2006 benchmarks.

Each profile wraps a :class:`~repro.workloads.synthetic.PhaseModel` whose
parameters were tuned so the *memory-level* behaviour matches what the
paper reports (see DESIGN.md, substitutions):

* the intensive/non-intensive split of Table II,
* the per-benchmark λ and β of Table I (busy/idle dwell lengths relative
  to the 7.8 µs refresh interval ≈ 25 k instructions at 1 IPC),
* qualitatively appropriate address behaviour (lbm/libquantum/bwaves
  stream; GemsFDTD/cactusADM are strided stencils; omnetpp/astar/gobmk
  chase pointers; gcc/perlbench are mixed).

The dwell intuition: for exponential dwells, λ ≈ P(a busy phase survives
one more window) grows with ``busy_instr``, and β ≈ P(an idle phase
survives one more window) grows with ``idle_instr``.

Profiles expose :meth:`SpecProfile.cpu_trace` (CPU level) and
:meth:`SpecProfile.memory_trace` (filtered through a given LLC); the
latter memoizes per (instructions, seed, LLC geometry) because filtering
outcomes are timing-independent.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import LlcConfig
from ..cpu.llc import filter_trace
from ..rng import derive_seed
from .synthetic import PhaseModel, generate_trace
from .trace import AccessTrace

__all__ = [
    "SpecProfile",
    "SPEC_PROFILES",
    "INTENSIVE",
    "NON_INTENSIVE",
    "profile",
    "clear_trace_cache",
]

#: module-level memo of filtered memory traces (pure-function results)
_MEM_TRACE_CACHE: dict[tuple, AccessTrace] = {}


def clear_trace_cache() -> None:
    """Drop all memoized traces (tests use this to bound memory)."""
    _MEM_TRACE_CACHE.clear()


@dataclass(frozen=True)
class SpecProfile:
    """One benchmark stand-in: a named, calibrated phase model."""

    name: str
    intensive: bool
    model: PhaseModel
    #: Table I targets at the 1× window (for documentation and tests)
    paper_lambda: float
    paper_beta: float

    def cpu_trace(self, instructions: int, seed: int = 0) -> AccessTrace:
        """Generate this benchmark's CPU-level trace."""
        return generate_trace(
            self.model, instructions, derive_seed(seed, self.name), tag=self.name
        )

    def trace_key(self, instructions: int, llc: LlcConfig, seed: int = 0) -> str:
        """Content fingerprint of this profile's filtered memory trace.

        Covers the full :class:`~repro.workloads.synthetic.PhaseModel`,
        run length, seed and LLC geometry, so recalibrating a profile (or
        changing the LLC the trace is filtered through) invalidates its
        persisted traces automatically.
        """
        from ..harness.cache import fingerprint

        return fingerprint("trace", self.name, self.model, instructions, seed, llc)

    def memory_trace(
        self, instructions: int, llc: LlcConfig, seed: int = 0
    ) -> AccessTrace:
        """LLC-filtered memory trace (memoized, trace-plane backed).

        Filtering is a pure function of (phase model, run length, seed,
        LLC geometry), so traces are persisted through the content-keyed
        :mod:`~repro.harness.trace_plane` as raw ``.npy`` arrays: worker
        processes and later invocations memory-map the shared artifact
        (``np.load(mmap_mode="r")``) instead of regenerating and
        re-filtering it — one copy in the page cache, however many
        processes replay it.
        """
        key = (self.name, instructions, seed, llc.size_bytes, llc.ways, llc.line_bytes)
        cached = _MEM_TRACE_CACHE.get(key)
        if cached is None:
            # imported lazily: workloads must not import harness at module
            # scope (the harness drivers import workloads).
            from ..harness.trace_plane import get_trace_plane

            plane = get_trace_plane()
            dkey = self.trace_key(instructions, llc, seed)
            cached = plane.load(dkey)
            if cached is None:
                cached = filter_trace(
                    self.cpu_trace(instructions, seed), llc
                ).memory_trace
                stored = plane.store(dkey, cached)
                if stored is not None:
                    # hand out the mmap readback: every later consumer in
                    # any process then shares the same page-cache pages
                    cached = stored
            _MEM_TRACE_CACHE[key] = cached
        return cached


def _p(
    name: str,
    intensive: bool,
    lam: float,
    beta: float,
    **model_kwargs,
) -> SpecProfile:
    return SpecProfile(name, intensive, PhaseModel(**model_kwargs), lam, beta)


#: The twelve calibrated profiles, keyed by benchmark name.
SPEC_PROFILES: dict[str, SpecProfile] = {
    p.name: p
    for p in [
        # ---- memory-intensive (Table II, 'Y') -------------------------------
        # Intensities target the paper's observed scale: Fig. 3 reports
        # at most ~12 reads blocked per refresh, i.e. ≈ 8–15 misses per
        # 1000 instructions for the heaviest benchmarks.
        _p(
            "GemsFDTD", True, 0.99, 0.68,
            busy_instr=300_000, idle_instr=45_000,
            access_density=0.25, pattern_frac=0.05, ws_frac=0.004,
            pattern="multidelta", deltas=(1, 1, 6),
            write_frac=0.30, ws_run=8, ws_lines=1 << 16, cursor_space=1 << 23,
        ),
        _p(
            "lbm", True, 0.99, 0.00,
            busy_instr=10_000_000, idle_instr=0,
            access_density=0.30, pattern_frac=0.045, ws_frac=0.01,
            pattern="stream",
            write_frac=0.45, ws_run=8, ws_lines=1 << 15, cursor_space=1 << 23,
        ),
        _p(
            "bwaves", True, 0.93, 0.00,
            busy_instr=500_000, idle_instr=3_000,
            access_density=0.25, pattern_frac=0.05, ws_frac=0.01,
            pattern="stream",
            write_frac=0.25, ws_run=8, ws_lines=1 << 15, cursor_space=1 << 23,
        ),
        _p(
            "gcc", True, 0.97, 0.96,
            busy_instr=800_000, idle_instr=900_000,
            access_density=0.20, pattern_frac=0.04, ws_frac=0.08,
            pattern="multidelta", deltas=(1, 2),
            write_frac=0.30, ws_run=24, ws_lines=1 << 16, cursor_space=1 << 22,
        ),
        _p(
            "libquantum", True, 0.99, 0.04,
            busy_instr=1_000_000, idle_instr=5_000,
            access_density=0.25, pattern_frac=0.045, ws_frac=0.01,
            pattern="stream",
            write_frac=0.05, ws_run=8, ws_lines=1 << 14, cursor_space=1 << 23,
        ),
        _p(
            "cactusADM", True, 0.78, 0.54,
            busy_instr=45_000, idle_instr=40_000,
            access_density=0.25, pattern_frac=0.04, ws_frac=0.004,
            pattern="stride", stride=4,
            write_frac=0.30, ws_run=8, ws_lines=1 << 16, cursor_space=1 << 23,
        ),
        # ---- non-intensive ---------------------------------------------------
        _p(
            "wrf", False, 0.99, 1.00,
            busy_instr=2_000_000, idle_instr=2_000_000,
            access_density=0.12, pattern_frac=0.015, ws_frac=0.05,
            pattern="stream",
            write_frac=0.25, ws_run=12, ws_lines=1 << 15, cursor_space=1 << 22,
        ),
        _p(
            "bzip2", False, 0.84, 0.94,
            busy_instr=180_000, idle_instr=550_000,
            access_density=0.20, pattern_frac=0.012, ws_frac=0.04,
            pattern="stream",
            write_frac=0.30, ws_run=24, ws_lines=1 << 13, cursor_space=1 << 22,
        ),
        _p(
            "perlbench", False, 0.40, 0.73,
            busy_instr=9_000, idle_instr=80_000,
            access_density=0.15, pattern_frac=0.010, ws_frac=0.04,
            pattern="multidelta", deltas=(1, 3),
            write_frac=0.35, ws_run=10, ws_lines=1 << 13, cursor_space=1 << 21,
        ),
        _p(
            "astar", False, 0.76, 0.97,
            busy_instr=60_000, idle_instr=800_000,
            access_density=0.15, pattern_frac=0.012, ws_frac=0.04,
            pattern="multidelta", deltas=(2, 1),
            write_frac=0.20, ws_run=10, ws_lines=1 << 13, cursor_space=1 << 20,
        ),
        _p(
            "omnetpp", False, 0.78, 0.95,
            busy_instr=60_000, idle_instr=600_000,
            access_density=0.18, pattern_frac=0.015, ws_frac=0.05,
            pattern="stride", stride=3,
            write_frac=0.30, ws_run=12, ws_lines=1 << 13, cursor_space=1 << 20,
        ),
        _p(
            "gobmk", False, 0.20, 0.88,
            busy_instr=6_000, idle_instr=260_000,
            access_density=0.12, pattern_frac=0.010, ws_frac=0.03,
            pattern="chase",
            write_frac=0.25, ws_run=8, ws_lines=1 << 12, cursor_space=1 << 20,
        ),
    ]
}

#: benchmark names by Table II intensity class
INTENSIVE: tuple[str, ...] = tuple(
    p.name for p in SPEC_PROFILES.values() if p.intensive
)
NON_INTENSIVE: tuple[str, ...] = tuple(
    p.name for p in SPEC_PROFILES.values() if not p.intensive
)


def profile(name: str) -> SpecProfile:
    """Look up a profile by benchmark name (KeyError with suggestions)."""
    try:
        return SPEC_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(SPEC_PROFILES)}"
        ) from None
