"""Synthetic CPU-level trace generation primitives.

SPEC CPU2006 binaries cannot run here, so each benchmark is modeled as a
*phase-structured* access process (see DESIGN.md, substitutions):

* execution alternates **busy** phases (dense loads/stores) and **idle**
  phases (pure computation, no memory accesses), with exponentially
  distributed dwell lengths measured in instructions. Dwells relative to
  the refresh interval are what set the paper's λ/β statistics;
* within a busy phase, accesses split between three components:

  - a **pattern** component walking a large-footprint cursor (sequential,
    strided, multi-delta, or pointer-chasing) — these are compulsory LLC
    misses and carry the delta patterns ROP's prediction table learns;
  - a **working-set** component touching a medium-size region uniformly —
    resident or not depending on LLC capacity (drives the paper's LLC
    sensitivity study);
  - a **hot** component touching a small always-resident set — pure LLC
    hits that create realistic filtered traffic.

All arrays are generated vectorized with NumPy; a fixed seed makes every
trace reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..rng import make_rng
from .trace import AccessTrace

__all__ = ["PhaseModel", "generate_trace", "pattern_addresses"]


@dataclass(frozen=True)
class PhaseModel:
    """Parameters of one benchmark's phase-structured access process.

    Instruction counts are in *instructions*; with the default 1-IPC core
    at 3.2 GHz, one refresh interval (7.8 µs) is ≈ 25 k instructions —
    the yardstick for choosing dwell lengths.
    """

    #: mean busy-phase length (instructions); exponential dwell
    busy_instr: float
    #: mean idle-phase length (instructions); 0 disables idle phases
    idle_instr: float
    #: loads+stores per instruction during busy phases (CPU level)
    access_density: float
    #: access mix within busy phases; fractions sum to ≤ 1, remainder is hot
    pattern_frac: float
    ws_frac: float
    #: address pattern of the pattern component
    pattern: str = "stream"  #: stream | stride | multidelta | chase
    stride: int = 1
    deltas: tuple[int, ...] = (1,)
    #: fraction of accesses that are stores
    write_frac: float = 0.2
    #: working-set component size in cache lines
    ws_lines: int = 1 << 16
    #: spatial-run length of working-set accesses: each touch starts at a
    #: random line and continues sequentially for this many lines (real
    #: programs access objects, not single lines — and the runs give the
    #: prefetcher's delta table something to latch onto)
    ws_run: int = 4
    #: hot component size in cache lines (always LLC-resident)
    hot_lines: int = 1 << 9
    #: footprint the pattern cursor wraps around, in cache lines
    cursor_space: int = 1 << 23

    def __post_init__(self) -> None:
        if self.pattern not in ("stream", "stride", "multidelta", "chase"):
            raise ValueError(f"unknown pattern {self.pattern!r}")
        if self.pattern_frac + self.ws_frac > 1.0 + 1e-9:
            raise ValueError("pattern_frac + ws_frac must be ≤ 1")
        if self.access_density <= 0:
            raise ValueError("access_density must be positive")


def pattern_addresses(
    kind: str,
    n: int,
    cursor: int,
    space: int,
    rng: np.random.Generator,
    *,
    stride: int = 1,
    deltas: tuple[int, ...] = (1,),
) -> tuple[np.ndarray, int]:
    """Generate ``n`` pattern-component line addresses from ``cursor``.

    Returns ``(lines, new_cursor)``; addresses wrap modulo ``space``.

    * ``stream`` — consecutive lines (delta +1);
    * ``stride`` — constant delta ``stride``;
    * ``multidelta`` — cyclic delta tuple (the multi-delta patterns VLDP
      was designed for, e.g. ``(1, 1, 3)``);
    * ``chase`` — pointer chasing: pseudo-random jumps with no learnable
      delta structure (adversarial for the prefetcher).
    """
    if n <= 0:
        return np.empty(0, dtype=np.int64), cursor
    if kind == "stream":
        steps = np.ones(n, dtype=np.int64)
    elif kind == "stride":
        steps = np.full(n, stride, dtype=np.int64)
    elif kind == "multidelta":
        pattern = np.asarray(deltas, dtype=np.int64)
        reps = -(-n // len(pattern))
        steps = np.tile(pattern, reps)[:n]
    elif kind == "chase":
        # unpredictable strides drawn fresh each step
        steps = rng.integers(1, space // 4, size=n, dtype=np.int64)
    else:
        raise ValueError(f"unknown pattern kind {kind!r}")
    lines = (cursor + np.cumsum(steps)) % space
    return lines, int(lines[-1])


@dataclass
class _GenState:
    """Mutable generation cursors carried across phases."""

    cursor: int = 0
    rng: np.random.Generator = field(default_factory=lambda: make_rng(0))


def _busy_phase(
    model: PhaseModel, n_instr: int, state: _GenState
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate the accesses of one busy phase (gaps, lines, writes)."""
    rng = state.rng
    n_access = max(1, int(n_instr * model.access_density))
    # instruction gaps: multinomial split of the phase across accesses
    gaps = rng.multinomial(n_instr, np.full(n_access, 1.0 / n_access)).astype(np.int64)
    # component assignment
    u = rng.random(n_access)
    is_pattern = u < model.pattern_frac
    is_ws = (~is_pattern) & (u < model.pattern_frac + model.ws_frac)
    is_hot = ~(is_pattern | is_ws)
    lines = np.empty(n_access, dtype=np.int64)
    np_pattern = int(is_pattern.sum())
    if np_pattern:
        pat, state.cursor = pattern_addresses(
            model.pattern,
            np_pattern,
            state.cursor,
            model.cursor_space,
            rng,
            stride=model.stride,
            deltas=model.deltas,
        )
        lines[is_pattern] = pat
    n_ws = int(is_ws.sum())
    if n_ws:
        # working-set region sits directly above the cursor space; accesses
        # come in short sequential runs from random bases (spatial locality)
        run = max(1, model.ws_run)
        n_runs = -(-n_ws // run)
        bases = rng.integers(0, model.ws_lines, size=n_runs, dtype=np.int64)
        ws_addrs = (np.repeat(bases, run)[:n_ws] + np.tile(
            np.arange(run, dtype=np.int64), n_runs
        )[:n_ws]) % model.ws_lines
        lines[is_ws] = model.cursor_space + ws_addrs
    n_hot = int(is_hot.sum())
    if n_hot:
        # hot region sits above the working set
        lines[is_hot] = (
            model.cursor_space
            + model.ws_lines
            + rng.integers(0, model.hot_lines, size=n_hot, dtype=np.int64)
        )
    writes = rng.random(n_access) < model.write_frac
    return gaps, lines, writes


def generate_trace(
    model: PhaseModel,
    total_instructions: int,
    seed: int,
    *,
    tag: str = "trace",
) -> AccessTrace:
    """Generate a CPU-level access trace of ``total_instructions``.

    Phases alternate busy → idle until the instruction budget is spent;
    idle phases contribute only to the gap before the next access.
    """
    if total_instructions <= 0:
        raise ValueError("total_instructions must be positive")
    state = _GenState(rng=make_rng(seed, tag))
    rng = state.rng
    gaps_parts: list[np.ndarray] = []
    lines_parts: list[np.ndarray] = []
    writes_parts: list[np.ndarray] = []
    executed = 0
    pending_idle = 0
    while executed < total_instructions:
        busy = int(rng.exponential(model.busy_instr)) + 1
        busy = min(busy, total_instructions - executed)
        g, l, w = _busy_phase(model, busy, state)
        if pending_idle and len(g):
            g = g.copy()
            g[0] += pending_idle
            pending_idle = 0
        gaps_parts.append(g)
        lines_parts.append(l)
        writes_parts.append(w)
        executed += busy
        if model.idle_instr > 0 and executed < total_instructions:
            idle = int(rng.exponential(model.idle_instr)) + 1
            idle = min(idle, total_instructions - executed)
            pending_idle += idle
            executed += idle
    return AccessTrace(
        np.concatenate(gaps_parts),
        np.concatenate(lines_parts),
        np.concatenate(writes_parts),
        tail_instructions=pending_idle,
    )
