"""Multi-programmed workload mixes WL1–WL6 (Table II).

The paper's Table II marks each mix's members with checkmarks that did not
survive the text extraction, so the mixes are reconstructed from the
paper's constraints: six mixes of four benchmarks spanning "a diverse
mixing of the memory intensive and non-intensive benchmarks", ordered so
WL1 is the most memory-intensive (the paper highlights WL1 as gaining the
most from ROP) and later mixes are progressively lighter.
"""

from __future__ import annotations

from .spec_profiles import SPEC_PROFILES, SpecProfile

__all__ = ["WORKLOAD_MIXES", "mix_profiles", "mix_intensity"]

#: mix name → four benchmark names (reconstructed; see module docstring)
WORKLOAD_MIXES: dict[str, tuple[str, str, str, str]] = {
    "WL1": ("GemsFDTD", "lbm", "bwaves", "libquantum"),  # 4 intensive
    "WL2": ("lbm", "gcc", "libquantum", "cactusADM"),  # 4 intensive
    "WL3": ("GemsFDTD", "bwaves", "wrf", "bzip2"),  # 2 + 2
    "WL4": ("gcc", "cactusADM", "perlbench", "astar"),  # 2 + 2
    "WL5": ("libquantum", "wrf", "omnetpp", "gobmk"),  # 1 + 3
    "WL6": ("bzip2", "perlbench", "astar", "gobmk"),  # 0 + 4
}


def mix_profiles(name: str) -> tuple[SpecProfile, ...]:
    """The four :class:`SpecProfile` objects of a mix."""
    try:
        members = WORKLOAD_MIXES[name]
    except KeyError:
        raise KeyError(f"unknown mix {name!r}; known: {sorted(WORKLOAD_MIXES)}") from None
    return tuple(SPEC_PROFILES[m] for m in members)


def mix_intensity(name: str) -> int:
    """Number of memory-intensive members in a mix (0–4)."""
    return sum(1 for p in mix_profiles(name) if p.intensive)
