"""Structured golden-model mismatches and their rendering.

Every golden-model check returns a list of :class:`Mismatch` records —
one per disagreement between the simulator and the independent
analytical model — instead of raising on the first. The harness decides
what to do with them: the ``repro validate`` CLI renders them as a table
and exits non-zero; the ``--validate`` per-spec wiring raises a
:class:`GoldenMismatchError` so the failure classifies as ``invariant``
in the runner's taxonomy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..stats.invariants import InvariantViolation

__all__ = ["Mismatch", "GoldenMismatchError", "render_mismatch_table"]

#: per-check cap on recorded mismatches (a systematically wrong model
#: would otherwise produce one record per event)
MAX_PER_CHECK = 25


@dataclass(frozen=True)
class Mismatch:
    """One disagreement between the simulator and a golden model."""

    #: which golden check found it: ``lambda-beta`` | ``eq3-budget`` |
    #: ``refresh-schedule`` | ``ddr-timing`` | ``sram-model`` |
    #: ``counters`` | ``stat-band``
    check: str
    #: where: e.g. ``ch0.rank1`` or ``ch0.rank0.bank3`` or a stat name
    site: str
    #: what the golden model expected vs what the simulator produced
    expected: object
    actual: object
    #: cycle the disagreement is anchored to (−1 when not cycle-specific)
    cycle: int = -1
    #: free-form context (which rule, which event)
    detail: str = ""


class GoldenMismatchError(InvariantViolation):
    """A validated run disagreed with at least one golden model.

    Subclasses :class:`InvariantViolation` so the runner's failure
    taxonomy files it under ``invariant`` — a wrong model, like a
    violated physical constraint, must never enter the artifact cache
    silently.
    """

    def __init__(self, mismatches: Iterable[Mismatch]) -> None:
        self.mismatches = tuple(mismatches)
        checks = sorted({m.check for m in self.mismatches})
        super().__init__(
            site="golden",
            detail=(
                f"{len(self.mismatches)} golden-model mismatch(es) "
                f"in check(s): {', '.join(checks)}\n"
                + render_mismatch_table(self.mismatches)
            ),
        )


def _cell(value: object, width: int = 36) -> str:
    text = str(value)
    return text if len(text) <= width else text[: width - 1] + "…"


def render_mismatch_table(mismatches: Iterable[Mismatch]) -> str:
    """Render mismatches as an aligned text table (empty string if none)."""
    rows = [
        (
            m.check,
            m.site,
            str(m.cycle) if m.cycle >= 0 else "-",
            _cell(m.expected),
            _cell(m.actual),
            _cell(m.detail, 48),
        )
        for m in mismatches
    ]
    if not rows:
        return ""
    header = ("CHECK", "SITE", "CYCLE", "EXPECTED", "ACTUAL", "DETAIL")
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))
    ]
    def fmt(row: tuple) -> str:
        return "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()

    rule = "  ".join("-" * w for w in widths)
    return "\n".join([fmt(header), rule] + [fmt(r) for r in rows])


def cap_mismatches(mismatches: list[Mismatch], check: str) -> list[Mismatch]:
    """Truncate one check's mismatch list, noting how many were dropped."""
    if len(mismatches) <= MAX_PER_CHECK:
        return mismatches
    dropped = len(mismatches) - MAX_PER_CHECK
    return mismatches[:MAX_PER_CHECK] + [
        Mismatch(
            check=check,
            site="…",
            expected="",
            actual="",
            detail=f"{dropped} further mismatch(es) suppressed",
        )
    ]
