"""Hypothesis strategies for adversarial traces and configurations.

The fuzz suite drives :func:`repro.validation.golden.validate_traces`
with generated inputs and asserts golden-model agreement plus a handful
of metamorphic properties. The strategies here bias generation toward
the regimes where the simulator's scheduling logic has the most corner
cases:

* **bursty** traces — dense access trains separated by long compute
  gaps, stressing queue drain and write-batch switching;
* **refresh-aligned** traces — inter-access gaps close to one tREFI of
  instructions, so demand keeps landing right as locks start;
* **bank-conflict** traces — row ping-pong inside one bank, maximizing
  precharge/activate churn against tRC and tFAW;
* **degenerate** traces — empty, single-access, all-write, single-line.

Configs sample refresh modes, rank counts and ROP knobs small enough
that a few hundred accesses still cross several refresh windows.

Import this module only from tests — it requires ``hypothesis``, which
is a test-only dependency (the validate CLI must not need it).
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from ..config import (
    AddressMapScheme,
    CoreConfig,
    MemoryOrganization,
    RefreshMode,
    SystemConfig,
)
from ..workloads.trace import AccessTrace

__all__ = [
    "FUZZ_ORG",
    "uniform_traces",
    "bursty_traces",
    "refresh_aligned_traces",
    "bank_conflict_traces",
    "degenerate_traces",
    "memory_traces",
    "fuzz_configs",
    "config_and_traces",
]

#: small geometry shared by all fuzz runs: 4 banks × 256 rows × 32 lines
#: keeps runs fast while leaving room for row conflicts and rank stagger
FUZZ_ORG = MemoryOrganization(channels=1, ranks=1, banks=4, rows=256, columns=32)

#: footprint ceiling for generated line addresses (fits one fuzz rank)
_MAX_LINE = FUZZ_ORG.lines_per_rank - 1

#: instructions per memory cycle under the default core model
_INSTR_PER_CYCLE = CoreConfig().cpu_clock_mult

#: tREFI used by fuzz configs (cycles); small enough that ~200 accesses
#: cross several refresh windows, large enough that every derived mode
#: (FGR, per-bank) keeps tRFC < tREFI
_FUZZ_REFI = 1200


def _trace(gaps, lines, writes, tail: int = 0) -> AccessTrace:
    return AccessTrace(
        np.asarray(gaps, dtype=np.int64),
        np.asarray(lines, dtype=np.int64),
        np.asarray(writes, dtype=bool),
        tail_instructions=tail,
    )


@st.composite
def uniform_traces(draw, max_len: int = 150) -> AccessTrace:
    """Unstructured traffic: random gaps, lines and ~25 % writes."""
    n = draw(st.integers(1, max_len))
    gaps = draw(st.lists(st.integers(0, 64), min_size=n, max_size=n))
    lines = draw(st.lists(st.integers(0, _MAX_LINE), min_size=n, max_size=n))
    writes = draw(st.lists(st.sampled_from([False, False, False, True]), min_size=n, max_size=n))
    return _trace(gaps, lines, writes, tail=draw(st.integers(0, 200)))


@st.composite
def bursty_traces(draw) -> AccessTrace:
    """Dense bursts (gap 0–2) separated by long compute phases."""
    gaps: list[int] = []
    lines: list[int] = []
    writes: list[bool] = []
    for _ in range(draw(st.integers(1, 6))):
        gap_to_burst = draw(st.integers(500, 8000))
        base = draw(st.integers(0, _MAX_LINE - 64))
        burst_len = draw(st.integers(4, 48))
        stride = draw(st.sampled_from([1, 2, FUZZ_ORG.columns]))
        is_write_burst = draw(st.booleans())
        for j in range(burst_len):
            gaps.append(gap_to_burst if j == 0 else draw(st.integers(0, 2)))
            lines.append(min(base + j * stride, _MAX_LINE))
            writes.append(is_write_burst and j % 3 == 0)
    return _trace(gaps, lines, writes)


@st.composite
def refresh_aligned_traces(draw) -> AccessTrace:
    """Gaps near one tREFI of instructions: demand collides with locks."""
    refi_instr = _FUZZ_REFI * _INSTR_PER_CYCLE
    n = draw(st.integers(4, 60))
    gaps = [
        refi_instr + draw(st.integers(-refi_instr // 8, refi_instr // 8))
        for _ in range(n)
    ]
    base = draw(st.integers(0, _MAX_LINE - 256))
    lines = [base + draw(st.integers(0, 255)) for _ in range(n)]
    writes = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return _trace(gaps, lines, writes)


@st.composite
def bank_conflict_traces(draw) -> AccessTrace:
    """Row ping-pong in one bank: every access precharges and activates."""
    n = draw(st.integers(8, 120))
    row_a = draw(st.integers(0, FUZZ_ORG.rows - 1))
    row_b = draw(st.integers(0, FUZZ_ORG.rows - 1))
    col = draw(st.integers(0, FUZZ_ORG.columns - 1))
    lines = [
        (row_a if i % 2 == 0 else row_b) * FUZZ_ORG.columns + col for i in range(n)
    ]
    gaps = draw(st.lists(st.integers(0, 8), min_size=n, max_size=n))
    writes = [False] * n
    return _trace(gaps, lines, writes)


@st.composite
def degenerate_traces(draw) -> AccessTrace:
    """Boundary shapes: empty, singleton, all-writes, one hot line."""
    shape = draw(st.sampled_from(["empty", "single", "all_writes", "one_line"]))
    if shape == "empty":
        return _trace([], [], [], tail=draw(st.integers(1, 500)))
    if shape == "single":
        return _trace(
            [draw(st.integers(0, 1000))],
            [draw(st.integers(0, _MAX_LINE))],
            [draw(st.booleans())],
        )
    n = draw(st.integers(2, 40))
    if shape == "all_writes":
        lines = draw(st.lists(st.integers(0, _MAX_LINE), min_size=n, max_size=n))
        return _trace([1] * n, lines, [True] * n)
    line = draw(st.integers(0, _MAX_LINE))
    return _trace([draw(st.integers(0, 16)) for _ in range(n)], [line] * n, [False] * n)


def memory_traces() -> st.SearchStrategy[AccessTrace]:
    """Any adversarial flavor, weighted toward the structured ones."""
    return st.one_of(
        uniform_traces(),
        bursty_traces(),
        refresh_aligned_traces(),
        bank_conflict_traces(),
        degenerate_traces(),
    )


#: retention-bin mixes RAIDR fuzzing samples from — always summing to 1,
#: spanning the all-weak and mostly-strong extremes
_RAIDR_BIN_MIXES = [
    (1.0, 0.0, 0.0),
    (0.5, 0.25, 0.25),
    (0.25, 0.5, 0.25),
    (0.05, 0.25, 0.70),
]


@st.composite
def fuzz_configs(draw, *, rop: bool | None = None) -> SystemConfig:
    """A small, fast system config covering the refresh-mode matrix."""
    mode = draw(
        st.sampled_from(
            [
                RefreshMode.AUTO_1X,
                RefreshMode.ELASTIC,
                RefreshMode.PER_BANK,
                RefreshMode.FGR_2X,
                RefreshMode.PAUSING,
                RefreshMode.NONE,
                RefreshMode.DARP,
                RefreshMode.SARP,
                RefreshMode.RAIDR,
            ]
        )
    )
    rop_on = draw(st.booleans()) if rop is None else rop
    timings = SystemConfig().timings.with_refresh(refi=_FUZZ_REFI, rfc=100)
    cfg = SystemConfig.single_core(organization=FUZZ_ORG, timings=timings)
    cfg = cfg.with_refresh_mode(mode)
    if mode is RefreshMode.DARP:
        cfg = cfg.with_refresh_opts(postpone_max=draw(st.sampled_from([0, 2, 8])))
    elif mode is RefreshMode.SARP:
        # must divide FUZZ_ORG.rows so subarrays tile the bank exactly
        cfg = cfg.with_refresh_opts(
            subarrays_per_bank=draw(st.sampled_from([1, 2, 4, 8]))
        )
    elif mode is RefreshMode.RAIDR:
        cfg = cfg.with_refresh_opts(
            raidr_window_ticks=draw(st.sampled_from([4, 8, 16])),
            raidr_bins=draw(st.sampled_from(_RAIDR_BIN_MIXES)),
        )
    if rop_on:
        cfg = cfg.with_rop(
            sram_lines=draw(st.sampled_from([4, 16, 64])),
            training_refreshes=draw(st.integers(1, 3)),
            probabilistic=draw(st.booleans()),
            drain_before_refresh=draw(st.booleans()),
            adaptive_depth=draw(st.booleans()),
            bus_pressure_limit=draw(st.sampled_from([0.0, 0.45, 1.0])),
        )
    return cfg


@st.composite
def config_and_traces(draw, *, rop: bool | None = None):
    """A config plus one trace per core (1, 2 or 4 cores on matching ranks)."""
    cfg = draw(fuzz_configs(rop=rop))
    n_cores = draw(st.sampled_from([1, 1, 2, 4]))
    if n_cores > 1:
        from dataclasses import replace

        cfg = replace(
            cfg,
            organization=replace(cfg.organization, ranks=n_cores),
            address_map=AddressMapScheme.RANK_PARTITIONED,
        )
    traces = [draw(memory_traces()) for _ in range(n_cores)]
    if all(len(t) == 0 for t in traces):
        traces[0] = draw(uniform_traces(max_len=20))
    return cfg, traces
