"""Independent analytical golden models for the ROP simulator.

Each model is a small, closed-form (or replay-based) reimplementation of
one checkable sub-system, deliberately written against the *specification*
(the paper's equations and the JEDEC timing rules) rather than sharing
code with the simulator:

* **λ/β** — closed-form conditionals from the profiler's frozen (B, A)
  category counts (:func:`golden_lambda_beta`);
* **Eq. 3** — SRAM budget partitioning across banks and the f1:f2:f3
  intra-bank split (:func:`golden_bank_budgets`,
  :func:`golden_intra_bank_shares`), plus event-level bounds on every
  ``PREFETCH_PLAN`` / ``PREFETCH_FILL``;
* **refresh scheduling** — every tREFI grid tick accounted for, every
  lock exactly tRFC long, at most ``postpone_max`` postponed, and no
  data burst inside a lock window;
* **DDR timing legality** — tRCD / tRP (via tRC) / tCAS / tCCD / tRRD /
  tFAW / tWTR and data-bus exclusivity, replayed online over every
  committed access plan (:class:`TimingOracle`);
* **SRAM reference model** — a fully-associative, capacity-bounded line
  set mirrored from the buffer's state-change tap (:class:`SramOracle`).

A :class:`ValidationSession` owns one of each, attaches them to a
:class:`~repro.dram.memory_system.MemorySystem` via
:meth:`ValidationSession.instrument`, and turns a finished
:class:`~repro.cpu.multicore.MulticoreResult` plus the collected trace
events into a list of structured :class:`~repro.validation.mismatch.Mismatch`
records.

Deliberate model bugs can be seeded through ``REPRO_FAULTS`` failpoints
(``{"golden:<check>": <skew>}`` — see
:func:`repro.harness.faults.golden_skew`); the skew shifts the *golden*
side so the differential gate must flag the disagreement — the
self-test behind the ``repro validate`` acceptance criterion.
"""

from __future__ import annotations

import bisect
from collections import deque

import numpy as np

from ..config import RefreshMode, SystemConfig
from ..core.prediction_table import FILL_UP_CONFIDENCE
from ..dram.refresh import RefreshManager
from ..telemetry import Category, Kind, TraceSink
from .mismatch import Mismatch, cap_mismatches

__all__ = [
    "golden_lambda_beta",
    "golden_bank_budgets",
    "golden_intra_bank_shares",
    "TimingOracle",
    "SramOracle",
    "ValidationSession",
    "validate_traces",
]


def _skew(check: str) -> float:
    """Armed golden-model skew for ``check`` (0 when no failpoint is set)."""
    from ..harness.faults import golden_skew

    value = golden_skew(check)
    return float(value) if value is not None else 0.0


# ------------------------------------------------------------ closed forms


def golden_lambda_beta(counts: tuple[int, int, int, int]) -> tuple[float, float]:
    """λ = P{A>0 | B>0} and β = P{A=0 | B=0} from the four category counts.

    ``counts`` is ``(E1, b_pos_a_zero, b_zero_a_pos, E2)`` — the order of
    :meth:`repro.core.profiler.CategoryCounts.as_tuple`. Undefined
    conditionals default to 1.0, matching the profiler's optimistic
    convention.
    """
    e1, b_pos_a_zero, b_zero_a_pos, e2 = counts
    b_pos = e1 + b_pos_a_zero
    b_zero = b_zero_a_pos + e2
    lam = e1 / b_pos if b_pos else 1.0
    beta = e2 / b_zero if b_zero else 1.0
    return lam, beta


def golden_bank_budgets(weights: list[int], capacity: int) -> list[int]:
    """Eq. 3: bank *i* gets ``⌊weight_i / Σweights × capacity⌋`` SRAM lines."""
    total = sum(weights)
    if total == 0:
        return [0] * len(weights)
    return [(w * capacity) // total for w in weights]


def golden_intra_bank_shares(freqs: tuple[int, int, int], budget: int) -> list[int]:
    """Eq. 3 intra-bank split of ``budget`` across the f1:f2:f3 patterns.

    Weak patterns (frequency below :data:`FILL_UP_CONFIDENCE`) are capped
    at ``f × FILL_UP_CONFIDENCE`` projected lines; a confident strongest
    pattern absorbs the integer-division remainder.
    """
    w = sum(freqs)
    if w == 0 or budget <= 0:
        return [0, 0, 0]
    shares = [
        (f * budget) // w
        if f >= FILL_UP_CONFIDENCE
        else min((f * budget) // w, f * FILL_UP_CONFIDENCE)
        for f in freqs
    ]
    strongest = max(range(3), key=lambda k: freqs[k])
    remainder = budget - sum(shares)
    if remainder > 0 and freqs[strongest] >= FILL_UP_CONFIDENCE:
        shares[strongest] += remainder
    return shares


# ------------------------------------------------------------ DDR timing


class TimingOracle:
    """Online DDR timing-legality replay over committed access plans.

    Attached as :attr:`MemoryController.issue_tap`; sees every committed
    :class:`~repro.dram.bank.AccessPlan` (demand *and* prefetch fetches)
    in commit order and re-derives the JEDEC constraints from its own
    per-bank/per-rank shadow state — none of the simulator's bank or rank
    objects are consulted.
    """

    def __init__(self, config: SystemConfig) -> None:
        t = config.effective_timings()
        self.t = t
        #: read CAS latency the golden side expects (failpoint-skewable)
        self.golden_cl = t.cl + int(_skew("ddr-timing"))
        self._last_col: dict[tuple[int, int, int], int] = {}
        self._last_bank_act: dict[tuple[int, int, int], int] = {}
        self._last_rank_act: dict[tuple[int, int], int] = {}
        self._act_window: dict[tuple[int, int], deque[int]] = {}
        self._wtr_until: dict[tuple[int, int], int] = {}
        self._bus_free: dict[int, int] = {}
        #: every committed data burst ``(ch, rank, bank, start, end, row)``
        #: — replayed post-hoc against the refresh lock windows (the row
        #: locates the burst's subarray for SARP exclusion)
        self.bursts: list[tuple[int, int, int, int, int, int]] = []
        self.mismatches: list[Mismatch] = []
        self.checked = 0

    def on_issue(self, coord, plan, is_write: bool) -> None:
        """Check one committed plan against the golden timing rules."""
        t = self.t
        ch, rk, bank = coord.channel, coord.rank, coord.bank
        key = (ch, rk)
        bkey = (ch, rk, bank)
        self.checked += 1

        def bad(rule: str, expected, actual) -> None:
            self.mismatches.append(
                Mismatch(
                    check="ddr-timing",
                    site=f"ch{ch}.rank{rk}.bank{bank}",
                    expected=expected,
                    actual=actual,
                    cycle=plan.col_cycle,
                    detail=rule,
                )
            )

        cas = t.cwl if is_write else self.golden_cl
        if plan.data_start != plan.col_cycle + cas:
            bad("tCAS: data_start == col + CAS", plan.col_cycle + cas, plan.data_start)
        if plan.data_end != plan.data_start + t.burst:
            bad("burst: data_end == data_start + BL", plan.data_start + t.burst, plan.data_end)
        last_col = self._last_col.get(bkey)
        if last_col is not None and plan.col_cycle < last_col + t.ccd:
            bad("tCCD: column-command spacing", f">= {last_col + t.ccd}", plan.col_cycle)
        self._last_col[bkey] = plan.col_cycle
        if plan.act_cycle >= 0:
            act = plan.act_cycle
            if plan.col_cycle < act + t.rcd:
                bad("tRCD: ACT-to-column delay", f">= {act + t.rcd}", plan.col_cycle)
            prev_bank = self._last_bank_act.get(bkey)
            if prev_bank is not None and act < prev_bank + t.rc:
                bad("tRC: same-bank ACT-to-ACT", f">= {prev_bank + t.rc}", act)
            prev_rank = self._last_rank_act.get(key)
            if prev_rank is not None and act < prev_rank + t.rrd:
                bad("tRRD: cross-bank ACT-to-ACT", f">= {prev_rank + t.rrd}", act)
            window = self._act_window.setdefault(key, deque(maxlen=4))
            if len(window) == 4 and act < window[0] + t.faw:
                bad("tFAW: four-activate window", f">= {window[0] + t.faw}", act)
            window.append(act)
            self._last_bank_act[bkey] = act
            self._last_rank_act[key] = act
        if is_write:
            self._wtr_until[key] = max(
                self._wtr_until.get(key, 0), plan.col_cycle + t.cwl + t.burst + t.wtr
            )
        else:
            wtr = self._wtr_until.get(key, 0)
            if plan.col_cycle < wtr:
                bad("tWTR: write-to-read turnaround", f">= {wtr}", plan.col_cycle)
        bus = self._bus_free.get(ch, 0)
        if plan.data_start < bus:
            bad("bus: one burst at a time per channel", f">= {bus}", plan.data_start)
        self._bus_free[ch] = plan.data_end
        self.bursts.append((ch, rk, bank, plan.data_start, plan.data_end, coord.row))


# ------------------------------------------------------------ SRAM model


class SramOracle:
    """Fully-associative reference model of the ROP SRAM buffer.

    Mirrors every buffer state change through :attr:`SramBuffer.tap`
    (``fill`` / ``hit`` / ``invalidate`` / ``flush``) into an independent
    capacity-bounded line set, recomputing the dedup-and-truncate fill
    semantics and re-counting fills/hits/invalidations from scratch.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._lines: set[int] = set()
        self.fills = 0
        self.hits = 0
        self.invalidations = 0
        self.mismatches: list[Mismatch] = []

    def on_event(self, op: str, cycle: int, *payload) -> None:
        if op == "fill":
            owner, raw, stored = payload
            golden: set[int] = set()
            for line in raw:
                if len(golden) >= self.capacity:
                    break
                golden.add(line)
            if len(golden) != stored:
                self.mismatches.append(
                    Mismatch(
                        check="sram-model",
                        site=f"ch{owner[0]}.rank{owner[1]}",
                        expected=len(golden),
                        actual=stored,
                        cycle=cycle,
                        detail=f"fill of {len(raw)} requested lines (dedup+capacity)",
                    )
                )
            self._lines = golden
            self.fills += len(golden)
        elif op == "hit":
            (line,) = payload
            if line not in self._lines:
                self.mismatches.append(
                    Mismatch(
                        check="sram-model",
                        site="buffer",
                        expected="line resident in reference model",
                        actual=f"hit on absent line {line}",
                        cycle=cycle,
                        detail="consume",
                    )
                )
            self.hits += 1
        elif op == "invalidate":
            (line,) = payload
            if line not in self._lines:
                self.mismatches.append(
                    Mismatch(
                        check="sram-model",
                        site="buffer",
                        expected="line resident in reference model",
                        actual=f"invalidate of absent line {line}",
                        cycle=cycle,
                        detail="invalidate",
                    )
                )
            self._lines.discard(line)
            self.invalidations += 1
        elif op == "flush":
            self._lines.clear()

    def finish(self, rop_summary: dict | None) -> list[Mismatch]:
        """Compare re-counted totals against the engine's summary."""
        if rop_summary is None:
            return []
        skew = int(_skew("sram-model"))
        ms: list[Mismatch] = []
        for name, golden in (
            ("buffer_fills", self.fills),
            ("buffer_hits", self.hits + skew),
            ("buffer_invalidations", self.invalidations),
        ):
            actual = rop_summary.get(name)
            if actual != golden:
                ms.append(
                    Mismatch(
                        check="sram-model",
                        site=name,
                        expected=golden,
                        actual=actual,
                        detail="reference-model recount vs engine summary",
                    )
                )
        return ms


# ------------------------------------------------------------ the session


class ValidationSession:
    """One validated run: sink + oracles + post-hoc golden checks.

    Usage::

        session = ValidationSession(config)
        result = run_cores(traces, config, sink=session.sink,
                           instrument=session.instrument)
        mismatches = session.finish(result)
    """

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.t = config.effective_timings()
        #: all-category grow-policy sink: the golden checks must see every
        #: event, so wrap/drop overflow policies are not acceptable here
        self.sink = TraceSink(capacity=1 << 14, policy="grow")
        self.timing = TimingOracle(config)
        self.sram = SramOracle(config.rop.sram_lines) if config.rop.enabled else None
        self._memory = None

    def instrument(self, memory) -> None:
        """Attach the oracles' taps (pass as ``run_cores(instrument=...)``)."""
        self._memory = memory
        memory.controller.issue_tap = self.timing.on_issue
        if memory.rop is not None and self.sram is not None:
            memory.rop.buffer.tap = self.sram.on_event

    def finish(self, result) -> list[Mismatch]:
        """Run every post-hoc check; returns all collected mismatches."""
        snap = self.sink.snapshot()
        windows = self._refresh_windows(snap)
        out: list[Mismatch] = []
        out += cap_mismatches(self.timing.mismatches, "ddr-timing")
        out += self._check_refresh_schedule(result, windows, snap)
        out += self._check_lock_exclusion(windows)
        mode = self.config.refresh.mode
        if mode is RefreshMode.DARP:
            out += self._check_darp_schedule(result, windows, snap)
        elif mode is RefreshMode.RAIDR:
            out += self._check_raidr_bins(result, windows, snap)
        out += self._check_counters(result, snap)
        if self.config.rop.enabled:
            out += self._check_lambda_beta(result)
            out += self._check_eq3_events(snap)
            if self.sram is not None:
                out += cap_mismatches(list(self.sram.mismatches), "sram-model")
                out += self.sram.finish(result.rop_summary)
        return out

    # -- individual checks --------------------------------------------------

    def _refresh_manager(self) -> RefreshManager:
        """The live refresh manager, or a fresh replay twin of it."""
        if self._memory is not None:
            return self._memory.controller.refresh_mgr
        return RefreshManager(self.config.refresh, self.t, self.config.organization)

    def _last_arrivals(self, snap: dict) -> dict[tuple[int, int], int]:
        """Per-rank demand horizon: the event loop is provably live (ticking
        the refresh grid) until the last request arrival on that rank."""
        arr = (snap["cat"] == int(Category.REQUEST)) & (
            (snap["kind"] == int(Kind.READ_ARRIVAL))
            | (snap["kind"] == int(Kind.WRITE_ARRIVAL))
        )
        last: dict[tuple[int, int], int] = {}
        for ach, ark, acy in zip(
            snap["channel"][arr], snap["rank"][arr], snap["cycle"][arr]
        ):
            key = (int(ach), int(ark))
            last[key] = max(last.get(key, 0), int(acy))
        return last

    def _check_darp_schedule(self, result, windows, snap) -> list[Mismatch]:
        """DARP per-bank debt conservation against the round-robin accrual.

        The policy accrues one owed refresh per grid tick to the
        round-robin due bank (tick ``j`` → bank ``j mod nbanks``); every
        executed window repays one. So per bank: executions can never
        exceed end-of-run accruals, and can lag live accruals (ticks
        before the last demand arrival) by at most the postpone budget —
        out-of-order, piggybacked or not.
        """
        skew = int(_skew("darp-schedule"))
        nbanks = self.config.organization.banks
        budget = self.config.refresh.postpone_max
        mgr = self._refresh_manager()
        last_arrival = self._last_arrivals(snap)

        def accrued(ticks: int, bank: int) -> int:
            return max(0, (ticks - bank + nbanks - 1) // nbanks)

        ms: list[Mismatch] = []
        for (ch, rk), ws in sorted(windows.items()):
            executed = [0] * nbanks
            for _s, _e, bank in ws:
                if 0 <= bank < nbanks:
                    executed[bank] += 1
            ticks_end = mgr.grid_ticks(ch, rk, int(result.stats.end_cycle))
            horizon = last_arrival.get((ch, rk))
            ticks_live = mgr.grid_ticks(ch, rk, horizon) if horizon is not None else 0
            for bank in range(nbanks):
                upper = accrued(ticks_end, bank) + 2 - skew
                floor = accrued(ticks_live, bank) - budget - 1 + skew
                if executed[bank] > upper:
                    ms.append(
                        Mismatch(
                            check="darp-schedule",
                            site=f"ch{ch}.rank{rk}.bank{bank}",
                            expected=f"<= {upper} (round-robin accruals)",
                            actual=executed[bank],
                            detail="more per-bank refreshes than accrued debt",
                        )
                    )
                if executed[bank] < floor:
                    ms.append(
                        Mismatch(
                            check="darp-schedule",
                            site=f"ch{ch}.rank{rk}.bank{bank}",
                            expected=f">= {floor} (accruals minus postpone budget)",
                            actual=executed[bank],
                            detail="per-bank refresh starvation beyond DARP budget",
                        )
                    )
        return cap_mismatches(ms, "darp-schedule")

    def _check_raidr_bins(self, result, windows, snap) -> list[Mismatch]:
        """RAIDR bin decimation replayed closed-form from the config.

        The fire/skip decision is a pure function of the tick index
        (64 ms slots every window, 128 ms slots every other, 256 ms every
        fourth), so the executed-window count per rank must match the
        replayed count over the grid ticks the run provably processed.
        """
        skew = int(_skew("raidr-bins"))
        mgr = self._refresh_manager()
        fires = mgr.policy.fires
        last_arrival = self._last_arrivals(snap)

        def fired(ticks: int) -> int:
            return sum(1 for i in range(max(0, ticks)) if fires(i))

        ms: list[Mismatch] = []
        for (ch, rk), ws in sorted(windows.items()):
            site = f"ch{ch}.rank{rk}"
            ticks_end = mgr.grid_ticks(ch, rk, int(result.stats.end_cycle))
            upper = fired(ticks_end + 1) + 1 - skew
            if len(ws) > upper:
                ms.append(
                    Mismatch(
                        check="raidr-bins",
                        site=site,
                        expected=f"<= {upper} (binned grid replay)",
                        actual=len(ws),
                        detail="more refreshes than the retention bins allow",
                    )
                )
            horizon = last_arrival.get((ch, rk))
            if horizon is not None:
                floor = fired(mgr.grid_ticks(ch, rk, horizon)) - 1 + skew
                if len(ws) < floor:
                    ms.append(
                        Mismatch(
                            check="raidr-bins",
                            site=site,
                            expected=f">= {floor} (binned grid replay)",
                            actual=len(ws),
                            detail="retention bins under-refreshed",
                        )
                    )
        return cap_mismatches(ms, "raidr-bins")

    def _refresh_windows(
        self, snap: dict
    ) -> dict[tuple[int, int], list[tuple[int, int, int]]]:
        sel = (snap["cat"] == int(Category.REFRESH)) & (
            snap["kind"] == int(Kind.REFRESH_WINDOW)
        )
        windows: dict[tuple[int, int], list[tuple[int, int, int]]] = {}
        for ch, rk, s, e, b in zip(
            snap["channel"][sel],
            snap["rank"][sel],
            snap["cycle"][sel],
            snap["a"][sel],
            snap["b"][sel],
        ):
            windows.setdefault((int(ch), int(rk)), []).append((int(s), int(e), int(b)))
        return windows

    def _check_refresh_schedule(self, result, windows, snap) -> list[Mismatch]:
        mode = self.config.refresh.mode
        skew = int(_skew("refresh-schedule"))
        golden_rfc = self.t.rfc + skew
        ms: list[Mismatch] = []
        if mode is RefreshMode.NONE:
            n = sum(len(ws) for ws in windows.values())
            if n or result.stats.refreshes:
                ms.append(
                    Mismatch(
                        check="refresh-schedule",
                        site="all",
                        expected=0,
                        actual=max(n, result.stats.refreshes),
                        detail="refreshes in NONE mode",
                    )
                )
            return ms
        pausing = mode is RefreshMode.PAUSING
        mgr = self._refresh_manager()
        period = mgr.period
        elastic = mode is RefreshMode.ELASTIC
        # DARP postpones per bank and RAIDR decimates the grid on purpose:
        # their starvation/adjacency shapes are policy-specific and covered
        # by the dedicated darp-schedule / raidr-bins models below — only
        # the generic upper bound and lock-shape rules apply here
        skip_floor = mode in (RefreshMode.DARP, RefreshMode.RAIDR)
        count_slack = self.config.refresh.postpone_max + 2 if elastic else 2
        gap_bound = (self.config.refresh.postpone_max + 2) * period if elastic else 2 * period
        last_arrival = self._last_arrivals(snap)
        for (ch, rk), ws in sorted(windows.items()):
            site = f"ch{ch}.rank{rk}"
            # every lock is exactly tRFC long (PAUSING splits it into
            # segments, each no longer than the remaining tRFC)
            for start, end, _bank in ws:
                length = end - start
                if pausing:
                    if not 0 < length <= golden_rfc:
                        ms.append(
                            Mismatch(
                                check="refresh-schedule",
                                site=site,
                                expected=f"segment length in (0, {golden_rfc}]",
                                actual=length,
                                cycle=start,
                                detail="PAUSING segment bound",
                            )
                        )
                elif length != golden_rfc:
                    ms.append(
                        Mismatch(
                            check="refresh-schedule",
                            site=site,
                            expected=golden_rfc,
                            actual=length,
                            cycle=start,
                            detail="lock length == tRFC",
                        )
                    )
            # same-scope windows must not overlap (per-bank locks only
            # exclude within their own bank)
            by_bank: dict[int, list[tuple[int, int]]] = {}
            for start, end, bank in ws:
                by_bank.setdefault(bank, []).append((start, end))
            for bank, group in by_bank.items():
                group.sort()
                for (s1, e1), (s2, e2) in zip(group, group[1:]):
                    if s2 < e1:
                        ms.append(
                            Mismatch(
                                check="refresh-schedule",
                                site=site if bank < 0 else f"{site}.bank{bank}",
                                expected=f"next lock >= {e1}",
                                actual=f"[{s2},{e2})",
                                cycle=s2,
                                detail="overlapping refresh locks",
                            )
                        )
            if pausing:
                continue  # segments break the one-window-per-tick accounting
            # executed-refresh count vs the closed-form tREFI grid.  The
            # bound is asymmetric: ``end_cycle`` can run several periods
            # past the last processed grid tick (the event loop stops
            # housekeeping once demand drains, while a quiesce- or
            # prefetch-delayed final refresh stretches the run), so the
            # end-of-run grid is only an *upper* bound on executions.
            ticks = mgr.grid_ticks(ch, rk, int(result.stats.end_cycle))
            if len(ws) > ticks + count_slack:
                ms.append(
                    Mismatch(
                        check="refresh-schedule",
                        site=site,
                        expected=f"<= {ticks} + {count_slack} (tREFI grid)",
                        actual=len(ws),
                        detail="more executed refreshes than golden grid ticks",
                    )
                )
            # the lower bound instead uses the demand horizon: every grid
            # tick before the last arrival provably fired, and each fired
            # tick executes (or, if elastic, postpones at most
            # ``postpone_max`` times before executing back-to-back)
            horizon = last_arrival.get((ch, rk))
            if horizon is not None and not skip_floor:
                live = mgr.grid_ticks(ch, rk, horizon)
                floor = live - (self.config.refresh.postpone_max if elastic else 0) - 1
                if len(ws) < floor:
                    ms.append(
                        Mismatch(
                            check="refresh-schedule",
                            site=site,
                            expected=f">= {floor} (grid ticks before last arrival)",
                            actual=len(ws),
                            detail="refresh starvation vs golden grid",
                        )
                    )
            # no silent starvation: consecutive starts stay within the
            # JEDEC postponement allowance — unless the late start is
            # *activity-pinned*: ``start_refresh`` begins at the rank's
            # quiesce point, so a refresh that waited out queued demand
            # legitimately starts right as the last burst's row cycle
            # closes.  Idle-period skips get no such excuse, and
            # systematic starvation still trips the grid-count check.
            quiesce_lag = (
                max(
                    self.t.ras + self.t.rp - self.t.rcd - self.t.cl - self.t.burst,
                    self.t.wr + self.t.rp,
                )
                + 1
            )
            rank_burst_ends = sorted(
                de
                for bch, brk, _bank, _ds, de, _row in self.timing.bursts
                if (bch, brk) == (ch, rk)
            )

            def pinned(start: int) -> bool:
                i = bisect.bisect_right(rank_burst_ends, start) - 1
                return i >= 0 and rank_burst_ends[i] >= start - quiesce_lag

            # PER_BANK interleaves N independent per-bank REFpb grids
            # (each bank refreshed every period × banks): one bank's
            # legitimately pinned (demand-delayed) refresh leaves a hole
            # between *other* banks' on-time starts at the rank level, so
            # the adjacency check must follow each bank's own series —
            # found by trace fuzzing, like the two PR-5 over-strict rules.
            if skip_floor:
                series = []  # DARP/RAIDR gaps are checked by their own models
            elif mode in (RefreshMode.PER_BANK, RefreshMode.SARP):
                # SARP windows carry the encoded (bank*S + sub) key, so each
                # series is one subarray's own REFpb grid: period × banks × S
                by_start_bank: dict[int, list[int]] = {}
                for s, _, bank in ws:
                    by_start_bank.setdefault(bank, []).append(s)
                scope = self.config.organization.banks
                if mode is RefreshMode.SARP:
                    scope *= max(1, self.config.refresh.subarrays_per_bank)
                series = [
                    (sorted(g), gap_bound * scope)
                    for g in by_start_bank.values()
                ]
            else:
                series = [(sorted(s for s, _, _ in ws), gap_bound)]
            for starts, bound in series:
                for a, b in zip(starts, starts[1:]):
                    if b - a > bound and not pinned(b):
                        ms.append(
                            Mismatch(
                                check="refresh-schedule",
                                site=site,
                                expected=f"gap <= {bound}",
                                actual=b - a,
                                cycle=a,
                                detail="consecutive refresh starts",
                            )
                        )
        return cap_mismatches(ms, "refresh-schedule")

    def _check_lock_exclusion(self, windows) -> list[Mismatch]:
        """No committed data burst may land inside its bank's lock window.

        SARP windows lock a ``(bank, subarray)`` pair (the telemetry ``b``
        field carries ``bank*S + sub``): a burst only violates the lock
        when its *row's* subarray matches — bursts to the bank's other
        subarrays inside the window are exactly the parallelism SARP
        exists to provide, and are reported under the dedicated
        ``sarp-exclusion`` check when they go wrong.
        """
        sarp = self.config.refresh.mode is RefreshMode.SARP
        subarrays = max(1, self.config.refresh.subarrays_per_bank)
        sub_rows = max(1, self.config.organization.rows // subarrays)
        # sarp-exclusion failpoint: pretend every subarray lock freezes the
        # whole bank, so legal other-subarray bursts trip the check
        sarp_all_subs = sarp and _skew("sarp-exclusion") != 0
        rank_locks: dict[tuple[int, int], list[tuple[int, int]]] = {}
        bank_locks: dict[tuple[int, int, int], list[tuple[int, int]]] = {}
        sub_locks: dict[tuple[int, int, int, int], list[tuple[int, int]]] = {}
        for (ch, rk), ws in windows.items():
            for s, e, b in ws:
                if b < 0:
                    rank_locks.setdefault((ch, rk), []).append((s, e))
                elif sarp:
                    bank, sub = divmod(b, subarrays)
                    if sarp_all_subs:
                        bank_locks.setdefault((ch, rk, bank), []).append((s, e))
                    else:
                        sub_locks.setdefault((ch, rk, bank, sub), []).append((s, e))
                else:
                    bank_locks.setdefault((ch, rk, b), []).append((s, e))
        for table in (rank_locks, bank_locks, sub_locks):
            for intervals in table.values():
                intervals.sort()

        def overlapping(intervals, ds: int, de: int):
            if not intervals:
                return None
            idx = bisect.bisect_left(intervals, (de, de))
            if idx > 0:
                s, e = intervals[idx - 1]
                if s < de and e > ds:
                    return (s, e)
            return None

        ms: list[Mismatch] = []
        for ch, rk, bank, ds, de, row in self.timing.bursts:
            hit = overlapping(rank_locks.get((ch, rk), ()), ds, de) or overlapping(
                bank_locks.get((ch, rk, bank), ()), ds, de
            )
            check = "refresh-schedule"
            if hit is None and sarp:
                hit = overlapping(
                    sub_locks.get((ch, rk, bank, row // sub_rows), ()), ds, de
                )
                check = "sarp-exclusion"
            elif sarp:
                check = "sarp-exclusion"
            if hit:
                ms.append(
                    Mismatch(
                        check=check,
                        site=f"ch{ch}.rank{rk}.bank{bank}",
                        expected="no data burst inside a refresh lock",
                        actual=f"burst [{ds},{de}) in lock [{hit[0]},{hit[1]})",
                        cycle=ds,
                        detail="subarray lock exclusion" if sarp else "lock exclusion",
                    )
                )
        return cap_mismatches(ms, "sarp-exclusion" if sarp else "refresh-schedule")

    def _check_counters(self, result, snap: dict) -> list[Mismatch]:
        """Scalar stats must equal independent recounts of the event stream."""
        skew = int(_skew("counters"))
        stats = result.stats
        kinds = snap["kind"]

        def count(kind: Kind) -> int:
            return int(np.count_nonzero(kinds == int(kind)))

        pairs = [
            ("reads", count(Kind.READ_ARRIVAL) + skew, stats.reads),
            ("writes", count(Kind.WRITE_ARRIVAL), stats.writes),
            ("reads_completed", count(Kind.COMPLETE), stats.reads_completed),
            (
                "sram_hits",
                count(Kind.SRAM_SERVICE),
                stats.sram_hits_in_lock + stats.sram_hits_out_of_lock,
            ),
            ("reads == reads_completed", stats.reads + skew, stats.reads_completed),
        ]
        if self.config.refresh.mode is not RefreshMode.PAUSING:
            # PAUSING emits one window per segment but counts one refresh
            pairs.append(("refreshes", count(Kind.REFRESH_WINDOW), stats.refreshes))
        ms: list[Mismatch] = []
        for name, golden, actual in pairs:
            if golden != actual:
                ms.append(
                    Mismatch(
                        check="counters",
                        site=name,
                        expected=golden,
                        actual=actual,
                        detail="event-stream recount vs scalar stat",
                    )
                )
        return ms

    def _check_lambda_beta(self, result) -> list[Mismatch]:
        """Frozen λ/β must equal the closed form over the frozen counts."""
        summary = result.rop_summary
        if summary is None:
            return []
        skew = _skew("lambda-beta")
        counts = summary.get("category_counts", {})
        lam_beta = summary.get("lam_beta", {})
        ms: list[Mismatch] = []
        for site, tup in sorted(counts.items()):
            pair = lam_beta.get(site)
            if (tup is None) != (pair is None):
                ms.append(
                    Mismatch(
                        check="lambda-beta",
                        site=site,
                        expected="counts and λ/β frozen together",
                        actual=f"counts={tup}, lam_beta={pair}",
                        detail="freeze consistency",
                    )
                )
                continue
            if tup is None:
                continue
            glam, gbeta = golden_lambda_beta(tuple(tup))
            glam += skew
            lam, beta = pair
            if abs(glam - lam) > 1e-9:
                ms.append(
                    Mismatch(
                        check="lambda-beta",
                        site=site,
                        expected=f"λ={glam:.6f}",
                        actual=f"λ={lam:.6f}",
                        detail=f"closed form over counts {tuple(tup)}",
                    )
                )
            if abs(gbeta - beta) > 1e-9:
                ms.append(
                    Mismatch(
                        check="lambda-beta",
                        site=site,
                        expected=f"β={gbeta:.6f}",
                        actual=f"β={beta:.6f}",
                        detail=f"closed form over counts {tuple(tup)}",
                    )
                )
        return ms

    def _check_eq3_events(self, snap: dict) -> list[Mismatch]:
        """Every prefetch plan/fill must respect the Eq. 3 SRAM budget."""
        cap = self.config.rop.sram_lines - int(_skew("eq3-budget"))
        ms: list[Mismatch] = []
        sel = snap["kind"] == int(Kind.PREFETCH_PLAN)
        for cycle, ch, rk, a in zip(
            snap["cycle"][sel], snap["channel"][sel], snap["rank"][sel], snap["a"][sel]
        ):
            if not 1 <= int(a) <= cap:
                ms.append(
                    Mismatch(
                        check="eq3-budget",
                        site=f"ch{int(ch)}.rank{int(rk)}",
                        expected=f"1..{cap} candidate lines",
                        actual=int(a),
                        cycle=int(cycle),
                        detail="PREFETCH_PLAN within SRAM budget",
                    )
                )
        sel = snap["kind"] == int(Kind.PREFETCH_FILL)
        for cycle, ch, rk, a, b in zip(
            snap["cycle"][sel],
            snap["channel"][sel],
            snap["rank"][sel],
            snap["a"][sel],
            snap["b"][sel],
        ):
            bound = min(int(b), cap)
            if not 0 <= int(a) <= bound:
                ms.append(
                    Mismatch(
                        check="eq3-budget",
                        site=f"ch{int(ch)}.rank{int(rk)}",
                        expected=f"0..{bound} stored lines",
                        actual=int(a),
                        cycle=int(cycle),
                        detail="PREFETCH_FILL within request and budget",
                    )
                )
        return cap_mismatches(ms, "eq3-budget")


def validate_traces(
    traces, config: SystemConfig, *, place: bool = True, max_cycles: int | None = None
):
    """Run ``traces`` under full golden-model validation.

    Returns ``(result, mismatches)`` — the fuzz suite's workhorse.
    """
    from ..cpu.multicore import run_cores

    session = ValidationSession(config)
    result = run_cores(
        traces,
        config,
        place=place,
        max_cycles=max_cycles,
        sink=session.sink,
        instrument=session.instrument,
    )
    return result, session.finish(result)
