"""Differential validation: golden models, fuzzing, and the corpus gate.

Three layers (see DESIGN.md §8):

* :mod:`repro.validation.golden` — independent analytical models of
  λ/β, the Eq. 3 SRAM budget, refresh scheduling, DDR timing legality
  and the SRAM buffer, checked against a live run's event stream;
* :mod:`repro.validation.fuzz` — Hypothesis strategies generating
  adversarial traces and configs (test-only; requires ``hypothesis``);
* :mod:`repro.validation.corpus` — the committed ``corpus.yaml`` of
  named runs with expected-stat tolerance bands, driven by the
  ``repro validate`` CLI subcommand and the CI ``validate`` job.

``repro.validation.fuzz`` is deliberately *not* imported here so the
validate gate works without the test-only ``hypothesis`` dependency.
"""

from .corpus import (
    DEFAULT_CORPUS,
    CorpusEntry,
    config_for,
    known_systems,
    load_corpus,
    run_entry,
    stat_value,
    system_config,
)
from .golden import (
    SramOracle,
    TimingOracle,
    ValidationSession,
    golden_bank_budgets,
    golden_intra_bank_shares,
    golden_lambda_beta,
    validate_traces,
)
from .mismatch import GoldenMismatchError, Mismatch, render_mismatch_table

__all__ = [
    "Mismatch",
    "GoldenMismatchError",
    "render_mismatch_table",
    "ValidationSession",
    "TimingOracle",
    "SramOracle",
    "validate_traces",
    "golden_lambda_beta",
    "golden_bank_budgets",
    "golden_intra_bank_shares",
    "CorpusEntry",
    "DEFAULT_CORPUS",
    "load_corpus",
    "config_for",
    "known_systems",
    "system_config",
    "run_entry",
    "stat_value",
]
