"""Committed validation corpus: named runs with expected-stat bands.

``corpus.yaml`` (next to this module) lists small, fast simulations —
workload, system flavor, instruction budget, seed — together with
tolerance bands on their headline statistics. ``repro validate`` runs
every entry under full golden-model validation and additionally checks
each banded statistic; any disagreement is rendered as a mismatch table
and fails the gate.

The bands are *tolerance* bands, not golden values: they are wide
enough to survive innocuous scheduling-order changes but tight enough
to catch a broken refresh schedule, a dead prefetcher, or an IPC
regression of more than a few percent. Regenerate them deliberately
(run the corpus, inspect, re-band) when a change legitimately moves the
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..config import RefreshMode, SystemConfig
from .golden import ValidationSession, _skew
from .mismatch import Mismatch

__all__ = [
    "DEFAULT_CORPUS",
    "CorpusEntry",
    "known_systems",
    "system_config",
    "load_corpus",
    "config_for",
    "run_entry",
    "stat_value",
]

#: the committed corpus shipped with the package
DEFAULT_CORPUS = Path(__file__).with_name("corpus.yaml")

#: system flavors an entry may name (kept deliberately coarse — corpus
#: entries exercise configurations, they do not define new ones)
_SYSTEMS = {
    "baseline": lambda: SystemConfig.single_core(),
    "norefresh": lambda: SystemConfig.single_core().with_refresh_mode(RefreshMode.NONE),
    "elastic": lambda: SystemConfig.single_core().with_refresh_mode(RefreshMode.ELASTIC),
    "per_bank": lambda: SystemConfig.single_core().with_refresh_mode(RefreshMode.PER_BANK),
    "fgr_2x": lambda: SystemConfig.single_core().with_refresh_mode(RefreshMode.FGR_2X),
    "pausing": lambda: SystemConfig.single_core().with_refresh_mode(RefreshMode.PAUSING),
    "rop": lambda: SystemConfig.single_core().with_rop(),
    "rop_elastic": lambda: (
        SystemConfig.single_core().with_refresh_mode(RefreshMode.ELASTIC).with_rop()
    ),
    # the refresh-policy zoo (ROADMAP item 2): Chang et al.'s DARP/SARP
    # and Liu et al.'s RAIDR, plus the ROP+DARP composition row.  RAIDR
    # uses a short bin window so the decimation shows inside a corpus run
    "darp": lambda: SystemConfig.single_core().with_refresh_mode(RefreshMode.DARP),
    "sarp": lambda: SystemConfig.single_core().with_refresh_mode(RefreshMode.SARP),
    "raidr": lambda: (
        SystemConfig.single_core()
        .with_refresh_mode(RefreshMode.RAIDR)
        .with_refresh_opts(raidr_window_ticks=8)
    ),
    "rop_darp": lambda: (
        SystemConfig.single_core().with_refresh_mode(RefreshMode.DARP).with_rop()
    ),
    # the paper's 4-core systems (Figs. 10-14): Baseline, Baseline-RP
    # (rank-partitioned address map), ROP, and a per-bank-refresh variant
    "quad_baseline": lambda: SystemConfig.quad_core(rank_partitioned=False),
    "quad_baseline_rp": lambda: SystemConfig.quad_core(rank_partitioned=True),
    "quad_rop": lambda: SystemConfig.quad_core(rank_partitioned=True).with_rop(),
    "quad_per_bank": lambda: (
        SystemConfig.quad_core(rank_partitioned=True).with_refresh_mode(
            RefreshMode.PER_BANK
        )
    ),
}


def known_systems() -> list[str]:
    """The system-flavor names corpus entries and service plans may use."""
    return sorted(_SYSTEMS)


def system_config(name: str) -> SystemConfig:
    """Materialize a named system flavor; raises ValueError when unknown.

    Shared vocabulary between the validation corpus and the service
    plane's plan-request codec (:mod:`repro.service.specs`) — one place
    defines what ``"rop"`` or ``"elastic"`` means.
    """
    try:
        return _SYSTEMS[name]()
    except KeyError:
        raise ValueError(
            f"unknown system {name!r}; known: {sorted(_SYSTEMS)}"
        ) from None


@dataclass(frozen=True)
class CorpusEntry:
    """One named validation run with expected-stat tolerance bands."""

    name: str
    workloads: tuple[str, ...]
    system: str = "baseline"
    instructions: int = 200_000
    seed: int = 1
    #: override for ROP training length (None = the flavor's default);
    #: corpus runs are short, so ROP entries train over few refreshes
    training_refreshes: int | None = None
    #: stat name → inclusive ``(lo, hi)`` band
    expect: dict = field(default_factory=dict)


def config_for(entry: CorpusEntry) -> SystemConfig:
    """Materialize the entry's :class:`SystemConfig`."""
    try:
        cfg = _SYSTEMS[entry.system]()
    except KeyError:
        raise ValueError(
            f"corpus entry {entry.name!r}: unknown system {entry.system!r}; "
            f"known: {sorted(_SYSTEMS)}"
        ) from None
    if entry.training_refreshes is not None:
        if not cfg.rop.enabled:
            raise ValueError(
                f"corpus entry {entry.name!r}: training_refreshes set "
                f"on non-ROP system {entry.system!r}"
            )
        cfg = cfg.with_rop(training_refreshes=entry.training_refreshes)
    return cfg


def load_corpus(path: str | Path | None = None) -> list[CorpusEntry]:
    """Parse a corpus YAML file into entries (validating the schema)."""
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - environment-dependent
        raise RuntimeError(
            "the validation corpus requires PyYAML (pip install pyyaml)"
        ) from exc
    path = Path(path) if path is not None else DEFAULT_CORPUS
    doc = yaml.safe_load(path.read_text())
    raw_entries = (doc or {}).get("entries")
    if not isinstance(raw_entries, list) or not raw_entries:
        raise ValueError(f"{path}: corpus must contain a non-empty 'entries' list")
    entries: list[CorpusEntry] = []
    for i, raw in enumerate(raw_entries):
        if not isinstance(raw, dict) or "name" not in raw or "workloads" not in raw:
            raise ValueError(f"{path}: entry #{i} needs at least 'name' and 'workloads'")
        expect = {}
        for stat, band in (raw.get("expect") or {}).items():
            if not (isinstance(band, list) and len(band) == 2 and band[0] <= band[1]):
                raise ValueError(
                    f"{path}: entry {raw['name']!r} stat {stat!r}: "
                    f"band must be [lo, hi], got {band!r}"
                )
            expect[str(stat)] = (float(band[0]), float(band[1]))
        entries.append(
            CorpusEntry(
                name=str(raw["name"]),
                workloads=tuple(str(w) for w in raw["workloads"]),
                system=str(raw.get("system", "baseline")),
                instructions=int(raw.get("instructions", 200_000)),
                seed=int(raw.get("seed", 1)),
                training_refreshes=(
                    int(raw["training_refreshes"])
                    if raw.get("training_refreshes") is not None
                    else None
                ),
                expect=expect,
            )
        )
    names = [e.name for e in entries]
    if len(set(names)) != len(names):
        raise ValueError(f"{path}: duplicate entry names")
    return entries


def stat_value(result, name: str) -> float:
    """Extract one banded statistic from a finished run."""
    if name == "ipc":
        return float(result.ipc)
    if name == "weighted_ipc":
        return float(sum(result.ipcs))
    if name == "sram_hits":
        return float(
            result.stats.sram_hits_in_lock + result.stats.sram_hits_out_of_lock
        )
    if name == "end_cycle":
        return float(result.stats.end_cycle)
    value = getattr(result.stats, name, None)
    if value is None:
        raise ValueError(f"unknown corpus statistic {name!r}")
    return float(value)


def run_entry(entry: CorpusEntry):
    """Run one entry under full validation.

    Returns ``(result, mismatches)`` where the mismatches include both
    golden-model disagreements and ``stat-band`` violations.
    """
    from ..cpu.multicore import run_cores
    from ..workloads import profile

    config = config_for(entry)
    traces = [
        profile(w).memory_trace(entry.instructions, config.llc, seed=entry.seed)
        for w in entry.workloads
    ]
    session = ValidationSession(config)
    result = run_cores(
        traces, config, sink=session.sink, instrument=session.instrument
    )
    mismatches = list(session.finish(result))
    shift = _skew("stat-band")
    for stat, (lo, hi) in sorted(entry.expect.items()):
        lo, hi = lo + shift, hi + shift
        value = stat_value(result, stat)
        if not lo <= value <= hi:
            mismatches.append(
                Mismatch(
                    check="stat-band",
                    site=f"{entry.name}.{stat}",
                    expected=f"[{lo:g}, {hi:g}]",
                    actual=round(value, 4),
                    detail="corpus tolerance band",
                )
            )
    return result, mismatches
