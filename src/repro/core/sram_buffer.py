"""The fully-associative SRAM prefetch buffer inside the memory controller.

The buffer holds whole cache lines prefetched for the *next* refresh; ranks
sharing the refresh circuit take turns using it, so each arming flushes the
previous contents (:meth:`SramBuffer.refill`). Demand writes to buffered
lines invalidate them — the DRAM write queue stays authoritative, so no
write-back path is needed.
"""

from __future__ import annotations

from typing import Iterable

from ..telemetry import NULL_SINK, Category, Kind

__all__ = ["SramBuffer"]


class SramBuffer:
    """Fixed-capacity, fully-associative line buffer."""

    __slots__ = (
        "capacity",
        "_lines",
        "owner",
        "fills",
        "hits",
        "invalidations",
        "sink",
        "_t_sram",
        "tap",
    )

    def __init__(self, capacity: int, sink=None) -> None:
        if capacity <= 0:
            raise ValueError(f"SRAM capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lines: set[int] = set()
        #: (channel, rank) the current contents were prefetched for
        self.owner: tuple[int, int] | None = None
        self.fills = 0
        self.hits = 0
        self.invalidations = 0
        #: validation tap: ``tap(op, cycle, *payload)`` mirrors every state
        #: change (``fill``/``hit``/``invalidate``/``flush``) into an
        #: external reference model (:mod:`repro.validation`); None = off
        self.tap = None
        self.set_sink(sink)

    def set_sink(self, sink) -> None:
        """Attach a telemetry sink (SRAM-category events)."""
        self.sink = sink if sink is not None else NULL_SINK
        self._t_sram = self.sink.wants(Category.SRAM)

    def __len__(self) -> int:
        return len(self._lines)

    @property
    def lines(self) -> set[int]:
        """The live line set (read-only by convention; hot-path membership
        tests borrow it so the scheduler sweep avoids a call per request)."""
        return self._lines

    def __contains__(self, line: int) -> bool:
        return line in self._lines

    def lookup(self, line: int) -> bool:
        """True if ``line`` is buffered (does not count a hit)."""
        return line in self._lines

    def consume(self, line: int, cycle: int = -1) -> bool:
        """Service a read: returns True and counts a hit if buffered."""
        if line in self._lines:
            self.hits += 1
            if self._t_sram:
                self.sink.emit(Category.SRAM, Kind.SRAM_HIT, cycle, a=line)
            if self.tap is not None:
                self.tap("hit", cycle, line)
            return True
        return False

    def refill(self, owner: tuple[int, int], lines: Iterable[int], cycle: int = -1) -> int:
        """Flush and load prefetched ``lines`` (truncated to capacity).

        Returns the number of lines actually stored.
        """
        lines = list(lines)
        self._lines.clear()
        for line in lines:
            if len(self._lines) >= self.capacity:
                break
            self._lines.add(line)
        self.owner = owner
        self.fills += len(self._lines)
        if self._t_sram:
            self.sink.emit(
                Category.SRAM,
                Kind.SRAM_FILL,
                cycle,
                owner[0],
                owner[1],
                a=len(self._lines),
            )
        if self.tap is not None:
            self.tap("fill", cycle, owner, tuple(lines), len(self._lines))
        return len(self._lines)

    def invalidate(self, line: int, cycle: int = -1) -> bool:
        """Drop ``line`` (a demand write made it stale). True if present."""
        if line in self._lines:
            self._lines.discard(line)
            self.invalidations += 1
            if self._t_sram:
                self.sink.emit(Category.SRAM, Kind.SRAM_INVALIDATE, cycle, a=line)
            if self.tap is not None:
                self.tap("invalidate", cycle, line)
            return True
        return False

    def flush(self) -> None:
        """Empty the buffer (profiling phases keep it powered off)."""
        self._lines.clear()
        self.owner = None
        if self.tap is not None:
            self.tap("flush", -1)
