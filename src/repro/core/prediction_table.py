"""Rank-scoped prediction table — the paper's VLDP variant (Section IV-C).

One table per rank, one entry per bank. Each entry tracks the last
accessed line offset within the bank and three delta patterns of orders
1, 2 and 3 with saturating frequency counters:

``(BankID, LastAddr, Delta1, f1, Delta2, f2, Delta3, f3)``

Matching semantics
------------------
Each order-``k`` pattern is a *cyclic matcher*: the stored tuple is the
last ``k`` deltas, and a phase pointer tracks where in the cycle the
stream currently is. An incoming delta that equals the expected element
advances the phase and increments ``f_k``; a mismatch re-anchors the tuple
to the most recent ``k`` deltas and resets ``f_k``.

The paper describes tumbling windows ("every two accesses generate a tuple
of two deltas"), but a literal tumbling implementation mis-phases its
projections for two of every three alignments of a period-3 pattern such
as (+1, +1, +6) — the projection would replay the rotation it happened to
capture instead of continuing the stream. The cyclic matcher recognizes
the same patterns, uses the same storage (204 bits per entry → 204 B for
an 8-bank rank), and projects with the correct phase. The tumbling
variant remains available for the fidelity ablation
(``BankEntry(tumbling=True)``).

When any counter would overflow its 8-bit field, all three are halved
(the paper notes overflow never occurred in their runs).

At prefetch time :meth:`BankEntry.project` extrapolates future offsets by
cyclically re-applying the pattern's deltas from ``LastAddr`` starting at
the current phase.
"""

from __future__ import annotations

from collections import deque

__all__ = ["BankEntry", "PredictionTable", "FREQ_CAP", "FILL_UP_CONFIDENCE"]

#: saturation point of the 8-bit frequency counters
FREQ_CAP = 255

#: minimum frequency of the strongest pattern before its projection may be
#: extended past the Eq.-3 shares (prevents amplifying one-off deltas)
FILL_UP_CONFIDENCE = 4


class _CyclicMatcher:
    """Order-``k`` cyclic delta pattern: tuple, phase, frequency."""

    __slots__ = ("k", "pattern", "phase", "freq")

    def __init__(self, k: int) -> None:
        self.k = k
        self.pattern: tuple[int, ...] | None = None
        self.phase = 0
        self.freq = 0

    def update(self, delta: int, history: deque[int]) -> None:
        if self.pattern is not None and delta == self.pattern[self.phase]:
            self.freq += 1
            self.phase = (self.phase + 1) % self.k
            return
        if len(history) >= self.k:
            # re-anchor on the most recent k deltas (oldest first); for a
            # period-k stream the next delta then equals pattern[0]
            self.pattern = tuple(list(history)[-self.k:])
            self.phase = 0
            self.freq = 0
        else:
            self.pattern = None
            self.phase = 0
            self.freq = 0

    def reset(self) -> None:
        self.pattern = None
        self.phase = 0
        self.freq = 0


class BankEntry:
    """Delta-pattern state for one bank of a rank."""

    __slots__ = ("bank_id", "last_addr", "_matchers", "_history", "tumbling", "_pending")

    def __init__(self, bank_id: int, *, tumbling: bool = False) -> None:
        self.bank_id = bank_id
        self.last_addr: int | None = None
        self._matchers = [_CyclicMatcher(k) for k in (1, 2, 3)]
        self._history: deque[int] = deque(maxlen=3)
        self.tumbling = tumbling
        #: tumbling-mode accumulation buffers for orders 2 and 3
        self._pending: dict[int, list[int]] = {2: [], 3: []}

    # -- field accessors matching the paper's entry layout -------------------------

    @property
    def d1(self) -> int | None:
        """Delta1 — the order-1 pattern (a single delta)."""
        p = self._matchers[0].pattern
        return p[0] if p else None

    @property
    def f1(self) -> int:
        """Frequency of the order-1 pattern."""
        return self._matchers[0].freq

    @property
    def d2(self) -> tuple[int, int] | None:
        """Delta2 — the order-2 pattern."""
        return self._matchers[1].pattern  # type: ignore[return-value]

    @property
    def f2(self) -> int:
        """Frequency of the order-2 pattern."""
        return self._matchers[1].freq

    @property
    def d3(self) -> tuple[int, int, int] | None:
        """Delta3 — the order-3 pattern."""
        return self._matchers[2].pattern  # type: ignore[return-value]

    @property
    def f3(self) -> int:
        """Frequency of the order-3 pattern."""
        return self._matchers[2].freq

    # -- updates ------------------------------------------------------------------

    def update(self, addr: int) -> None:
        """Record one access at line-offset ``addr`` within the bank."""
        if self.last_addr is None:
            self.last_addr = addr
            return
        delta = addr - self.last_addr
        self.last_addr = addr
        if delta == 0:
            return  # re-access of the same line carries no pattern info
        if self.tumbling:
            self._update_tumbling(delta)
        else:
            # history must include the current delta before matchers
            # re-anchor: an anchor of the last k deltas that *ends now* is
            # the rotation whose next element continues the stream
            self._history.append(delta)
            for m in self._matchers:
                m.update(delta, self._history)
        if any(m.freq >= FREQ_CAP for m in self._matchers):
            for m in self._matchers:
                m.freq //= 2

    def _update_tumbling(self, delta: int) -> None:
        """The paper's literal tumbling-window update (ablation mode)."""
        m1, m2, m3 = self._matchers
        if m1.pattern is not None and delta == m1.pattern[0]:
            m1.freq += 1
        else:
            m1.pattern = (delta,)
            m1.freq = 0
        for k, m in ((2, m2), (3, m3)):
            buf = self._pending[k]
            buf.append(delta)
            if len(buf) == k:
                tup = tuple(buf)
                buf.clear()
                if tup == m.pattern:
                    m.freq += 1
                else:
                    m.pattern = tup
                    m.phase = 0
                    m.freq = 0

    # -- queries ------------------------------------------------------------------

    @property
    def weight(self) -> int:
        """``f1 + f2 + f3`` — this bank's share weight in Eq. 3."""
        return sum(m.freq for m in self._matchers)

    def project(self, order: int, count: int, limit: int) -> list[int]:
        """Extrapolate ``count`` future offsets using the order-``order`` pattern.

        Projection starts at the matcher's current phase, so a period-k
        stream continues exactly where it left off. Offsets outside
        ``[0, limit)`` are dropped (the stream ran off the bank).
        """
        if order not in (1, 2, 3):
            raise ValueError(f"pattern order must be 1, 2 or 3, got {order}")
        if self.last_addr is None or count <= 0:
            return []
        m = self._matchers[order - 1]
        if not m.pattern:
            return []
        out: list[int] = []
        addr = self.last_addr
        i = m.phase
        while len(out) < count:
            addr += m.pattern[i % order]
            i += 1
            if not 0 <= addr < limit:
                break
            out.append(addr)
        return out

    def reset(self) -> None:
        """Forget all state (a new observational window begins)."""
        self.last_addr = None
        for m in self._matchers:
            m.reset()
        self._history.clear()
        self._pending[2].clear()
        self._pending[3].clear()


class PredictionTable:
    """One rank's prediction table: a :class:`BankEntry` per bank."""

    def __init__(self, banks: int, lines_per_bank: int, *, tumbling: bool = False) -> None:
        self.entries = [BankEntry(b, tumbling=tumbling) for b in range(banks)]
        self.lines_per_bank = lines_per_bank

    def update(self, bank: int, offset: int) -> None:
        """Record an access to ``bank`` at line-offset ``offset``."""
        self.entries[bank].update(offset)

    def total_weight(self) -> int:
        """Sum of all banks' ``f1+f2+f3`` (Eq. 3 denominator)."""
        return sum(e.weight for e in self.entries)

    def bank_budgets(self, capacity: int) -> list[int]:
        """Split the SRAM budget across banks proportionally to weight (Eq. 3)."""
        total = self.total_weight()
        if total == 0:
            return [0] * len(self.entries)
        return [(e.weight * capacity) // total for e in self.entries]

    def predict(self, capacity: int) -> list[tuple[int, int]]:
        """Predict up to ``capacity`` (bank, offset) pairs for the next refresh.

        Per Eq. 3, bank *i* receives ``weight_i / total_weight`` of the
        budget; within a bank the budget is split across the three patterns
        proportionally to ``f1 : f2 : f3``. The three projections of a
        regular stream largely coincide, so after deduplication the
        strongest pattern — if it has repeated at least
        :data:`FILL_UP_CONFIDENCE` times — is extended until the bank
        consumes its whole budget; weak patterns are never amplified.
        """
        picks: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for entry, budget in zip(self.entries, self.bank_budgets(capacity)):
            if budget <= 0:
                continue
            w = entry.weight
            freqs = (entry.f1, entry.f2, entry.f3)
            # trust proportional to evidence: below the confidence bar a
            # pattern that repeated f times projects at most
            # f × FILL_UP_CONFIDENCE lines, so one-off deltas cannot flood
            # the buffer; confident patterns get their full Eq.-3 share
            shares = [
                (f * budget) // w
                if f >= FILL_UP_CONFIDENCE
                else min((f * budget) // w, f * FILL_UP_CONFIDENCE)
                for f in freqs
            ]
            strongest = max(range(3), key=lambda k: freqs[k])
            remainder = budget - sum(shares)
            if remainder > 0 and freqs[strongest] >= FILL_UP_CONFIDENCE:
                shares[strongest] += remainder
            bank_picks: list[tuple[int, int]] = []
            for order, share in zip((1, 2, 3), shares):
                for off in entry.project(order, share, self.lines_per_bank):
                    key = (entry.bank_id, off)
                    if key not in seen:
                        seen.add(key)
                        bank_picks.append(key)
            deficit = budget - len(bank_picks)
            if deficit > 0 and freqs[strongest] >= FILL_UP_CONFIDENCE:
                for off in entry.project(
                    strongest + 1, budget + deficit, self.lines_per_bank
                ):
                    key = (entry.bank_id, off)
                    if key not in seen:
                        seen.add(key)
                        bank_picks.append(key)
                        if len(bank_picks) >= budget:
                            break
            picks.extend(bank_picks)
        return picks[:capacity]

    def reset(self) -> None:
        """Forget every bank's state."""
        for e in self.entries:
            e.reset()
