"""Prefetch decision and candidate generation (Sections IV-C and IV-D).

:class:`Prefetcher` combines the three inputs of the probabilistic
prefetch model:

* the occupancy ``B`` of the observational window preceding the upcoming
  refresh,
* the profiler's frozen ``λ`` and ``β``,
* the per-rank prediction table.

If ``B > 0`` it prefetches with probability ``λ``; if ``B == 0`` it stays
quiet with probability ``β``. When the throttle fires, the prediction
table's Eq.-3 budget split produces up to ``C`` (bank, offset) candidates,
which are translated into global line addresses for the controller to
fetch.
"""

from __future__ import annotations

import numpy as np

from ..config import RopConfig
from ..dram.address_mapping import AddressMapper
from ..dram.request import Coord
from .prediction_table import PredictionTable
from .profiler import LambdaBeta

__all__ = ["Prefetcher"]


class Prefetcher:
    """Probabilistic go/no-go throttle plus candidate generation."""

    def __init__(self, cfg: RopConfig, rng: np.random.Generator) -> None:
        self.cfg = cfg
        self.rng = rng
        self.decisions_go = 0
        self.decisions_skip = 0

    def decide(self, b_count: int, lam_beta: LambdaBeta | None) -> bool:
        """Should we prefetch for the upcoming refresh?

        With ``probabilistic=False`` (an ablation mode) the throttle is
        bypassed and prefetching happens whenever the window saw traffic.
        """
        if not self.cfg.probabilistic:
            go = b_count > 0
        elif lam_beta is None:
            go = False  # no profile yet — stay quiet
        elif b_count > 0:
            go = self.rng.random() < lam_beta.lam
        else:
            go = not (self.rng.random() < lam_beta.beta)
        if go:
            self.decisions_go += 1
        else:
            self.decisions_skip += 1
        return go

    def candidate_lines(
        self,
        table: PredictionTable,
        mapper: AddressMapper,
        channel: int,
        rank: int,
    ) -> list[int]:
        """Predicted global line addresses for one rank, capped at capacity."""
        columns = mapper.org.columns
        lines: list[int] = []
        for bank, offset in table.predict(self.cfg.sram_lines):
            row, col = divmod(offset, columns)
            lines.append(mapper.encode(Coord(channel, rank, bank, row, col)))
        return lines
