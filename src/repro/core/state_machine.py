"""ROP's three-state control loop (end of Section IV-C).

The memory (per controller, shared across ranks) is in one of three
states:

* **Training** — the Pattern Profiler gathers (B, A) statistics for a
  configured number of refreshes; the SRAM buffer is powered off.
* **Observing** — λ and β are frozen; before each refresh the prefetcher
  makes a probabilistic go/no-go decision.
* **Prefetching** — a transient state while predicted lines are fetched
  into the buffer ahead of an imminent refresh.

A sliding window of recent *armed* refreshes tracks the SRAM hit rate
(hits ÷ reads arriving during the lock); if it drops below the threshold
the machine falls back to Training and re-profiles.
"""

from __future__ import annotations

import enum
from collections import deque

__all__ = ["RopState", "RopStateMachine"]


class RopState(enum.Enum):
    """Operating state of the ROP engine."""

    TRAINING = "training"
    OBSERVING = "observing"
    PREFETCHING = "prefetching"


class RopStateMachine:
    """Training/Observing/Prefetching transitions with hit-rate fallback."""

    def __init__(
        self,
        training_refreshes: int,
        hit_rate_threshold: float,
        hit_rate_window: int,
        *,
        min_buffer_utilization: float = 0.0,
        training_backoff_cap: int = 1,
    ) -> None:
        self.training_refreshes = training_refreshes
        self.hit_rate_threshold = hit_rate_threshold
        self.hit_rate_window = hit_rate_window
        self.min_buffer_utilization = min_buffer_utilization
        self.training_backoff_cap = max(1, training_backoff_cap)
        self.state = RopState.TRAINING
        #: optional observer called with ``(old_state, new_state)`` on every
        #: transition (telemetry hook; exceptions propagate)
        self.on_transition = None
        self._training_seen = 0
        #: multiplier applied to the next training length (backoff)
        self._backoff = 1
        #: (arrivals, hits) of recent armed refresh locks
        self._recent: deque[tuple[int, int]] = deque(maxlen=hit_rate_window)
        #: (fills, consumed) of recent buffer tenures (harm guard); trips on
        #: a shorter window than the hit-rate check — useless prefetching
        #: costs bandwidth every tREFI, so detection must be prompt
        self._recent_util: deque[tuple[int, int]] = deque(
            maxlen=max(4, hit_rate_window // 2)
        )
        self.retrain_count = 0
        self.phases_completed = 0

    # -- training -----------------------------------------------------------------

    def on_training_refresh(self) -> bool:
        """Count one profiled refresh; returns True when training completes."""
        if self.state is not RopState.TRAINING:
            return False
        self._training_seen += 1
        if self._training_seen >= self.training_refreshes:
            self.complete_training()
            return True
        return False

    def complete_training(self) -> None:
        """Force the Training → Observing transition (multi-rank drivers
        complete training when every rank's profiler is full)."""
        if self.state is RopState.TRAINING:
            self._move_to(RopState.OBSERVING)
            self.phases_completed += 1
            self._training_seen = 0

    @property
    def effective_training_refreshes(self) -> int:
        """Training length including the retrain backoff multiplier."""
        return self.training_refreshes * self._backoff

    # -- observing / prefetching ---------------------------------------------------

    def begin_prefetch(self) -> None:
        """Enter the transient Prefetching state for one refresh."""
        if self.state is RopState.OBSERVING:
            self._move_to(RopState.PREFETCHING)

    def end_prefetch(self) -> None:
        """Return to Observing after the refresh lock is armed."""
        if self.state is RopState.PREFETCHING:
            self._move_to(RopState.OBSERVING)

    def on_lock_outcome(self, arrivals: int, hits: int) -> bool:
        """Feed one armed lock's result; returns True if retraining triggered.

        Only locks that saw at least one read arrival are informative; a
        quiet lock says nothing about prediction quality.
        """
        if arrivals <= 0:
            return False
        self._recent.append((arrivals, hits))
        if (
            self.state is not RopState.TRAINING
            and len(self._recent) == self.hit_rate_window
        ):
            total_arrivals = sum(a for a, _ in self._recent)
            total_hits = sum(h for _, h in self._recent)
            if total_arrivals and total_hits / total_arrivals < self.hit_rate_threshold:
                self._retrain()
                return True
        return False

    def on_buffer_outcome(self, fills: int, consumed: int) -> bool:
        """Feed one buffer tenure's utilization; True if retraining triggered.

        The harm guard: when almost none of the prefetched lines are ever
        read, prefetching burns DRAM bandwidth each tREFI for nothing and
        the engine must fall back to Training regardless of the (possibly
        uninformative) in-lock hit rate.
        """
        if fills <= 0 or self.min_buffer_utilization <= 0.0:
            return False
        self._recent_util.append((fills, consumed))
        if (
            self.state is not RopState.TRAINING
            and len(self._recent_util) == self._recent_util.maxlen
        ):
            total_fills = sum(f for f, _ in self._recent_util)
            total_used = sum(c for _, c in self._recent_util)
            if total_fills and total_used / total_fills < self.min_buffer_utilization:
                self._retrain()
                return True
        return False

    @property
    def recent_hit_rate(self) -> float:
        """Hit rate over the sliding outcome window."""
        total_arrivals = sum(a for a, _ in self._recent)
        if total_arrivals == 0:
            return 0.0
        return sum(h for _, h in self._recent) / total_arrivals

    @property
    def is_training(self) -> bool:
        """True while profiling (buffer off, no prefetching)."""
        return self.state is RopState.TRAINING

    def _move_to(self, new: RopState) -> None:
        old, self.state = self.state, new
        if self.on_transition is not None:
            self.on_transition(old, new)

    def _retrain(self) -> None:
        self._move_to(RopState.TRAINING)
        self._training_seen = 0
        self._recent.clear()
        self._recent_util.clear()
        self.retrain_count += 1
        self._backoff = min(self._backoff * 2, self.training_backoff_cap)
