"""The Pattern Profiler (Section IV-B).

During a training phase the profiler observes, for every refresh, the
number of requests ``B`` (reads *and* writes) in an observational window
before the refresh and the number of *read* requests ``A`` in a window
after the refresh start. Each refresh falls into one of four categories —
(B>0, A>0), (B>0, A=0), (B=0, A>0), (B=0, A=0) — and from the category
counts the profiler computes the two conditional probabilities that
throttle prefetching:

.. math::

    λ = P\\{A>0 \\mid B>0\\} \\qquad β = P\\{A=0 \\mid B=0\\}

``A`` looks *forward* in time, so each refresh opens a pending record that
is finalized once simulated time passes the end of its A-window; callers
drive that with :meth:`PatternProfiler.advance`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["CategoryCounts", "LambdaBeta", "PatternProfiler"]


@dataclass
class CategoryCounts:
    """Occurrences of the four (B, A) refresh categories."""

    b_pos_a_pos: int = 0  #: E1 — requests both before and after
    b_pos_a_zero: int = 0
    b_zero_a_pos: int = 0
    b_zero_a_zero: int = 0  #: E2 — quiet before and after

    @property
    def total(self) -> int:
        """Refreshes categorized so far."""
        return (
            self.b_pos_a_pos
            + self.b_pos_a_zero
            + self.b_zero_a_pos
            + self.b_zero_a_zero
        )

    @property
    def dominant_fraction(self) -> float:
        """Fraction covered by E1 + E2 (the paper's Fig. 4 metric)."""
        t = self.total
        if t == 0:
            return 0.0
        return (self.b_pos_a_pos + self.b_zero_a_zero) / t

    def as_tuple(self) -> tuple[int, int, int, int]:
        """Immutable snapshot ``(E1, b_pos_a_zero, b_zero_a_pos, E2)``."""
        return (
            self.b_pos_a_pos,
            self.b_pos_a_zero,
            self.b_zero_a_pos,
            self.b_zero_a_zero,
        )


@dataclass(frozen=True)
class LambdaBeta:
    """The profiler's output probabilities.

    When a conditional is undefined (its condition never occurred during
    training) we default optimistically: ``λ = 1.0`` (prefetch when there
    is evidence) and ``β = 1.0`` (stay quiet when there is none) — both
    choices are safe because the undefined branch was never exercised.
    """

    lam: float
    beta: float


class _PendingRefresh:
    """A refresh whose A-window is still open."""

    __slots__ = ("start", "deadline", "b_count", "a_count")

    def __init__(self, start: int, deadline: int, b_count: int) -> None:
        self.start = start
        self.deadline = deadline
        self.b_count = b_count
        self.a_count = 0


class PatternProfiler:
    """Per-rank window statistics and λ/β computation."""

    def __init__(self, window: int, a_window: int | None = None) -> None:
        if window <= 0:
            raise ValueError(f"observational window must be positive, got {window}")
        self.window = window
        self.a_window = a_window if a_window is not None else window
        #: recent request arrivals: (cycle, is_read); pruned past the window
        self._arrivals: deque[tuple[int, bool]] = deque()
        self._pending: list[_PendingRefresh] = []
        self.counts = CategoryCounts()

    # -- event feed ---------------------------------------------------------------

    def on_request(self, cycle: int, is_read: bool) -> None:
        """Record a demand request arrival to this rank."""
        self.advance(cycle)
        self._arrivals.append((cycle, is_read))
        if is_read:
            for rec in self._pending:
                if rec.start <= cycle < rec.deadline:
                    rec.a_count += 1

    def on_refresh(self, start: int) -> None:
        """Record a refresh starting at ``start``; opens its A-window."""
        self.advance(start)
        b = self.count_in_window(start)
        self._pending.append(_PendingRefresh(start, start + self.a_window, b))

    def advance(self, cycle: int) -> None:
        """Finalize pending refreshes whose A-window closed before ``cycle``
        and prune arrivals that can no longer fall in any B-window."""
        if self._pending:
            still_open = []
            for rec in self._pending:
                if rec.deadline <= cycle:
                    self._categorize(rec)
                else:
                    still_open.append(rec)
            self._pending = still_open
        horizon = cycle - self.window
        while self._arrivals and self._arrivals[0][0] < horizon:
            self._arrivals.popleft()

    def finalize(self, cycle: int | None = None) -> None:
        """Force-close every pending record (end of a training phase/run)."""
        for rec in self._pending:
            self._categorize(rec)
        self._pending.clear()
        if cycle is not None:
            self.advance(cycle)

    # -- queries ------------------------------------------------------------------

    def count_in_window(self, cycle: int) -> int:
        """Requests (reads + writes) observed in ``[cycle - window, cycle)``."""
        lo = cycle - self.window
        return sum(1 for t, _ in self._arrivals if lo <= t < cycle)

    def lambda_beta(self) -> LambdaBeta:
        """Current λ and β from the category counts."""
        c = self.counts
        b_pos = c.b_pos_a_pos + c.b_pos_a_zero
        b_zero = c.b_zero_a_pos + c.b_zero_a_zero
        lam = c.b_pos_a_pos / b_pos if b_pos else 1.0
        beta = c.b_zero_a_zero / b_zero if b_zero else 1.0
        return LambdaBeta(lam, beta)

    @property
    def refreshes_profiled(self) -> int:
        """Refreshes fully categorized so far."""
        return self.counts.total

    def reset(self) -> None:
        """Clear counts for a fresh training phase (arrivals are kept)."""
        self.counts = CategoryCounts()
        self._pending.clear()

    # -- internals ----------------------------------------------------------------

    def _categorize(self, rec: _PendingRefresh) -> None:
        c = self.counts
        if rec.b_count > 0:
            if rec.a_count > 0:
                c.b_pos_a_pos += 1
            else:
                c.b_pos_a_zero += 1
        elif rec.a_count > 0:
            c.b_zero_a_pos += 1
        else:
            c.b_zero_a_zero += 1
