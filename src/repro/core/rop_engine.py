"""The ROP engine: glue between the memory controller and the paper's
four added modules (Pattern Profiler, Prefetcher, SRAM Buffer, and the
refresh-timing feed from the Refresh Manager).

The engine implements the controller's ROP hook protocol (see
:mod:`repro.dram.controller`). Responsibilities:

* observe every demand request: feed the per-rank profiler and — while the
  request falls inside the rank's observational window — the per-rank
  prediction table;
* at each refresh: in *Training*, record (B, A) statistics; in *Observing*,
  make the probabilistic go/no-go decision and emit prefetch candidates;
* track per-lock arrivals/hits and drive the hit-rate fallback to
  Training;
* own the shared SRAM buffer that ranks take turns using.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig
from ..dram.request import ReqKind, Request
from ..rng import make_rng
from ..telemetry import NULL_SINK, Category, Kind, PhaseCode, SkipReason
from .prediction_table import PredictionTable
from .prefetcher import Prefetcher
from .profiler import LambdaBeta, PatternProfiler
from .sram_buffer import SramBuffer
from .state_machine import RopState, RopStateMachine

#: RopState → PhaseCode for trace events
_PHASE_CODE = {
    RopState.TRAINING: PhaseCode.TRAINING,
    RopState.OBSERVING: PhaseCode.OBSERVING,
    RopState.PREFETCHING: PhaseCode.PREFETCHING,
}

__all__ = ["RopEngine", "LockRecord"]


@dataclass
class LockRecord:
    """One refresh lock window and its SRAM service outcome."""

    channel: int
    rank: int
    start: int
    end: int
    armed: bool  #: buffer was filled for this lock
    arrivals: int = 0  #: demand reads arriving while frozen
    hits: int = 0  #: of those, serviced from the SRAM buffer


class RopEngine:
    """Refresh-Oriented Prefetching, wired into a memory controller."""

    def __init__(self, config: SystemConfig) -> None:
        self.cfg = config
        self.rop = config.rop
        self.t = config.effective_timings()
        self.window = self.rop.window_cycles(self.t)
        org = config.organization
        self.buffer = SramBuffer(self.rop.sram_lines)
        self.sm = RopStateMachine(
            self.rop.training_refreshes,
            self.rop.hit_rate_threshold,
            self.rop.hit_rate_window,
            min_buffer_utilization=self.rop.min_buffer_utilization,
            training_backoff_cap=self.rop.training_backoff_cap,
        )
        self.prefetcher = Prefetcher(self.rop, make_rng(self.rop.seed, "rop-throttle"))
        self.profilers: dict[tuple[int, int], PatternProfiler] = {}
        self.tables: dict[tuple[int, int], PredictionTable] = {}
        self.lam_beta: dict[tuple[int, int], LambdaBeta | None] = {}
        for ch in range(org.channels):
            for rk in range(org.ranks):
                key = (ch, rk)
                self.profilers[key] = PatternProfiler(self.window)
                self.tables[key] = PredictionTable(org.banks, org.lines_per_bank)
                self.lam_beta[key] = None
        #: per-rank (B,A) category counts snapshotted the instant training
        #: froze λ/β — the profiler keeps counting afterwards, so the golden
        #: model must recompute from *these*, not the live counts
        self.frozen_counts: dict[tuple[int, int], tuple[int, int, int, int] | None] = {
            key: None for key in self.profilers
        }
        self._locks: list[LockRecord] = []
        self.closed_locks: list[LockRecord] = []
        #: keep only aggregate outcomes beyond this many closed locks
        self.keep_lock_history = 4096
        self._armed_locks = 0
        self._armed_arrivals = 0
        self._armed_hits = 0
        #: current buffer tenure: (fills, buffer-hit counter at fill time)
        self._tenure: tuple[int, int] | None = None
        #: per-rank EMA of reads arriving per refresh lock
        self._lock_demand_ema: dict[tuple[int, int], float] = {
            key: 0.0 for key in self.profilers
        }
        #: EMA of lines usefully consumed per buffer tenure (adaptive
        #: depth); seeded optimistically so the first armings fill deep and
        #: the estimate decays to the workload's real appetite
        self._consumed_ema: float = float(self.rop.sram_lines) / 2.0
        #: (cycle, busy_cycles) snapshot for the bus-pressure guard
        self._bus_snapshot: dict[int, tuple[int, int]] = {}
        self.pressure_skips = 0
        # bound to a controller by MemorySystem
        self._controller = None
        self._refresh_mgr = None
        self._mapper = None
        self._ref_first: dict[tuple[int, int], int] = {}
        self._ref_period = 0
        self._columns = org.columns
        self.sink = NULL_SINK
        self._t_rop = False
        #: cycle of the most recent hook call; stamps events (retrains,
        #: phase changes) raised from paths that carry no cycle argument
        self._now = 0

    # ------------------------------------------------------------------ binding

    def set_sink(self, sink) -> None:
        """Attach a telemetry sink; ROP-category events flow when enabled."""
        self.sink = sink if sink is not None else NULL_SINK
        self._t_rop = self.sink.wants(Category.ROP)
        self.buffer.set_sink(self.sink)
        if self._t_rop:
            self.sm.on_transition = self._on_phase_change
            # open the initial phase span so the exporter sees Training
            # from cycle 0
            self.sink.emit(
                Category.ROP, Kind.PHASE, 0, a=int(_PHASE_CODE[self.sm.state])
            )
        else:
            self.sm.on_transition = None

    def _on_phase_change(self, old: RopState, new: RopState) -> None:
        self.sink.emit(
            Category.ROP, Kind.PHASE, self._now, a=int(_PHASE_CODE[new])
        )

    def bind(self, controller) -> None:
        """Attach to the controller whose traffic this engine observes."""
        self._controller = controller
        self._refresh_mgr = controller.refresh_mgr
        self._mapper = controller.mapper
        # per-rank refresh grid, cached for the per-request window check:
        # first_tick and period are pure functions of the configuration
        self._ref_first = {
            key: self._refresh_mgr.first_tick(*key) for key in self.profilers
        }
        self._ref_period = self._refresh_mgr.period
        self._columns = controller.mapper.org.columns

    def next_refresh_due(self, channel: int, rank: int, cycle: int) -> int:
        """Next tREFI grid tick for a rank at or after ``cycle``."""
        first = self._refresh_mgr.first_tick(channel, rank)
        period = self._refresh_mgr.period
        if cycle <= first:
            return first
        k = -((first - cycle) // period)  # ceil((cycle - first) / period)
        return first + k * period

    def in_observational_window(self, channel: int, rank: int, cycle: int) -> bool:
        """Is ``cycle`` within the window preceding the rank's next refresh?"""
        return self.next_refresh_due(channel, rank, cycle) - cycle <= self.window

    # ------------------------------------------------------------------ hooks

    def on_request(self, req: Request, cycle: int) -> None:
        """Observe one demand request (controller hook)."""
        if self._t_rop:
            self._now = cycle
        self._close_stale_locks(cycle)
        coord = req.coord
        is_read = req.kind is ReqKind.READ
        key = (coord.channel, coord.rank)
        self.profilers[key].on_request(cycle, is_read)
        if is_read or not self.rop.table_reads_only:
            # inlined in_observational_window / next_refresh_due over the
            # cached per-rank refresh grid (hot path: every demand request)
            first = self._ref_first[key]
            if cycle <= first:
                due = first
            else:
                period = self._ref_period
                due = first - ((first - cycle) // period) * period
            if due - cycle <= self.window:
                offset = coord.row * self._columns + coord.col
                self.tables[key].update(coord.bank, offset)

    def sram_lookup(self, line: int) -> bool:
        """Probe the buffer (controller hook; no side effects)."""
        return not self.sm.is_training and self.buffer.lookup(line)

    def on_sram_hit(self, req: Request, cycle: int, in_lock: bool) -> None:
        """A read was serviced from the buffer (controller hook)."""
        self.buffer.consume(req.line, cycle)
        if in_lock:
            rec = self._find_lock(req.coord.channel, req.coord.rank, cycle)
            if rec is not None:
                rec.hits += 1

    def on_read_arrival_in_lock(self, channel: int, rank: int, cycle: int) -> None:
        """A demand read arrived at a frozen rank (controller hook)."""
        rec = self._find_lock(channel, rank, cycle)
        if rec is not None:
            rec.arrivals += 1

    def invalidate_line(self, line: int, cycle: int = -1) -> None:
        """A demand write made a buffered line stale (controller hook)."""
        self.buffer.invalidate(line, cycle)

    def plan_prefetch(self, channel: int, rank: int, cycle: int) -> list[int]:
        """Lines to prefetch for the refresh about to start (controller hook)."""
        if self._t_rop:
            self._now = cycle
        self._close_stale_locks(cycle)
        if self.sm.is_training:
            return []
        key = (channel, rank)
        b_count = self.profilers[key].count_in_window(cycle)
        if self._bus_pressure(channel, cycle) > self.rop.bus_pressure_limit:
            self.pressure_skips += 1
            if self._controller is not None:
                self._controller.stats.prefetch_skipped += 1
            self._emit_skip(channel, rank, cycle, SkipReason.BUS_PRESSURE, b_count)
            return []
        if not self.prefetcher.decide(b_count, self.lam_beta[key]):
            if self._controller is not None:
                self._controller.stats.prefetch_skipped += 1
            self._emit_skip(channel, rank, cycle, SkipReason.THROTTLE, b_count)
            return []
        self.sm.begin_prefetch()
        lines = self.prefetcher.candidate_lines(
            self.tables[key], self._mapper, channel, rank
        )
        if self.rop.adaptive_depth and lines:
            depth = max(8, int(2.0 * self._consumed_ema) + 8)
            lines = lines[:depth]
        if not lines:
            self.sm.end_prefetch()
            if self._controller is not None:
                self._controller.stats.prefetch_skipped += 1
            self._emit_skip(channel, rank, cycle, SkipReason.NO_CANDIDATES, b_count)
        elif self._t_rop:
            self.sink.emit(
                Category.ROP,
                Kind.PREFETCH_PLAN,
                cycle,
                channel,
                rank,
                a=len(lines),
                b=b_count,
            )
        return lines

    def _emit_skip(
        self, channel: int, rank: int, cycle: int, reason: SkipReason, b_count: int = 0
    ) -> None:
        if self._t_rop:
            self.sink.emit(
                Category.ROP,
                Kind.PREFETCH_SKIP,
                cycle,
                channel,
                rank,
                a=int(reason),
                b=b_count,
            )

    def on_prefetch_fill(self, channel: int, rank: int, lines: list[int], cycle: int) -> None:
        """Prefetched lines landed in the buffer (controller hook)."""
        if self._t_rop:
            self._now = cycle
        self._close_tenure()
        stored = self.buffer.refill((channel, rank), lines, cycle)
        self._tenure = (stored, self.buffer.hits)
        if self._t_rop:
            self.sink.emit(
                Category.ROP,
                Kind.PREFETCH_FILL,
                cycle,
                channel,
                rank,
                a=stored,
                b=len(lines),
            )
        self.sm.end_prefetch()

    def on_refresh_executed(self, channel: int, rank: int, start: int, end: int) -> None:
        """A refresh lock [start, end) began (controller hook)."""
        if self._t_rop:
            self._now = start
        key = (channel, rank)
        if self.sm.is_training:
            self.profilers[key].on_refresh(start)
            self._maybe_finish_training(start)
        armed = self.buffer.owner == key and len(self.buffer) > 0
        self._locks.append(LockRecord(channel, rank, start, end, armed))
        # The prediction table records patterns *per observational window*
        # (Section IV-C); the refresh closes this rank's window, so start a
        # fresh one — frequencies then weight banks by recent activity.
        self.tables[key].reset()

    # ------------------------------------------------------------------ queries

    @property
    def state(self) -> RopState:
        """Current ROP operating state."""
        return self.sm.state

    def lock_hit_rate(self) -> float:
        """Hit rate over all closed *armed* locks (Fig. 9 metric, armed only)."""
        if self._armed_arrivals == 0:
            return 0.0
        return self._armed_hits / self._armed_arrivals

    def summary(self) -> dict:
        """Run-level ROP summary for reporting."""
        return {
            "state": self.sm.state.value,
            "lam_beta": {
                f"ch{ch}.rank{rk}": (lb.lam, lb.beta) if lb else None
                for (ch, rk), lb in self.lam_beta.items()
            },
            "armed_locks": self._armed_locks,
            "armed_arrivals": self._armed_arrivals,
            "armed_hits": self._armed_hits,
            "armed_hit_rate": self.lock_hit_rate(),
            "retrains": self.sm.retrain_count,
            "buffer_fills": self.buffer.fills,
            "buffer_hits": self.buffer.hits,
            "buffer_invalidations": self.buffer.invalidations,
            "decisions_go": self.prefetcher.decisions_go,
            "decisions_skip": self.prefetcher.decisions_skip,
            "category_counts": {
                f"ch{ch}.rank{rk}": counts
                for (ch, rk), counts in self.frozen_counts.items()
            },
        }

    def finalize(self, cycle: int) -> None:
        """Close every open lock and pending profiler record (end of run)."""
        for key, prof in self.profilers.items():
            prof.finalize(cycle)
        self._close_stale_locks(cycle, force=True)

    # ------------------------------------------------------------------ internals

    def _find_lock(self, channel: int, rank: int, cycle: int) -> LockRecord | None:
        for rec in reversed(self._locks):
            if rec.channel == channel and rec.rank == rank and rec.start <= cycle < rec.end:
                return rec
        return None

    def _close_stale_locks(self, cycle: int, force: bool = False) -> None:
        if not self._locks:
            return
        still_open: list[LockRecord] = []
        for rec in self._locks:
            if force or rec.end <= cycle:
                key = (rec.channel, rec.rank)
                self._lock_demand_ema[key] = (
                    0.75 * self._lock_demand_ema[key] + 0.25 * rec.arrivals
                )
                if rec.armed:
                    self._armed_locks += 1
                    self._armed_arrivals += rec.arrivals
                    self._armed_hits += rec.hits
                    if self.sm.on_lock_outcome(rec.arrivals, rec.hits):
                        self._on_retrain()
                if len(self.closed_locks) < self.keep_lock_history:
                    self.closed_locks.append(rec)
            else:
                still_open.append(rec)
        self._locks = still_open

    def _bus_pressure(self, channel: int, cycle: int) -> float:
        """Data-bus utilization of ``channel`` since the previous probe."""
        if self._controller is None:
            return 0.0
        ch = self._controller.channels[channel]
        last_cycle, last_busy = self._bus_snapshot.get(channel, (0, 0))
        self._bus_snapshot[channel] = (cycle, ch.busy_cycles)
        elapsed = cycle - last_cycle
        if elapsed <= 0:
            return 0.0
        return (ch.busy_cycles - last_busy) / elapsed

    def _close_tenure(self) -> None:
        """Score the outgoing buffer contents against the harm guard."""
        if self._tenure is None:
            return
        fills, hits_base = self._tenure
        self._tenure = None
        consumed = self.buffer.hits - hits_base
        self._consumed_ema = 0.75 * self._consumed_ema + 0.25 * consumed
        if self.sm.on_buffer_outcome(fills, consumed):
            self._on_retrain()

    def _on_retrain(self) -> None:
        """Hit rate collapsed: re-enter Training with fresh profiles."""
        if self._t_rop:
            self.sink.emit(
                Category.ROP, Kind.RETRAIN, self._now, a=self.sm.retrain_count
            )
        self.buffer.flush()
        self._tenure = None
        for key in self.profilers:
            self.profilers[key].reset()
            self.lam_beta[key] = None
            self.frozen_counts[key] = None

    def _maybe_finish_training(self, cycle: int) -> None:
        for prof in self.profilers.values():
            prof.advance(cycle)
        if all(
            p.refreshes_profiled >= self.sm.effective_training_refreshes
            for p in self.profilers.values()
        ):
            for key, prof in self.profilers.items():
                lb = prof.lambda_beta()
                self.lam_beta[key] = lb
                self.frozen_counts[key] = prof.counts.as_tuple()
                if self._t_rop and lb is not None:
                    ch, rk = key
                    self.sink.emit(
                        Category.ROP, Kind.LAMBDA, cycle, ch, rk, f=lb.lam
                    )
                    self.sink.emit(
                        Category.ROP, Kind.BETA, cycle, ch, rk, f=lb.beta
                    )
            self.sm.complete_training()
