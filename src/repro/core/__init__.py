"""ROP — the paper's contribution: refresh-oriented prefetching."""

from .prediction_table import BankEntry, PredictionTable
from .prefetcher import Prefetcher
from .profiler import CategoryCounts, LambdaBeta, PatternProfiler
from .rop_engine import LockRecord, RopEngine
from .sram_buffer import SramBuffer
from .state_machine import RopState, RopStateMachine

__all__ = [
    "BankEntry",
    "PredictionTable",
    "Prefetcher",
    "CategoryCounts",
    "LambdaBeta",
    "PatternProfiler",
    "LockRecord",
    "RopEngine",
    "SramBuffer",
    "RopState",
    "RopStateMachine",
]
