"""Rank-level timing state: bank aggregation, ACT pacing and refresh locks.

A rank enforces the cross-bank constraints — tRRD (ACT-to-ACT spacing),
tFAW (at most four ACTs in a rolling window) and the write→read turnaround
tWTR — and is the unit that auto-refresh freezes: while a REF command is in
flight (``tRFC``), every bank of the rank is unavailable. That freeze is
exactly the window ROP's SRAM buffer revives.
"""

from __future__ import annotations

from collections import deque

from .bank import AccessPlan, Bank
from .request import ServiceKind
from .timings import DramTimings

__all__ = ["Rank"]


class Rank:
    """Timing state for one rank (a set of lock-step banks)."""

    __slots__ = (
        "banks",
        "locked_until",
        "lock_start",
        "last_act",
        "act_window",
        "wtr_until",
        "refresh_count",
        "act_count",
        "sub_rows",
    )

    def __init__(self, num_banks: int) -> None:
        self.banks = [Bank() for _ in range(num_banks)]
        #: rows per subarray; 0 disables subarray (SARP) gating entirely
        self.sub_rows: int = 0
        #: rank unavailable (refreshing) until this cycle
        self.locked_until: int = 0
        #: start of the most recent refresh lock window
        self.lock_start: int = 0
        self.last_act: int = -(10**9)
        #: recent ACT cycles, for the tFAW four-activate window
        self.act_window: deque[int] = deque(maxlen=4)
        #: earliest cycle a read column command may follow a write burst
        self.wtr_until: int = 0
        self.refresh_count: int = 0
        self.act_count: int = 0

    # -- gating helpers -----------------------------------------------------------

    def act_gate(self, t: DramTimings) -> int:
        """Earliest cycle a new ACT may issue on this rank (tRRD + tFAW)."""
        gate = self.last_act + t.rrd
        if len(self.act_window) == 4:
            gate = max(gate, self.act_window[0] + t.faw)
        return gate

    def is_locked(self, cycle: int) -> bool:
        """True while the rank is frozen by an in-flight refresh.

        A refresh may be scheduled to *start* in the future (the controller
        commits the lock when the REF is issued); only cycles inside the
        physical [start, end) window count as locked — that is the paper's
        "refresh period" for the Fig. 9 hit-rate metric.
        """
        return self.lock_start <= cycle < self.locked_until

    # -- access -------------------------------------------------------------------

    def plan(self, now: int, bank_idx: int, row: int, is_write: bool, t: DramTimings) -> AccessPlan:
        """Price an access through this rank's gates (no state change)."""
        start = max(now, self.locked_until)
        not_before = start if is_write else max(start, self.wtr_until)
        bank = self.banks[bank_idx]
        if self.sub_rows and row // self.sub_rows == bank.sub_ref:
            # SARP: the target subarray is being refreshed — wait it out
            not_before = max(not_before, bank.sub_lock_end)
        return bank.plan(
            now, row, is_write, t, not_before=not_before, act_gate=self.act_gate(t)
        )

    def commit(self, plan: AccessPlan, bank_idx: int, row: int, is_write: bool, t: DramTimings) -> None:
        """Apply a priced access to bank and rank state."""
        self.banks[bank_idx].commit(plan, row, is_write, t)
        if plan.act_cycle >= 0:
            self.last_act = plan.act_cycle
            self.act_window.append(plan.act_cycle)
            self.act_count += 1
        if is_write:
            self.wtr_until = max(self.wtr_until, plan.col_cycle + t.cwl + t.burst + t.wtr)

    # -- refresh ------------------------------------------------------------------

    def quiesce_at(self) -> int:
        """Earliest cycle every bank is safe to freeze for refresh."""
        return max(b.quiesce_at() for b in self.banks)

    def start_refresh(
        self,
        due: int,
        t: DramTimings,
        *,
        banks: list[int] | None = None,
        duration: int | None = None,
    ) -> tuple[int, int]:
        """Freeze the rank (or a subset of banks) for one refresh.

        The refresh begins at ``max(due, quiesce point)`` — a REF cannot cut
        an in-flight row cycle short — and the affected banks are held until
        ``start + duration`` (``tRFC`` by default; Refresh-Pausing passes
        one segment at a time). Returns ``(start, end)``.

        ``banks=None`` freezes the whole rank (all-bank refresh); passing a
        subset models per-bank refresh, where unaffected banks keep serving.
        """
        lock_for = duration if duration is not None else t.rfc
        if banks is None:
            start = max(due, self.quiesce_at())
            end = start + lock_for
            for b in self.banks:
                b.close_for_refresh(end)
            if end > self.locked_until:
                if start > self.locked_until:
                    self.lock_start = start
                # back-to-back refreshes (elastic catch-up) extend one window
                self.locked_until = end
        else:
            start = max(due, *(self.banks[i].quiesce_at() for i in banks))
            end = start + lock_for
            for i in banks:
                self.banks[i].close_for_refresh(end)
        self.refresh_count += 1
        return start, end

    def start_subarray_refresh(
        self, due: int, t: DramTimings, bank_idx: int, sub: int, sub_rows: int
    ) -> tuple[int, int]:
        """Refresh one subarray of one bank (SARP); returns ``(start, end)``.

        The refresh still cannot cut an in-flight row cycle short
        (``quiesce_at``) and serializes behind the bank's previous subarray
        lock, but it freezes only the ``(bank, subarray)`` pair — demand to
        the bank's other subarrays keeps flowing through :meth:`plan`.
        """
        bank = self.banks[bank_idx]
        start = max(due, bank.quiesce_at(), bank.sub_lock_end)
        end = start + t.rfc
        bank.close_for_subarray_refresh(sub, sub_rows, end, t.rp)
        self.refresh_count += 1
        return start, end

    # -- stats --------------------------------------------------------------------

    def classify(self, plan: AccessPlan) -> ServiceKind:
        """Row-buffer outcome of a plan (hit / closed / conflict)."""
        return plan.category
