"""Row-buffer state machine for one DRAM bank.

The bank tracks its open row and the earliest cycles at which the next
column command and the next precharge may start. The controller calls
:meth:`Bank.plan` to price an access *without* committing, then
:meth:`Bank.commit` once the scheduler selects that access; the split keeps
FR-FCFS selection side-effect free.
"""

from __future__ import annotations

from dataclasses import dataclass

from .request import ServiceKind
from .timings import DramTimings

__all__ = ["AccessPlan", "Bank"]


@dataclass(frozen=True)
class AccessPlan:
    """Priced (not yet committed) bank access.

    ``col_cycle`` is when the column command issues, ``data_start`` /
    ``data_end`` delimit the burst on the shared data bus, ``act_cycle`` is
    the activation time (−1 for row hits) and ``category`` classifies the
    row-buffer outcome.
    """

    col_cycle: int
    data_start: int
    data_end: int
    act_cycle: int
    category: ServiceKind


class Bank:
    """One bank's timing state.

    Attributes
    ----------
    open_row:
        Currently open row, or ``None`` when precharged.
    ready_at:
        Earliest cycle the next command (to this bank) may start.
    pre_ok_at:
        Earliest cycle a precharge may start (covers tRAS, tRTP and write
        recovery).
    """

    __slots__ = (
        "open_row",
        "ready_at",
        "pre_ok_at",
        "act_cycle",
        "busy_until",
        "sub_ref",
        "sub_lock_end",
    )

    def __init__(self) -> None:
        self.open_row: int | None = None
        self.ready_at: int = 0
        self.pre_ok_at: int = 0
        self.act_cycle: int = -(10**9)
        #: end of the latest committed data burst (read or write)
        self.busy_until: int = 0
        #: subarray held by an in-flight SARP refresh (−1 = none ever)
        self.sub_ref: int = -1
        #: end of the latest subarray refresh lock (SARP only)
        self.sub_lock_end: int = 0

    def plan(
        self,
        now: int,
        row: int,
        is_write: bool,
        t: DramTimings,
        *,
        not_before: int = 0,
        act_gate: int = 0,
    ) -> AccessPlan:
        """Price an access to ``row`` starting no earlier than ``now``.

        ``not_before`` folds in rank-level column gating (e.g. write→read
        turnaround); ``act_gate`` folds in rank-level activation gating
        (tRRD / tFAW). No state is modified.
        """
        start = max(now, self.ready_at, not_before)
        cas = t.cwl if is_write else t.cl
        if self.open_row == row:
            col = start
            return AccessPlan(col, col + cas, col + cas + t.burst, -1, ServiceKind.DRAM_HIT)
        if self.open_row is None:
            act = max(start, act_gate)
            col = act + t.rcd
            return AccessPlan(col, col + cas, col + cas + t.burst, act, ServiceKind.DRAM_CLOSED)
        pre = max(start, self.pre_ok_at)
        act = max(pre + t.rp, act_gate)
        col = act + t.rcd
        return AccessPlan(col, col + cas, col + cas + t.burst, act, ServiceKind.DRAM_CONFLICT)

    def commit(self, plan: AccessPlan, row: int, is_write: bool, t: DramTimings) -> None:
        """Apply a previously priced access to the bank state."""
        if plan.act_cycle >= 0:
            self.open_row = row
            self.act_cycle = plan.act_cycle
        self.ready_at = plan.col_cycle + t.ccd
        self.busy_until = max(self.busy_until, plan.data_end)
        if is_write:
            # Precharge must wait for write recovery after the burst.
            recover = plan.col_cycle + t.cwl + t.burst + t.wr
        else:
            recover = plan.col_cycle + t.rtp
        ras_done = self.act_cycle + t.ras
        self.pre_ok_at = max(self.pre_ok_at, recover, ras_done)

    def close_for_refresh(self, locked_until: int) -> None:
        """Precharge the row and hold the bank until the refresh completes."""
        self.open_row = None
        self.ready_at = max(self.ready_at, locked_until)
        self.pre_ok_at = max(self.pre_ok_at, locked_until)

    def close_for_subarray_refresh(
        self, sub: int, sub_rows: int, locked_until: int, rp: int
    ) -> None:
        """Lock one subarray for refresh; the rest of the bank keeps serving.

        Only a row open inside the refreshing subarray is precharged; the
        subarray exclusion itself is enforced by :meth:`Rank.plan` folding
        ``sub_lock_end`` into ``not_before`` for same-subarray accesses.
        Closing the row carries an implicit precharge, which cannot beat
        ``pre_ok_at`` — flooring ``ready_at`` at ``pre_ok_at + tRP`` keeps
        the next ACT (to *any* subarray) tRC-legal against the last one,
        exactly as the row-conflict path would have.
        """
        if self.open_row is not None and self.open_row // sub_rows == sub:
            self.open_row = None
            self.ready_at = max(self.ready_at, self.pre_ok_at + rp)
        self.sub_ref = sub
        self.sub_lock_end = locked_until

    def quiesce_at(self) -> int:
        """Earliest cycle the bank is safe to lock for refresh.

        A refresh may not interrupt an in-flight row cycle: the bank must
        be precharge-able (``pre_ok_at``), past any pending command window
        (``ready_at``), and past the last committed data burst
        (``busy_until`` — a REF cannot cut a burst short on the pins).
        """
        return max(
            self.ready_at,
            self.busy_until,
            self.pre_ok_at if self.open_row is not None else 0,
        )
