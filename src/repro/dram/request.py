"""Memory request objects exchanged between the CPU models and the DRAM
controller.

Addresses are *cache-line indices* (byte address divided by 64), which is
the granularity every component of the paper operates at: the LLC filters
lines, the controller schedules line bursts, the prediction table records
line deltas and the SRAM buffer stores lines.
"""

from __future__ import annotations

import enum
from typing import Callable, NamedTuple

__all__ = ["ReqKind", "ServiceKind", "Coord", "Request"]


class ReqKind(enum.IntEnum):
    """Request type as seen by the memory controller."""

    READ = 0
    WRITE = 1
    PREFETCH = 2  #: ROP-generated SRAM fill read


class ServiceKind(enum.IntEnum):
    """How a request was ultimately serviced (for stats)."""

    DRAM_HIT = 0  #: row-buffer hit
    DRAM_CLOSED = 1  #: bank was precharged (row miss)
    DRAM_CONFLICT = 2  #: row-buffer conflict (precharge + activate)
    SRAM = 3  #: satisfied by the ROP prefetch buffer


class Coord(NamedTuple):
    """Decoded DRAM coordinates of a cache line."""

    channel: int
    rank: int
    bank: int
    row: int
    col: int


class Request:
    """One cache-line memory transaction.

    Mutable by design: the controller annotates scheduling results
    (``issue_cycle``, ``complete_cycle``, ``service``) as the request moves
    through the system. ``on_complete`` is invoked with the completion
    cycle when read data returns (writes complete silently).
    """

    __slots__ = (
        "rid",
        "kind",
        "line",
        "coord",
        "arrival",
        "issue_cycle",
        "complete_cycle",
        "service",
        "core_id",
        "on_complete",
    )

    def __init__(
        self,
        rid: int,
        kind: ReqKind,
        line: int,
        coord: Coord,
        arrival: int,
        core_id: int = 0,
        on_complete: Callable[[int], None] | None = None,
    ) -> None:
        self.rid = rid
        self.kind = kind
        self.line = line
        self.coord = coord
        self.arrival = arrival
        self.issue_cycle: int = -1
        self.complete_cycle: int = -1
        self.service: ServiceKind | None = None
        self.core_id = core_id
        self.on_complete = on_complete

    @property
    def is_read(self) -> bool:
        """True for demand reads (prefetches are not demand traffic)."""
        return self.kind is ReqKind.READ

    @property
    def latency(self) -> int:
        """Arrival-to-completion latency; -1 until completed."""
        if self.complete_cycle < 0:
            return -1
        return self.complete_cycle - self.arrival

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Request(rid={self.rid}, kind={self.kind.name}, line={self.line:#x}, "
            f"coord={self.coord}, arrival={self.arrival})"
        )
