"""Public facade over the DRAM substrate: event queue + controller + ROP.

:class:`MemorySystem` is the object most users interact with directly when
they are not going through the CPU co-simulation harness: submit reads and
writes at given cycles, run the event loop, and read back statistics.
"""

from __future__ import annotations

from typing import Callable

from ..config import SystemConfig
from ..events import EventQueue
from ..stats.collectors import ControllerStats, EventRecorder
from ..telemetry import NULL_SINK, Category, TraceSink
from .controller import MemoryController
from .request import ReqKind, Request

__all__ = ["MemorySystem"]


class MemorySystem:
    """A complete memory system instance for one simulation run.

    Parameters
    ----------
    config:
        Full system configuration; ``config.rop.enabled`` decides whether a
        :class:`~repro.core.rop_engine.RopEngine` is attached.
    record_events:
        Capture per-rank request/refresh timestamps for the offline refresh
        analyses (costs memory proportional to traffic).  Implemented on
        the telemetry sink: a grow-policy :class:`TraceSink` collecting the
        REQUEST and REFRESH categories is created (unless ``sink`` is
        given, in which case those categories are enabled on it) and
        ``self.recorder`` exposes the classic per-rank view of it.
    sink:
        Telemetry sink receiving cycle-level events from the controller,
        refresh manager and ROP engine; defaults to the no-op sink.
    events:
        Share an external event queue (the CPU co-simulation does this);
        a private queue is created otherwise.
    """

    def __init__(
        self,
        config: SystemConfig,
        *,
        record_events: bool = False,
        events: EventQueue | None = None,
        sink: TraceSink | None = None,
    ) -> None:
        self.config = config
        self.events = events if events is not None else EventQueue()
        if sink is not None:
            self.sink = sink
            if record_events:
                self.sink.enable(Category.REQUEST)
                self.sink.enable(Category.REFRESH)
        elif record_events:
            self.sink = TraceSink(
                capacity=1 << 12,
                categories={Category.REQUEST, Category.REFRESH},
                policy="grow",
            )
        else:
            self.sink = NULL_SINK
        self.rop = None
        if config.rop.enabled:
            # imported here to keep repro.dram importable without repro.core
            from ..core.rop_engine import RopEngine

            self.rop = RopEngine(config)
            self.rop.set_sink(self.sink)
        self.recorder = (
            EventRecorder(
                config.organization.channels,
                config.organization.ranks,
                sink=self.sink,
            )
            if record_events
            else None
        )
        self.controller = MemoryController(
            config, self.events, rop=self.rop, sink=self.sink
        )
        if self.rop is not None:
            self.rop.bind(self.controller)

    # ------------------------------------------------------------------ traffic

    def submit_read(
        self,
        line: int,
        cycle: int,
        core_id: int = 0,
        on_complete: Callable[[int], None] | None = None,
        coord=None,
    ) -> Request:
        """Enqueue a demand read for cache line ``line`` at ``cycle``.

        ``coord`` optionally carries the pre-decoded DRAM coordinates of
        ``line`` (see :meth:`MemoryController.submit`).
        """
        return self.controller.submit(
            ReqKind.READ, line, cycle, core_id, on_complete, coord
        )

    def submit_write(self, line: int, cycle: int, core_id: int = 0, coord=None) -> Request:
        """Enqueue a demand write for cache line ``line`` at ``cycle``."""
        return self.controller.submit(ReqKind.WRITE, line, cycle, core_id, None, coord)

    def schedule_read(
        self,
        line: int,
        cycle: int,
        core_id: int = 0,
        on_complete: Callable[[int], None] | None = None,
    ) -> None:
        """Schedule a read to *arrive* at ``cycle`` (event-ordered).

        Unlike :meth:`submit_read`, which must be called when simulated time
        has already reached ``cycle`` (the CPU co-simulation does), this
        enqueues an arrival event so open-loop traces interleave correctly
        with refresh activity.
        """
        self.events.push(
            cycle,
            lambda c, line=line: self.controller.submit(
                ReqKind.READ, line, c, core_id, on_complete
            ),
        )

    def schedule_write(self, line: int, cycle: int, core_id: int = 0) -> None:
        """Schedule a write to arrive at ``cycle`` (event-ordered)."""
        self.events.push(
            cycle,
            lambda c, line=line: self.controller.submit(ReqKind.WRITE, line, c, core_id),
        )

    # ------------------------------------------------------------------ running

    def run(self, until: int | None = None) -> int:
        """Drive the event loop; returns the number of events dispatched."""
        return self.events.run(until=until)

    def drain(self, horizon: int | None = None) -> int:
        """Run until every queued demand request has been issued.

        ``horizon`` bounds the run (refresh ticks continue forever, so an
        unbounded run would never exhaust the queue). Default: 16 refresh
        intervals past the current cycle.
        """
        t = self.controller.t
        limit = horizon if horizon is not None else self.events.now + 16 * t.refi
        while self.controller.pending_requests() and self.events.now < limit:
            if not self.events.step():
                break
        return self.events.now

    def finish(self) -> ControllerStats:
        """Finalize bookkeeping and return the stats object."""
        if self.rop is not None:
            self.rop.finalize(self.events.now)
        self.controller.finish(self.events.now)
        return self.stats

    # ------------------------------------------------------------------ results

    @property
    def stats(self) -> ControllerStats:
        """The controller's scalar counters."""
        return self.controller.stats

    @property
    def now(self) -> int:
        """Current simulation cycle."""
        return self.events.now

    def rop_summary(self) -> dict | None:
        """ROP engine summary, or None when ROP is disabled."""
        return self.rop.summary() if self.rop is not None else None
