"""Physical-address interleaving: cache-line index ↔ DRAM coordinates.

Three schemes are provided:

* :class:`AddressMapScheme.ROW_RANK_BANK_COL` — conventional fine-grained
  interleaving. From the least-significant line-address bit upward:
  column, bank, rank, channel, row. Consecutive cache lines fill a DRAM
  row, then hop to the next bank, maximizing bank-level parallelism for a
  single stream (kept for comparison/ablation; it destroys the bank
  locality ROP's per-bank prediction table exploits).

* :class:`AddressMapScheme.BANK_LOCALITY` — the experiment default.
  Column and the low row bits sit below the bank bits, so a stream dwells
  in one bank for ``columns × 2^row_low_bits`` lines (512 KB with the
  defaults) before moving on. This is the bank-locality organization the
  paper leans on ("many applications exhibit bank locality [22]"):
  the per-window prediction table then sees one or two hot banks and the
  Eq.-3 budget concentrates where the stream actually is.

* :class:`AddressMapScheme.RANK_PARTITIONED` — the paper's *Rank-aware
  Mapping* for multi-programmed runs: the rank index comes from the top
  address bits (each application's footprint pins to one rank) and the
  intra-rank layout is the bank-locality one.

Both directions (``decode`` / ``encode``) are exposed; they are exact
inverses, which the property tests rely on.
"""

from __future__ import annotations

import numpy as np

from ..config import AddressMapScheme, MemoryOrganization
from .request import Coord

__all__ = ["AddressMapper", "DEFAULT_ROW_LOW_BITS"]

#: low row bits kept below the bank bits in the bank-locality schemes;
#: 6 bits × 128 columns = 8 K lines (512 KB) of per-bank dwell.
DEFAULT_ROW_LOW_BITS = 6


def _floor_log2(n: int) -> int:
    if n <= 0 or n & (n - 1):
        raise ValueError(f"{n} is not a positive power of two")
    return n.bit_length() - 1


class AddressMapper:
    """Bidirectional cache-line address ↔ :class:`Coord` translator."""

    def __init__(
        self,
        org: MemoryOrganization,
        scheme: AddressMapScheme,
        row_low_bits: int = DEFAULT_ROW_LOW_BITS,
    ) -> None:
        self.org = org
        self.scheme = scheme
        # All geometry fields must be powers of two for bit-sliced mapping.
        self._col_bits = _floor_log2(org.columns)
        self._bank_bits = _floor_log2(org.banks)
        self._rank_bits = _floor_log2(org.ranks)
        self._chan_bits = _floor_log2(org.channels)
        self._row_bits = _floor_log2(org.rows)
        self._row_low = min(row_low_bits, self._row_bits)
        self._row_high = self._row_bits - self._row_low
        self.total_bits = (
            self._col_bits
            + self._bank_bits
            + self._rank_bits
            + self._chan_bits
            + self._row_bits
        )

    # -- decoding -----------------------------------------------------------------

    def decode(self, line: int) -> Coord:
        """Map a cache-line index to (channel, rank, bank, row, col)."""
        line &= (1 << self.total_bits) - 1
        org = self.org
        if self.scheme is AddressMapScheme.ROW_RANK_BANK_COL:
            col = line & (org.columns - 1)
            line >>= self._col_bits
            bank = line & (org.banks - 1)
            line >>= self._bank_bits
            rank = line & (org.ranks - 1)
            line >>= self._rank_bits
            chan = line & (org.channels - 1)
            line >>= self._chan_bits
            row = line & (org.rows - 1)
            return Coord(chan, rank, bank, row, col)
        # bank-locality layouts: col, row_low, bank, [chan, rank or rank, chan], row_high
        col = line & (org.columns - 1)
        line >>= self._col_bits
        row_lo = line & ((1 << self._row_low) - 1)
        line >>= self._row_low
        bank = line & (org.banks - 1)
        line >>= self._bank_bits
        chan = line & (org.channels - 1)
        line >>= self._chan_bits
        if self.scheme is AddressMapScheme.BANK_LOCALITY:
            rank = line & (org.ranks - 1)
            line >>= self._rank_bits
            row_hi = line & ((1 << self._row_high) - 1)
        else:  # RANK_PARTITIONED: rank on top
            row_hi = line & ((1 << self._row_high) - 1)
            line >>= self._row_high
            rank = line & (org.ranks - 1)
        return Coord(chan, rank, bank, (row_hi << self._row_low) | row_lo, col)

    def decode_array(
        self, lines: "np.ndarray"
    ) -> tuple["np.ndarray", "np.ndarray", "np.ndarray", "np.ndarray", "np.ndarray"]:
        """Vectorized :meth:`decode`: ``(channel, rank, bank, row, col)`` arrays.

        Element-for-element identical to calling :meth:`decode` on each
        line (the property tests assert it); used by the CPU cores to
        pre-decode a whole trace once instead of shift/masking per request
        in the simulation hot loop.
        """
        a = np.asarray(lines, dtype=np.int64) & ((1 << self.total_bits) - 1)
        org = self.org
        if self.scheme is AddressMapScheme.ROW_RANK_BANK_COL:
            col = a & (org.columns - 1)
            a = a >> self._col_bits
            bank = a & (org.banks - 1)
            a = a >> self._bank_bits
            rank = a & (org.ranks - 1)
            a = a >> self._rank_bits
            chan = a & (org.channels - 1)
            a = a >> self._chan_bits
            row = a & (org.rows - 1)
            return chan, rank, bank, row, col
        col = a & (org.columns - 1)
        a = a >> self._col_bits
        row_lo = a & ((1 << self._row_low) - 1)
        a = a >> self._row_low
        bank = a & (org.banks - 1)
        a = a >> self._bank_bits
        chan = a & (org.channels - 1)
        a = a >> self._chan_bits
        if self.scheme is AddressMapScheme.BANK_LOCALITY:
            rank = a & (org.ranks - 1)
            a = a >> self._rank_bits
            row_hi = a & ((1 << self._row_high) - 1)
        else:  # RANK_PARTITIONED: rank on top
            row_hi = a & ((1 << self._row_high) - 1)
            a = a >> self._row_high
            rank = a & (org.ranks - 1)
        return chan, rank, bank, (row_hi << self._row_low) | row_lo, col

    def decode_coords(self, lines: "np.ndarray") -> list[Coord]:
        """Pre-decode many lines into a list of :class:`Coord` objects.

        The whole-trace form of :meth:`decode`; the returned list is
        indexed by trace position in the core's replay loop.
        """
        chan, rank, bank, row, col = self.decode_array(lines)
        return list(
            map(
                Coord,
                chan.tolist(),
                rank.tolist(),
                bank.tolist(),
                row.tolist(),
                col.tolist(),
            )
        )

    # -- encoding -----------------------------------------------------------------

    def encode(self, coord: Coord) -> int:
        """Inverse of :meth:`decode`."""
        chan, rank, bank, row, col = coord
        org = self.org
        if not (
            0 <= chan < org.channels
            and 0 <= rank < org.ranks
            and 0 <= bank < org.banks
            and 0 <= row < org.rows
            and 0 <= col < org.columns
        ):
            raise ValueError(f"coordinate out of range: {coord}")
        if self.scheme is AddressMapScheme.ROW_RANK_BANK_COL:
            line = row
            line = (line << self._chan_bits) | chan
            line = (line << self._rank_bits) | rank
            line = (line << self._bank_bits) | bank
            line = (line << self._col_bits) | col
            return line
        row_lo = row & ((1 << self._row_low) - 1)
        row_hi = row >> self._row_low
        if self.scheme is AddressMapScheme.BANK_LOCALITY:
            line = row_hi
            line = (line << self._rank_bits) | rank
        else:  # RANK_PARTITIONED
            line = rank
            line = (line << self._row_high) | row_hi
        line = (line << self._chan_bits) | chan
        line = (line << self._bank_bits) | bank
        line = (line << self._row_low) | row_lo
        line = (line << self._col_bits) | col
        return line

    # -- helpers ------------------------------------------------------------------

    def rank_of(self, line: int) -> tuple[int, int]:
        """(channel, rank) of a line — the granularity refresh locks at."""
        c = self.decode(line)
        return (c.channel, c.rank)

    def partition_base(self, rank: int, channel: int = 0) -> int:
        """First line index of ``rank``'s slice under rank partitioning.

        Useful for generating per-application address streams that respect
        the paper's rank-partitioned multi-program setup.
        """
        if self.scheme is not AddressMapScheme.RANK_PARTITIONED:
            raise ValueError("partition_base is only defined for RANK_PARTITIONED")
        return self.encode(Coord(channel, rank, 0, 0, 0))

    @property
    def bank_dwell_lines(self) -> int:
        """Consecutive lines mapping to one bank before it switches."""
        if self.scheme is AddressMapScheme.ROW_RANK_BANK_COL:
            return self.org.columns
        return self.org.columns << self._row_low
