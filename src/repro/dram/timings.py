"""DDR4 timing parameters, expressed in memory-controller clock cycles.

The memory controller clock runs at half the data rate (DDR): a DDR4-1600
part transfers 1600 MT/s and is driven by an 800 MHz clock, i.e.
``tCK = 1.25 ns``. All constraint fields below are integer cycle counts of
that clock. Values follow JEDEC DDR4 (JESD79-4) speed-bin tables for an
8 Gb x8 device, matching Table III of the paper (``tREFI = 7.8 us``,
``tRFC = 350 ns`` in 1x refresh mode).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = ["DENSITY_TRFC_NS", "DramTimings", "DDR4_1600", "DDR4_2400"]

#: JEDEC DDR4 ``tRFC1`` per device density (ns). 4–16 Gb are the JESD79-4
#: table values; 32 Gb extrapolates the trend the paper's Fig. 1 projects.
DENSITY_TRFC_NS: dict[int, float] = {4: 260.0, 8: 350.0, 16: 550.0, 32: 780.0}


def _ns_to_cycles(ns: float, tck_ns: float) -> int:
    """Convert a nanosecond constraint to (ceiling) clock cycles."""
    return math.ceil(round(ns / tck_ns, 9))


@dataclass(frozen=True)
class DramTimings:
    """A bundle of DDR timing constraints in controller clock cycles.

    Attributes
    ----------
    tck_ns:
        Clock period of the memory controller clock in nanoseconds.
    cl:
        CAS latency — ACT-to-data delay component after the column read.
    rcd:
        ACT-to-READ/WRITE delay (row to column delay).
    rp:
        PRE-to-ACT delay (row precharge).
    ras:
        Minimum ACT-to-PRE interval.
    rc:
        Minimum ACT-to-ACT interval in the same bank (``ras + rp``).
    burst:
        Data-bus occupancy of one cache-line burst (BL8 → 4 clock cycles).
    ccd:
        Minimum column-command spacing on a rank.
    rrd:
        Minimum ACT-to-ACT spacing across banks of a rank.
    faw:
        Rolling window in which at most four ACTs may be issued per rank.
    wr:
        Write recovery time (end of write burst to PRE).
    wtr:
        Write-to-read turnaround on a rank.
    rtp:
        Read-to-precharge delay.
    cwl:
        CAS write latency.
    refi:
        Average periodic refresh interval (one REF per ``refi`` cycles).
    rfc:
        Refresh cycle time — rank locked for this long per REF command.
    """

    tck_ns: float
    cl: int
    rcd: int
    rp: int
    ras: int
    burst: int
    ccd: int
    rrd: int
    faw: int
    wr: int
    wtr: int
    rtp: int
    cwl: int
    refi: int
    rfc: int

    @property
    def rc(self) -> int:
        """Minimum same-bank ACT-to-ACT interval."""
        return self.ras + self.rp

    @property
    def read_hit_latency(self) -> int:
        """Cycles from issue to last data beat for a row-buffer hit read."""
        return self.cl + self.burst

    @property
    def read_closed_latency(self) -> int:
        """Read latency when the bank is precharged (row closed)."""
        return self.rcd + self.cl + self.burst

    @property
    def read_conflict_latency(self) -> int:
        """Read latency on a row-buffer conflict (precharge + activate)."""
        return self.rp + self.rcd + self.cl + self.burst

    @property
    def write_hit_latency(self) -> int:
        """Cycles from issue to last data beat for a row-buffer hit write."""
        return self.cwl + self.burst

    @property
    def refresh_duty_cycle(self) -> float:
        """Fraction of time a rank is locked by refresh (tRFC / tREFI)."""
        return self.rfc / self.refi

    def cycles(self, ns: float) -> int:
        """Convert nanoseconds to cycles of this clock (ceiling)."""
        return _ns_to_cycles(ns, self.tck_ns)

    def ns(self, cycles: int | float) -> float:
        """Convert a cycle count of this clock to nanoseconds."""
        return cycles * self.tck_ns

    def with_refresh(self, *, refi: int | None = None, rfc: int | None = None) -> "DramTimings":
        """Return a copy with overridden refresh parameters."""
        kwargs = {}
        if refi is not None:
            kwargs["refi"] = refi
        if rfc is not None:
            kwargs["rfc"] = rfc
        return replace(self, **kwargs)

    def for_density(self, gbit: int) -> "DramTimings":
        """Return timings for a device density (``tRFC`` grows with Gb).

        ``tREFI`` is density-independent in DDR4; only the refresh cycle
        time stretches — the scaling trend that motivates the paper.
        """
        if gbit not in DENSITY_TRFC_NS:
            raise ValueError(
                f"unknown density {gbit} Gb; choose from {sorted(DENSITY_TRFC_NS)}"
            )
        return replace(self, rfc=self.cycles(DENSITY_TRFC_NS[gbit]))

    def fine_grained(self, mode: int) -> "DramTimings":
        """Return timings for a JEDEC fine-grained-refresh (FGR) mode.

        ``mode`` is 1, 2 or 4. FGR divides ``tREFI`` by the mode while
        ``tRFC`` shrinks sub-linearly (JEDEC 8 Gb: 350 / 260 / 160 ns for
        1x / 2x / 4x), which is exactly the trade-off studied by
        Mukundan et al. [7] and referenced in the paper's related work.
        """
        if mode == 1:
            return self
        if mode not in (2, 4):
            raise ValueError(f"FGR mode must be 1, 2 or 4, got {mode}")
        rfc_ns = {2: 260.0, 4: 160.0}[mode]
        return replace(
            self,
            refi=max(1, self.refi // mode),
            rfc=self.cycles(rfc_ns),
        )


def _make_ddr4(data_rate: int, cl_ns: float = 13.75) -> DramTimings:
    """Construct DDR4 timings for a given data rate (MT/s)."""
    tck = 2000.0 / data_rate  # controller clock period in ns
    def c(ns: float) -> int:
        return _ns_to_cycles(ns, tck)

    return DramTimings(
        tck_ns=tck,
        cl=c(cl_ns),
        rcd=c(13.75),
        rp=c(13.75),
        ras=c(35.0),
        burst=4,  # BL8 at double data rate
        ccd=4,
        rrd=c(6.0),
        faw=c(30.0),
        wr=c(15.0),
        wtr=c(7.5),
        rtp=c(7.5),
        cwl=max(1, c(cl_ns) - 2),
        refi=c(7800.0),
        rfc=c(350.0),  # 8 Gb device, 1x refresh mode
    )


#: DDR4-1600 (800 MHz controller clock) — the paper's configuration.
DDR4_1600: DramTimings = _make_ddr4(1600)

#: DDR4-2400, provided for sensitivity studies.
DDR4_2400: DramTimings = _make_ddr4(2400)
