"""DDR4 memory-system substrate (the reproduction's DRAMSim2 stand-in)."""

from .address_mapping import AddressMapper
from .bank import AccessPlan, Bank
from .controller import MemoryController
from .memory_system import MemorySystem
from .rank import Rank
from .refresh import RefreshManager
from .request import Coord, ReqKind, Request, ServiceKind
from .timings import DDR4_1600, DDR4_2400, DramTimings

__all__ = [
    "AddressMapper",
    "AccessPlan",
    "Bank",
    "MemoryController",
    "MemorySystem",
    "Rank",
    "RefreshManager",
    "Coord",
    "ReqKind",
    "Request",
    "ServiceKind",
    "DDR4_1600",
    "DDR4_2400",
    "DramTimings",
]
