"""Refresh scheduling policies.

The controller drives refresh through a :class:`RefreshManager`: the
manager owns the per-rank schedule (the ``tREFI`` grid, staggered across
ranks) and delegates every per-tick decision to a pluggable
:class:`RefreshPolicy` looked up in :data:`REFRESH_POLICIES` by
``RefreshMode``. Policies:

* ``AUTO_1X`` / ``FGR_2X`` / ``FGR_4X`` — one REF per tick, period and
  ``tRFC`` taken from the (possibly fine-grained) timing set.
* ``PER_BANK`` — one bank refreshed per tick, round-robin; only that bank
  freezes (the paper's future-work direction).
* ``ELASTIC`` — Elastic-Refresh-style postponement: a tick with pending
  demand to the rank defers the REF (up to ``postpone_max`` owed), and owed
  refreshes are repaid in a burst at the first idle tick.
* ``DARP`` — Chang et al.'s dynamic access-refresh parallelization:
  per-bank refreshes are scheduled out of order into banks with no pending
  demand, postponed per bank up to ``postpone_max``, and piggybacked onto
  write-drain windows (banks with no pending reads repay debt while the
  channel streams writes).
* ``SARP`` — subarray-level parallelism: a per-bank REF locks only one
  subarray, so accesses to the bank's other subarrays proceed. Needs the
  subarray axis on :class:`~repro.dram.bank.Bank` / address decode.
* ``RAIDR`` — Liu et al.'s retention-aware refresh: rows are binned into
  64 / 128 / 256 ms retention classes and the tREFI grid is decimated so
  the 128 ms bin refreshes every other window and the 256 ms bin every
  fourth.
* ``NONE`` — never refresh (the idealized upper bound).
* ``PAUSING`` — interruptible refresh; its segmentation lives in the
  controller (:meth:`~repro.dram.controller.MemoryController._paused_refresh`)
  because pausing interacts with the demand queues, not the schedule.

A policy that the array-native epoch kernels cannot reproduce
bit-identically declares ``kernel_decline`` — a structured reason string
the kernels surface through the engine-fallback ladder instead of silently
diverging.
"""

from __future__ import annotations

from ..config import MemoryOrganization, RefreshConfig, RefreshMode
from ..telemetry import NULL_SINK, Category, Kind
from .timings import DramTimings

__all__ = [
    "REFRESH_POLICIES",
    "RefreshManager",
    "RefreshPolicy",
    "register_policy",
]


#: ``RefreshMode`` → policy class. Populated by :func:`register_policy`.
REFRESH_POLICIES: dict[RefreshMode, type["RefreshPolicy"]] = {}


def register_policy(*modes: RefreshMode):
    """Class decorator registering a policy for one or more modes."""

    def deco(cls: type["RefreshPolicy"]) -> type["RefreshPolicy"]:
        for mode in modes:
            REFRESH_POLICIES[mode] = cls
        cls.modes = modes
        return cls

    return deco


class RefreshPolicy:
    """Per-tick refresh decisions for one ``RefreshMode``.

    A policy owns all mode-specific state (postponement debt, round-robin
    pointers, bin counters) keyed by ``(channel, rank)``; the manager owns
    the grid itself (``period`` / ``first_tick``). The default
    implementations encode the simplest member of the family: one all-bank
    REF per grid tick, never postponed.

    Class attributes
    ----------------
    kernel_decline:
        ``None`` when the epoch kernels reproduce this policy
        bit-identically; otherwise a structured reason string the kernels
        report while falling back to the scalar engine.
    wants_bank_pending:
        True when :meth:`decide` consults per-bank pending-demand sets
        (the controller only computes them when asked).
    """

    #: modes this class is registered for (filled by :func:`register_policy`)
    modes: tuple[RefreshMode, ...] = ()
    kernel_decline: str | None = None
    wants_bank_pending: bool = False

    def __init__(self, mgr: "RefreshManager") -> None:
        self.mgr = mgr
        self.cfg = mgr.cfg
        self.org = mgr.org
        self.mode = mgr.cfg.mode

    def decide(
        self,
        key: tuple[int, int],
        now: int,
        pending_demand: int,
        pending_banks: set[int] | None = None,
    ) -> int:
        """Number of REF commands to issue at this grid tick (0 = skip)."""
        return 1

    def banks_for(self, key: tuple[int, int]) -> list[int] | None:
        """Banks frozen by the next REF (None = all-bank refresh)."""
        return None

    def subarray_for(self, key: tuple[int, int], bank: int) -> int:
        """Subarray refreshed by the next REF to ``bank`` (SARP only)."""
        return 0

    def owed(self, key: tuple[int, int]) -> int:
        """Outstanding postponed refreshes for a rank."""
        return 0

    def piggyback_banks(
        self, key: tuple[int, int], pending_read_banks: set[int]
    ) -> list[int]:
        """Banks to opportunistically refresh at a write-drain start."""
        return []


@register_policy(RefreshMode.AUTO_1X)
class AutoRefresh(RefreshPolicy):
    """JEDEC auto-refresh: one all-bank REF per ``tREFI``."""


@register_policy(RefreshMode.NONE)
class NoRefresh(RefreshPolicy):
    """Refresh disabled (idealized upper bound); never scheduled."""


@register_policy(RefreshMode.FGR_2X, RefreshMode.FGR_4X)
class FgrRefresh(RefreshPolicy):
    """Fine-granularity refresh: the FGR timing set does all the work."""


@register_policy(RefreshMode.PAUSING)
class PausingRefresh(RefreshPolicy):
    """Refresh Pausing; segmentation lives in the controller."""


@register_policy(RefreshMode.PER_BANK)
class PerBankRefresh(RefreshPolicy):
    """Round-robin per-bank refresh on the REFpb grid."""

    def __init__(self, mgr: "RefreshManager") -> None:
        super().__init__(mgr)
        self._next_bank = {k: 0 for k in mgr.rank_keys()}

    def banks_for(self, key: tuple[int, int]) -> list[int] | None:
        bank = self._next_bank[key]
        self._next_bank[key] = (bank + 1) % self.org.banks
        return [bank]


@register_policy(RefreshMode.ELASTIC)
class ElasticRefresh(RefreshPolicy):
    """Elastic Refresh postponement; owns the per-rank owed counters."""

    def __init__(self, mgr: "RefreshManager") -> None:
        super().__init__(mgr)
        self._owed = {k: 0 for k in mgr.rank_keys()}

    def decide(
        self,
        key: tuple[int, int],
        now: int,
        pending_demand: int,
        pending_banks: set[int] | None = None,
    ) -> int:
        owed = self._owed[key] + 1  # this tick's refresh joins the debt
        if pending_demand > 0 and owed < self.cfg.postpone_max:
            self._owed[key] = owed
            mgr = self.mgr
            if mgr._t_ref:
                mgr.sink.emit(
                    Category.REFRESH, Kind.REFRESH_POSTPONED, now, key[0], key[1], a=owed
                )
            return 0
        self._owed[key] = 0
        return owed

    def owed(self, key: tuple[int, int]) -> int:
        return self._owed[key]


@register_policy(RefreshMode.DARP)
class DarpRefresh(RefreshPolicy):
    """Dynamic access-refresh parallelization (Chang et al., HPCA'14).

    Runs on the per-bank REFpb grid. Each tick the round-robin due bank
    accrues one owed refresh; the policy then issues one REF to the
    *most-owed idle* bank (no pending demand, ties to the lowest bank id),
    postponing when every indebted bank is busy. A bank whose debt exceeds
    ``postpone_max`` is force-refreshed for its whole debt — the JEDEC
    postponement allowance. With ``postpone_max == 0`` the schedule
    degenerates to exactly in-order per-bank round-robin.

    Write-drain piggybacking (the paper's WRP half): when the controller
    flips into write-drain mode, banks with debt and no pending reads repay
    one refresh each under cover of the write burst.
    """

    kernel_decline = "refresh-policy darp: out-of-order per-bank schedule needs live queue state"
    wants_bank_pending = True

    def __init__(self, mgr: "RefreshManager") -> None:
        super().__init__(mgr)
        banks = self.org.banks
        self._owed = {k: [0] * banks for k in mgr.rank_keys()}
        self._rr = {k: 0 for k in mgr.rank_keys()}
        self._queue: dict[tuple[int, int], list[int]] = {k: [] for k in mgr.rank_keys()}

    def decide(
        self,
        key: tuple[int, int],
        now: int,
        pending_demand: int,
        pending_banks: set[int] | None = None,
    ) -> int:
        owed = self._owed[key]
        due = self._rr[key]
        self._rr[key] = (due + 1) % len(owed)
        owed[due] += 1
        queue = self._queue[key]
        budget = self.cfg.postpone_max
        for bank, debt in enumerate(owed):
            if debt > budget:
                queue.extend([bank] * debt)  # forced: repay the whole debt
                owed[bank] = 0
        if not queue:
            best, best_debt = -1, 0
            for bank, debt in enumerate(owed):
                if debt > best_debt and (pending_banks is None or bank not in pending_banks):
                    best, best_debt = bank, debt
            if best >= 0:
                owed[best] -= 1
                queue.append(best)
        if not queue:
            mgr = self.mgr
            if mgr._t_ref:
                mgr.sink.emit(
                    Category.REFRESH,
                    Kind.REFRESH_POSTPONED,
                    now,
                    key[0],
                    key[1],
                    a=sum(owed),
                )
        return len(queue)

    def banks_for(self, key: tuple[int, int]) -> list[int] | None:
        return [self._queue[key].pop(0)]

    def owed(self, key: tuple[int, int]) -> int:
        return sum(self._owed[key])

    def piggyback_banks(
        self, key: tuple[int, int], pending_read_banks: set[int]
    ) -> list[int]:
        owed = self._owed[key]
        repaid = []
        for bank, debt in enumerate(owed):
            if debt > 0 and bank not in pending_read_banks:
                owed[bank] = debt - 1
                repaid.append(bank)
        return repaid


@register_policy(RefreshMode.SARP)
class SarpRefresh(RefreshPolicy):
    """Subarray-aware refresh (the SARP half of Chang et al., HPCA'14).

    Per-bank REFpb grid, round-robin banks; within each bank the refreshed
    subarray rotates, and only that ``(bank, subarray)`` pair locks — the
    controller keeps serving the bank's other subarrays. With one subarray
    per bank this degenerates to exactly ``PER_BANK``.
    """

    kernel_decline = "refresh-policy sarp: subarray locks need per-bank row state"

    def __init__(self, mgr: "RefreshManager") -> None:
        super().__init__(mgr)
        self._next_bank = {k: 0 for k in mgr.rank_keys()}
        self._next_sub = {k: [0] * self.org.banks for k in mgr.rank_keys()}

    def banks_for(self, key: tuple[int, int]) -> list[int] | None:
        bank = self._next_bank[key]
        self._next_bank[key] = (bank + 1) % self.org.banks
        return [bank]

    def subarray_for(self, key: tuple[int, int], bank: int) -> int:
        subs = self._next_sub[key]
        sub = subs[bank]
        subs[bank] = (sub + 1) % max(1, self.cfg.subarrays_per_bank)
        return sub


@register_policy(RefreshMode.RAIDR)
class RaidrRefresh(RefreshPolicy):
    """Retention-aware refresh-rate binning (Liu et al., ISCA'12).

    Rows are partitioned into 64 / 128 / 256 ms retention bins with the
    fractions in ``raidr_bins``. The tREFI grid is carved into windows of
    ``raidr_window_ticks`` slots: the 64 ms slice fires every window, the
    128 ms slice every other window (phase-alternating) and the 256 ms
    slice every fourth. The decision is closed-form in the tick index, so
    both engines replay it bit-identically — and so can the golden model.
    With all rows in the 64 ms bin the schedule is exactly ``AUTO_1X``.
    """

    def __init__(self, mgr: "RefreshManager") -> None:
        super().__init__(mgr)
        self._tick = {k: 0 for k in mgr.rank_keys()}
        window = max(1, self.cfg.raidr_window_ticks)
        f64, f128, _f256 = self.cfg.raidr_bins
        n64 = min(window, round(f64 * window))
        n128 = min(window - n64, round(f128 * window))
        self.window = window
        self.n64 = n64
        self.n128 = n128

    def fires(self, tick_index: int) -> bool:
        """Whether grid tick ``tick_index`` (0-based) issues a REF."""
        slot = tick_index % self.window
        window_no = tick_index // self.window
        if slot < self.n64:
            return True
        if slot < self.n64 + self.n128:
            return (slot - self.n64) % 2 == window_no % 2
        return (slot - self.n64 - self.n128) % 4 == window_no % 4

    def decide(
        self,
        key: tuple[int, int],
        now: int,
        pending_demand: int,
        pending_banks: set[int] | None = None,
    ) -> int:
        i = self._tick[key]
        self._tick[key] = i + 1
        return 1 if self.fires(i) else 0


class RefreshManager:
    """Per-rank refresh schedule, delegating decisions to a policy.

    The public surface (``enabled`` / ``period`` / ``first_tick`` /
    ``grid_ticks`` / ``decide`` / ``banks_for`` / ``owed``) is exactly what
    the controller, the epoch kernels and the ROP engine consumed before
    the policy split, so all pre-existing modes stay bit-identical.
    """

    def __init__(
        self,
        cfg: RefreshConfig,
        timings: DramTimings,
        org: MemoryOrganization,
        sink=None,
    ) -> None:
        self.cfg = cfg
        self.timings = timings
        self.org = org
        self.sink = sink if sink is not None else NULL_SINK
        self._t_ref = self.sink.wants(Category.REFRESH)
        self.period = timings.refi
        try:
            policy_cls = REFRESH_POLICIES[cfg.mode]
        except KeyError:
            raise ValueError(f"no RefreshPolicy registered for {cfg.mode!r}") from None
        self.policy = policy_cls(self)
        #: reason the epoch kernels must decline this policy (None = supported)
        self.kernel_decline = self.policy.kernel_decline
        #: whether ``decide`` wants the per-bank pending-demand set
        self.wants_bank_pending = self.policy.wants_bank_pending

    def rank_keys(self) -> list[tuple[int, int]]:
        """All ``(channel, rank)`` keys of this organization."""
        return [
            (ch, rk) for ch in range(self.org.channels) for rk in range(self.org.ranks)
        ]

    @property
    def enabled(self) -> bool:
        """Whether REF commands are issued at all."""
        return self.cfg.enabled

    def first_tick(self, channel: int, rank: int) -> int:
        """Cycle of the first refresh tick for a rank.

        With ``stagger`` enabled, ranks are offset by ``tREFI / ranks`` so
        their locks never coincide — the arrangement ROP's shared SRAM
        buffer ("ranks take turns") requires.
        """
        offset = 0
        if self.cfg.stagger and self.org.ranks > 1:
            offset = (rank * self.period) // self.org.ranks
        return self.period + offset

    def grid_ticks(self, channel: int, rank: int, until: int) -> int:
        """Closed-form count of tREFI grid ticks in ``[0, until]``.

        The golden refresh model compares the simulator's executed-refresh
        count against this analytical grid (with slack for postponement).
        """
        first = self.first_tick(channel, rank)
        if until < first:
            return 0
        return (until - first) // self.period + 1

    def decide(
        self,
        channel: int,
        rank: int,
        now: int,
        pending_demand: int,
        pending_banks: set[int] | None = None,
    ) -> int:
        """Number of REF commands to issue at this tick (0 = postpone/skip).

        ``pending_demand`` is the number of queued demand requests
        targeting the rank; ``pending_banks`` (only computed when
        ``wants_bank_pending``) is the set of banks with queued demand.
        """
        return self.policy.decide((channel, rank), now, pending_demand, pending_banks)

    def banks_for(self, channel: int, rank: int) -> list[int] | None:
        """Banks frozen by the next REF (None = all-bank refresh)."""
        return self.policy.banks_for((channel, rank))

    def subarray_for(self, channel: int, rank: int, bank: int) -> int:
        """Subarray refreshed by the next REF to ``bank`` (SARP)."""
        return self.policy.subarray_for((channel, rank), bank)

    def owed(self, channel: int, rank: int) -> int:
        """Outstanding postponed refreshes for a rank."""
        return self.policy.owed((channel, rank))

    def piggyback_banks(
        self, channel: int, rank: int, pending_read_banks: set[int]
    ) -> list[int]:
        """Banks to opportunistically refresh at a write-drain start (DARP)."""
        return self.policy.piggyback_banks((channel, rank), pending_read_banks)
