"""Refresh scheduling policies.

The controller drives refresh through a :class:`RefreshManager`: the
manager owns the per-rank schedule (the ``tREFI`` grid, staggered across
ranks) and decides, at each grid tick, how many REF commands to issue.
Policies:

* ``AUTO_1X`` / ``FGR_2X`` / ``FGR_4X`` — one REF per tick, period and
  ``tRFC`` taken from the (possibly fine-grained) timing set.
* ``PER_BANK`` — one bank refreshed per tick, round-robin; only that bank
  freezes (the paper's future-work direction).
* ``ELASTIC`` — Elastic-Refresh-style postponement: a tick with pending
  demand to the rank defers the REF (up to ``postpone_max`` owed), and owed
  refreshes are repaid in a burst at the first idle tick.
* ``NONE`` — never refresh (the idealized upper bound).
* ``PAUSING`` — interruptible refresh; its segmentation lives in the
  controller (:meth:`~repro.dram.controller.MemoryController._paused_refresh`)
  because pausing interacts with the demand queues, not the schedule.
"""

from __future__ import annotations

from ..config import MemoryOrganization, RefreshConfig, RefreshMode
from ..telemetry import NULL_SINK, Category, Kind
from .timings import DramTimings

__all__ = ["RefreshManager"]


class RefreshManager:
    """Per-rank refresh schedule and postponement bookkeeping."""

    def __init__(
        self,
        cfg: RefreshConfig,
        timings: DramTimings,
        org: MemoryOrganization,
        sink=None,
    ) -> None:
        self.cfg = cfg
        self.timings = timings
        self.org = org
        self.sink = sink if sink is not None else NULL_SINK
        self._t_ref = self.sink.wants(Category.REFRESH)
        self.period = timings.refi
        self._owed: dict[tuple[int, int], int] = {}
        self._next_bank: dict[tuple[int, int], int] = {}
        for ch in range(org.channels):
            for rk in range(org.ranks):
                self._owed[(ch, rk)] = 0
                self._next_bank[(ch, rk)] = 0

    @property
    def enabled(self) -> bool:
        """Whether REF commands are issued at all."""
        return self.cfg.enabled

    def first_tick(self, channel: int, rank: int) -> int:
        """Cycle of the first refresh tick for a rank.

        With ``stagger`` enabled, ranks are offset by ``tREFI / ranks`` so
        their locks never coincide — the arrangement ROP's shared SRAM
        buffer ("ranks take turns") requires.
        """
        offset = 0
        if self.cfg.stagger and self.org.ranks > 1:
            offset = (rank * self.period) // self.org.ranks
        return self.period + offset

    def grid_ticks(self, channel: int, rank: int, until: int) -> int:
        """Closed-form count of tREFI grid ticks in ``[0, until]``.

        The golden refresh model compares the simulator's executed-refresh
        count against this analytical grid (with slack for postponement).
        """
        first = self.first_tick(channel, rank)
        if until < first:
            return 0
        return (until - first) // self.period + 1

    def decide(self, channel: int, rank: int, now: int, pending_demand: int) -> int:
        """Number of REF commands to issue at this tick (0 = postpone).

        ``pending_demand`` is the number of queued demand requests
        targeting the rank; only the ELASTIC policy consults it.
        """
        key = (channel, rank)
        if self.cfg.mode is not RefreshMode.ELASTIC:
            return 1
        owed = self._owed[key] + 1  # this tick's refresh joins the debt
        if pending_demand > 0 and owed < self.cfg.postpone_max:
            self._owed[key] = owed
            if self._t_ref:
                self.sink.emit(
                    Category.REFRESH, Kind.REFRESH_POSTPONED, now, channel, rank, a=owed
                )
            return 0
        self._owed[key] = 0
        return owed

    def banks_for(self, channel: int, rank: int) -> list[int] | None:
        """Banks frozen by the next REF (None = all-bank refresh)."""
        if self.cfg.mode is not RefreshMode.PER_BANK:
            return None
        key = (channel, rank)
        bank = self._next_bank[key]
        self._next_bank[key] = (bank + 1) % self.org.banks
        return [bank]

    def owed(self, channel: int, rank: int) -> int:
        """Outstanding postponed refreshes for a rank (ELASTIC only)."""
        return self._owed[(channel, rank)]
