"""Event-driven DDR4 memory controller.

The controller owns per-channel read/write queues, an FR-FCFS scheduler
with batched write draining, the refresh schedule, and — when ROP is
enabled — the hooks that let the prefetch engine observe traffic, fill the
SRAM buffer right before each refresh, and service reads while a rank is
frozen.

ROP hook protocol (duck-typed; implemented by
:class:`repro.core.rop_engine.RopEngine`):

=======================================  =====================================
hook                                     called when
=======================================  =====================================
``on_request(req, cycle)``               every demand request is submitted
``invalidate_line(line, cycle)``         a demand write is submitted
``sram_lookup(line) -> bool``            scheduler probes the SRAM buffer
``on_sram_hit(req, cycle, in_lock)``     a read is serviced from the buffer
``on_read_arrival_in_lock(ch, rk, cy)``  a read arrives at a frozen rank
``plan_prefetch(ch, rk, cycle)``         a refresh is about to start; returns
                                         the list of line addresses to fetch
``on_prefetch_fill(ch, rk, lines, cy)``  prefetched lines land in the buffer
``on_refresh_executed(ch, rk, s, e)``    a refresh lock window [s, e) begins
=======================================  =====================================
"""

from __future__ import annotations

from typing import Callable

from ..config import RefreshMode, SystemConfig
from ..events import EventQueue
from ..stats.collectors import ControllerStats
from ..telemetry import NULL_SINK, Category, Kind
from .address_mapping import AddressMapper
from .bank import AccessPlan
from .rank import Rank
from .refresh import RefreshManager
from .request import Coord, ReqKind, Request, ServiceKind

__all__ = ["MemoryController"]

#: bound on demand requests drained ahead of one refresh (keeps the
#: refresh-delay within the JEDEC postponement allowance)
_DRAIN_CAP = 16


class _Channel:
    """Per-channel hardware state: ranks plus the shared data bus."""

    __slots__ = ("ranks", "bus_free_at", "busy_cycles")

    def __init__(self, ranks: int, banks: int) -> None:
        self.ranks = [Rank(banks) for _ in range(ranks)]
        self.bus_free_at = 0
        #: cumulative data-bus occupancy (burst cycles), for pressure stats
        self.busy_cycles = 0


class MemoryController:
    """Transaction-level DDR4 controller with optional ROP support."""

    def __init__(
        self,
        config: SystemConfig,
        events: EventQueue,
        rop=None,
        sink=None,
    ) -> None:
        self.cfg = config
        self.t = config.effective_timings()
        self.events = events
        self.rop = rop
        self.sink = sink if sink is not None else NULL_SINK
        # per-category capture flags, cached so the disabled hot path pays
        # one local boolean test per potential event
        self._t_req = self.sink.wants(Category.REQUEST)
        self._t_svc = self.sink.wants(Category.SERVICE)
        self._t_ref = self.sink.wants(Category.REFRESH)
        org = config.organization
        self.mapper = AddressMapper(org, config.address_map)
        self.refresh_mgr = RefreshManager(config.refresh, self.t, org, sink=self.sink)
        self.channels = [_Channel(org.ranks, org.banks) for _ in range(org.channels)]
        mode = config.refresh.mode
        self._darp = mode is RefreshMode.DARP
        self._sarp = mode is RefreshMode.SARP
        self._subarrays = max(1, config.refresh.subarrays_per_bank)
        self._sub_rows = 0
        if self._sarp:
            self._sub_rows = max(1, org.rows // self._subarrays)
            for ch in self.channels:
                for rank in ch.ranks:
                    rank.sub_rows = self._sub_rows
        self.read_q: list[list[Request]] = [[] for _ in range(org.channels)]
        self.write_q: list[list[Request]] = [[] for _ in range(org.channels)]
        self._drain = [False] * org.channels
        self._retry_at = [-1] * org.channels
        self.stats = ControllerStats()
        self._rid = 0
        #: validation tap: ``issue_tap(coord, plan, is_write)`` observes
        #: every committed DRAM access plan (demand and prefetch) so an
        #: external timing oracle (:mod:`repro.validation`) can replay the
        #: DDR legality rules; None = off
        self.issue_tap = None
        if self.refresh_mgr.enabled:
            for ch in range(org.channels):
                for rk in range(org.ranks):
                    self.events.push(
                        self.refresh_mgr.first_tick(ch, rk),
                        self._make_refresh_tick(ch, rk),
                        housekeeping=True,
                    )

    # ------------------------------------------------------------------ submit

    def submit(
        self,
        kind: ReqKind,
        line: int,
        cycle: int,
        core_id: int = 0,
        on_complete: Callable[[int], None] | None = None,
        coord: Coord | None = None,
    ) -> Request:
        """Enqueue one demand request at ``cycle`` and return it.

        ``coord`` lets a caller that pre-decoded the line (the CPU cores
        vector-decode whole traces up front) skip the per-request
        shift/mask chain; it must equal ``self.mapper.decode(line)``.
        """
        if coord is None:
            coord = self.mapper.decode(line)
        req = Request(self._rid, kind, line, coord, cycle, core_id, on_complete)
        self._rid += 1
        ch = self.channels[coord.channel]
        rank = ch.ranks[coord.rank]
        if kind is ReqKind.READ:
            self.stats.reads += 1
            self.read_q[coord.channel].append(req)
            if rank.lock_start <= cycle < rank.locked_until:
                self.stats.reads_arriving_in_lock += 1
                if self.rop is not None:
                    self.rop.on_read_arrival_in_lock(coord.channel, coord.rank, cycle)
        else:
            self.stats.writes += 1
            self.write_q[coord.channel].append(req)
            if self.rop is not None:
                self.rop.invalidate_line(line, cycle)
        if self._t_req:
            self.sink.emit(
                Category.REQUEST,
                Kind.READ_ARRIVAL if kind is ReqKind.READ else Kind.WRITE_ARRIVAL,
                cycle,
                coord.channel,
                coord.rank,
                a=line,
            )
        if self.rop is not None:
            self.rop.on_request(req, cycle)
        self._try_issue(coord.channel, cycle)
        return req

    # ------------------------------------------------------------------ scheduling

    def _try_issue(self, ci: int, cycle: int) -> None:
        """Issue every request that can start now; schedule a retry otherwise.

        The hottest loop in the simulator: bound methods and attributes
        are localized once per call, and the SRAM sweep is skipped while
        the prefetch buffer is empty (every lookup would miss).
        """
        ch = self.channels[ci]
        rq, wq = self.read_q[ci], self.write_q[ci]
        sched = self.cfg.scheduler
        drain_high, drain_low = sched.write_drain_high, sched.write_drain_low
        drain = self._drain
        rop = self.rop
        select, issue = self._select, self._issue
        progress = True
        while progress:
            progress = False
            # SRAM service sweep: any queued read present in the prefetch
            # buffer completes from SRAM, frozen rank or not.  The sweep
            # inlines ``rop.sram_lookup``: training state cannot change
            # within a sweep and an empty buffer cannot hit, so both are
            # checked once and membership is tested against the live line
            # set directly — bit-identical, one call per hit instead of
            # one per queued read.
            if rop is not None and rq and not rop.sm.is_training:
                buffered = rop.buffer.lines
                if buffered:
                    i = 0
                    while i < len(rq):
                        r = rq[i]
                        if r.line in buffered:
                            rq.pop(i)
                            self._complete_from_sram(r, cycle)
                            progress = True
                        else:
                            i += 1
            # write-drain hysteresis
            if not drain[ci] and len(wq) >= drain_high:
                drain[ci] = True
                if self._darp:
                    # DARP write-refresh parallelization: repay refresh debt
                    # in banks with no pending reads while writes stream
                    self._darp_piggyback(ci, cycle)
            elif drain[ci] and len(wq) <= drain_low:
                drain[ci] = False
            if drain[ci]:
                queue = wq
            elif rq:
                queue = rq
            elif wq:
                queue = wq  # work-conserving: no reads pending, stream writes
            else:
                break
            idx, wake = select(ch, queue, cycle)
            if idx is None:
                if queue is rq and wq:
                    # reads all gated; opportunistically try a write
                    widx, wwake = select(ch, wq, cycle)
                    if widx is not None:
                        issue(ci, wq.pop(widx), cycle)
                        progress = True
                        continue
                    wake = min(w for w in (wake, wwake) if w is not None) if (
                        wake is not None or wwake is not None
                    ) else None
                if wake is not None:
                    self._schedule_retry(ci, wake)
                break
            issue(ci, queue.pop(idx), cycle)
            progress = True

    def _select(
        self, ch: _Channel, queue: list[Request], cycle: int
    ) -> tuple[int | None, int | None]:
        """FR-FCFS pick: oldest ready row hit, else oldest ready request.

        Returns ``(index, None)`` on success or ``(None, wake_cycle)`` when
        every queued request is gated (``wake_cycle`` is the earliest cycle
        anything ungates, or None for an empty queue).
        """
        first_ready: int | None = None
        wake: int | None = None
        ranks = ch.ranks
        sub_rows = self._sub_rows
        for i, r in enumerate(queue):
            c = r.coord
            rank = ranks[c.rank]
            # inlined Rank.is_locked (hot path)
            if rank.lock_start <= cycle < rank.locked_until:
                gate = rank.locked_until
            else:
                bank = rank.banks[c.bank]
                gate = bank.ready_at
                if sub_rows and c.row // sub_rows == bank.sub_ref and bank.sub_lock_end > gate:
                    # SARP: the request's subarray is mid-refresh
                    gate = bank.sub_lock_end
                if gate <= cycle:
                    if bank.open_row == c.row:
                        return i, None  # oldest ready row hit wins outright
                    if first_ready is None:
                        first_ready = i
                    continue
            if wake is None or gate < wake:
                wake = gate
        return (first_ready, None) if first_ready is not None else (None, wake)

    def _issue(self, ci: int, req: Request, cycle: int) -> None:
        """Commit one request to DRAM and schedule its completion."""
        ch = self.channels[ci]
        c = req.coord
        rank = ch.ranks[c.rank]
        t = self.t
        stats = self.stats
        is_write = req.kind is not ReqKind.READ and req.kind is not ReqKind.PREFETCH
        plan = rank.plan(cycle, c.bank, c.row, is_write, t)
        shift = ch.bus_free_at - plan.data_start
        if shift > 0:
            plan = AccessPlan(
                plan.col_cycle + shift,
                plan.data_start + shift,
                plan.data_end + shift,
                plan.act_cycle,
                plan.category,
            )
        rank.commit(plan, c.bank, c.row, is_write, t)
        if self.issue_tap is not None:
            self.issue_tap(c, plan, is_write)
        ch.bus_free_at = plan.data_end
        ch.busy_cycles += plan.data_end - plan.data_start
        req.issue_cycle = plan.col_cycle
        req.complete_cycle = plan.data_end
        req.service = plan.category
        category = plan.category
        if category is ServiceKind.DRAM_HIT:
            stats.row_hits += 1
        elif category is ServiceKind.DRAM_CLOSED:
            stats.row_closed += 1
        else:
            stats.row_conflicts += 1
        if self._t_svc:
            self.sink.emit(
                Category.SERVICE,
                Kind.ISSUE,
                plan.col_cycle,
                c.channel,
                c.rank,
                a=req.rid,
                b=int(plan.category),
            )
        if req.kind is ReqKind.READ:
            self.events.push(plan.data_end, self._make_read_completion(req))

    def _make_read_completion(self, req: Request) -> Callable[[int], None]:
        def _complete(cycle: int) -> None:
            self._account_read(req, cycle)

        return _complete

    def _account_read(self, req: Request, cycle: int) -> None:
        lat = cycle - req.arrival
        stats = self.stats
        stats.reads_completed += 1
        stats.read_latency_sum += lat
        if lat > stats.read_latency_max:
            stats.read_latency_max = lat
        if cycle > stats.end_cycle:
            stats.end_cycle = cycle
        if self._t_svc:
            self.sink.emit(
                Category.SERVICE,
                Kind.COMPLETE,
                cycle,
                req.coord.channel,
                req.coord.rank,
                a=req.rid,
                b=lat,
            )
        if req.on_complete is not None:
            req.on_complete(cycle)

    def _complete_from_sram(self, req: Request, cycle: int) -> None:
        """Service a read from the ROP SRAM buffer."""
        done = cycle + self.cfg.rop.sram_latency
        req.issue_cycle = cycle
        req.complete_cycle = done
        req.service = ServiceKind.SRAM
        rank = self.channels[req.coord.channel].ranks[req.coord.rank]
        in_lock = rank.is_locked(cycle)
        if in_lock:
            self.stats.sram_hits_in_lock += 1
        else:
            self.stats.sram_hits_out_of_lock += 1
        if self._t_svc:
            self.sink.emit(
                Category.SERVICE,
                Kind.SRAM_SERVICE,
                cycle,
                req.coord.channel,
                req.coord.rank,
                a=req.line,
                b=int(in_lock),
            )
        self.rop.on_sram_hit(req, cycle, in_lock)
        self.events.push(done, self._make_read_completion(req))

    def _schedule_retry(self, ci: int, wake: int) -> None:
        """Schedule a future issue attempt, deduplicating per channel."""
        pending = self._retry_at[ci]
        if pending >= 0 and pending <= wake:
            return
        self._retry_at[ci] = wake

        def _retry(cycle: int) -> None:
            if self._retry_at[ci] == wake:
                self._retry_at[ci] = -1
            self._try_issue(ci, cycle)

        self.events.push(wake, _retry)

    # ------------------------------------------------------------------ refresh

    def _make_refresh_tick(self, ci: int, ri: int) -> Callable[[int], None]:
        def _tick(cycle: int) -> None:
            self._refresh_tick(ci, ri, cycle)

        return _tick

    def _pending_for_rank(self, ci: int, ri: int) -> int:
        return sum(1 for r in self.read_q[ci] if r.coord.rank == ri) + sum(
            1 for r in self.write_q[ci] if r.coord.rank == ri
        )

    def _pending_banks(self, ci: int, ri: int, *, reads_only: bool = False) -> set[int]:
        """Banks of a rank with queued demand (DARP's idle-bank test)."""
        banks = {r.coord.bank for r in self.read_q[ci] if r.coord.rank == ri}
        if not reads_only:
            banks.update(r.coord.bank for r in self.write_q[ci] if r.coord.rank == ri)
        return banks

    def _account_refresh_window(
        self, ci: int, ri: int, start: int, end: int, locked_bank: int
    ) -> None:
        """Book one executed refresh window [start, end) into stats/telemetry."""
        self.stats.refreshes += 1
        self.stats.refresh_locked_cycles += end - start
        self.stats.end_cycle = max(self.stats.end_cycle, end)
        if self._t_ref:
            # b: the one frozen bank for per-bank refresh (bank*S + sub for
            # SARP's subarray locks), -1 when the whole rank locks
            self.sink.emit(
                Category.REFRESH, Kind.REFRESH_WINDOW, start, ci, ri, a=end, b=locked_bank
            )
        if self.rop is not None:
            self.rop.on_refresh_executed(ci, ri, start, end)

    def _refresh_tick(self, ci: int, ri: int, cycle: int) -> None:
        """One tREFI grid tick for a rank: postpone, or refresh (w/ ROP arming)."""
        if self.cfg.refresh.mode is RefreshMode.PAUSING:
            self._paused_refresh(ci, ri, cycle)
            self.events.push(
                cycle + self.refresh_mgr.period,
                self._make_refresh_tick(ci, ri),
                housekeeping=True,
            )
            return
        mgr = self.refresh_mgr
        pending_banks = self._pending_banks(ci, ri) if mgr.wants_bank_pending else None
        count = mgr.decide(ci, ri, cycle, self._pending_for_rank(ci, ri), pending_banks)
        if count > 0:
            due = cycle
            if self.rop is not None:
                if self.cfg.rop.drain_before_refresh:
                    self._drain_rank(ci, ri, cycle)
                lines = self.rop.plan_prefetch(ci, ri, cycle)
                if lines:
                    due = self._fetch_prefetch_lines(ci, ri, lines, cycle)
            rank = self.channels[ci].ranks[ri]
            for _ in range(count):
                banks = mgr.banks_for(ci, ri)
                if self._sarp:
                    bank = banks[0]
                    sub = mgr.subarray_for(ci, ri, bank)
                    start, end = rank.start_subarray_refresh(
                        due, self.t, bank, sub, self._sub_rows
                    )
                    locked = bank * self._subarrays + sub
                else:
                    start, end = rank.start_refresh(due, self.t, banks=banks)
                    locked = banks[0] if banks is not None and len(banks) == 1 else -1
                self._account_refresh_window(ci, ri, start, end, locked)
                due = end
            if self.read_q[ci] or self.write_q[ci]:
                self._schedule_retry(ci, due)
        self.events.push(
            cycle + self.refresh_mgr.period,
            self._make_refresh_tick(ci, ri),
            housekeeping=True,
        )

    def _paused_refresh(self, ci: int, ri: int, due: int) -> None:
        """Refresh-Pausing-style interruptible refresh (extension baseline).

        The ``tRFC`` lock is split into ``pause_segments`` row-bundle
        segments. Between segments, pending demand to the rank defers the
        next segment; a deadline (the next tREFI tick, less the remaining
        work) forces completion so the average refresh rate is preserved —
        the correctness condition Nair et al. identify.
        """
        rank = self.channels[ci].ranks[ri]
        t = self.t
        seg = max(1, t.rfc // max(1, self.cfg.refresh.pause_segments))
        deadline = due + self.refresh_mgr.period - t.rfc
        state = {"remaining": t.rfc, "counted": False}

        def step(cycle: int) -> None:
            remaining = state["remaining"]
            if remaining <= 0:
                return
            must_force = cycle + remaining >= deadline
            if not must_force and self._pending_for_rank(ci, ri) > 0:
                # pause: demand goes first; re-check one segment later
                if self._t_ref:
                    self.sink.emit(
                        Category.REFRESH, Kind.REFRESH_PAUSE, cycle, ci, ri, a=remaining
                    )
                self.events.push(cycle + seg, step)
                self._try_issue(ci, cycle)
                return
            dur = min(seg, remaining)
            start, end = rank.start_refresh(cycle, t, duration=dur)
            state["remaining"] = remaining - dur
            self.stats.refresh_locked_cycles += end - start
            self.stats.end_cycle = max(self.stats.end_cycle, end)
            if not state["counted"]:
                self.stats.refreshes += 1
                state["counted"] = True
            if self._t_ref:
                self.sink.emit(
                    Category.REFRESH, Kind.REFRESH_WINDOW, start, ci, ri, a=end, b=-1
                )
            if state["remaining"] > 0:
                self.events.push(end, step)
            elif self.read_q[ci] or self.write_q[ci]:
                self._schedule_retry(ci, end)

        step(due)

    def _darp_piggyback(self, ci: int, cycle: int) -> None:
        """Repay DARP refresh debt under cover of a starting write drain.

        Each rank's banks that owe a refresh and have no queued reads take
        one per-bank REF now — the paper's write-refresh parallelization:
        the write burst hides the per-bank lock from the read critical path.
        """
        mgr = self.refresh_mgr
        for ri, rank in enumerate(self.channels[ci].ranks):
            read_banks = self._pending_banks(ci, ri, reads_only=True)
            for bank in mgr.piggyback_banks(ci, ri, read_banks):
                start, end = rank.start_refresh(cycle, self.t, banks=[bank])
                self._account_refresh_window(ci, ri, start, end, bank)

    def _drain_rank(self, ci: int, ri: int, cycle: int) -> None:
        """Issue queued demand requests to a rank ahead of its refresh.

        Mirrors the paper's Section IV-D: draining avoids request
        housekeeping resources being held across the whole lock. Bounded by
        ``_DRAIN_CAP`` so the refresh delay stays within the JEDEC
        postponement allowance.
        """
        drained = 0
        for queue in (self.read_q[ci], self.write_q[ci]):
            i = 0
            while i < len(queue) and drained < _DRAIN_CAP:
                r = queue[i]
                if r.coord.rank == ri:
                    queue.pop(i)
                    self._issue(ci, r, cycle)
                    drained += 1
                else:
                    i += 1

    def _fetch_prefetch_lines(self, ci: int, ri: int, lines: list[int], cycle: int) -> int:
        """Fetch prefetch lines into the SRAM buffer right before the lock.

        Lines are sorted by (bank, row, column) so fetches to the same row
        coalesce into row-buffer hits — the paper's second issue
        optimization. Returns the cycle at which all fills complete (the
        refresh is delayed until then).
        """
        ch = self.channels[ci]
        rank = ch.ranks[ri]
        done = cycle
        # one vectorized decode for the whole batch; the coords are reused
        # for both the (bank, row, col) coalescing sort and the fetches
        coords = dict(zip(lines, self.mapper.decode_coords(lines)))
        ordered = sorted(lines, key=lambda ln: coords[ln][2:])
        # lines still resident from the previous arming are free — only new
        # lines cost a DRAM fetch
        to_fetch = [ln for ln in ordered if not self.rop.sram_lookup(ln)]
        for line in to_fetch:
            c = coords[line]
            plan = rank.plan(cycle, c.bank, c.row, False, self.t)
            shift = ch.bus_free_at - plan.data_start
            if shift > 0:
                plan = AccessPlan(
                    plan.col_cycle + shift,
                    plan.data_start + shift,
                    plan.data_end + shift,
                    plan.act_cycle,
                    plan.category,
                )
            rank.commit(plan, c.bank, c.row, False, self.t)
            if self.issue_tap is not None:
                self.issue_tap(c, plan, False)
            ch.bus_free_at = plan.data_end
            ch.busy_cycles += plan.data_end - plan.data_start
            self.stats.prefetches += 1
            if plan.data_end > done:
                done = plan.data_end
        self.stats.prefetch_fetch_cycles += done - cycle
        self.stats.sram_fills += len(to_fetch)
        self.rop.on_prefetch_fill(ci, ri, ordered, done)
        return done

    # ------------------------------------------------------------------ helpers

    def pending_requests(self) -> int:
        """Demand requests still queued across all channels."""
        return sum(len(q) for q in self.read_q) + sum(len(q) for q in self.write_q)

    def decode(self, line: int) -> Coord:
        """Decode a line address with this controller's mapper."""
        return self.mapper.decode(line)

    def finish(self, cycle: int) -> None:
        """Mark the end of simulated time in the stats."""
        self.stats.end_cycle = max(self.stats.end_cycle, cycle)
