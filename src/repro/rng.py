"""Deterministic random-number utilities.

Every stochastic component in the simulator (workload generators, the
probabilistic prefetch throttle) draws from a :class:`numpy.random.Generator`
derived from an explicit integer seed, so a run is fully reproducible from
its configuration. Components that need independent streams derive child
seeds with :func:`derive_seed`, which hashes a parent seed together with a
string tag; this keeps streams stable when unrelated components are added
or removed.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "make_rng"]

_MASK64 = (1 << 64) - 1


def derive_seed(parent: int, tag: str) -> int:
    """Derive a stable 64-bit child seed from ``parent`` and a ``tag``.

    The derivation is order-independent between siblings: adding a new
    tagged consumer never perturbs the streams of existing consumers.
    """
    digest = hashlib.blake2b(
        f"{parent & _MASK64:#018x}/{tag}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


def make_rng(seed: int, tag: str | None = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` for ``seed`` (and ``tag``)."""
    if tag is not None:
        seed = derive_seed(seed, tag)
    return np.random.default_rng(seed & _MASK64)
