"""A minimal discrete-event scheduler shared by the CPU and memory models.

The simulator is *transaction-level*: instead of ticking every DRAM clock
cycle (prohibitive in pure Python), components schedule callbacks at the
cycle where something can change — a request arrival, a bank or data-bus
release, a refresh boundary. Events at the same cycle fire in insertion
order, which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["EventQueue"]


class EventQueue:
    """Priority queue of ``(cycle, callback)`` events.

    Callbacks receive the current cycle as their only argument. The queue
    breaks ties by insertion order so simulations are reproducible.
    """

    __slots__ = ("_heap", "_seq", "now", "_work")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, bool, Callable[[int], None]]] = []
        self._seq = 0
        #: cycle of the most recently dispatched event
        self.now: int = 0
        #: pending events that represent real work (not housekeeping)
        self._work = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def work_pending(self) -> int:
        """Pending non-housekeeping events."""
        return self._work

    def push(
        self,
        cycle: int,
        action: Callable[[int], None],
        *,
        housekeeping: bool = False,
    ) -> None:
        """Schedule ``action`` to run at ``cycle`` (must not be in the past).

        Housekeeping events (periodic refresh ticks) self-perpetuate, so an
        unbounded :meth:`run` stops once *only* housekeeping remains; every
        other event counts as work.
        """
        if cycle < self.now:
            raise ValueError(f"cannot schedule at {cycle} before now={self.now}")
        heapq.heappush(self._heap, (cycle, self._seq, housekeeping, action))
        self._seq += 1
        if not housekeeping:
            self._work += 1

    def step(self) -> bool:
        """Dispatch the earliest event. Returns False when the queue is empty."""
        if not self._heap:
            return False
        cycle, _, housekeeping, action = heapq.heappop(self._heap)
        self.now = cycle
        if not housekeeping:
            self._work -= 1
        action(cycle)
        return True

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Run events until idle, ``until`` cycles, or ``max_events``.

        With no ``until``, the loop stops when only housekeeping events
        remain (the memory is idle: refresh ticks would otherwise run
        forever). Returns the number of events dispatched. An event
        scheduled exactly at ``until`` still runs (the bound is inclusive).
        """
        dispatched = 0
        heap = self._heap
        pop = heapq.heappop
        # the dispatch is step() inlined: one Python call per event saved
        # on the hottest loop in the simulator
        while heap:
            if until is not None and heap[0][0] > until:
                break
            if until is None and self._work == 0:
                break
            if max_events is not None and dispatched >= max_events:
                break
            cycle, _, housekeeping, action = pop(heap)
            self.now = cycle
            if not housekeeping:
                self._work -= 1
            action(cycle)
            dispatched += 1
        return dispatched

    def peek_cycle(self) -> int | None:
        """Cycle of the next pending event, or None when empty."""
        return self._heap[0][0] if self._heap else None
