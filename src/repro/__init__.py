"""repro — a full reproduction of *ROP: Alleviating Refresh Overheads via
Reviving the Memory System in Frozen Cycles* (ICPP 2016).

Public entry points:

* :class:`repro.SystemConfig` — configure the memory system, ROP, core, LLC.
* :class:`repro.MemorySystem` — the DDR4 substrate with optional ROP.
* :mod:`repro.workloads` — calibrated SPEC CPU2006 stand-in generators.
* :mod:`repro.harness` — single-core / multi-core experiment drivers that
  regenerate every table and figure of the paper's evaluation.
"""

from .config import (
    CACHE_LINE_BYTES,
    AddressMapScheme,
    CoreConfig,
    LlcConfig,
    MemoryOrganization,
    RefreshConfig,
    RefreshMode,
    RopConfig,
    SchedulerConfig,
    SystemConfig,
    WindowBase,
)
from .dram import DDR4_1600, DDR4_2400, DramTimings, MemorySystem

__version__ = "1.2.0"

__all__ = [
    "CACHE_LINE_BYTES",
    "AddressMapScheme",
    "CoreConfig",
    "LlcConfig",
    "MemoryOrganization",
    "RefreshConfig",
    "RefreshMode",
    "RopConfig",
    "SchedulerConfig",
    "SystemConfig",
    "WindowBase",
    "DDR4_1600",
    "DDR4_2400",
    "DramTimings",
    "MemorySystem",
    "__version__",
]
