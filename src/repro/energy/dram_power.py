"""Event-count DRAM energy model — the Micron power-calculator stand-in.

The Micron spreadsheet derives power from device IDD currents; we fold the
same structure into per-event energies plus a background power term:

``E = P_bg · ranks · T  +  e_act · N_act  +  e_rd · N_rd  +  e_wr · N_wr
      +  e_ref · N_ref``

Default constants approximate a rank of eight x8 8 Gb DDR4-1600 devices
at 1.2 V (derived from representative datasheet IDD values):

* background ≈ (IDD3N/IDD2N blend) · VDD · 8 devices ≈ 330 mW/rank,
* activate+precharge ≈ (IDD0 − IDD3N) · tRC · VDD · 8 ≈ 6.6 nJ,
* read burst ≈ (IDD4R − IDD3N) · tBURST · VDD · 8 + I/O ≈ 5.2 nJ,
* write burst ≈ 5.5 nJ,
* refresh ≈ (IDD5B − IDD3N) · tRFC · VDD · 8 ≈ 690 nJ per REF command
  (high-density 8 Gb parts; this is what makes refresh 20–40 % of total
  energy for lightly loaded memories, the effect Fig. 1 reports).

Two effects the paper highlights fall out naturally: refresh energy is
charged per REF command, and *background energy scales with execution
time*, so a technique that shortens runtime (ROP) saves energy even
without removing a single refresh (Section V-B2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig
from ..stats.collectors import ControllerStats
from .sram_power import sram_energy_nj

__all__ = ["DramEnergyParams", "EnergyBreakdown", "dram_energy", "system_energy"]


@dataclass(frozen=True)
class DramEnergyParams:
    """Per-event DRAM energies (nJ) and background power (mW per rank)."""

    background_mw_per_rank: float = 330.0
    act_pre_nj: float = 6.6
    read_nj: float = 5.2
    write_nj: float = 5.5
    refresh_nj: float = 690.0


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy per component, in nanojoules."""

    background: float
    activate: float
    read: float
    write: float
    refresh: float
    sram: float = 0.0

    @property
    def total(self) -> float:
        """Total energy in nJ."""
        return (
            self.background
            + self.activate
            + self.read
            + self.write
            + self.refresh
            + self.sram
        )

    @property
    def total_mj(self) -> float:
        """Total energy in millijoules."""
        return self.total * 1e-6

    @property
    def refresh_fraction(self) -> float:
        """Share of total energy spent on REF commands."""
        t = self.total
        return self.refresh / t if t else 0.0


def dram_energy(
    stats: ControllerStats,
    config: SystemConfig,
    params: DramEnergyParams | None = None,
) -> EnergyBreakdown:
    """Energy of the DRAM devices for one run (no SRAM term)."""
    p = params if params is not None else DramEnergyParams()
    t = config.effective_timings()
    org = config.organization
    time_ns = stats.end_cycle * t.tck_ns
    ranks_total = org.channels * org.ranks
    # mW × ns = 1e-12 J = pJ; × 1e-3 → nJ
    background = p.background_mw_per_rank * ranks_total * time_ns * 1e-3
    activates = stats.row_closed + stats.row_conflicts
    # demand reads serviced by the SRAM buffer never touch DRAM; prefetch
    # fills are DRAM reads of their own
    reads = stats.reads - stats.sram_hits + stats.prefetches
    # refresh energy scales with the configured tRFC (FGR modes shrink it)
    ref_scale = t.rfc / max(1, config.timings.rfc)
    return EnergyBreakdown(
        background=background,
        activate=activates * p.act_pre_nj,
        read=reads * p.read_nj,
        write=stats.writes * p.write_nj,
        refresh=stats.refreshes * p.refresh_nj * ref_scale,
    )


def system_energy(
    stats: ControllerStats,
    config: SystemConfig,
    params: DramEnergyParams | None = None,
) -> EnergyBreakdown:
    """DRAM energy plus the ROP SRAM buffer's energy (when enabled)."""
    base = dram_energy(stats, config, params)
    if not config.rop.enabled:
        return base
    t = config.effective_timings()
    time_ns = stats.end_cycle * t.tck_ns
    sram = sram_energy_nj(
        capacity_lines=config.rop.sram_lines,
        reads=stats.sram_hits_in_lock + stats.sram_hits_out_of_lock,
        writes=stats.sram_fills,
        active_time_ns=time_ns,
    )
    return EnergyBreakdown(
        background=base.background,
        activate=base.activate,
        read=base.read,
        write=base.write,
        refresh=base.refresh,
        sram=sram,
    )
