"""Energy models: DRAM (Micron-calculator stand-in) and the ROP SRAM."""

from .dram_power import DramEnergyParams, EnergyBreakdown, dram_energy, system_energy
from .sram_power import (
    SRAM_ACCESS_NJ,
    SRAM_LATENCY_CYCLES,
    sram_access_nj,
    sram_energy_nj,
)

__all__ = [
    "DramEnergyParams",
    "EnergyBreakdown",
    "dram_energy",
    "system_energy",
    "SRAM_ACCESS_NJ",
    "SRAM_LATENCY_CYCLES",
    "sram_access_nj",
    "sram_energy_nj",
]
