"""SRAM prefetch-buffer energy — constants from the paper's Table III.

The paper obtained per-access energies with CACTI 5.3 for the four buffer
capacities it evaluates (16/32/64/128 cache lines, i.e. 1–8 KB):

==========  ===================
capacity    energy per access
==========  ===================
16 lines    0.0132 nJ
32 lines    0.0135 nJ
64 lines    0.0137 nJ
128 lines   0.0152 nJ
==========  ===================

Access latency is 3 controller cycles for every size (Table III). Leakage
is a small constant drawn from CACTI-class numbers for KB-scale SRAM; it
keeps the paper's observation that "the introduction of the SRAM slightly
increases memory power" true without materially moving totals.
"""

from __future__ import annotations

__all__ = ["SRAM_ACCESS_NJ", "SRAM_LATENCY_CYCLES", "sram_access_nj", "sram_energy_nj"]

#: Table III per-access energies (nJ), keyed by capacity in cache lines.
SRAM_ACCESS_NJ: dict[int, float] = {
    16: 0.0132,
    32: 0.0135,
    64: 0.0137,
    128: 0.0152,
}

#: Table III access latency (controller cycles), all capacities.
SRAM_LATENCY_CYCLES: int = 3

#: leakage power per cache line of capacity (mW); ~0.13 mW for 64 lines.
_LEAKAGE_MW_PER_LINE: float = 0.002


def sram_access_nj(capacity_lines: int) -> float:
    """Per-access energy for a buffer of ``capacity_lines``.

    Exact Table III values for the paper's four sizes; other sizes
    interpolate/extrapolate linearly on capacity.
    """
    if capacity_lines in SRAM_ACCESS_NJ:
        return SRAM_ACCESS_NJ[capacity_lines]
    if capacity_lines <= 0:
        raise ValueError("SRAM capacity must be positive")
    sizes = sorted(SRAM_ACCESS_NJ)
    if capacity_lines <= sizes[0]:
        return SRAM_ACCESS_NJ[sizes[0]]
    if capacity_lines >= sizes[-1]:
        lo, hi = sizes[-2], sizes[-1]
    else:
        hi = min(s for s in sizes if s >= capacity_lines)
        lo = max(s for s in sizes if s <= capacity_lines)
    flo, fhi = SRAM_ACCESS_NJ[lo], SRAM_ACCESS_NJ[hi]
    return flo + (fhi - flo) * (capacity_lines - lo) / (hi - lo)


def sram_energy_nj(
    capacity_lines: int,
    reads: int,
    writes: int,
    active_time_ns: float,
) -> float:
    """Total SRAM energy: dynamic accesses plus leakage over active time."""
    e_access = sram_access_nj(capacity_lines)
    leak_mw = _LEAKAGE_MW_PER_LINE * capacity_lines
    leakage_nj = leak_mw * active_time_ns * 1e-3  # mW·ns = pJ; ×1e-3 → nJ
    return (reads + writes) * e_access + leakage_nj
