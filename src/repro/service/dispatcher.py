"""Async dispatcher: drains the job queue through ``execute_plan``.

One background asyncio task owns the queue.  Jobs run **one at a time**,
each as a single ``execute_plan`` call pushed onto a dedicated
single-thread executor so the event loop stays free to serve reads
while a plan simulates.  That FIFO discipline is also the service-level
dedup guarantee: when N clients submit overlapping plans concurrently,
the first job simulates the shared specs and every later job is served
from the in-process memo / artifact cache — one simulation per unique
spec, with the PR 7 per-key file locks covering the residual race of
independent *worker processes* writing the same entry.

Inside the executor the full PR 2/7 machinery applies unchanged:
chunked ``ProcessPoolExecutor`` fan-out across the worker fleet,
failure taxonomy and retries, broken-pool rebuilds, quarantine, chaos.
The dispatcher always runs plans with ``keep_going`` — a service must
return a failure table, not tear down the process — and translates
:class:`~repro.harness.PlanResults` into the job record: per-spec
failures, the ``RunnerStats`` snapshot, and the plan-wide merged
metrics registry.
"""

from __future__ import annotations

import asyncio
import dataclasses
import traceback
from concurrent.futures import ThreadPoolExecutor

from ..harness import PlanResults, current_policy, execute_plan
from .specs import spec_from_descriptor
from .store import Job, JobStore

__all__ = ["Dispatcher"]


def _failure_rows(results: PlanResults) -> list[dict]:
    """The runner's failure table, JSON-shaped for the job journal."""
    return [
        {
            "fingerprint": f.key,
            "label": f.label,
            "kind": f.kind,
            "exc_type": f.exc_type,
            "message": f.message,
            "attempts": f.attempts,
        }
        for f in results.failures
    ]


class Dispatcher:
    """Background job-plane worker bound to one event loop."""

    def __init__(self, store: JobStore, *, default_jobs: int = 1) -> None:
        self.store = store
        self.default_jobs = default_jobs
        self._queue: asyncio.Queue[Job] = asyncio.Queue()
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-dispatch"
        )
        self._task: asyncio.Task | None = None
        self.completed = 0

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Start the drain task (requeuing any crash-recovered jobs first)."""
        for job in self.store.recover():
            self._queue.put_nowait(job)
        self._task = asyncio.get_running_loop().create_task(self._drain())

    async def stop(self) -> None:
        """Cancel the drain task and release the executor thread."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        self._pool.shutdown(wait=False, cancel_futures=True)

    def enqueue(self, job: Job) -> None:
        self._queue.put_nowait(job)

    @property
    def depth(self) -> int:
        """Jobs waiting behind the one (maybe) in flight."""
        return self._queue.qsize()

    # -------------------------------------------------------------- workers

    async def _drain(self) -> None:
        while True:
            job = await self._queue.get()
            try:
                await self._run_job(job)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # job-level fault: record, keep serving
                self.store.finish(
                    job,
                    error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
                )
            finally:
                self.completed += 1
                self._queue.task_done()

    async def _run_job(self, job: Job) -> None:
        if job.state != "queued":  # a resubmission raced a finished job
            return
        specs = [
            spec_from_descriptor(raw, i) for i, raw in enumerate(job.request)
        ]
        self.store.mark_running(job)
        policy = dataclasses.replace(current_policy(), keep_going=True)
        loop = asyncio.get_running_loop()
        results = await loop.run_in_executor(
            self._pool,
            lambda: execute_plan(
                specs, jobs=job.jobs or self.default_jobs, policy=policy
            ),
        )
        self.store.finish(
            job,
            failures=_failure_rows(results),
            stats=dataclasses.asdict(results.stats),
            metrics=results.merged_metrics(),
        )

    # fleet knob surfaced for /healthz
    def describe(self) -> dict:
        return {"default_jobs": self.default_jobs, "queue_depth": self.depth}
