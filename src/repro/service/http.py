"""Stdlib-asyncio HTTP/JSON front end for the simulation service.

A deliberately small HTTP/1.1 server over ``asyncio.start_server`` — no
framework, no threads in the serving path.  Routes:

* ``POST /plans`` — submit a plan request (:mod:`~repro.service.specs`
  wire format).  Idempotent: the job id is the plan fingerprint, so
  resubmitting the same spec set finds the same job.  A plan whose
  specs are all cached completes synchronously and returns ``200``
  with ``X-Cache: hit``; anything needing simulation returns ``202``
  with the job queued.
* ``GET /plans/{id}`` — job status: state, per-spec fingerprints,
  failure table, runner stats, and (once done) the plan-wide merged
  metrics snapshot.
* ``GET /results/{fingerprint}`` — one cached result, JSON-shaped,
  including its pickle ``digest`` (the repo's bit-identity currency).
* ``GET /healthz`` — liveness + job counts + store location.
* ``GET /metrics`` — the service's own MetricsRegistry dump (request
  counters, latency histogram, result hit/miss counters) merged with
  the runner's session counters.

ETag contract: every completed resource carries ``ETag: "<fp>"`` — the
plan fingerprint for ``/plans``, the spec fingerprint for ``/results``.
Fingerprints are *content* addresses, so a matching ``If-None-Match``
can always short-circuit to ``304 Not Modified`` with no body; a
changed simulator (CACHE_SCHEMA bump) changes every fingerprint, so
stale ETags can never resurrect stale results.
"""

from __future__ import annotations

import asyncio
import json
import time

from ..harness import RunnerStats, cached_result, session_stats
from ..harness.quarantine import result_digest
from ..telemetry import MetricsRegistry
from .dispatcher import Dispatcher
from .specs import (
    PlanRequestError,
    descriptor_label,
    parse_plan_request,
    plan_fingerprint,
)
from .store import JobStore

__all__ = ["ServiceApp", "result_payload"]

#: request-body bound (a full MAX_PLAN_SPECS plan is ~100 KB)
MAX_BODY_BYTES = 4 << 20

#: HTTP request-latency histogram bounds, in milliseconds
LATENCY_BOUNDS_MS = (0.5, 1, 2, 5, 10, 25, 50, 100, 250, 1000, 5000)

_REASONS = {
    200: "OK",
    202: "Accepted",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def result_payload(key: str, result) -> dict:
    """JSON body for one cached :class:`~repro.cpu.MulticoreResult`.

    ``digest`` is the sha256 of the result's pickle — the same currency
    ``chaos_soak`` and the equivalence tests use — so a client can
    assert byte-identity with a locally simulated run without shipping
    the pickle itself.
    """
    return {
        "fingerprint": key,
        "digest": result_digest(result),
        "ipc": result.ipc,
        "ipcs": result.ipcs,
        "end_cycle": result.end_cycle,
        "cores": [
            {
                "core_id": c.core_id,
                "instructions": c.instructions,
                "cpu_cycles": c.cpu_cycles,
                "ipc": c.ipc,
                "reads": c.reads,
                "writes": c.writes,
            }
            for c in result.cores
        ],
        "stats": dict(vars(result.stats)),
        "rop_summary": result.rop_summary,
        "metrics": result.metrics or {},
    }


class _Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(self, method: str, path: str, headers: dict, body: bytes):
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    def if_none_match(self) -> str:
        return self.headers.get("if-none-match", "").strip().strip('"')


class _Response:
    """Status + JSON payload + extra headers, ready to serialize."""

    def __init__(self, status: int, payload: dict | None = None, **headers: str):
        self.status = status
        self.payload = payload
        self.headers = headers


class ServiceApp:
    """Routes requests against one store + dispatcher pair."""

    def __init__(self, store: JobStore, dispatcher: Dispatcher) -> None:
        self.store = store
        self.dispatcher = dispatcher
        self.registry = MetricsRegistry()
        self.started_s = time.time()

    # --------------------------------------------------------------- server

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        """Connection handler: keep-alive loop until EOF or close."""
        try:
            while True:
                req = await self._read_request(reader)
                if req is None:
                    break
                t0 = time.perf_counter()
                try:
                    resp = self._route(req)
                except PlanRequestError as exc:
                    resp = _Response(400, {"error": str(exc)})
                except Exception as exc:  # serving must survive any request
                    self.registry.count("http.errors.internal")
                    resp = _Response(
                        500, {"error": f"{type(exc).__name__}: {exc}"}
                    )
                self._observe(req, resp, time.perf_counter() - t0)
                keep = req.headers.get("connection", "").lower() != "close"
                await self._write_response(writer, resp, keep_alive=keep)
                if not keep:
                    break
        except (asyncio.IncompleteReadError, ConnectionError, asyncio.LimitOverrunError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> _Request | None:
        try:
            line = await reader.readline()
        except (ValueError, ConnectionError):
            return None
        if not line or not line.strip():
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            hline = await reader.readline()
            if not hline or hline in (b"\r\n", b"\n"):
                break
            name, _, value = hline.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > MAX_BODY_BYTES:
            return _Request(method, path, headers, b"__TOO_LARGE__")
        body = await reader.readexactly(length) if length else b""
        return _Request(method, path, headers, body)

    async def _write_response(self, writer: asyncio.StreamWriter,
                              resp: _Response, *, keep_alive: bool) -> None:
        body = b""
        if resp.payload is not None and resp.status != 304:
            body = json.dumps(resp.payload, sort_keys=True).encode()
        reason = _REASONS.get(resp.status, "Unknown")
        head = [f"HTTP/1.1 {resp.status} {reason}"]
        head.append("Content-Type: application/json")
        head.append(f"Content-Length: {len(body)}")
        head.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
        for name, value in resp.headers.items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
        await writer.drain()

    def _observe(self, req: _Request, resp: _Response, wall: float) -> None:
        route = req.path.split("/")[1] if "/" in req.path else ""
        self.registry.count(f"http.requests.{req.method.lower()}.{route or 'root'}")
        self.registry.count(f"http.status.{resp.status}")
        self.registry.observe(
            "http.latency_ms", wall * 1e3, bounds=LATENCY_BOUNDS_MS
        )

    # --------------------------------------------------------------- routes

    def _route(self, req: _Request) -> _Response:
        if req.body == b"__TOO_LARGE__":
            return _Response(413, {"error": "request body too large"})
        path = req.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/plans" and req.method == "POST":
            return self._post_plan(req)
        if path.startswith("/plans/") and req.method == "GET":
            return self._get_plan(req, path[len("/plans/"):])
        if path.startswith("/results/") and req.method == "GET":
            return self._get_result(req, path[len("/results/"):])
        if path == "/healthz" and req.method == "GET":
            return self._healthz()
        if path == "/metrics" and req.method == "GET":
            return self._metrics()
        if path in ("/plans", "/healthz", "/metrics") or path.startswith(
            ("/plans/", "/results/")
        ):
            return _Response(405, {"error": f"{req.method} not allowed on {path}"})
        return _Response(404, {"error": f"no route for {path}"})

    def _post_plan(self, req: _Request) -> _Response:
        try:
            doc = json.loads(req.body.decode() or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return _Response(400, {"error": f"body is not valid JSON: {exc}"})
        descriptors, specs, jobs = parse_plan_request(doc)
        keys = [s.key for s in specs]
        job_id = plan_fingerprint(specs)
        job, created = self.store.submit(
            job_id,
            descriptors,
            keys,
            [descriptor_label(d) for d in descriptors],
            jobs or self.dispatcher.default_jobs,
        )
        if req.if_none_match() == job_id and job.state == "done":
            return _Response(304, None, ETag=f'"{job_id}"')
        if created and job.state == "queued":
            # a plan already fully materialized in the store completes
            # synchronously — the 100-240x warm-replay path, now visible
            # to HTTP clients as an instant 200
            unique = job.unique_keys
            if all(cached_result(k) is not None for k in unique):
                self.store.finish(
                    job,
                    stats=_warm_stats(len(keys), len(unique)),
                    metrics=_merged_metrics(unique),
                )
            else:
                self.dispatcher.enqueue(job)
        payload = job.public()
        payload["created"] = created
        if job.state == "done":
            self.registry.count("service.plans.warm_hits")
            return _Response(
                200, payload, ETag=f'"{job_id}"', **{"X-Cache": "hit"}
            )
        status = 202 if job.state in ("queued", "running") else 200
        return _Response(status, payload, **{"X-Cache": "miss"})

    def _get_plan(self, req: _Request, job_id: str) -> _Response:
        job = self.store.get(job_id)
        if job is None:
            return _Response(404, {"error": f"unknown job {job_id!r}"})
        if job.state in ("done", "failed"):
            if req.if_none_match() == job.id:
                return _Response(304, None, ETag=f'"{job.id}"')
            return _Response(200, job.public(), ETag=f'"{job.id}"')
        return _Response(200, job.public())

    def _get_result(self, req: _Request, key: str) -> _Response:
        result = cached_result(key)
        if result is None:
            self.registry.count("service.results.miss")
            return _Response(
                404,
                {
                    "error": f"no cached result for fingerprint {key!r}",
                    "hint": "POST the spec to /plans first",
                },
            )
        self.registry.count("service.results.hit")
        if req.if_none_match() == key:
            return _Response(304, None, ETag=f'"{key}"', **{"X-Cache": "hit"})
        return _Response(
            200, result_payload(key, result), ETag=f'"{key}"', **{"X-Cache": "hit"}
        )

    def _healthz(self) -> _Response:
        return _Response(
            200,
            {
                "status": "ok",
                "uptime_s": round(time.time() - self.started_s, 3),
                "jobs": self.store.counts(),
                "dispatcher": self.dispatcher.describe(),
                "journal_errors": self.store.journal_errors,
                "store": str(self.store.dir),
            },
        )

    def _metrics(self) -> _Response:
        runner = MetricsRegistry()
        for name, value in vars(session_stats()).items():
            runner.count(f"runner.{name}", value)
        merged = MetricsRegistry.merge([self.registry.snapshot(), runner.snapshot()])
        return _Response(200, merged)


def _warm_stats(requested: int, unique: int) -> dict:
    """A RunnerStats-shaped snapshot for a synchronously served plan."""
    import dataclasses

    return dataclasses.asdict(
        RunnerStats(requested=requested, unique=unique, cache_hits=unique)
    )


def _merged_metrics(keys: list[str]) -> dict:
    """Plan-wide merged metrics over already-cached results."""
    snaps = []
    for key in sorted(keys):
        result = cached_result(key)
        if result is not None and getattr(result, "metrics", None):
            snaps.append(result.metrics)
    return MetricsRegistry.merge(snaps)
