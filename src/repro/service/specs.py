"""Wire format for plan submissions: JSON spec descriptors ↔ RunSpecs.

A *plan request* is the JSON document a client POSTs to ``/plans`` (and
the file ``repro fingerprint --plan`` reads)::

    {
      "jobs": 2,                  # optional worker-fleet override
      "specs": [
        {
          "workloads": ["lbm"],   # 1 name, or up to 4 for a mix
          "system": "rop",        # a validation-corpus system flavor
          "instructions": 400000,
          "seed": 1,
          "training_refreshes": 5 # optional, ROP systems only
        },
        ...
      ]
    }

The vocabulary is deliberately the validation corpus's: ``system`` names
one of :func:`repro.validation.system_config`'s flavors, so a service
deployment can only be asked for configurations the golden models
already cover.  Descriptors are *declarative* — the server materializes
each one into a :class:`~repro.harness.RunSpec` and addresses its result
by :func:`~repro.harness.spec_fingerprint`, which is also the ETag the
HTTP layer hands back.

Malformed requests raise :class:`PlanRequestError` with a message safe
to return verbatim in a 400 body; nothing in this module touches the
store or the simulator.
"""

from __future__ import annotations

from typing import Any

from ..harness import RunScale, RunSpec, spec_fingerprint
from ..harness.cache import fingerprint
from ..harness.runner import core_llc_share
from ..validation import known_systems, system_config
from ..workloads import SPEC_PROFILES

__all__ = [
    "PlanRequestError",
    "MAX_PLAN_SPECS",
    "spec_from_descriptor",
    "parse_plan_request",
    "plan_fingerprint",
    "descriptor_label",
]

#: hard per-request bound — a single POST cannot enqueue an unbounded grid
MAX_PLAN_SPECS = 256

#: instruction-budget bound per spec; matches the largest committed scale
#: with head-room (the service is for interactive plans, not overnight runs)
MAX_INSTRUCTIONS = 50_000_000


class PlanRequestError(ValueError):
    """A plan request is malformed; the message is client-safe."""


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise PlanRequestError(msg)


def spec_from_descriptor(raw: Any, index: int = 0) -> RunSpec:
    """Materialize one spec descriptor into a :class:`RunSpec`."""
    where = f"specs[{index}]"
    _require(isinstance(raw, dict), f"{where}: descriptor must be an object")
    unknown = set(raw) - {
        "workloads", "system", "instructions", "seed", "training_refreshes",
    }
    _require(not unknown, f"{where}: unknown fields {sorted(unknown)}")

    workloads = raw.get("workloads")
    _require(
        isinstance(workloads, list) and 1 <= len(workloads) <= 4,
        f"{where}: 'workloads' must list 1-4 benchmark names",
    )
    for name in workloads:
        _require(
            isinstance(name, str) and name in SPEC_PROFILES,
            f"{where}: unknown workload {name!r}; known: {', '.join(SPEC_PROFILES)}",
        )

    system = raw.get("system", "baseline")
    try:
        config = system_config(system)
    except ValueError:
        raise PlanRequestError(
            f"{where}: unknown system {system!r}; known: {', '.join(known_systems())}"
        ) from None

    instructions = raw.get("instructions", 400_000)
    _require(
        isinstance(instructions, int) and 10_000 <= instructions <= MAX_INSTRUCTIONS,
        f"{where}: 'instructions' must be an int in "
        f"[10000, {MAX_INSTRUCTIONS}], got {instructions!r}",
    )
    seed = raw.get("seed", 1)
    _require(
        isinstance(seed, int) and 0 <= seed < 2**31,
        f"{where}: 'seed' must be a non-negative 31-bit int, got {seed!r}",
    )

    training = raw.get("training_refreshes")
    if training is not None:
        _require(
            isinstance(training, int) and 1 <= training <= 1000,
            f"{where}: 'training_refreshes' must be an int in [1, 1000]",
        )
        _require(
            config.rop.enabled,
            f"{where}: 'training_refreshes' set on non-ROP system {system!r}",
        )
        config = config.with_rop(training_refreshes=training)

    scale = RunScale(instructions=instructions, seed=seed)
    if len(workloads) == 1:
        return RunSpec.benchmark(workloads[0], config, scale)
    return RunSpec(
        workloads=tuple(workloads),
        config=config,
        trace_llc=core_llc_share(config.llc.size_bytes, cores=len(workloads)),
        instructions=instructions,
        seed=seed,
    )


def parse_plan_request(doc: Any) -> tuple[list[dict], list[RunSpec], int | None]:
    """Validate a plan request; returns (descriptors, specs, jobs override).

    The returned descriptors are the raw dicts (journaled verbatim so a
    crash-recovered job can re-materialize its specs), in request order;
    ``specs`` are their materialized forms, index-aligned.
    """
    _require(isinstance(doc, dict), "plan request must be a JSON object")
    unknown = set(doc) - {"specs", "jobs"}
    _require(not unknown, f"unknown top-level fields {sorted(unknown)}")
    raw_specs = doc.get("specs")
    _require(
        isinstance(raw_specs, list) and raw_specs,
        "plan request needs a non-empty 'specs' list",
    )
    _require(
        len(raw_specs) <= MAX_PLAN_SPECS,
        f"plan too large: {len(raw_specs)} specs > limit {MAX_PLAN_SPECS}",
    )
    jobs = doc.get("jobs")
    if jobs is not None:
        _require(
            isinstance(jobs, int) and 1 <= jobs <= 64,
            f"'jobs' must be an int in [1, 64], got {jobs!r}",
        )
    specs = [spec_from_descriptor(raw, i) for i, raw in enumerate(raw_specs)]
    return [dict(raw) for raw in raw_specs], specs, jobs


def plan_fingerprint(specs: list[RunSpec]) -> str:
    """Stable identity of a whole plan: order-independent over spec keys.

    Submitting the same set of specs — in any order, with duplicates
    collapsed — is the *same* plan, which is what makes ``POST /plans``
    idempotent: the fingerprint is the job id and the plan-level ETag.
    """
    return fingerprint("plan", sorted({spec_fingerprint(s) for s in specs}))


def descriptor_label(raw: dict) -> str:
    """Human-readable identity of one descriptor for job listings."""
    workloads = "+".join(raw.get("workloads") or ["?"])
    return f"{workloads}/{raw.get('system', 'baseline')}"
