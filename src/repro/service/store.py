"""Job store: the service plane's durable record of every submitted plan.

A *job* is one submitted plan, identified by its plan fingerprint
(:func:`~repro.service.specs.plan_fingerprint`) — so resubmitting the
same plan finds the same job, which is the whole idempotency story.
States move strictly ``queued → running → done | failed``.

Every mutation is journaled to ``<cache-dir>/service/jobs/<id>.json``
with the store's usual atomic-write discipline (temp + ``os.replace``),
and the journal carries the *raw request descriptors*, not pickled
specs — so a restarted server re-materializes each recovered job's
specs through the same codec that admitted them.  Recovery is cheap by
construction: any spec a crashed job already finished was flushed to
the artifact cache by ``execute_plan``, so the re-run simulates only
what was genuinely lost.

The store itself is synchronous, single-writer (all mutations happen on
the event loop or the dispatcher thread's completion callback, never
concurrently), and tolerant of an unwritable journal dir: the service
keeps working from memory and simply loses restart durability.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..harness.cache import default_cache_dir

__all__ = ["JOB_SCHEMA", "Job", "JobStore", "jobs_dir"]

JOB_SCHEMA = 1

#: legal states, in lifecycle order
STATES = ("queued", "running", "done", "failed")


def jobs_dir(root: str | Path | None = None) -> Path:
    """The job-journal directory under the artifact-cache dir."""
    base = Path(root) if root is not None else default_cache_dir()
    return base / "service" / "jobs"


@dataclass
class Job:
    """One submitted plan and everything a client may ask about it."""

    id: str  #: plan fingerprint — the idempotency key and plan ETag
    state: str  #: ``queued`` | ``running`` | ``done`` | ``failed``
    #: raw request descriptors, index-aligned with ``spec_keys``
    request: list[dict]
    #: per-spec result fingerprints (the ``/results/{fp}`` addresses)
    spec_keys: list[str]
    labels: list[str]
    jobs: int  #: worker-fleet size this job runs with
    created_s: float
    started_s: float | None = None
    finished_s: float | None = None
    #: job-level error (dispatcher crash, request re-materialization
    #: failure) — per-spec failures go in ``failures`` instead
    error: str = ""
    #: the runner's failure table, JSON-shaped (key/label/kind/exc/message)
    failures: list[dict] = field(default_factory=list)
    #: RunnerStats snapshot of the executed plan
    stats: dict = field(default_factory=dict)
    #: plan-wide merged MetricsRegistry snapshot (done jobs only)
    metrics: dict = field(default_factory=dict)
    schema: int = JOB_SCHEMA

    @property
    def unique_keys(self) -> list[str]:
        """Deduplicated spec fingerprints, submission order preserved."""
        return list(dict.fromkeys(self.spec_keys))

    def public(self) -> dict:
        """The JSON body ``GET /plans/{id}`` returns."""
        out = asdict(self)
        out["specs"] = [
            {"fingerprint": k, "label": label}
            for k, label in zip(self.spec_keys, self.labels)
        ]
        return out


class JobStore:
    """In-memory job table with a crash-safe JSON journal."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.dir = jobs_dir(root)
        self._jobs: dict[str, Job] = {}
        self.journal_errors = 0

    # ------------------------------------------------------------- journal

    def _journal(self, job: Job) -> None:
        """Persist ``job`` atomically; an unwritable dir degrades silently."""
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(asdict(job), fh, sort_keys=True)
                os.replace(tmp, self.dir / f"{job.id}.json")
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, TypeError, ValueError):
            self.journal_errors += 1

    def recover(self) -> list[Job]:
        """Load journaled jobs; interrupted ones are requeued.

        A job found ``running`` (or still ``queued``) was interrupted by
        a crash or restart: it goes back to ``queued`` and is returned
        so the dispatcher can pick it up again.  Torn or foreign journal
        files are skipped, never fatal.
        """
        requeued: list[Job] = []
        if not self.dir.is_dir():
            return requeued
        for path in sorted(self.dir.glob("*.json")):
            try:
                raw = json.loads(path.read_text())
                if raw.get("schema") != JOB_SCHEMA:
                    continue
                raw.pop("schema", None)
                job = Job(schema=JOB_SCHEMA, **raw)
            except (OSError, ValueError, TypeError):
                continue
            if job.state not in STATES or job.id in self._jobs:
                continue
            if job.state in ("queued", "running"):
                job.state = "queued"
                job.started_s = None
                requeued.append(job)
                self._journal(job)
            self._jobs[job.id] = job
        return requeued

    # -------------------------------------------------------------- access

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def all(self) -> list[Job]:
        return sorted(self._jobs.values(), key=lambda j: j.created_s)

    def counts(self) -> dict[str, int]:
        out = {state: 0 for state in STATES}
        for job in self._jobs.values():
            out[job.state] += 1
        return out

    # ----------------------------------------------------------- lifecycle

    def submit(
        self,
        job_id: str,
        request: list[dict],
        spec_keys: list[str],
        labels: list[str],
        jobs: int,
    ) -> tuple[Job, bool]:
        """Create (or find) the job for a plan; returns (job, created)."""
        existing = self._jobs.get(job_id)
        if existing is not None:
            return existing, False
        job = Job(
            id=job_id,
            state="queued",
            request=request,
            spec_keys=spec_keys,
            labels=labels,
            jobs=jobs,
            created_s=time.time(),
        )
        self._jobs[job_id] = job
        self._journal(job)
        return job, True

    def mark_running(self, job: Job) -> None:
        job.state = "running"
        job.started_s = time.time()
        self._journal(job)

    def finish(
        self,
        job: Job,
        *,
        failures: list[dict] | None = None,
        stats: dict | None = None,
        metrics: dict | None = None,
        error: str = "",
    ) -> None:
        """Move a job to its terminal state (failed iff anything failed)."""
        job.failures = failures or []
        job.stats = stats or {}
        job.metrics = metrics or {}
        job.error = error
        job.state = "failed" if (job.failures or error) else "done"
        job.finished_s = time.time()
        self._journal(job)
