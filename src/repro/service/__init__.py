"""Simulation-as-a-service: async job plane + HTTP/JSON API.

The harness is a build system in disguise — content-keyed artifact
cache, shared-memory trace plane, resumable fault-tolerant plans — and
this package is the serving layer that exposes it to N concurrent
clients: the same read-heavy-cache-with-expensive-fill shape the paper
applies at the DRAM level (overlap the slow fill with serving; never
pay it twice).

Pieces (each its own module):

* :mod:`~repro.service.specs` — declarative JSON plan-request codec;
* :mod:`~repro.service.store` — job table with a crash-safe journal
  under ``<cache-dir>/service/jobs/``;
* :mod:`~repro.service.dispatcher` — background asyncio task running
  each job's ``execute_plan`` (full PR 2/7 fault tolerance) in a
  side thread so the event loop keeps serving;
* :mod:`~repro.service.http` — the stdlib HTTP/1.1 front end with the
  fingerprint-as-ETag idempotency contract.

``repro serve`` (the CLI) and the tests both go through
:func:`start_service` / :func:`run_server` below.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from .dispatcher import Dispatcher
from .http import ServiceApp, result_payload
from .specs import (
    PlanRequestError,
    parse_plan_request,
    plan_fingerprint,
    spec_from_descriptor,
)
from .store import Job, JobStore

__all__ = [
    "Dispatcher",
    "Job",
    "JobStore",
    "PlanRequestError",
    "ServiceApp",
    "ServiceHandle",
    "parse_plan_request",
    "plan_fingerprint",
    "result_payload",
    "run_server",
    "spec_from_descriptor",
    "start_service",
]


@dataclass
class ServiceHandle:
    """A started service: its socket address and its moving parts."""

    server: asyncio.base_events.Server
    app: ServiceApp
    store: JobStore
    dispatcher: Dispatcher
    host: str
    port: int

    async def close(self) -> None:
        """Stop accepting, cancel the dispatcher, release the thread."""
        self.server.close()
        await self.server.wait_closed()
        await self.dispatcher.stop()


async def start_service(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    jobs: int = 1,
    store: JobStore | None = None,
) -> ServiceHandle:
    """Start the job plane + HTTP server on the running event loop.

    ``port=0`` binds an ephemeral port (read it back off the handle).
    ``jobs`` sizes the per-plan simulation fleet — the
    ``ProcessPoolExecutor`` width ``execute_plan`` fans cache misses
    out over — unless a plan request overrides it.
    """
    store = store if store is not None else JobStore()
    dispatcher = Dispatcher(store, default_jobs=jobs)
    app = ServiceApp(store, dispatcher)
    dispatcher.start()
    server = await asyncio.start_server(app.handle, host=host, port=port)
    bound = server.sockets[0].getsockname()
    return ServiceHandle(
        server=server,
        app=app,
        store=store,
        dispatcher=dispatcher,
        host=bound[0],
        port=bound[1],
    )


def run_server(host: str = "127.0.0.1", port: int = 8787, *, jobs: int = 1) -> int:
    """Blocking entry point behind ``repro serve`` (Ctrl-C to stop)."""

    async def _main() -> None:
        handle = await start_service(host, port, jobs=jobs)
        from ..harness.cache import get_cache

        root = getattr(get_cache(), "root", None)
        print(
            f"repro serve: listening on http://{handle.host}:{handle.port} "
            f"(fleet: {jobs} worker{'s' if jobs != 1 else ''}, "
            f"store: {root if root is not None else 'DISABLED'})",
            flush=True,
        )
        try:
            await handle.server.serve_forever()
        finally:
            await handle.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("repro serve: interrupted; jobs journal persisted — restart to resume")
    return 0
