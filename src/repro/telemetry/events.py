"""Event taxonomy for the telemetry subsystem.

Every trace record is ``(cycle, category, kind, channel, rank, a, b, f)``:
a cycle-stamped, typed event with two integer payload fields and one
float payload field whose meaning depends on ``kind``.  Categories gate
collection (the sink's enable mask filters whole categories on the hot
path); kinds identify individual event types within a category.

=====================  ========  =============================================
kind                   category  payload
=====================  ========  =============================================
``READ_ARRIVAL``       REQUEST   a = line
``WRITE_ARRIVAL``      REQUEST   a = line
``ISSUE``              SERVICE   a = request id, b = :class:`ServiceKind`
``COMPLETE``           SERVICE   a = request id, b = read latency (cycles)
``SRAM_SERVICE``       SERVICE   a = line, b = 1 if rank was frozen
``REFRESH_WINDOW``     REFRESH   cycle = lock start, a = lock end
``REFRESH_PAUSE``      REFRESH   a = tRFC cycles still owed (PAUSING mode)
``REFRESH_POSTPONED``  REFRESH   a = refreshes owed after this tick (ELASTIC)
``PHASE``              ROP       a = new :class:`PhaseCode`, b = previous
``PREFETCH_PLAN``      ROP       a = candidate lines, b = profiler B count
``PREFETCH_FILL``      ROP       a = lines stored, b = lines requested
``PREFETCH_SKIP``      ROP       a = :class:`SkipReason`, b = profiler B count
``LAMBDA``             ROP       f = λ estimate for (channel, rank)
``BETA``               ROP       f = β estimate for (channel, rank)
``RETRAIN``            ROP       a = retrain count so far
``SRAM_HIT``           SRAM      a = line
``SRAM_FILL``          SRAM      a = lines stored
``SRAM_INVALIDATE``    SRAM      a = line
=====================  ========  =============================================
"""

from __future__ import annotations

import enum

__all__ = [
    "Category",
    "Kind",
    "PhaseCode",
    "SkipReason",
    "KIND_CATEGORY",
    "kind_name",
]


class Category(enum.IntEnum):
    """Coarse event classes; the sink's enable mask operates on these."""

    REQUEST = 0  #: demand read/write arrivals at the controller
    SERVICE = 1  #: scheduling outcomes: issue, completion, SRAM service
    REFRESH = 2  #: refresh lock windows, pauses, postponements
    ROP = 3  #: ROP engine: phases, prefetch decisions, λ/β updates
    SRAM = 4  #: SRAM buffer micro-events: hits, fills, invalidations


#: number of categories (sizes the sink's mask and drop-counter arrays)
N_CATEGORIES = len(Category)


class Kind(enum.IntEnum):
    """Individual event types (see the module table for payloads)."""

    READ_ARRIVAL = 0
    WRITE_ARRIVAL = 1
    ISSUE = 2
    COMPLETE = 3
    SRAM_SERVICE = 4
    REFRESH_WINDOW = 5
    REFRESH_PAUSE = 6
    REFRESH_POSTPONED = 7
    PHASE = 8
    PREFETCH_PLAN = 9
    PREFETCH_FILL = 10
    PREFETCH_SKIP = 11
    LAMBDA = 12
    BETA = 13
    RETRAIN = 14
    SRAM_HIT = 15
    SRAM_FILL = 16
    SRAM_INVALIDATE = 17


class PhaseCode(enum.IntEnum):
    """Integer encoding of :class:`repro.core.state_machine.RopState`."""

    TRAINING = 0
    OBSERVING = 1
    PREFETCHING = 2


class SkipReason(enum.IntEnum):
    """Why :meth:`RopEngine.plan_prefetch` armed nothing."""

    BUS_PRESSURE = 0  #: channel utilization above the pressure limit
    THROTTLE = 1  #: probabilistic go/no-go decided against prefetching
    NO_CANDIDATES = 2  #: prediction table produced no lines


#: kind → owning category
KIND_CATEGORY: dict[Kind, Category] = {
    Kind.READ_ARRIVAL: Category.REQUEST,
    Kind.WRITE_ARRIVAL: Category.REQUEST,
    Kind.ISSUE: Category.SERVICE,
    Kind.COMPLETE: Category.SERVICE,
    Kind.SRAM_SERVICE: Category.SERVICE,
    Kind.REFRESH_WINDOW: Category.REFRESH,
    Kind.REFRESH_PAUSE: Category.REFRESH,
    Kind.REFRESH_POSTPONED: Category.REFRESH,
    Kind.PHASE: Category.ROP,
    Kind.PREFETCH_PLAN: Category.ROP,
    Kind.PREFETCH_FILL: Category.ROP,
    Kind.PREFETCH_SKIP: Category.ROP,
    Kind.LAMBDA: Category.ROP,
    Kind.BETA: Category.ROP,
    Kind.RETRAIN: Category.ROP,
    Kind.SRAM_HIT: Category.SRAM,
    Kind.SRAM_FILL: Category.SRAM,
    Kind.SRAM_INVALIDATE: Category.SRAM,
}


def kind_name(kind: int) -> str:
    """Human-readable name of a kind code (tolerates raw ints)."""
    try:
        return Kind(kind).name.lower()
    except ValueError:
        return f"kind{kind}"
