"""Structured, low-overhead tracing and metrics for the simulator.

The subsystem has three parts:

* :class:`TraceSink` (:mod:`~repro.telemetry.sink`) — a columnar,
  NumPy-backed ring buffer of typed, cycle-stamped events with a
  per-category enable mask and drop accounting.  The module-level
  :data:`NULL_SINK` is the disabled default: instrumented components
  cache its per-category answer, so telemetry off costs one local
  boolean test per potential event.
* :class:`MetricsRegistry` (:mod:`~repro.telemetry.metrics`) — named
  counters/gauges/histograms serialized with every run result and merged
  deterministically across parallel workers.
* exporters (:mod:`~repro.telemetry.export`) — Chrome trace-event JSON
  (load in Perfetto or ``chrome://tracing``), JSONL and CSV.

Event taxonomy lives in :mod:`~repro.telemetry.events`; the
``repro trace`` CLI subcommand and the ``--telemetry`` flag are the main
entry points.
"""

from .events import Category, Kind, PhaseCode, SkipReason, kind_name
from .export import chrome_trace, write_chrome_trace, write_csv, write_jsonl
from .metrics import MetricsRegistry
from .sink import NULL_SINK, NullSink, TraceSink

__all__ = [
    "Category",
    "Kind",
    "PhaseCode",
    "SkipReason",
    "kind_name",
    "chrome_trace",
    "write_chrome_trace",
    "write_csv",
    "write_jsonl",
    "MetricsRegistry",
    "NULL_SINK",
    "NullSink",
    "TraceSink",
]
