"""Columnar ring-buffer trace sink.

:class:`TraceSink` stores events in parallel NumPy arrays — one append is
eight scalar stores, a snapshot is zero-copy-ish slicing, and exporters
and analyses operate on whole columns at once.  Memory is bounded by
``capacity`` with three overflow policies:

* ``"wrap"`` (default) — overwrite the oldest event; the overwritten
  event's category is charged to the per-category drop counters;
* ``"drop"`` — discard the incoming event instead;
* ``"grow"`` — double the arrays (unbounded; used by the offline
  refresh-analysis capture, which must see every event).

Per-category collection is gated by an enable mask; instrumented
components cache :meth:`TraceSink.wants` per category at construction, so
with telemetry disabled (the module-level :data:`NULL_SINK`) the hot path
pays only a local boolean test per potential event.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .events import Category, Kind, N_CATEGORIES, kind_name

__all__ = ["TraceSink", "NullSink", "NULL_SINK"]

#: column name → dtype of one event record
COLUMNS: dict[str, type] = {
    "cycle": np.int64,
    "cat": np.int16,
    "kind": np.int16,
    "channel": np.int16,
    "rank": np.int16,
    "a": np.int64,
    "b": np.int64,
    "f": np.float64,
}

_POLICIES = ("wrap", "drop", "grow")


class TraceSink:
    """Bounded, category-masked, columnar event buffer."""

    enabled = True

    def __init__(
        self,
        capacity: int = 1 << 18,
        *,
        categories: Iterable[Category] | None = None,
        policy: str = "wrap",
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"sink capacity must be positive, got {capacity}")
        if policy not in _POLICIES:
            raise ValueError(f"unknown overflow policy {policy!r}; known: {_POLICIES}")
        self.capacity = capacity
        self.policy = policy
        enabled = set(Category) if categories is None else set(categories)
        self._mask = [Category(c) in enabled for c in range(N_CATEGORIES)]
        self._cols = {name: np.zeros(capacity, dtype=dt) for name, dt in COLUMNS.items()}
        self._head = 0  #: next write index
        self._len = 0  #: events currently stored
        #: events accepted (stored at least momentarily), total and per category
        self.emitted = 0
        self.emitted_by_category = [0] * N_CATEGORIES
        #: events lost to overflow (overwritten under "wrap", rejected
        #: under "drop"), per category of the *lost* event
        self.dropped_by_category = [0] * N_CATEGORIES
        #: events rejected by the category enable mask
        self.masked = 0

    # ------------------------------------------------------------------ config

    def wants(self, category: Category) -> bool:
        """Whether this sink collects ``category`` (cache me on hot paths)."""
        return self._mask[category]

    def enable(self, category: Category) -> None:
        """Turn collection of ``category`` on (before instrumentation binds)."""
        self._mask[category] = True

    def disable(self, category: Category) -> None:
        """Turn collection of ``category`` off."""
        self._mask[category] = False

    @property
    def dropped(self) -> int:
        """Total events lost to overflow."""
        return sum(self.dropped_by_category)

    def __len__(self) -> int:
        return self._len

    # ------------------------------------------------------------------ emit

    def emit(
        self,
        cat: int,
        kind: int,
        cycle: int,
        channel: int = -1,
        rank: int = -1,
        a: int = 0,
        b: int = 0,
        f: float = 0.0,
    ) -> None:
        """Append one event (constant amortized time)."""
        if not self._mask[cat]:
            self.masked += 1
            return
        i = self._head
        if self._len == self.capacity:
            if self.policy == "grow":
                self._grow()
                i = self._head
            elif self.policy == "drop":
                self.dropped_by_category[cat] += 1
                return
            else:  # wrap: the slot under the head holds the oldest event
                self.dropped_by_category[self._cols["cat"][i]] += 1
                self._len -= 1
        cols = self._cols
        cols["cycle"][i] = cycle
        cols["cat"][i] = cat
        cols["kind"][i] = kind
        cols["channel"][i] = channel
        cols["rank"][i] = rank
        cols["a"][i] = a
        cols["b"][i] = b
        cols["f"][i] = f
        self._head = (i + 1) % self.capacity
        self._len += 1
        self.emitted += 1
        self.emitted_by_category[cat] += 1

    def _grow(self) -> None:
        """Double capacity, preserving chronological order."""
        ordered = self.snapshot()
        cap = self.capacity * 2
        self._cols = {name: np.zeros(cap, dtype=dt) for name, dt in COLUMNS.items()}
        for name, arr in ordered.items():
            self._cols[name][: self._len] = arr
        self.capacity = cap
        self._head = self._len % cap

    # ------------------------------------------------------------------ read

    def snapshot(self) -> dict[str, np.ndarray]:
        """Stored events as column arrays in chronological order (copies)."""
        n, cap, head = self._len, self.capacity, self._head
        if n < cap or head == 0:
            start = (head - n) % cap if n else 0
            sl = slice(start, start + n)
            return {name: col[sl].copy() for name, col in self._cols.items()}
        # full and wrapped: oldest event sits at the head
        return {
            name: np.concatenate([col[head:], col[:head]])
            for name, col in self._cols.items()
        }

    def select(
        self,
        *,
        category: Category | None = None,
        kind: Kind | None = None,
        channel: int | None = None,
        rank: int | None = None,
        snapshot: dict[str, np.ndarray] | None = None,
    ) -> dict[str, np.ndarray]:
        """Chronologically ordered events matching every given filter."""
        snap = self.snapshot() if snapshot is None else snapshot
        mask = np.ones(len(snap["cycle"]), dtype=bool)
        for col, want in (
            ("cat", category),
            ("kind", kind),
            ("channel", channel),
            ("rank", rank),
        ):
            if want is not None:
                mask &= snap[col] == int(want)
        return {name: arr[mask] for name, arr in snap.items()}

    def records(self) -> Iterator[dict]:
        """Stored events as per-event dicts (exporter convenience)."""
        snap = self.snapshot()
        for i in range(len(snap["cycle"])):
            yield {name: snap[name][i].item() for name in snap}

    def summary(self) -> dict:
        """Collection statistics for reporting."""
        return {
            "capacity": self.capacity,
            "stored": self._len,
            "emitted": self.emitted,
            "dropped": self.dropped,
            "masked": self.masked,
            "policy": self.policy,
            "by_category": {
                Category(c).name.lower(): {
                    "emitted": self.emitted_by_category[c],
                    "dropped": self.dropped_by_category[c],
                }
                for c in range(N_CATEGORIES)
            },
        }

    def counts_by_kind(self) -> dict[str, int]:
        """Stored-event counts keyed by kind name."""
        snap = self.snapshot()
        kinds, counts = np.unique(snap["kind"], return_counts=True)
        return {kind_name(int(k)): int(n) for k, n in zip(kinds, counts)}


class NullSink:
    """Disabled sink: collects nothing, costs (almost) nothing.

    Instrumented components cache ``wants(...)`` per category, so the
    per-event cost of disabled telemetry is one local boolean test.
    """

    enabled = False
    capacity = 0
    policy = "drop"
    emitted = 0
    masked = 0
    dropped = 0

    def wants(self, category: Category) -> bool:
        return False

    def emit(self, *args, **kwargs) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> dict[str, np.ndarray]:
        return {name: np.zeros(0, dtype=dt) for name, dt in COLUMNS.items()}

    def select(self, **kwargs) -> dict[str, np.ndarray]:
        return self.snapshot()

    def summary(self) -> dict:
        return {"capacity": 0, "stored": 0, "emitted": 0, "dropped": 0, "masked": 0}


#: process-wide no-op sink; components default to it so un-instrumented
#: construction paths never pay for telemetry
NULL_SINK = NullSink()
