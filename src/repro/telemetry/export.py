"""Trace exporters: Chrome trace-event JSON (Perfetto), JSONL and CSV.

The Chrome trace-event format is the JSON dialect both Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing`` load directly.  The
exporter lays the simulation out as:

* one *process* per memory channel, one *thread* (track) per rank —
  refresh freezes render as duration (``"ph": "X"``) spans and demand
  request arrivals as instant (``"ph": "i"``) events on the rank's track;
* one extra ``rop`` process whose track shows the engine's
  Training/Observing/Prefetching phases as duration spans, with prefetch
  batches as instants and λ/β as counter (``"ph": "C"``) series.

Timestamps are microseconds (the format's unit), converted from
controller cycles via the DRAM clock period.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import IO

from .events import Category, Kind, PhaseCode, kind_name

__all__ = ["chrome_trace", "write_chrome_trace", "write_jsonl", "write_csv"]

#: pid of the synthetic ROP-engine process in the exported trace
ROP_PID = 1000


def _us(cycle: int, tck_ns: float) -> float:
    """Controller cycle → trace timestamp in microseconds."""
    return cycle * tck_ns / 1000.0


def chrome_trace(sink, tck_ns: float, *, label: str = "repro") -> dict:
    """Build a Chrome trace-event JSON object from a sink's contents."""
    snap = sink.snapshot()
    events: list[dict] = []
    seen_tracks: set[tuple[int, int]] = set()

    def track(ch: int, rk: int) -> tuple[int, int]:
        pid, tid = int(ch) + 1, int(rk) + 1
        if (pid, tid) not in seen_tracks:
            seen_tracks.add((pid, tid))
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"channel {ch}"},
                }
            )
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"rank {rk}"},
                }
            )
        return pid, tid

    n = len(snap["cycle"])
    cycles, kinds = snap["cycle"], snap["kind"]
    chans, ranks = snap["channel"], snap["rank"]
    avals, bvals, fvals = snap["a"], snap["b"], snap["f"]

    phase_open: tuple[int, int] | None = None  # (start cycle, PhaseCode)
    rop_track_named = False

    def rop_track() -> None:
        nonlocal rop_track_named
        if not rop_track_named:
            rop_track_named = True
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": ROP_PID,
                    "tid": 0,
                    "args": {"name": "rop engine"},
                }
            )
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": ROP_PID,
                    "tid": 1,
                    "args": {"name": "phase"},
                }
            )

    last_cycle = 0
    for i in range(n):
        cyc, kind = int(cycles[i]), int(kinds[i])
        ch, rk = int(chans[i]), int(ranks[i])
        a, b, f = int(avals[i]), int(bvals[i]), float(fvals[i])
        last_cycle = max(last_cycle, cyc)
        if kind in (Kind.READ_ARRIVAL, Kind.WRITE_ARRIVAL):
            pid, tid = track(ch, rk)
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": "read" if kind == Kind.READ_ARRIVAL else "write",
                    "cat": "request",
                    "ts": _us(cyc, tck_ns),
                    "pid": pid,
                    "tid": tid,
                    "args": {"line": a, "cycle": cyc},
                }
            )
        elif kind == Kind.REFRESH_WINDOW:
            pid, tid = track(ch, rk)
            last_cycle = max(last_cycle, a)
            events.append(
                {
                    "ph": "X",
                    "name": "refresh freeze",
                    "cat": "refresh",
                    "ts": _us(cyc, tck_ns),
                    "dur": max(_us(a - cyc, tck_ns), 0.0),
                    "pid": pid,
                    "tid": tid,
                    "args": {"start_cycle": cyc, "end_cycle": a},
                }
            )
        elif kind == Kind.SRAM_SERVICE:
            pid, tid = track(ch, rk)
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": "sram hit",
                    "cat": "service",
                    "ts": _us(cyc, tck_ns),
                    "pid": pid,
                    "tid": tid,
                    "args": {"line": a, "in_lock": bool(b)},
                }
            )
        elif kind == Kind.PHASE:
            rop_track()
            if phase_open is not None:
                start, code = phase_open
                events.append(_phase_span(start, cyc, code, tck_ns))
            phase_open = (cyc, a)
        elif kind in (Kind.LAMBDA, Kind.BETA):
            rop_track()
            series = "lambda" if kind == Kind.LAMBDA else "beta"
            events.append(
                {
                    "ph": "C",
                    "name": f"{series} ch{ch}.rank{rk}",
                    "cat": "rop",
                    "ts": _us(cyc, tck_ns),
                    "pid": ROP_PID,
                    "tid": 1,
                    "args": {series: f},
                }
            )
        elif kind in (Kind.PREFETCH_PLAN, Kind.PREFETCH_FILL, Kind.PREFETCH_SKIP):
            rop_track()
            events.append(
                {
                    "ph": "i",
                    "s": "p",
                    "name": kind_name(kind),
                    "cat": "rop",
                    "ts": _us(cyc, tck_ns),
                    "pid": ROP_PID,
                    "tid": 1,
                    "args": {"a": a, "b": b},
                }
            )
        # remaining kinds (pauses, postponements, SRAM micro-events,
        # retrains) stay in the JSONL/CSV dumps but would only clutter the
        # timeline view
    if phase_open is not None:
        start, code = phase_open
        events.append(_phase_span(start, max(last_cycle, start), code, tck_ns))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": f"repro telemetry ({label})",
            "clock_period_ns": tck_ns,
        },
    }


def _phase_span(start: int, end: int, code: int, tck_ns: float) -> dict:
    try:
        name = PhaseCode(code).name.lower()
    except ValueError:
        name = f"phase{code}"
    return {
        "ph": "X",
        "name": name,
        "cat": "rop-phase",
        "ts": _us(start, tck_ns),
        "dur": max(_us(end - start, tck_ns), 0.0),
        "pid": ROP_PID,
        "tid": 1,
        "args": {"start_cycle": start, "end_cycle": end},
    }


def write_chrome_trace(
    sink, tck_ns: float, path: str | Path, *, label: str = "repro"
) -> Path:
    """Write a Perfetto-loadable ``.trace.json`` file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(chrome_trace(sink, tck_ns, label=label), fh)
    return path


def write_jsonl(sink, path: str | Path) -> Path:
    """Dump raw events as one JSON object per line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        for rec in sink.records():
            rec["kind_name"] = kind_name(rec["kind"])
            rec["category"] = Category(rec["cat"]).name.lower()
            json.dump(rec, fh)
            fh.write("\n")
    return path


def write_csv(sink, path_or_file: str | Path | IO[str]) -> None:
    """Dump raw events as CSV (header + one row per event)."""
    snap = sink.snapshot()
    names = list(snap)

    def _write(fh) -> None:
        w = csv.writer(fh)
        w.writerow(names + ["kind_name"])
        for i in range(len(snap["cycle"])):
            row = [snap[name][i].item() for name in names]
            w.writerow(row + [kind_name(int(snap["kind"][i]))])

    if hasattr(path_or_file, "write"):
        _write(path_or_file)
    else:
        path = Path(path_or_file)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", newline="") as fh:
            _write(fh)
