"""Run-wide metrics registry: counters, gauges and histograms.

A :class:`MetricsRegistry` is populated during (or after) a simulation,
serialized as a plain-JSON ``snapshot()`` dict that travels with each
``RunSpec`` result through the artifact cache, and merged across the
parallel runner's workers into one plan-wide view.  Merging is
deterministic and order-independent:

* **counters** sum;
* **gauges** reduce by a policy encoded in the name suffix — ``.max`` /
  ``.min`` take extrema, everything else averages (recorded with a weight
  so merging is associative);
* **histograms** add bucket counts (bounds must agree).

That commutativity is what makes ``jobs=1`` and ``jobs=N`` executions
produce identical merged metrics.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Mapping, Sequence

__all__ = ["MetricsRegistry", "DEFAULT_LATENCY_BOUNDS"]

#: default read-latency histogram bucket upper bounds (controller cycles)
DEFAULT_LATENCY_BOUNDS: tuple[int, ...] = (
    25, 50, 75, 100, 150, 200, 300, 500, 1000, 2000, 5000,
)


class MetricsRegistry:
    """Named counters, gauges and fixed-bucket histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, int | float] = {}
        #: name → (weighted sum, weight) — or (extremum, count) for
        #: ``.max`` / ``.min`` gauges
        self._gauges: dict[str, tuple[float, float]] = {}
        #: name → (bounds, counts[len(bounds) + 1], sum)
        self._hists: dict[str, tuple[tuple[float, ...], list[int], float]] = {}

    # ------------------------------------------------------------------ write

    def count(self, name: str, n: int | float = 1) -> None:
        """Add ``n`` to counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float, weight: float = 1.0) -> None:
        """Record a gauge observation (merge policy from the name suffix)."""
        cur = self._gauges.get(name)
        if name.endswith(".max"):
            self._gauges[name] = (
                (value, 1.0) if cur is None else (max(cur[0], value), cur[1] + 1)
            )
        elif name.endswith(".min"):
            self._gauges[name] = (
                (value, 1.0) if cur is None else (min(cur[0], value), cur[1] + 1)
            )
        else:
            acc, w = cur if cur is not None else (0.0, 0.0)
            self._gauges[name] = (acc + value * weight, w + weight)

    def observe(
        self, name: str, value: float, bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS
    ) -> None:
        """Add one observation to histogram ``name`` (last bucket = overflow)."""
        hist = self._hists.get(name)
        if hist is None:
            hist = (tuple(bounds), [0] * (len(bounds) + 1), 0.0)
            self._hists[name] = hist
        hb, counts, total = hist
        counts[bisect.bisect_left(hb, value)] += 1
        self._hists[name] = (hb, counts, total + value)

    # ------------------------------------------------------------------ read

    def snapshot(self) -> dict:
        """JSON-serializable, mergeable view of everything recorded."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": {
                name: [float(v), float(w)]
                for name, (v, w) in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "bounds": list(map(float, hb)),
                    "counts": list(counts),
                    "sum": float(total),
                }
                for name, (hb, counts, total) in sorted(self._hists.items())
            },
        }

    @staticmethod
    def gauge_value(snapshot: Mapping, name: str) -> float:
        """Resolved value of a gauge in a snapshot (mean unless .max/.min)."""
        v, w = snapshot["gauges"][name]
        if name.endswith((".max", ".min")):
            return v
        return v / w if w else 0.0

    # ------------------------------------------------------------------ merge

    @staticmethod
    def merge(snapshots: Iterable[Mapping]) -> dict:
        """Deterministically merge snapshot dicts (order-independent)."""
        counters: dict[str, int | float] = {}
        gauges: dict[str, list[float]] = {}
        hists: dict[str, dict] = {}
        for snap in snapshots:
            if not snap:
                continue
            for name, n in snap.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + n
            for name, (v, w) in snap.get("gauges", {}).items():
                cur = gauges.get(name)
                if cur is None:
                    gauges[name] = [float(v), float(w)]
                elif name.endswith(".max"):
                    gauges[name] = [max(cur[0], v), cur[1] + w]
                elif name.endswith(".min"):
                    gauges[name] = [min(cur[0], v), cur[1] + w]
                else:
                    gauges[name] = [cur[0] + v, cur[1] + w]
            for name, h in snap.get("histograms", {}).items():
                cur = hists.get(name)
                if cur is None:
                    hists[name] = {
                        "bounds": list(h["bounds"]),
                        "counts": list(h["counts"]),
                        "sum": float(h["sum"]),
                    }
                else:
                    if cur["bounds"] != list(h["bounds"]):
                        raise ValueError(
                            f"histogram {name!r} bucket bounds disagree across runs"
                        )
                    cur["counts"] = [x + y for x, y in zip(cur["counts"], h["counts"])]
                    cur["sum"] += float(h["sum"])
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(hists.items())),
        }

    # ------------------------------------------------------------------ builders

    @classmethod
    def from_run(cls, stats, cores, rop_summary: dict | None) -> "MetricsRegistry":
        """Registry for one finished co-simulation.

        Derived purely from the scalar results (``ControllerStats``,
        per-core outcomes, the ROP summary), never from the trace sink, so
        a run's metrics are bit-identical whether telemetry was on or off.
        """
        reg = cls()
        for name, value in vars(stats).items():
            reg.count(f"dram.{name}", value)
        for core in cores:
            reg.count("cpu.instructions", core.instructions)
            reg.count("cpu.reads", core.reads)
            reg.count("cpu.writes", core.writes)
            reg.gauge("cpu.ipc", core.ipc)
        reg.gauge("cpu.ipc.min", min(c.ipc for c in cores))
        reg.gauge("cpu.ipc.max", max(c.ipc for c in cores))
        reg.gauge("dram.read_latency.avg", stats.avg_read_latency)
        reg.gauge("dram.row_hit_rate", stats.row_hit_rate)
        reg.gauge("dram.lock_hit_rate", stats.lock_hit_rate)
        if rop_summary is not None:
            for name in (
                "armed_locks",
                "armed_arrivals",
                "armed_hits",
                "retrains",
                "buffer_fills",
                "buffer_hits",
                "buffer_invalidations",
                "decisions_go",
                "decisions_skip",
            ):
                reg.count(f"rop.{name}", rop_summary[name])
            reg.gauge("rop.armed_hit_rate", rop_summary["armed_hit_rate"])
        return reg

    @classmethod
    def from_trace(cls, sink) -> "MetricsRegistry":
        """Trace-derived metrics (read-latency histogram, event counts).

        Only meaningful when the sink collected SERVICE events; used by the
        ``repro trace`` summary, *not* by cached results.
        """
        from .events import Category, Kind

        reg = cls()
        snap = sink.snapshot()
        completes = sink.select(kind=Kind.COMPLETE, snapshot=snap)
        for lat in completes["b"]:
            reg.observe("trace.read_latency", int(lat))
        for name, n in sink.counts_by_kind().items():
            reg.count(f"trace.events.{name}", n)
        refreshes = sink.select(
            category=Category.REFRESH, kind=Kind.REFRESH_WINDOW, snapshot=snap
        )
        locked = (refreshes["a"] - refreshes["cycle"]).sum()
        reg.count("trace.refresh_locked_cycles", int(locked))
        return reg
