"""Configuration dataclasses for every subsystem of the reproduction.

The top-level :class:`SystemConfig` aggregates one config object per
subsystem; all of them are frozen dataclasses so a configuration can be
hashed, compared and safely shared between runs. Defaults reproduce the
paper's Table III setup: a single-channel DDR4-1600 memory with 64-entry
read/write queues, FR-FCFS scheduling with batched writes, an 8-bank rank,
``tREFI = 7.8 us`` / ``tRFC = 350 ns`` auto-refresh, and a 64-line SRAM
prefetch buffer for ROP.
"""

from __future__ import annotations

import enum
import typing
from dataclasses import dataclass, field, replace

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .dram.timings import DramTimings


def _default_timings() -> "DramTimings":
    """DDR4-1600 default, imported lazily to avoid a config↔dram cycle."""
    from .dram.timings import DDR4_1600

    return DDR4_1600

__all__ = [
    "AddressMapScheme",
    "RefreshMode",
    "WindowBase",
    "MemoryOrganization",
    "RefreshConfig",
    "SchedulerConfig",
    "RopConfig",
    "CoreConfig",
    "LlcConfig",
    "SystemConfig",
    "CACHE_LINE_BYTES",
]

#: Cache-line (DRAM burst) size in bytes; fixed at 64 B throughout.
CACHE_LINE_BYTES: int = 64


class AddressMapScheme(enum.Enum):
    """Physical-address to DRAM-coordinate interleaving scheme."""

    #: row : rank : bank : column — conventional fine-grained interleaving;
    #: consecutive lines hop across banks every DRAM row. Kept for the
    #: mapping ablation (it destroys the bank locality ROP exploits).
    ROW_RANK_BANK_COL = "row_rank_bank_col"

    #: bank-locality layout (low row bits below the bank bits): a stream
    #: dwells ~512 KB in one bank — the organization the paper's per-bank
    #: prediction table assumes ("many applications exhibit bank locality").
    #: Default for single-core experiments.
    BANK_LOCALITY = "bank_locality"

    #: bank-locality layout with the rank index in the top address bits —
    #: the paper's *Rank-aware Mapping* (rank partitioning): each
    #: application's footprint is pinned to one rank.
    RANK_PARTITIONED = "rank_partitioned"


class RefreshMode(enum.Enum):
    """How (and whether) the refresh manager issues REF commands."""

    NONE = "none"  #: idealized no-refresh memory (upper bound)
    AUTO_1X = "auto_1x"  #: standard all-bank auto-refresh (the baseline)
    FGR_2X = "fgr_2x"  #: JEDEC fine-grained refresh, 2x mode
    FGR_4X = "fgr_4x"  #: JEDEC fine-grained refresh, 4x mode
    PER_BANK = "per_bank"  #: round-robin per-bank refresh (future-work mode)
    ELASTIC = "elastic"  #: auto-refresh with Elastic-Refresh-style postponement
    #: Refresh-Pausing-style interruptible refresh (Nair et al., HPCA'13):
    #: the lock is split into row-bundle segments and pauses between
    #: segments whenever demand is pending — an additional comparison
    #: baseline beyond the paper's two reference memories
    PAUSING = "pausing"
    #: DARP-style dynamic refresh scheduling (Chang et al., HPCA'14):
    #: per-bank REFpb commands issued out of order into *idle* banks,
    #: postponed (up to ``postpone_max`` per bank) while a bank has
    #: demand, and piggybacked onto write-drain periods
    DARP = "darp"
    #: SARP-style subarray-level parallelism (Chang et al., HPCA'14):
    #: per-bank refresh where only the subarray under refresh blocks —
    #: accesses to the bank's other subarrays keep flowing
    SARP = "sarp"
    #: RAIDR-style retention-aware binning (Liu et al., ISCA'12): rows
    #: are grouped into 64/128/256 ms retention bins and the all-bank
    #: tREFI grid only fires the ticks whose row group is due
    RAIDR = "raidr"


class WindowBase(enum.Enum):
    """Base length used for observational / examination windows."""

    TREFI = "trefi"  #: windows are multiples of the refresh interval
    TRFC = "trfc"  #: windows are multiples of the refresh lock duration


@dataclass(frozen=True)
class MemoryOrganization:
    """Geometry of the DRAM system (Table III defaults).

    ``columns`` counts *cache lines* per row: an 8 KB row holds 128 lines.
    """

    channels: int = 1
    ranks: int = 1
    banks: int = 8
    rows: int = 1 << 16
    columns: int = 128

    @property
    def lines_per_bank(self) -> int:
        """Cache lines addressable in one bank."""
        return self.rows * self.columns

    @property
    def lines_per_rank(self) -> int:
        """Cache lines addressable in one rank."""
        return self.banks * self.lines_per_bank

    @property
    def total_lines(self) -> int:
        """Cache lines addressable in the whole memory."""
        return self.channels * self.ranks * self.lines_per_rank

    @property
    def capacity_bytes(self) -> int:
        """Total capacity in bytes."""
        return self.total_lines * CACHE_LINE_BYTES


@dataclass(frozen=True)
class RefreshConfig:
    """Refresh-manager behaviour.

    ``stagger`` offsets each rank's refresh schedule by
    ``tREFI / ranks`` so REF commands do not collide across ranks, which is
    what real controllers do and what ROP's shared-SRAM "ranks take turns"
    design assumes.  ``postpone_max`` bounds Elastic-Refresh postponement
    (JEDEC allows a refresh debt of up to 8).
    """

    mode: RefreshMode = RefreshMode.AUTO_1X
    stagger: bool = True
    postpone_max: int = 8
    #: segments a PAUSING-mode refresh can be split into (pause points)
    pause_segments: int = 8
    #: SARP: subarrays per bank (a power of two that divides ``rows``);
    #: only the subarray under refresh blocks, the rest keep serving
    subarrays_per_bank: int = 8
    #: RAIDR: fraction of row groups in the (64 ms, 128 ms, 256 ms)
    #: retention bins.  Liu et al. measure ~1000 rows below 256 ms in a
    #: 32 GB system; the default keeps a conservative 5 % at 64 ms.
    raidr_bins: tuple = (0.05, 0.25, 0.70)
    #: RAIDR: row groups walked per retention window (the JEDEC grid
    #: refreshes 8192 row groups per 64 ms).  Small values make the bin
    #: structure visible in short validation runs.
    raidr_window_ticks: int = 8192

    @property
    def enabled(self) -> bool:
        """Whether any refresh is performed at all."""
        return self.mode is not RefreshMode.NONE


@dataclass(frozen=True)
class SchedulerConfig:
    """Memory-controller queueing and scheduling parameters."""

    read_queue_depth: int = 64
    write_queue_depth: int = 64
    #: start draining writes when the write queue reaches this occupancy…
    write_drain_high: int = 40
    #: …and stop once it falls back to this occupancy.
    write_drain_low: int = 16


@dataclass(frozen=True)
class RopConfig:
    """Parameters of the Refresh-Oriented Prefetching engine.

    Defaults follow Section V-A: the observational window equals one
    refresh period, training covers 50 refreshes, the hit-rate threshold is
    0.6 and the SRAM buffer holds 64 cache lines.
    """

    enabled: bool = False
    sram_lines: int = 64
    sram_latency: int = 3  #: SRAM access latency in controller cycles
    window_base: WindowBase = WindowBase.TREFI
    window_mult: float = 1.0
    training_refreshes: int = 50
    hit_rate_threshold: float = 0.6
    #: number of recent armed refreshes over which the hit rate is judged
    hit_rate_window: int = 16
    #: harm guard: if the fraction of prefetched lines that are ever hit
    #: (buffer utilization) stays below this over the outcome window, fall
    #: back to Training — reads arriving inside a lock are too rare for
    #: some workloads to make the in-lock hit rate informative, yet useless
    #: prefetches still burn bandwidth every tREFI.
    min_buffer_utilization: float = 0.25
    #: each fallback doubles the next training length (cap: 8×) so a
    #: persistently unpredictable workload converges to almost-never
    #: prefetching instead of oscillating.
    training_backoff_cap: int = 8
    #: use the probabilistic λ/β throttle; if False, always prefetch when
    #: the prediction table has any pattern (ablation knob).
    probabilistic: bool = True
    #: update the prediction table on reads only. The paper says "an
    #: access" updates the table, but prefetching only ever services
    #: *reads* (writes are absorbed by the write queue), and letting
    #: write-backs into the table steals Eq.-3 budget for lines that trail
    #: the read stream by a full LLC capacity and will never be read.
    #: Ablation knob: set False for the literal reads+writes reading.
    table_reads_only: bool = True
    #: drain pending requests to the to-be-refreshed rank before the lock.
    drain_before_refresh: bool = True
    #: bandwidth guard: cap the prefetch depth at ``depth_margin`` × the
    #: EMA of reads observed per refresh lock (min 8 lines), instead of
    #: always filling the whole buffer. In bandwidth-saturated
    #: multi-programmed runs, prefetched-but-unused lines steal bus slots
    #: 1:1 from demand; the paper's lighter per-rank traffic hid this.
    #: Set False for the literal fill-to-capacity behaviour (ablation).
    adaptive_depth: bool = True
    depth_margin: float = 4.0
    #: bus-pressure guard: above this data-bus utilization the channel is
    #: throughput-bound — a refresh lock barely costs anything (other
    #: ranks keep the bus busy) while prefetch fills tax the bottleneck
    #: directly, so arming is suppressed. Below it, locks stall cores and
    #: prefetching pays. Set to 1.0 to disable (ablation).
    bus_pressure_limit: float = 0.45
    seed: int = 0xC0FFEE

    def window_cycles(self, timings: "DramTimings") -> int:
        """Observational-window length in controller cycles."""
        base = timings.refi if self.window_base is WindowBase.TREFI else timings.rfc
        return max(1, int(round(base * self.window_mult)))


@dataclass(frozen=True)
class CoreConfig:
    """Trace-driven out-of-order core model parameters.

    The core retires at most one instruction per CPU cycle, overlaps up to
    ``mlp`` outstanding memory reads (an MSHR/reorder-buffer proxy) and
    never stalls on writes (drained through the memory controller's write
    queue).
    """

    cpu_clock_mult: int = 4  #: CPU cycles per memory-controller cycle
    mlp: int = 6
    base_cpi: float = 1.0


@dataclass(frozen=True)
class LlcConfig:
    """Last-level cache geometry (set-associative, LRU, write-back)."""

    size_bytes: int = 2 * 1024 * 1024
    ways: int = 16
    line_bytes: int = CACHE_LINE_BYTES

    @property
    def sets(self) -> int:
        """Number of sets implied by size / ways / line size."""
        sets = self.size_bytes // (self.ways * self.line_bytes)
        if sets <= 0 or sets & (sets - 1):
            raise ValueError(
                f"LLC geometry yields non-power-of-two set count {sets} "
                f"(size={self.size_bytes}, ways={self.ways})"
            )
        return sets


@dataclass(frozen=True)
class SystemConfig:
    """Aggregate configuration for one simulation run."""

    timings: "DramTimings" = field(default_factory=_default_timings)
    organization: MemoryOrganization = field(default_factory=MemoryOrganization)
    refresh: RefreshConfig = field(default_factory=RefreshConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    rop: RopConfig = field(default_factory=RopConfig)
    core: CoreConfig = field(default_factory=CoreConfig)
    llc: LlcConfig = field(default_factory=LlcConfig)
    address_map: AddressMapScheme = AddressMapScheme.BANK_LOCALITY

    def effective_timings(self) -> "DramTimings":
        """Timings adjusted for the configured refresh mode."""
        mode = self.refresh.mode
        if mode is RefreshMode.FGR_2X:
            return self.timings.fine_grained(2)
        if mode is RefreshMode.FGR_4X:
            return self.timings.fine_grained(4)
        if mode in (RefreshMode.PER_BANK, RefreshMode.DARP, RefreshMode.SARP):
            # Per-bank refresh (and the DARP/SARP schemes built on it):
            # one bank refreshed per REFpb command; the REFpb period is
            # tREFI / banks and tRFCpb is tRFC × 16/35 — exactly the
            # JEDEC 160 ns / 350 ns ratio for an 8 Gb device, expressed
            # as a ratio so density sweeps (which scale tRFC) scale the
            # per-bank lock too.
            return self.timings.with_refresh(
                refi=max(1, self.timings.refi // self.organization.banks),
                rfc=max(1, (self.timings.rfc * 16) // 35),
            )
        return self.timings

    # -- convenience constructors -------------------------------------------------

    def with_rop(self, **rop_kwargs) -> "SystemConfig":
        """Copy with ROP enabled (and optional RopConfig overrides)."""
        return replace(self, rop=replace(self.rop, enabled=True, **rop_kwargs))

    def with_refresh_mode(self, mode: RefreshMode) -> "SystemConfig":
        """Copy with a different refresh mode."""
        return replace(self, refresh=replace(self.refresh, mode=mode))

    def with_refresh_opts(self, **refresh_kwargs) -> "SystemConfig":
        """Copy with :class:`RefreshConfig` field overrides."""
        return replace(self, refresh=replace(self.refresh, **refresh_kwargs))

    def with_density(self, gbit: int) -> "SystemConfig":
        """Copy with tRFC scaled to a device density (4–32 Gb)."""
        return replace(self, timings=self.timings.for_density(gbit))

    def with_llc_size(self, size_bytes: int) -> "SystemConfig":
        """Copy with a different LLC capacity."""
        return replace(self, llc=replace(self.llc, size_bytes=size_bytes))

    @classmethod
    def single_core(cls, **kwargs) -> "SystemConfig":
        """Paper single-core setup: 1 rank, 2 MB LLC."""
        defaults = dict(
            organization=MemoryOrganization(ranks=1),
            llc=LlcConfig(size_bytes=2 * 1024 * 1024),
        )
        defaults.update(kwargs)
        return cls(**defaults)

    @classmethod
    def quad_core(cls, *, rank_partitioned: bool = True, **kwargs) -> "SystemConfig":
        """Paper 4-core setup: 4 ranks, 4 MB LLC, rank partitioning."""
        defaults = dict(
            organization=MemoryOrganization(ranks=4),
            llc=LlcConfig(size_bytes=4 * 1024 * 1024),
            address_map=(
                AddressMapScheme.RANK_PARTITIONED
                if rank_partitioned
                else AddressMapScheme.BANK_LOCALITY
            ),
        )
        defaults.update(kwargs)
        return cls(**defaults)
