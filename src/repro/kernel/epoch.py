"""Epoch-stepped flat simulation kernel (the ``epoch`` engine).

The scalar engine is already event-driven — no cycle is ever stepped that
has no event — but it pays for generality on every event: a closure
allocation per push, a ``Request`` object per access, and five-plus
attribute/method hops per hot-path touch (queue → controller → rank →
bank → stats).  This kernel collapses the whole single-channel,
single-rank, single-core hot path into **one function frame**: all
mutable machine state (bank timing vectors, rank gates, core progress,
stats counters) lives in local variables, events are plain integer-tagged
tuples in a local heap, and the trace is consumed from the pre-decoded
columnar arrays (``AddressMapper.decode_array``) as flat Python lists.
Between two events the machine state is, by construction, constant — the
heap pop *is* the epoch advance, in O(1) per event rather than per cycle.

Bit-identity contract
---------------------
The kernel must be indistinguishable from the scalar engine in every
observable: result digests, telemetry event streams, validation-tap call
sequences, and RNG consumption order.  That contract dictates the design:

* **Event order** replicates the scalar heap exactly: tuples compare as
  ``(cycle, seq)`` with ``seq`` allocated in the same order the scalar
  engine pushes (refresh tick first, then the core's first op).
* **RNG order**: the throttle coin-flips (``Prefetcher.decide``) and any
  retrain/telemetry side effects are reached by *delegating* to the real
  ``RopEngine.plan_prefetch`` / ``on_prefetch_fill`` /
  ``on_refresh_executed`` at the same points the scalar controller calls
  them.  Only per-request bookkeeping (profiler window feed, prediction
  table delta matching) is inlined — and it mutates the *real* profiler /
  table objects so the delegated calls observe identical state.
* **Telemetry** is emitted per event, not batched per epoch: the sink's
  columnar buffer is order-sensitive (snapshot order feeds the validation
  recounts and the exporter), and events of different categories
  interleave within one epoch, so batching could not stay bit-identical.
* **Scalar fallback**: topologies the flat state model does not cover
  (multi-channel, multi-rank, multi-core) and audited runs (the invariant
  ``RequestLog`` wraps ``controller.submit``, which the kernel bypasses)
  fall back to the scalar engine; :func:`run_epoch_kernel` returns the
  decline reason to its caller (``run_cores`` threads it through to the
  runner's per-spec fallback records), and ``run_cores`` keeps producing
  identical results either way.

On exit the kernel writes every piece of local state back into the real
objects (banks, rank, channel, core, stats, event queue), so downstream
consumers — ``memory.finish()``, metrics, validation, reporting — see
exactly what a scalar run would have left behind.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from collections import deque
from heapq import heappop, heappush

import numpy as np

from ..config import RefreshMode
from ..core.state_machine import RopState
from ..dram.bank import AccessPlan
from ..dram.request import Coord, ReqKind, Request, ServiceKind

__all__ = ["ENGINES", "resolve_engine", "run_epoch_kernel"]

#: engine names accepted by ``run_cores(engine=...)`` / ``REPRO_ENGINE``
ENGINES = ("scalar", "epoch")

#: event tags, ordered roughly by expected frequency
_OP = 0  #: the core's next trace operation is due
_RCOMP = 1  #: a read completes (DRAM burst done or SRAM latency elapsed)
_RETRY = 2  #: deduplicated scheduler wake-up
_TICK = 3  #: tREFI grid tick (housekeeping: does not count as work)
_PSTEP = 4  #: one Refresh-Pausing segment step (payload: state list)

def resolve_engine(engine: str | None = None) -> str:
    """Resolve an engine choice: explicit argument > ``REPRO_ENGINE`` > scalar."""
    if engine is None:
        engine = os.environ.get("REPRO_ENGINE", "").strip().lower() or "scalar"
    engine = engine.lower()
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known: {ENGINES}")
    return engine


def run_epoch_kernel(memory, cores, max_cycles=None, audited=False) -> str | None:
    """Run the whole simulation through the flat kernel, if supported.

    Returns ``None`` when the kernel ran (the caller must skip the scalar
    ``core.start()`` / ``memory.run()`` path entirely), or the decline
    reason as a string when the configuration needs the scalar engine.
    The reason is *returned*, never stashed in module state: one chunk's
    specs decline independently, and each spec's reason must attribute to
    that spec alone.
    """
    org = memory.config.organization
    if audited:
        return "audit wraps controller.submit, which the kernel bypasses"
    decline = memory.controller.refresh_mgr.kernel_decline
    if decline is not None:
        return decline
    if org.channels != 1 or org.ranks != 1 or len(cores) != 1:
        # every other topology rides the generalized kernel, which keeps
        # the same bit-identity contract over per-(channel, rank) state
        from .epoch_multi import run_epoch_multi

        return run_epoch_multi(memory, cores, max_cycles)

    # ------------------------------------------------------------- localize
    events = memory.events
    controller = memory.controller
    cfg = controller.cfg
    t = controller.t
    core = cores[0]
    ch_obj = controller.channels[0]
    rank = ch_obj.ranks[0]
    banks = rank.banks
    nbanks = len(banks)
    rop = controller.rop
    rop_on = rop is not None
    refresh_mgr = controller.refresh_mgr
    sink = controller.sink
    sink_emit = sink.emit
    mapper = controller.mapper
    issue_tap = controller.issue_tap
    stats = controller.stats

    # DDR timing scalars
    RCD, RP, CL, CWL = t.rcd, t.rp, t.cl, t.cwl
    BURST, CCD, RTP, WR = t.burst, t.ccd, t.rtp, t.wr
    RAS, RRD, FAW, WTR, RFC = t.ras, t.rrd, t.faw, t.wtr, t.rfc

    # telemetry flags (cached booleans, same as the scalar hot path)
    t_req, t_svc, t_ref = controller._t_req, controller._t_svc, controller._t_ref
    t_rop = rop._t_rop if rop_on else False

    # bank state as parallel lists (index = bank id)
    b_open = [b.open_row for b in banks]
    b_ready = [b.ready_at for b in banks]
    b_preok = [b.pre_ok_at for b in banks]
    b_act = [b.act_cycle for b in banks]
    b_busy = [b.busy_until for b in banks]

    # rank / channel scalars
    locked_until = rank.locked_until
    lock_start = rank.lock_start
    last_act = rank.last_act
    act_window = rank.act_window  # deque(maxlen=4); mutated in place
    wtr_until = rank.wtr_until
    refresh_count = rank.refresh_count
    act_count = rank.act_count
    bus_free_at = ch_obj.bus_free_at
    busy_cycles = ch_obj.busy_cycles

    # stats mirrors (prefetch_skipped and the SRAM-buffer counters flow
    # through the real objects the delegated ROP calls mutate)
    s_reads = stats.reads
    s_writes = stats.writes
    s_prefetches = stats.prefetches
    s_row_hits = stats.row_hits
    s_row_closed = stats.row_closed
    s_row_conflicts = stats.row_conflicts
    s_lat_sum = stats.read_latency_sum
    s_lat_max = stats.read_latency_max
    s_completed = stats.reads_completed
    s_refreshes = stats.refreshes
    s_locked_cycles = stats.refresh_locked_cycles
    s_in_lock = stats.reads_arriving_in_lock
    s_sram_in = stats.sram_hits_in_lock
    s_sram_out = stats.sram_hits_out_of_lock
    s_sram_fills = stats.sram_fills
    s_pf_cycles = stats.prefetch_fetch_cycles
    s_end_cycle = stats.end_cycle

    # core state
    core_cfg = core.cfg
    mult = core_cfg.cpu_clock_mult
    mlp = core_cfg.mlp
    lines = core._lines
    writes_col = core._writes
    gap_cpu = core._gap_cpu
    n_ops = len(lines)
    tail_cpu = int(core.trace.tail_instructions * core_cfg.base_cpi)
    idx = 0
    outstanding = 0
    stalled = False
    cpu_time = 0
    finished = False
    finish_cycle = 0
    stall_events = 0

    # pre-decoded trace columns as flat lists (vectorized decode once)
    if n_ops:
        _, _, bank_a, row_a, col_a = mapper.decode_array(core.trace.lines)
        bank_col = bank_a.tolist()
        row_col = row_a.tolist()
        col_col = col_a.tolist()
    else:
        bank_col = row_col = col_col = []
    # prefix sum of reads by trace index: read/write totals and the ROP
    # mirror's A-counts come from here instead of per-op increments
    rd_pref = np.concatenate(
        ([0], np.cumsum(core.trace.writes == 0, dtype=np.int64))
    ).tolist()

    # scheduler state
    drain_high = cfg.scheduler.write_drain_high
    drain_low = cfg.scheduler.write_drain_low
    rq: list[tuple] = []  # (rid, line, bank, row, col, arrival)
    wq: list[tuple] = []
    drain = False
    retry_at = -1

    # refresh state
    refresh_enabled = refresh_mgr.enabled
    tick_period = refresh_mgr.period
    pausing = cfg.refresh.mode is RefreshMode.PAUSING
    per_bank = cfg.refresh.mode is RefreshMode.PER_BANK
    pause_seg = max(1, RFC // max(1, cfg.refresh.pause_segments))

    # ROP state (inlined per-request bookkeeping mutates the *real*
    # profiler/table objects; delegated calls then observe identical state)
    if rop_on:
        sm = rop.sm
        buffer = rop.buffer
        buf_lines = buffer._lines  # stable set reference (mutated in place)
        buffer_consume = buffer.consume
        buffer_invalidate = buffer.invalidate
        from ..core.profiler import _PendingRefresh
        from ..core.rop_engine import LockRecord

        prof = rop.profilers[(0, 0)]
        arrivals = prof._arrivals  # stable deque reference
        a_window = prof.a_window
        table = rop.tables[(0, 0)]
        entries = table.entries  # stable list reference (reset is in place)
        window = rop.window
        ref_first = rop._ref_first[(0, 0)]
        ref_period = rop._ref_period
        # monotonic next-refresh-grid tracker for the deferred table replay
        # (arrival cycles never decrease)
        cur_due = ref_first
        # Deferred profiler mirror.  The scalar engine maintains the arrival
        # deque, pending-refresh probes and prediction-table feed on *every*
        # request; none of that state is read until a training tick, a lock
        # close or a prefetch plan.  The kernel therefore only appends the
        # arrival cycle to ``acyc`` (index-parallel to the trace columns)
        # and recovers every window count by bisection at the read points:
        #   B-count at refresh start S  = |arrivals in [S - window, S)|
        #   A-count at probe deadline D = |reads in [start, D)| at index
        #                                 >= the probe's creation index
        # Probes live in ``mir_pending`` as [start, deadline, b_count,
        # created_idx]; expiry points replicate the scalar advance() calls
        # that are observable (training ticks + arrivals while a lock is
        # open).  The prediction-table feed replays lazily over
        # [table_upto, len(acyc)) before any table read — and is elided
        # wholesale for spans that end in a refresh reset.
        columns = rop._columns
        acyc: list[int] = []
        acyc_append = acyc.append
        addr_col = (row_a * columns + col_a).tolist() if n_ops else []
        mir_pending: list[list[int]] = []
        last_tr_adv = -1  # last training-tick advance (deque retention horizon)
        table_upto = 0
        table_all = not rop.rop.table_reads_only
        drain_before_refresh = cfg.rop.drain_before_refresh
        sram_latency = cfg.rop.sram_latency
        if any(e.tumbling for e in entries):  # ablation mode: not inlined
            return "tumbling prediction-table ablation"
        # prediction-table mirror: the hot per-request update runs against
        # flat locals; delegated readers (plan_prefetch at TICK) see the
        # real entries via flush_table(), and the refresh-time table reset
        # is mirrored back by clearing the locals
        # flat layout per bank: [d1, f1, d2, ph2, f2, d3, ph3, f3] where d1
        # is the order-1 delta itself (the matchers' ks are fixed at 1,2,3)
        if any([m.k for m in e._matchers] != [1, 2, 3] for e in entries):
            return "non-standard prediction-table matcher orders"
        tb_last = [e.last_addr for e in entries]
        tb_hist = [list(e._history) for e in entries]
        tb_m = [
            [
                e._matchers[0].pattern[0] if e._matchers[0].pattern else None,
                e._matchers[0].freq,
                e._matchers[1].pattern,
                e._matchers[1].phase,
                e._matchers[1].freq,
                e._matchers[2].pattern,
                e._matchers[2].phase,
                e._matchers[2].freq,
            ]
            for e in entries
        ]
    else:
        sm = buffer = None
        sram_latency = 0
        drain_before_refresh = False
    TRAINING = RopState.TRAINING

    SK = (ServiceKind.DRAM_HIT, ServiceKind.DRAM_CLOSED, ServiceKind.DRAM_CONFLICT)

    heap: list[tuple] = []
    # DRAM read completions, kept out of the heap: the data bus serializes
    # bursts (plan_commit shifts dstart to bus_free_at), so completion
    # times are strictly increasing in issue order — a plain FIFO of
    # (dend, seq, rid, arrival) 4-tuples.  SRAM completions (arrival +
    # sram_latency, not bus-ordered) stay on the heap; the loop head merges
    # the two by (cycle, seq) tuple comparison.
    comps: deque = deque()
    comps_append = comps.append
    comps_popleft = comps.popleft
    seq = 0
    work = 0
    now = 0
    # cached heads: heap pushes are rare (retries / ticks / SRAM fills),
    # so the (cycle, seq) of both queue heads are kept in scalars and
    # refreshed at push/pop sites — the loop top then compares plain ints
    # instead of chasing heap[0]/comps[0] subscripts every event
    INF = 1 << 62
    heap_top = INF  #: cycle of heap[0] (INF when empty)
    h0s = INF  #: seq of heap[0]
    c0c = INF  #: cycle of comps[0] (INF when empty)
    c0s = INF  #: seq of comps[0]
    mm1 = mult - 1  #: ceil-div addend: ceil(t / mult) == (t + mm1) // mult

    # ------------------------------------------------------------- closures

    def plan_commit(cycle, bank, row, col, is_write):
        """Inline Rank.plan + bus shift + Rank.commit for one access."""
        nonlocal bus_free_at, busy_cycles, last_act, wtr_until, act_count
        # rank gating
        start = cycle if cycle > locked_until else locked_until
        if is_write:
            not_before = start
        else:
            not_before = start if start > wtr_until else wtr_until
        # bank plan
        bstart = b_ready[bank]
        if cycle > bstart:
            bstart = cycle
        if not_before > bstart:
            bstart = not_before
        cas = CWL if is_write else CL
        orow = b_open[bank]
        if orow == row:
            col_c = bstart
            act = -1
            cat = 0  # DRAM_HIT
        else:
            act_gate = last_act + RRD
            if len(act_window) == 4:
                faw_gate = act_window[0] + FAW
                if faw_gate > act_gate:
                    act_gate = faw_gate
            if orow is None:
                act = bstart if bstart > act_gate else act_gate
                cat = 1  # DRAM_CLOSED
            else:
                pre = b_preok[bank]
                if bstart > pre:
                    pre = bstart
                act = pre + RP
                if act_gate > act:
                    act = act_gate
                cat = 2  # DRAM_CONFLICT
            col_c = act + RCD
        dstart = col_c + cas
        dend = dstart + BURST
        shift = bus_free_at - dstart
        if shift > 0:
            col_c += shift
            dstart += shift
            dend += shift
        # bank commit
        if act >= 0:
            b_open[bank] = row
            b_act[bank] = act
        b_ready[bank] = col_c + CCD
        if dend > b_busy[bank]:
            b_busy[bank] = dend
        recover = col_c + CWL + BURST + WR if is_write else col_c + RTP
        ras_done = b_act[bank] + RAS
        preok = b_preok[bank]
        if recover > preok:
            preok = recover
        if ras_done > preok:
            preok = ras_done
        b_preok[bank] = preok
        # rank commit
        if act >= 0:
            last_act = act
            act_window.append(act)
            act_count += 1
        if is_write:
            wu = col_c + CWL + BURST + WTR
            if wu > wtr_until:
                wtr_until = wu
        if issue_tap is not None:
            issue_tap(
                Coord(0, 0, bank, row, col),
                AccessPlan(col_c, dstart, dend, act, SK[cat]),
                is_write,
            )
        bus_free_at = dend
        busy_cycles += dend - dstart
        return col_c, dstart, dend, cat

    def issue(req, cycle, is_write):
        """Commit one queued demand request (inline Controller._issue).

        The plan/commit body is a copy of plan_commit with the stats fold
        merged in — this is the scheduler's hottest call, worth the
        duplication (plan_commit itself stays for prefetch fetches).
        """
        nonlocal s_row_hits, s_row_closed, s_row_conflicts, seq, work
        nonlocal bus_free_at, busy_cycles, last_act, wtr_until, act_count
        nonlocal c0c, c0s
        bank = req[2]
        row = req[3]
        start = cycle if cycle > locked_until else locked_until
        if is_write:
            not_before = start
        else:
            not_before = start if start > wtr_until else wtr_until
        bstart = b_ready[bank]
        if cycle > bstart:
            bstart = cycle
        if not_before > bstart:
            bstart = not_before
        orow = b_open[bank]
        if orow == row:
            col_c = bstart
            act = -1
            cat = 0
            s_row_hits += 1
        else:
            act_gate = last_act + RRD
            if len(act_window) == 4:
                faw_gate = act_window[0] + FAW
                if faw_gate > act_gate:
                    act_gate = faw_gate
            if orow is None:
                act = bstart if bstart > act_gate else act_gate
                cat = 1
                s_row_closed += 1
            else:
                pre = b_preok[bank]
                if bstart > pre:
                    pre = bstart
                act = pre + RP
                if act_gate > act:
                    act = act_gate
                cat = 2
                s_row_conflicts += 1
            col_c = act + RCD
            b_open[bank] = row
            b_act[bank] = act
            last_act = act
            act_window.append(act)
            act_count += 1
        dstart = col_c + (CWL if is_write else CL)
        dend = dstart + BURST
        shift = bus_free_at - dstart
        if shift > 0:
            col_c += shift
            dstart += shift
            dend += shift
        b_ready[bank] = col_c + CCD
        if dend > b_busy[bank]:
            b_busy[bank] = dend
        recover = col_c + CWL + BURST + WR if is_write else col_c + RTP
        ras_done = b_act[bank] + RAS
        preok = b_preok[bank]
        if recover > preok:
            preok = recover
        if ras_done > preok:
            preok = ras_done
        b_preok[bank] = preok
        if is_write:
            wu = col_c + CWL + BURST + WTR
            if wu > wtr_until:
                wtr_until = wu
        if issue_tap is not None:
            issue_tap(
                Coord(0, 0, bank, row, req[4]),
                AccessPlan(col_c, dstart, dend, act, SK[cat]),
                is_write,
            )
        bus_free_at = dend
        busy_cycles += dend - dstart
        if t_svc:
            sink_emit(1, 2, col_c, 0, 0, req[0], cat)  # SERVICE / ISSUE
        if not is_write:
            if c0c == INF:
                c0c = dend
                c0s = seq
            comps_append((dend, seq, req[0], req[5]))
            seq += 1
            work += 1

    def complete_from_sram(req, cycle):
        """Service a queued read from the SRAM buffer (inline)."""
        nonlocal s_sram_in, s_sram_out, seq, work, heap_top, h0s
        line = req[1]
        in_lock = lock_start <= cycle < locked_until
        if in_lock:
            s_sram_in += 1
        else:
            s_sram_out += 1
        if t_svc:
            sink_emit(1, 4, cycle, 0, 0, line, 1 if in_lock else 0)  # SRAM_SERVICE
        # inline RopEngine.on_sram_hit: consume + per-lock hit bookkeeping
        buffer_consume(line, cycle)
        if in_lock:
            for rec in reversed(rop._locks):
                if rec.start <= cycle < rec.end:
                    rec.hits += 1
                    break
        done = cycle + sram_latency
        if done < heap_top:
            heap_top = done
            h0s = seq
        heappush(heap, (done, seq, _RCOMP, req[0], req[5]))
        seq += 1
        work += 1

    def schedule_retry(wake):
        nonlocal retry_at, seq, work, heap_top, h0s
        if 0 <= retry_at <= wake:
            return
        retry_at = wake
        if wake < heap_top:
            heap_top = wake
            h0s = seq
        heappush(heap, (wake, seq, _RETRY, wake, 0))
        seq += 1
        work += 1

    def try_issue(cycle):
        """Issue everything that can start now (inline Controller._try_issue).

        The FR-FCFS pick (Controller._select) is inlined at both scan
        sites — it has no other callers and the closure round-trip showed
        up in profiles at queue-bound phases.
        """
        nonlocal drain
        progress = True
        while progress:
            progress = False
            # SRAM service sweep (guard order is side-effect free)
            if rop_on and rq and buf_lines and sm.state is not TRAINING:
                i = 0
                while i < len(rq):
                    if rq[i][1] in buf_lines:
                        complete_from_sram(rq.pop(i), cycle)
                        progress = True
                    else:
                        i += 1
            lw = len(wq)
            if not drain and lw >= drain_high:
                drain = True
            elif drain and lw <= drain_low:
                drain = False
            if drain:
                queue = wq
            elif rq:
                queue = rq
            elif wq:
                queue = wq
            else:
                break
            if lock_start <= cycle < locked_until:
                # whole rank gated: everything wakes at lock release
                # (the write-fallback scan would report the same wake)
                if queue:
                    schedule_retry(locked_until)
                break
            # FR-FCFS scan: oldest ready row hit, else oldest ready,
            # else the earliest bank-ready gate as the wake cycle
            pick = -1
            wake = -1
            for i, req in enumerate(queue):
                bank = req[2]
                gate = b_ready[bank]
                if gate <= cycle:
                    if b_open[bank] == req[3]:
                        pick = i
                        break
                    if pick < 0:
                        pick = i
                elif wake < 0 or gate < wake:
                    wake = gate
            if pick < 0:
                if queue is rq and wq:
                    wpick = -1
                    wwake = -1
                    for i, req in enumerate(wq):
                        bank = req[2]
                        gate = b_ready[bank]
                        if gate <= cycle:
                            if b_open[bank] == req[3]:
                                wpick = i
                                break
                            if wpick < 0:
                                wpick = i
                        elif wwake < 0 or gate < wwake:
                            wwake = gate
                    if wpick >= 0:
                        issue(wq.pop(wpick), cycle, True)
                        progress = True
                        continue
                    if wake < 0 or (0 <= wwake < wake):
                        wake = wwake
                if wake >= 0:
                    schedule_retry(wake)
                break
            issue(queue.pop(pick), cycle, queue is wq)
            if not rq and not wq:
                # the would-be next iteration in full: sweep no-op,
                # hysteresis flips drain off (0 <= drain_low), no queue
                if drain:
                    drain = False
                break
            progress = True

    def mir_expire(cycle):
        """Categorize matured pending probes (mirrors PatternProfiler.advance).

        Runs only at the points a scalar expiry is observable — training
        ticks and arrivals while a lock is open — with A-counts recovered
        by bisection over the arrival log instead of per-arrival upkeep.
        Expiries the scalar engine performed at *other* arrivals land in
        the same CategoryCounts bucket either here or at finalize, so the
        counts agree at every read point.
        """
        if not mir_pending:
            return
        counts = prof.counts  # fetched live: a retrain rebinds it
        still = []
        for rec in mir_pending:
            deadline = rec[1]
            if deadline > cycle:
                still.append(rec)
                continue
            lo = bisect_left(acyc, rec[0])
            cidx = rec[3]
            if lo < cidx:
                lo = cidx
            a = rd_pref[bisect_left(acyc, deadline)] - rd_pref[lo]
            if rec[2] > 0:
                if a > 0:
                    counts.b_pos_a_pos += 1
                else:
                    counts.b_pos_a_zero += 1
            elif a > 0:
                counts.b_zero_a_pos += 1
            else:
                counts.b_zero_a_zero += 1
        mir_pending[:] = still

    def rop_lock_upkeep(cycle):
        """Per-arrival lock close + probe expiry while any lock is open.

        Every arrival takes this path while ``rop._locks`` is non-empty,
        so lock outcomes (EMA, armed counters, state-machine feedback) are
        evaluated at exactly the scalar points.  A retrain inside
        _close_stale_locks rebinds prof.counts and clears the real pending
        list — mirrored by dropping the deferred probes.
        """
        cts = prof.counts
        rop._close_stale_locks(cycle)
        if prof.counts is not cts:
            del mir_pending[:]
            return
        mir_expire(cycle)

    def replay_table(upto):
        """Replay the deferred prediction-table feed for ops [table_upto, upto).

        Invoked only before a table *read* (prefetch planning, final
        flush); spans that end in a refresh reset never get here — the
        reset advances ``table_upto`` past them, eliding the work the
        scalar engine spent feeding a table it was about to clear.
        """
        nonlocal table_upto, cur_due
        j = table_upto
        if j >= upto:
            return
        table_upto = upto
        while j < upto:
            if table_all or not writes_col[j]:
                c = acyc[j]
                while cur_due < c:
                    cur_due += ref_period
                if cur_due - c <= window:
                    table_update(bank_col[j], addr_col[j])
            j += 1

    def sync_prof_window(cycle):
        """Materialize the arrival deque for plan_prefetch's count_in_window."""
        arrivals.clear()
        lo = bisect_left(acyc, cycle - window)
        n = len(acyc)
        while lo < n:
            arrivals.append((acyc[lo], not writes_col[lo]))
            lo += 1

    def table_update(bank, addr):
        """Inline BankEntry.update (cyclic matchers, non-tumbling).

        Runs against the flat table mirror; flush_table() publishes it.
        """
        prev = tb_last[bank]
        tb_last[bank] = addr
        if prev is None:
            return
        delta = addr - prev
        if delta == 0:
            return
        hist = tb_hist[bank]
        m = tb_m[bank]
        p2 = m[2]
        p3 = m[5]
        if (
            delta == m[0]
            and p2 is not None
            and delta == p2[m[3]]
            and p3 is not None
            and delta == p3[m[6]]
        ):
            # fully locked (streaming steady state): all three matchers
            # advance without re-anchoring — same arithmetic as below,
            # minus the dead re-anchor branches
            f1 = m[1] + 1
            f2 = m[4] + 1
            f3 = m[7] + 1
            if f1 >= 255 or f2 >= 255 or f3 >= 255:
                f1 //= 2
                f2 //= 2
                f3 //= 2
            m[1] = f1
            m[4] = f2
            m[7] = f3
            m[3] = 1 - m[3]
            ph = m[6] + 1
            m[6] = 0 if ph == 3 else ph
            hist.append(delta)
            if len(hist) > 3:
                del hist[0]
            return
        hist.append(delta)
        if len(hist) > 3:
            del hist[0]
        nh = len(hist)
        capped = False
        # order-1 matcher: phase is always 0, re-anchor always possible
        if m[0] == delta:
            f = m[1] + 1
            m[1] = f
            if f >= 255:
                capped = True
        else:
            m[0] = delta
            m[1] = 0
        # order-2 matcher
        p = m[2]
        if p is not None and delta == p[m[3]]:
            f = m[4] + 1
            m[4] = f
            if f >= 255:
                capped = True
            m[3] = 1 - m[3]
        elif nh >= 2:
            m[2] = (hist[-2], hist[-1])
            m[3] = 0
            m[4] = 0
        else:
            m[2] = None
            m[3] = 0
            m[4] = 0
        # order-3 matcher
        p = m[5]
        if p is not None and delta == p[m[6]]:
            f = m[7] + 1
            m[7] = f
            if f >= 255:
                capped = True
            ph = m[6] + 1
            m[6] = 0 if ph == 3 else ph
        elif nh == 3:
            m[5] = (hist[0], hist[1], hist[2])
            m[6] = 0
            m[7] = 0
        else:
            m[5] = None
            m[6] = 0
            m[7] = 0
        if capped:
            m[1] //= 2
            m[4] //= 2
            m[7] //= 2

    def flush_table():
        """Publish the table mirror into the real BankEntry objects."""
        for b, e in enumerate(entries):
            e.last_addr = tb_last[b]
            h = e._history
            h.clear()
            h.extend(tb_hist[b])
            m = tb_m[b]
            m1, m2, m3 = e._matchers
            m1.pattern = (m[0],) if m[0] is not None else None
            m1.phase = 0
            m1.freq = m[1]
            m2.pattern = m[2]
            m2.phase = m[3]
            m2.freq = m[4]
            m3.pattern = m[5]
            m3.phase = m[6]
            m3.freq = m[7]

    def reset_table_mirror():
        """Mirror TableEntry.reset() (refresh closed the observational window)."""
        for b in range(len(entries)):
            tb_last[b] = None
            tb_hist[b].clear()
            tb_m[b][:] = (None, 0, None, 0, 0, None, 0, 0)

    def fetch_prefetch(pf_lines, cycle):
        """Inline Controller._fetch_prefetch_lines; returns the done cycle."""
        nonlocal s_prefetches, s_pf_cycles, s_sram_fills
        done = cycle
        coords = dict(zip(pf_lines, mapper.decode_coords(pf_lines)))
        ordered = sorted(pf_lines, key=lambda ln: coords[ln][2:])
        if sm.state is TRAINING:
            to_fetch = ordered
        else:
            to_fetch = [ln for ln in ordered if ln not in buf_lines]
        for line in to_fetch:
            c = coords[line]
            _col_c, _dstart, dend, _cat = plan_commit(cycle, c.bank, c.row, c.col, False)
            s_prefetches += 1
            if dend > done:
                done = dend
        s_pf_cycles += done - cycle
        s_sram_fills += len(to_fetch)
        cts = prof.counts
        rop.on_prefetch_fill(0, 0, ordered, done)
        if prof.counts is not cts:  # a tenure close inside retrained
            del mir_pending[:]
        return done

    def paused_step(st, cycle):
        """One Refresh-Pausing segment (inline Controller._paused_refresh)."""
        nonlocal locked_until, lock_start, refresh_count
        nonlocal s_refreshes, s_locked_cycles, s_end_cycle, seq, work
        nonlocal heap_top, h0s
        remaining = st[0]
        if remaining <= 0:
            return
        if cycle + remaining < st[2] and (rq or wq):
            # pause: demand goes first; re-check one segment later
            if t_ref:
                sink_emit(2, 6, cycle, 0, 0, remaining)  # REFRESH_PAUSE
            w = cycle + pause_seg
            if w < heap_top:
                heap_top = w
                h0s = seq
            heappush(heap, (w, seq, _PSTEP, st, 0))
            seq += 1
            work += 1
            try_issue(cycle)
            return
        dur = pause_seg if pause_seg < remaining else remaining
        # Rank.start_refresh(cycle, duration=dur), all banks
        start = cycle
        for b in range(nbanks):
            q = b_ready[b]
            if b_busy[b] > q:
                q = b_busy[b]
            if b_open[b] is not None and b_preok[b] > q:
                q = b_preok[b]
            if q > start:
                start = q
        end = start + dur
        for b in range(nbanks):
            b_open[b] = None
            if end > b_ready[b]:
                b_ready[b] = end
            if end > b_preok[b]:
                b_preok[b] = end
        if end > locked_until:
            if start > locked_until:
                lock_start = start
            locked_until = end
        refresh_count += 1
        st[0] = remaining - dur
        s_locked_cycles += end - start
        if end > s_end_cycle:
            s_end_cycle = end
        if not st[1]:
            s_refreshes += 1
            st[1] = True
        if t_ref:
            sink_emit(2, 5, start, 0, 0, end, -1)  # REFRESH_WINDOW
        if st[0] > 0:
            if end < heap_top:
                heap_top = end
                h0s = seq
            heappush(heap, (end, seq, _PSTEP, st, 0))
            seq += 1
            work += 1
        elif rq or wq:
            schedule_retry(end)

    # ------------------------------------------------------------- seeding
    # replicate the scalar push order: the controller's initial refresh
    # tick (housekeeping), then the core's first op
    if refresh_enabled:
        heap_top = refresh_mgr.first_tick(0, 0)
        h0s = seq
        heappush(heap, (heap_top, seq, _TICK, 0, 0))
        seq += 1
    # the single-core trace has at most ONE pending op event at any time,
    # so it never needs the heap: a scalar (cycle, seq) pair stands in for
    # the event, merged against the FIFO/heap heads at the loop top
    op_at = -1
    op_seq = 0
    if n_ops == 0:
        finished = True
    else:
        cpu_time += gap_cpu[0]
        when = (cpu_time + mm1) // mult
        op_at = when if when > 0 else 0
        op_seq = seq
        seq += 1
        work += 1

    # ------------------------------------------------------------- main loop
    # Two phases in one loop, exactly mirroring run_cores on the scalar
    # path: memory.run(until=max_cycles), then — once the core has retired —
    # memory.run(until=last_retire) so the refresh schedule covers the
    # compute tail.  ``tail`` flips at the first phase's exit condition.
    until = max_cycles
    tail = False
    while True:
        if tail or until is not None:
            nxt = op_at if op_at >= 0 else INF
            if c0c < nxt:
                nxt = c0c
            if heap_top < nxt:
                nxt = heap_top
            if tail:
                if nxt > until:
                    break
            elif nxt > until:
                if not (finished and finish_cycle > now):
                    break
                tail = True
                until = finish_cycle
                continue
        elif not work:
            if not (finished and finish_cycle > now):
                break
            tail = True
            until = finish_cycle
            continue
        # merged pop across three sources by (cycle, seq): the scalar
        # pending-op slot, the completion FIFO, and the heap (retries /
        # ticks / SRAM completions) — all via the cached head scalars;
        # work accounting lives at the push/pop sites
        if (
            op_at >= 0
            and (op_at < c0c or (op_at == c0c and op_seq < c0s))
            and (op_at < heap_top or (op_at == heap_top and op_seq < h0s))
        ):
            cycle = op_at
            op_at = -1
            tag = _OP
            work -= 1
        elif c0c < heap_top or (c0c == heap_top and c0s < h0s):
            cycle, _s, p1, p2 = comps_popleft()
            if comps:
                nt = comps[0]
                c0c = nt[0]
                c0s = nt[1]
            else:
                c0c = INF
                c0s = INF
            tag = _RCOMP
            work -= 1
        else:
            cycle, _s, tag, p1, p2 = heappop(heap)
            if heap:
                nt = heap[0]
                heap_top = nt[0]
                h0s = nt[1]
            else:
                heap_top = INF
                h0s = INF
            if tag != _TICK:
                work -= 1
        now = cycle
        if tag == _RCOMP:
            # Controller._account_read
            lat = cycle - p2
            s_completed += 1
            s_lat_sum += lat
            if lat > s_lat_max:
                s_lat_max = lat
            if cycle > s_end_cycle:
                s_end_cycle = cycle
            if t_svc:
                sink_emit(1, 3, cycle, 0, 0, p1, lat)  # SERVICE / COMPLETE
            # Core._on_read_done
            outstanding -= 1
            ct = cycle * mult
            if ct > cpu_time:
                cpu_time = ct
            if not finished:
                if idx >= n_ops:
                    if outstanding == 0:
                        cpu_time += tail_cpu
                        finished = True
                        fc = -(-cpu_time // mult)
                        finish_cycle = fc if fc > cycle else cycle
                elif stalled:
                    stalled = False
                    cpu_time += gap_cpu[idx]
                    when = (cpu_time + mm1) // mult
                    if when < cycle:
                        when = cycle
                    if heap_top <= when or (until is not None and when > until):
                        op_at = when
                        op_seq = seq
                        seq += 1
                        work += 1
                    else:
                        # the op pops next, bar completions in (now, when]:
                        # those are pure bookkeeping while the core is not
                        # stalled (stats + outstanding + clock max — they
                        # schedule nothing), so fold them in right here and
                        # enter the op handler directly, skipping one
                        # head-dispatch round-trip per drained completion
                        while c0c <= when:
                            ccyc, _cs, crid, carr = comps_popleft()
                            if comps:
                                nt = comps[0]
                                c0c = nt[0]
                                c0s = nt[1]
                            else:
                                c0c = INF
                                c0s = INF
                            work -= 1
                            lat = ccyc - carr
                            s_completed += 1
                            s_lat_sum += lat
                            if lat > s_lat_max:
                                s_lat_max = lat
                            if ccyc > s_end_cycle:
                                s_end_cycle = ccyc
                            if t_svc:
                                sink_emit(1, 3, ccyc, 0, 0, crid, lat)
                            outstanding -= 1
                            ct = ccyc * mult
                            if ct > cpu_time:
                                cpu_time = ct
                        tag = _OP
                        cycle = when
                        now = when
        if tag == _OP:
            while True:  # chained-op fast path (see bottom of the block)
                i = idx
                line = lines[i]
                bank = bank_col[i]
                row = row_col[i]
                col = col_col[i]
                rid_v = i  # one rid per demand op, allocated in trace order
                if writes_col[i]:
                    if rop_on:
                        if line in buf_lines:
                            buffer_invalidate(line, cycle)
                        if t_req:
                            sink_emit(0, 1, cycle, 0, 0, line)  # WRITE_ARRIVAL
                        # deferred RopEngine.on_request: log the arrival;
                        # window counts and the table feed are recovered at
                        # their (rare) read points
                        if t_rop:
                            rop._now = cycle
                        acyc_append(cycle)
                        if rop._locks:
                            rop_lock_upkeep(cycle)
                    elif t_req:
                        sink_emit(0, 1, cycle, 0, 0, line)
                    # arrival fast path: empty queues, no rank lock — the
                    # scheduler outcome is fully determined by this one
                    # request, so issue (or queue + retry) in place with
                    # the same observable order as queue-append+try_issue
                    if not wq and not rq and not drain and locked_until <= cycle:
                        gate = b_ready[bank]
                        if gate <= cycle:
                            orow = b_open[bank]
                            if orow == row:
                                col_c = cycle
                                act = -1
                                cat = 0
                                s_row_hits += 1
                            else:
                                act_gate = last_act + RRD
                                if len(act_window) == 4:
                                    fg = act_window[0] + FAW
                                    if fg > act_gate:
                                        act_gate = fg
                                if orow is None:
                                    act = cycle if cycle > act_gate else act_gate
                                    cat = 1
                                    s_row_closed += 1
                                else:
                                    pre = b_preok[bank]
                                    if cycle > pre:
                                        pre = cycle
                                    act = pre + RP
                                    if act_gate > act:
                                        act = act_gate
                                    cat = 2
                                    s_row_conflicts += 1
                                col_c = act + RCD
                                b_open[bank] = row
                                b_act[bank] = act
                                last_act = act
                                act_window.append(act)
                                act_count += 1
                            dstart = col_c + CWL
                            dend = dstart + BURST
                            shift = bus_free_at - dstart
                            if shift > 0:
                                col_c += shift
                                dstart += shift
                                dend += shift
                            b_ready[bank] = col_c + CCD
                            if dend > b_busy[bank]:
                                b_busy[bank] = dend
                            recover = col_c + CWL + BURST + WR
                            ras_done = b_act[bank] + RAS
                            preok = b_preok[bank]
                            if recover > preok:
                                preok = recover
                            if ras_done > preok:
                                preok = ras_done
                            b_preok[bank] = preok
                            wu = col_c + CWL + BURST + WTR
                            if wu > wtr_until:
                                wtr_until = wu
                            if issue_tap is not None:
                                issue_tap(
                                    Coord(0, 0, bank, row, col),
                                    AccessPlan(col_c, dstart, dend, act, SK[cat]),
                                    True,
                                )
                            bus_free_at = dend
                            busy_cycles += dend - dstart
                            if t_svc:
                                sink_emit(1, 2, col_c, 0, 0, rid_v, cat)
                        elif drain_high > 1:
                            # bank busy: queue and wake when it frees —
                            # exactly the retry try_issue would schedule
                            # (drain_high <= 1 would flip drain hysteresis
                            # on this lone write, so defer to try_issue)
                            wq.append((rid_v, line, bank, row, col, cycle))
                            if not 0 <= retry_at <= gate:
                                retry_at = gate
                                if gate < heap_top:
                                    heap_top = gate
                                    h0s = seq
                                heappush(heap, (gate, seq, _RETRY, gate, 0))
                                seq += 1
                                work += 1
                        else:
                            wq.append((rid_v, line, bank, row, col, cycle))
                            try_issue(cycle)
                    elif (
                        cycle < locked_until
                        and lock_start <= cycle
                        and 0 <= retry_at <= locked_until
                        and drain_high > 1
                    ):
                        # rank locked, wake already armed: append + the
                        # drain-hysteresis check is all try_issue would do
                        wq.append((rid_v, line, bank, row, col, cycle))
                        if not drain and len(wq) >= drain_high:
                            drain = True
                    elif (
                        not rq
                        and not drain
                        and locked_until <= cycle
                        and 0 <= retry_at
                        and cycle < retry_at
                        and b_ready[bank] > cycle
                        and drain_high > 1
                    ):
                        # busy-bank append shortcut (write analog): an armed
                        # retry below every queued gate proves nothing is
                        # issuable before retry_at > cycle
                        wq.append((rid_v, line, bank, row, col, cycle))
                        if not drain and len(wq) >= drain_high:
                            drain = True
                        gate = b_ready[bank]
                        if gate < retry_at:
                            retry_at = gate
                            if gate < heap_top:
                                heap_top = gate
                                h0s = seq
                            heappush(heap, (gate, seq, _RETRY, gate, 0))
                            seq += 1
                            work += 1
                    else:
                        wq.append((rid_v, line, bank, row, col, cycle))
                        try_issue(cycle)
                else:
                    outstanding += 1
                    if cycle < locked_until and lock_start <= cycle:
                        s_in_lock += 1
                        if rop_on:
                            for rec in reversed(rop._locks):
                                if rec.start <= cycle < rec.end:
                                    rec.arrivals += 1
                                    break
                    if t_req:
                        sink_emit(0, 0, cycle, 0, 0, line)  # READ_ARRIVAL
                    if rop_on:
                        # deferred RopEngine.on_request: log the arrival;
                        # window counts and the table feed are recovered at
                        # their (rare) read points.  While a lock is open
                        # every arrival closes/expires eagerly, keeping
                        # lock outcomes exactly as current as the scalar's.
                        if t_rop:
                            rop._now = cycle
                        acyc_append(cycle)
                        if rop._locks:
                            rop_lock_upkeep(cycle)
                    # arrival fast paths (read): with empty queues the
                    # scheduler outcome is fully determined by this one
                    # request — SRAM-service it, issue it, or queue it with
                    # the wake try_issue would arm
                    if not rq and not wq and not drain:
                        if (
                            rop_on
                            and buf_lines
                            and line in buf_lines
                            and sm.state is not TRAINING
                        ):
                            complete_from_sram(
                                (rid_v, line, bank, row, col, cycle), cycle
                            )
                        elif locked_until <= cycle:
                            gate = b_ready[bank]
                            if gate <= cycle and wtr_until <= cycle:
                                orow = b_open[bank]
                                if orow == row:
                                    col_c = cycle
                                    act = -1
                                    cat = 0
                                    s_row_hits += 1
                                else:
                                    act_gate = last_act + RRD
                                    if len(act_window) == 4:
                                        fg = act_window[0] + FAW
                                        if fg > act_gate:
                                            act_gate = fg
                                    if orow is None:
                                        act = cycle if cycle > act_gate else act_gate
                                        cat = 1
                                        s_row_closed += 1
                                    else:
                                        pre = b_preok[bank]
                                        if cycle > pre:
                                            pre = cycle
                                        act = pre + RP
                                        if act_gate > act:
                                            act = act_gate
                                        cat = 2
                                        s_row_conflicts += 1
                                    col_c = act + RCD
                                    b_open[bank] = row
                                    b_act[bank] = act
                                    last_act = act
                                    act_window.append(act)
                                    act_count += 1
                                dstart = col_c + CL
                                dend = dstart + BURST
                                shift = bus_free_at - dstart
                                if shift > 0:
                                    col_c += shift
                                    dstart += shift
                                    dend += shift
                                b_ready[bank] = col_c + CCD
                                if dend > b_busy[bank]:
                                    b_busy[bank] = dend
                                recover = col_c + RTP
                                ras_done = b_act[bank] + RAS
                                preok = b_preok[bank]
                                if recover > preok:
                                    preok = recover
                                if ras_done > preok:
                                    preok = ras_done
                                b_preok[bank] = preok
                                if issue_tap is not None:
                                    issue_tap(
                                        Coord(0, 0, bank, row, col),
                                        AccessPlan(col_c, dstart, dend, act, SK[cat]),
                                        False,
                                    )
                                bus_free_at = dend
                                busy_cycles += dend - dstart
                                if t_svc:
                                    sink_emit(1, 2, col_c, 0, 0, rid_v, cat)
                                if c0c == INF:
                                    c0c = dend
                                    c0s = seq
                                comps_append((dend, seq, rid_v, cycle))
                                seq += 1
                                work += 1
                            elif gate > cycle:
                                # bank busy: queue and wake when it frees —
                                # exactly the retry try_issue would schedule
                                rq.append((rid_v, line, bank, row, col, cycle))
                                if not 0 <= retry_at <= gate:
                                    retry_at = gate
                                    if gate < heap_top:
                                        heap_top = gate
                                        h0s = seq
                                    heappush(heap, (gate, seq, _RETRY, gate, 0))
                                    seq += 1
                                    work += 1
                            else:
                                rq.append((rid_v, line, bank, row, col, cycle))
                                try_issue(cycle)
                        elif lock_start <= cycle and 0 <= retry_at <= locked_until:
                            # rank locked, wake already armed: the append is
                            # all try_issue would accomplish
                            rq.append((rid_v, line, bank, row, col, cycle))
                        else:
                            rq.append((rid_v, line, bank, row, col, cycle))
                            try_issue(cycle)
                    elif (
                        cycle < locked_until
                        and lock_start <= cycle
                        and 0 <= retry_at <= locked_until
                        and not (
                            rop_on
                            and buf_lines
                            and line in buf_lines
                            and sm.state is not TRAINING
                        )
                    ):
                        # same locked append-only shortcut with queued
                        # company — SRAM members excluded (the sweep would
                        # service them despite the lock)
                        rq.append((rid_v, line, bank, row, col, cycle))
                    elif (
                        not wq
                        and not drain
                        and locked_until <= cycle
                        and 0 <= retry_at
                        and cycle < retry_at
                        and b_ready[bank] > cycle
                        and not (rop_on and buf_lines and sm.state is not TRAINING)
                    ):
                        # busy-bank append shortcut: an armed retry below
                        # every queued gate (the dedup keeps the minimum,
                        # and gates only grow) proves nothing is issuable
                        # before retry_at > cycle, so try_issue would only
                        # append and maybe pull the wake earlier
                        rq.append((rid_v, line, bank, row, col, cycle))
                        gate = b_ready[bank]
                        if gate < retry_at:
                            retry_at = gate
                            if gate < heap_top:
                                heap_top = gate
                                h0s = seq
                            heappush(heap, (gate, seq, _RETRY, gate, 0))
                            seq += 1
                            work += 1
                    else:
                        rq.append((rid_v, line, bank, row, col, cycle))
                        try_issue(cycle)
                idx = i + 1
                if idx >= n_ops:
                    if outstanding == 0 and not finished:
                        cpu_time += tail_cpu
                        finished = True
                        fc = -(-cpu_time // mult)
                        finish_cycle = fc if fc > cycle else cycle
                    break
                if outstanding >= mlp:
                    stalled = True
                    stall_events += 1
                    break
                cpu_time += gap_cpu[idx]
                when = (cpu_time + mm1) // mult
                if when < cycle:
                    when = cycle
                # a push immediately followed by its own pop is a no-op:
                # when the next op precedes every pending heap event it
                # runs right now (same order the heap would produce) —
                # unless it would overrun the until bound.  Completions in
                # (now, when] are pure bookkeeping (the core is running,
                # not stalled) and are folded in before the op, same as
                # the drain at the unstall site above.
                if heap_top <= when or (until is not None and when > until):
                    op_at = when
                    op_seq = seq
                    seq += 1
                    work += 1
                    break
                while c0c <= when:
                    ccyc, _cs, crid, carr = comps_popleft()
                    if comps:
                        nt = comps[0]
                        c0c = nt[0]
                        c0s = nt[1]
                    else:
                        c0c = INF
                        c0s = INF
                    work -= 1
                    lat = ccyc - carr
                    s_completed += 1
                    s_lat_sum += lat
                    if lat > s_lat_max:
                        s_lat_max = lat
                    if ccyc > s_end_cycle:
                        s_end_cycle = ccyc
                    if t_svc:
                        sink_emit(1, 3, ccyc, 0, 0, crid, lat)
                    outstanding -= 1
                    ct = ccyc * mult
                    if ct > cpu_time:
                        cpu_time = ct
                cycle = when
                now = when
        elif tag == _RETRY:
            if retry_at == p1:
                retry_at = -1
            # single-request fast path: with one queued request, no rank
            # lock and no drain pressure, FR-FCFS reduces to "issue it if
            # its bank is ready, else re-arm the retry at the gate"
            if locked_until <= cycle and not drain and len(rq) + len(wq) == 1:
                if rq:
                    req = rq[0]
                    if rop_on and buf_lines and req[1] in buf_lines and (
                        sm.state is not TRAINING
                    ):
                        try_issue(cycle)
                    else:
                        gate = b_ready[req[2]]
                        if gate <= cycle:
                            del rq[0]
                            issue(req, cycle, False)
                        else:
                            schedule_retry(gate)
                elif drain_high > 1:
                    req = wq[0]
                    gate = b_ready[req[2]]
                    if gate <= cycle:
                        del wq[0]
                        issue(req, cycle, True)
                    else:
                        schedule_retry(gate)
                else:
                    try_issue(cycle)
            else:
                try_issue(cycle)
        elif tag == _TICK:
            if pausing:
                paused_step([RFC, False, cycle + tick_period - RFC], cycle)
            else:
                count = refresh_mgr.decide(0, 0, cycle, len(rq) + len(wq))
                if count > 0:
                    due = cycle
                    if rop_on:
                        if drain_before_refresh:
                            drained = 0
                            while rq and drained < 16:
                                issue(rq.pop(0), cycle, False)
                                drained += 1
                            while wq and drained < 16:
                                issue(wq.pop(0), cycle, True)
                                drained += 1
                        ch_obj.busy_cycles = busy_cycles  # for _bus_pressure
                        if t_rop:
                            # instrumented runs delegate (skip emits carry
                            # the B-count); materialize what the planner
                            # reads: the table past its training
                            # early-return, the arrival deque always
                            if not sm.is_training:
                                replay_table(len(acyc))
                                flush_table()
                            sync_prof_window(cycle)
                            cts = prof.counts
                            pf_lines = rop.plan_prefetch(0, 0, cycle)
                            if prof.counts is not cts:  # a close retrained
                                del mir_pending[:]
                            if pf_lines:
                                due = fetch_prefetch(pf_lines, cycle)
                        else:
                            # inline RopEngine.plan_prefetch, dark path: the
                            # deque read becomes a bisection and the table
                            # replay runs only when the planner actually
                            # reads the table (throttle accepted)
                            cts = prof.counts
                            rop._close_stale_locks(cycle)
                            if prof.counts is not cts:
                                del mir_pending[:]
                            if not sm.is_training:
                                # scalar count_in_window is half-open
                                # [cycle - window, cycle): an arrival at
                                # exactly ``cycle`` must not count
                                b_count = bisect_left(acyc, cycle) - bisect_left(
                                    acyc, cycle - window
                                )
                                if (
                                    rop._bus_pressure(0, cycle)
                                    > cfg.rop.bus_pressure_limit
                                ):
                                    rop.pressure_skips += 1
                                    stats.prefetch_skipped += 1
                                elif not rop.prefetcher.decide(
                                    b_count, rop.lam_beta[(0, 0)]
                                ):
                                    stats.prefetch_skipped += 1
                                else:
                                    sm.begin_prefetch()
                                    replay_table(len(acyc))
                                    flush_table()
                                    pf_lines = rop.prefetcher.candidate_lines(
                                        table, rop._mapper, 0, 0
                                    )
                                    if cfg.rop.adaptive_depth and pf_lines:
                                        depth = max(
                                            8, int(2.0 * rop._consumed_ema) + 8
                                        )
                                        pf_lines = pf_lines[:depth]
                                    if not pf_lines:
                                        sm.end_prefetch()
                                        stats.prefetch_skipped += 1
                                    else:
                                        due = fetch_prefetch(pf_lines, cycle)
                    for _ in range(count):
                        ref_banks = range(nbanks)
                        one_bank = -1
                        if per_bank:
                            ref_banks = refresh_mgr.banks_for(0, 0)
                            one_bank = ref_banks[0]
                        # Rank.start_refresh(due, banks=...)
                        start = due
                        for b in ref_banks:
                            q = b_ready[b]
                            if b_busy[b] > q:
                                q = b_busy[b]
                            if b_open[b] is not None and b_preok[b] > q:
                                q = b_preok[b]
                            if q > start:
                                start = q
                        end = start + RFC
                        for b in ref_banks:
                            b_open[b] = None
                            if end > b_ready[b]:
                                b_ready[b] = end
                            if end > b_preok[b]:
                                b_preok[b] = end
                        if not per_bank and end > locked_until:
                            if start > locked_until:
                                lock_start = start
                            locked_until = end
                        refresh_count += 1
                        s_refreshes += 1
                        s_locked_cycles += end - start
                        if end > s_end_cycle:
                            s_end_cycle = end
                        if t_ref:
                            sink_emit(2, 5, start, 0, 0, end, one_bank)
                        if rop_on:
                            # inline RopEngine.on_refresh_executed: training
                            # feed via the deferred mirror (B-count by
                            # bisection), real state machine and lock ledger,
                            # table reset by span elision
                            if t_rop:
                                rop._now = start
                            if sm.is_training:
                                mir_expire(start)
                                hi = len(acyc)
                                # [start - window, start): same half-open
                                # window as the scalar profiler
                                b = bisect_left(acyc, start) - bisect_left(
                                    acyc, start - window
                                )
                                mir_pending.append(
                                    [start, start + a_window, b, hi]
                                )
                                last_tr_adv = start
                                rop._maybe_finish_training(start)
                            rop._locks.append(
                                LockRecord(
                                    0,
                                    0,
                                    start,
                                    end,
                                    buffer.owner == (0, 0) and len(buf_lines) > 0,
                                )
                            )
                            reset_table_mirror()  # the refresh closes the window
                            table_upto = len(acyc)  # elide the span's table feed
                        due = end
                    if rq or wq:
                        schedule_retry(due)
            w = cycle + tick_period
            if w < heap_top:
                heap_top = w
                h0s = seq
            heappush(heap, (w, seq, _TICK, 0, 0))
            seq += 1
        elif tag == _PSTEP:
            paused_step(p1, cycle)

    # ------------------------------------------------------------- write-back
    core._idx = idx
    core._outstanding = outstanding
    core._stalled = stalled
    core._cpu_time = cpu_time
    core.finished = finished
    core.finish_cycle = finish_cycle
    core.reads_issued = rd_pref[idx]
    core.writes_issued = idx - rd_pref[idx]
    core.stall_events = stall_events
    for b in range(nbanks):
        bk = banks[b]
        bk.open_row = b_open[b]
        bk.ready_at = b_ready[b]
        bk.pre_ok_at = b_preok[b]
        bk.act_cycle = b_act[b]
        bk.busy_until = b_busy[b]
    rank.locked_until = locked_until
    rank.lock_start = lock_start
    rank.last_act = last_act
    rank.wtr_until = wtr_until
    rank.refresh_count = refresh_count
    rank.act_count = act_count
    ch_obj.bus_free_at = bus_free_at
    ch_obj.busy_cycles = busy_cycles
    stats.reads = s_reads + rd_pref[idx]
    stats.writes = s_writes + idx - rd_pref[idx]
    stats.prefetches = s_prefetches
    stats.row_hits = s_row_hits
    stats.row_closed = s_row_closed
    stats.row_conflicts = s_row_conflicts
    stats.read_latency_sum = s_lat_sum
    stats.read_latency_max = s_lat_max
    stats.reads_completed = s_completed
    stats.refreshes = s_refreshes
    stats.refresh_locked_cycles = s_locked_cycles
    stats.reads_arriving_in_lock = s_in_lock
    stats.sram_hits_in_lock = s_sram_in
    stats.sram_hits_out_of_lock = s_sram_out
    stats.sram_fills = s_sram_fills
    stats.prefetch_fetch_cycles = s_pf_cycles
    stats.end_cycle = s_end_cycle
    if rop_on:
        stats.sram_invalidations = buffer.invalidations
        replay_table(len(acyc))
        flush_table()
        # materialize the deferred profiler mirror back into the real
        # PatternProfiler: the arrival deque as the scalar's last advance()
        # would have left it, and the still-open probes with their
        # A-counts-so-far — finalize()/summary() then see scalar state
        la = last_tr_adv
        if acyc and acyc[-1] > la:
            la = acyc[-1]
        arrivals.clear()
        if acyc:
            j = bisect_left(acyc, la - window)
            n = len(acyc)
            while j < n:
                arrivals.append((acyc[j], not writes_col[j]))
                j += 1
        pend = []
        for rec in mir_pending:
            p = _PendingRefresh(rec[0], rec[1], rec[2])
            lo = bisect_left(acyc, rec[0])
            cidx = rec[3]
            if lo < cidx:
                lo = cidx
            p.a_count = rd_pref[bisect_left(acyc, rec[1])] - rd_pref[lo]
            pend.append(p)
        prof._pending = pend
    controller._rid = idx
    controller._retry_at[0] = -1
    controller._drain[0] = drain
    # leftover queue contents (only reachable when max_cycles cut the run
    # short: run_cores raises and reports pending_requests)
    if rq or wq:
        controller.read_q[0] = [
            Request(r[0], ReqKind.READ, r[1], Coord(0, 0, r[2], r[3], r[4]), r[5])
            for r in rq
        ]
        controller.write_q[0] = [
            Request(r[0], ReqKind.WRITE, r[1], Coord(0, 0, r[2], r[3], r[4]), r[5])
            for r in wq
        ]
    events.now = now
    events._heap.clear()
    events._work = 0
    events._seq = seq
    return None
