"""Multi-topology epoch kernel: the flat engine for every other shape.

:mod:`repro.kernel.epoch` collapses the 1-core x 1-channel x 1-rank hot
path into scalar locals.  This module generalizes the same event-epoch
design to arbitrary topologies — N cores, C channels, R ranks, every
refresh mode — so the paper's headline sweeps (Figs. 10-14: 4-core mixes
over Baseline / rank-partitioned / ROP quad-rank systems) ride the fast
path instead of falling back to the scalar engine.

State layout: everything indexed flat.  Per-(channel, rank) state lives in
parallel lists keyed by ``kk = ci * R + ri``; bank timing vectors are
flattened once more to ``gb = kk * nbanks + bank``.  Per-core replay state
(trace cursor, MLP window, CPU clock) is one list per field, and each
core's trace columns are pre-decoded to flat lists including the channel
and rank columns the single-topology kernel ignores.

Events live in ONE heap of ``(cycle, seq, tag, a, b)`` tuples with a
global ``seq`` allocated at every push in the exact order the scalar
engine pushes — that, plus a global submission-order request id, is what
keeps cross-core FR-FCFS arbitration, bus serialization and the RNG
consumption order bit-identical to the scalar engine (the PR 6 contract).

The deferred ROP bookkeeping (arrival log + bisection instead of
per-request deque upkeep, lazily replayed prediction-table feed with
refresh-reset span elision) is carried over from the flat kernel, made
per-(channel, rank): each rank key owns its own arrival log, probe
mirror, table mirror and refresh grid (rank-staggered ``first_tick``).
Probe expiry ("advance") points are the observable ones — training ticks
and arrivals while a lock is open — and expiring *all* keys' matured
probes there is safe: a probe's category is fixed once its A-window
deadline has passed, counts are only read at training ticks (after a
full expiry sweep at the same cutoff) and a retrain resets counts and
pending in both engines.
"""

from __future__ import annotations

from bisect import bisect_left
from heapq import heappop, heappush

import numpy as np

from ..config import RefreshMode
from ..core.state_machine import RopState
from ..dram.bank import AccessPlan
from ..dram.request import Coord, ReqKind, Request, ServiceKind

__all__ = ["run_epoch_multi"]

#: event tags (same dispatch set as the flat kernel)
_OP = 0  #: a core's next trace operation is due (a = core index)
_RCOMP = 1  #: a read completes (a = queue-entry tuple, b = channel)
_RETRY = 2  #: deduplicated scheduler wake-up (a = channel, b = wake)
_TICK = 3  #: tREFI grid tick (a = channel, b = rank; housekeeping)
_PSTEP = 4  #: one Refresh-Pausing segment step (a = state list)


def run_epoch_multi(memory, cores, max_cycles=None) -> str | None:
    """Run any-topology simulations through the flat kernel.

    Returns ``None`` when the kernel ran, or the decline reason for the
    configurations that still need the scalar engine (prediction-table
    ablation modes whose per-request feed is not inlined here).
    """
    org = memory.config.organization
    events = memory.events
    controller = memory.controller
    decline = controller.refresh_mgr.kernel_decline
    if decline is not None:
        # defensive: run_epoch_kernel already screened this, but direct
        # callers of the multi kernel get the same structured reason
        return decline
    cfg = controller.cfg
    t = controller.t
    rop = controller.rop
    rop_on = rop is not None
    refresh_mgr = controller.refresh_mgr
    sink = controller.sink
    sink_emit = sink.emit
    mapper = controller.mapper
    issue_tap = controller.issue_tap
    stats = controller.stats

    C = org.channels
    R = org.ranks
    nbanks = org.banks
    nkeys = C * R
    keys = [(ci, ri) for ci in range(C) for ri in range(R)]

    # DDR timing scalars
    RCD, RP, CL, CWL = t.rcd, t.rp, t.cl, t.cwl
    BURST, CCD, RTP, WR = t.burst, t.ccd, t.rtp, t.wr
    RAS, RRD, FAW, WTR, RFC = t.ras, t.rrd, t.faw, t.wtr, t.rfc

    t_req, t_svc, t_ref = controller._t_req, controller._t_svc, controller._t_ref
    t_rop = rop._t_rop if rop_on else False

    # ------------------------------------------------------- hardware state
    # banks flattened over (channel, rank, bank): gb = (ci*R + ri)*nbanks + b
    chans = controller.channels
    b_open: list = []
    b_ready: list[int] = []
    b_preok: list[int] = []
    b_act: list[int] = []
    b_busy: list[int] = []
    r_locked: list[int] = []
    r_lockstart: list[int] = []
    r_lastact: list[int] = []
    r_actwin: list = []  # deque(maxlen=4) per rank key, mutated in place
    r_wtr: list[int] = []
    r_refcount: list[int] = []
    r_actcount: list[int] = []
    for ci in range(C):
        for rk_obj in chans[ci].ranks:
            for b in rk_obj.banks:
                b_open.append(b.open_row)
                b_ready.append(b.ready_at)
                b_preok.append(b.pre_ok_at)
                b_act.append(b.act_cycle)
                b_busy.append(b.busy_until)
            r_locked.append(rk_obj.locked_until)
            r_lockstart.append(rk_obj.lock_start)
            r_lastact.append(rk_obj.last_act)
            r_actwin.append(rk_obj.act_window)
            r_wtr.append(rk_obj.wtr_until)
            r_refcount.append(rk_obj.refresh_count)
            r_actcount.append(rk_obj.act_count)
    bus_free = [ch.bus_free_at for ch in chans]
    busy_cyc = [ch.busy_cycles for ch in chans]

    # stats mirrors
    s_reads = stats.reads
    s_writes = stats.writes
    s_prefetches = stats.prefetches
    s_row_hits = stats.row_hits
    s_row_closed = stats.row_closed
    s_row_conflicts = stats.row_conflicts
    s_lat_sum = stats.read_latency_sum
    s_lat_max = stats.read_latency_max
    s_completed = stats.reads_completed
    s_refreshes = stats.refreshes
    s_locked_cycles = stats.refresh_locked_cycles
    s_in_lock = stats.reads_arriving_in_lock
    s_sram_in = stats.sram_hits_in_lock
    s_sram_out = stats.sram_hits_out_of_lock
    s_sram_fills = stats.sram_fills
    s_pf_cycles = stats.prefetch_fetch_cycles
    s_end_cycle = stats.end_cycle

    # ------------------------------------------------------- per-core state
    ncores = len(cores)
    core_cfg = cores[0].cfg if ncores else cfg.core
    mult = core_cfg.cpu_clock_mult
    mlp = core_cfg.mlp
    mm1 = mult - 1  #: ceil-div addend: ceil(t / mult) == (t + mm1) // mult
    # per-core op stream pre-zipped to one tuple per op — the dispatch
    # loop does a single index + unpack instead of seven column lookups
    c_ops: list[list[tuple]] = []
    c_gaps: list[list[int]] = []
    c_rdpref: list[list[int]] = []
    c_n: list[int] = []
    c_tail: list[int] = []
    idx_ = [0] * ncores
    out_ = [0] * ncores
    stalled_ = [False] * ncores
    cput_ = [0] * ncores
    fin_ = [False] * ncores
    finc_ = [0] * ncores
    stallev_ = [0] * ncores
    for core in cores:
        lines = core._lines
        n = len(lines)
        c_gaps.append(core._gap_cpu)
        c_n.append(n)
        c_tail.append(int(core.trace.tail_instructions * core.cfg.base_cpi))
        if n:
            ch_a, rk_a, bank_a, row_a, col_a = mapper.decode_array(core.trace.lines)
            kk_a = ch_a * R + rk_a
            c_ops.append(
                list(
                    zip(
                        lines,
                        core._writes,
                        ch_a.tolist(),
                        rk_a.tolist(),
                        bank_a.tolist(),
                        row_a.tolist(),
                        col_a.tolist(),
                        kk_a.tolist(),
                        (kk_a * nbanks + bank_a).tolist(),
                        (row_a * org.columns + col_a).tolist(),
                    )
                )
            )
        else:
            c_ops.append([])
        c_rdpref.append(
            np.concatenate(
                ([0], np.cumsum(core.trace.writes == 0, dtype=np.int64))
            ).tolist()
        )

    # ------------------------------------------------------ scheduler state
    drain_high = cfg.scheduler.write_drain_high
    drain_low = cfg.scheduler.write_drain_low
    # queue entry: (rid, line, rank, bank, row, col, arrival, core, kk, gb)
    # — kk/gb are the flat rank/bank indices, precomputed once per request
    # so the FR-FCFS scan does no index arithmetic.
    read_q: list[list[tuple]] = [[] for _ in range(C)]
    write_q: list[list[tuple]] = [[] for _ in range(C)]
    drain = [False] * C
    retry_at = [-1] * C
    # Arrival fast path: after a failing scan at cycle X, every queued
    # request on the channel is gate-blocked until at least gated[ci]
    # (> X).  Gates only move forward outside try_issue, so while
    # now < gated[ci] an arrival needs to check only ITSELF — the full
    # rescan is provably a no-op for the rest of the queue.  Any event
    # that could unblock old requests some other way (refresh drains,
    # prefetch fills into the SRAM buffer, training-state flips) resets
    # gated[ci] to -1, forcing the next arrival through the full scan.
    gated = [-1] * C
    # Stored retry pick: a failing scan knows which request the retry it
    # schedules will select (the ready set at `wake` is exactly the
    # requests whose gate equals the minimum, and bank state cannot move
    # before the retry or the store is invalidated).  The retry then
    # issues it directly instead of rescanning to rediscover it.
    sp_wake = [-1] * C
    sp_i = [0] * C
    sp_w = [False] * C
    # max refresh-lock end per channel: when cycle >= lockend[ci] no rank
    # of the channel is (or will be) frozen, so scans skip the per-request
    # lock-window test entirely — the common case between refreshes.
    lockend = [0] * C
    for kk in range(nkeys):
        ci = kk // R
        if r_locked[kk] > lockend[ci]:
            lockend[ci] = r_locked[kk]

    # -------------------------------------------------------- refresh state
    refresh_enabled = refresh_mgr.enabled
    tick_period = refresh_mgr.period
    pausing = cfg.refresh.mode is RefreshMode.PAUSING
    per_bank = cfg.refresh.mode is RefreshMode.PER_BANK
    pause_seg = max(1, RFC // max(1, cfg.refresh.pause_segments))

    # ------------------------------------------------------------ ROP state
    TRAINING = RopState.TRAINING
    if rop_on:
        sm = rop.sm
        buffer = rop.buffer
        buf_lines = buffer._lines  # stable set reference (mutated in place)
        buffer_consume = buffer.consume
        buffer_invalidate = buffer.invalidate
        from ..core.profiler import _PendingRefresh
        from ..core.rop_engine import LockRecord

        profs = [rop.profilers[key] for key in keys]
        tables = [rop.tables[key] for key in keys]
        prof0 = profs[0]  # retrain canary: a retrain rebinds every counts
        window = rop.window
        a_window = prof0.a_window
        ref_period = rop._ref_period
        columns = rop._columns
        table_all = not rop.rop.table_reads_only
        drain_before_refresh = cfg.rop.drain_before_refresh
        sram_latency = cfg.rop.sram_latency
        adaptive_depth = cfg.rop.adaptive_depth
        bus_pressure_limit = cfg.rop.bus_pressure_limit
        # deferred per-key mirrors (see repro.kernel.epoch for the scheme;
        # here every structure is one list per (channel, rank) key)
        k_cyc: list[list[int]] = [[] for _ in range(nkeys)]
        k_wr: list[list[int]] = [[] for _ in range(nkeys)]
        k_rdp: list[list[int]] = [[0] for _ in range(nkeys)]
        k_bank: list[list[int]] = [[] for _ in range(nkeys)]
        k_addr: list[list[int]] = [[] for _ in range(nkeys)]
        mir_pending: list[list[list[int]]] = [[] for _ in range(nkeys)]
        last_tr_adv = -1  # last training-tick advance (global: all profilers)
        # per-key prediction-table mirrors; flat per-bank layout
        # [d1, f1, d2, ph2, f2, d3, ph3, f3] (matcher ks fixed at 1, 2, 3)
        table_upto = [0] * nkeys
        cur_due = [rop._ref_first[key] for key in keys]
        tb_last: list[list] = []
        tb_hist: list[list] = []
        tb_m: list[list] = []
        for tb in tables:
            entries = tb.entries
            if any(e.tumbling for e in entries):
                return "tumbling prediction-table ablation"
            if any([m.k for m in e._matchers] != [1, 2, 3] for e in entries):
                return "non-standard prediction-table matcher orders"
            tb_last.append([e.last_addr for e in entries])
            tb_hist.append([list(e._history) for e in entries])
            tb_m.append(
                [
                    [
                        e._matchers[0].pattern[0] if e._matchers[0].pattern else None,
                        e._matchers[0].freq,
                        e._matchers[1].pattern,
                        e._matchers[1].phase,
                        e._matchers[1].freq,
                        e._matchers[2].pattern,
                        e._matchers[2].phase,
                        e._matchers[2].freq,
                    ]
                    for e in entries
                ]
            )
    else:
        sm = buffer = None
        sram_latency = 0
        drain_before_refresh = False

    SK = (ServiceKind.DRAM_HIT, ServiceKind.DRAM_CLOSED, ServiceKind.DRAM_CONFLICT)

    heap: list[tuple] = []
    seq = 0
    work = 0
    now = 0
    rid = 0  # global submission-order request id (scalar Controller._rid)
    todo = 0  # cores not yet finished
    INF = 1 << 62

    # ------------------------------------------------------------- closures

    def plan_commit(cycle, ci, ri, bank, row, col, is_write):
        """Inline Rank.plan + bus shift + Rank.commit for one access."""
        kk = ci * R + ri
        gb = kk * nbanks + bank
        lu = r_locked[kk]
        start = cycle if cycle > lu else lu
        if is_write:
            not_before = start
        else:
            w = r_wtr[kk]
            not_before = start if start > w else w
        bstart = b_ready[gb]
        if cycle > bstart:
            bstart = cycle
        if not_before > bstart:
            bstart = not_before
        cas = CWL if is_write else CL
        orow = b_open[gb]
        if orow == row:
            col_c = bstart
            act = -1
            cat = 0
        else:
            aw = r_actwin[kk]
            act_gate = r_lastact[kk] + RRD
            if len(aw) == 4:
                faw_gate = aw[0] + FAW
                if faw_gate > act_gate:
                    act_gate = faw_gate
            if orow is None:
                act = bstart if bstart > act_gate else act_gate
                cat = 1
            else:
                pre = b_preok[gb]
                if bstart > pre:
                    pre = bstart
                act = pre + RP
                if act_gate > act:
                    act = act_gate
                cat = 2
            col_c = act + RCD
        dstart = col_c + cas
        dend = dstart + BURST
        shift = bus_free[ci] - dstart
        if shift > 0:
            col_c += shift
            dstart += shift
            dend += shift
        if act >= 0:
            b_open[gb] = row
            b_act[gb] = act
            r_lastact[kk] = act
            r_actwin[kk].append(act)
            r_actcount[kk] += 1
        b_ready[gb] = col_c + CCD
        if dend > b_busy[gb]:
            b_busy[gb] = dend
        recover = col_c + CWL + BURST + WR if is_write else col_c + RTP
        ras_done = b_act[gb] + RAS
        preok = b_preok[gb]
        if recover > preok:
            preok = recover
        if ras_done > preok:
            preok = ras_done
        b_preok[gb] = preok
        if is_write:
            wu = col_c + CWL + BURST + WTR
            if wu > r_wtr[kk]:
                r_wtr[kk] = wu
        if issue_tap is not None:
            issue_tap(
                Coord(ci, ri, bank, row, col),
                AccessPlan(col_c, dstart, dend, act, SK[cat]),
                is_write,
            )
        bus_free[ci] = dend
        busy_cyc[ci] += dend - dstart
        return dend

    def issue(ci, r, cycle, is_write):
        """Commit one queued demand request (inline Controller._issue)."""
        nonlocal s_row_hits, s_row_closed, s_row_conflicts, seq, work
        row = r[4]
        kk = r[8]
        gb = r[9]
        lu = r_locked[kk]
        start = cycle if cycle > lu else lu
        if is_write:
            not_before = start
        else:
            w = r_wtr[kk]
            not_before = start if start > w else w
        bstart = b_ready[gb]
        if cycle > bstart:
            bstart = cycle
        if not_before > bstart:
            bstart = not_before
        orow = b_open[gb]
        if orow == row:
            col_c = bstart
            act = -1
            cat = 0
            s_row_hits += 1
        else:
            aw = r_actwin[kk]
            act_gate = r_lastact[kk] + RRD
            if len(aw) == 4:
                faw_gate = aw[0] + FAW
                if faw_gate > act_gate:
                    act_gate = faw_gate
            if orow is None:
                act = bstart if bstart > act_gate else act_gate
                cat = 1
                s_row_closed += 1
            else:
                pre = b_preok[gb]
                if bstart > pre:
                    pre = bstart
                act = pre + RP
                if act_gate > act:
                    act = act_gate
                cat = 2
                s_row_conflicts += 1
            col_c = act + RCD
            b_open[gb] = row
            b_act[gb] = act
            r_lastact[kk] = act
            aw.append(act)
            r_actcount[kk] += 1
        dstart = col_c + (CWL if is_write else CL)
        dend = dstart + BURST
        shift = bus_free[ci] - dstart
        if shift > 0:
            col_c += shift
            dstart += shift
            dend += shift
        b_ready[gb] = col_c + CCD
        if dend > b_busy[gb]:
            b_busy[gb] = dend
        recover = col_c + CWL + BURST + WR if is_write else col_c + RTP
        ras_done = b_act[gb] + RAS
        preok = b_preok[gb]
        if recover > preok:
            preok = recover
        if ras_done > preok:
            preok = ras_done
        b_preok[gb] = preok
        if is_write:
            wu = col_c + CWL + BURST + WTR
            if wu > r_wtr[kk]:
                r_wtr[kk] = wu
        if issue_tap is not None:
            issue_tap(
                Coord(ci, r[2], r[3], row, r[5]),
                AccessPlan(col_c, dstart, dend, act, SK[cat]),
                is_write,
            )
        bus_free[ci] = dend
        busy_cyc[ci] += dend - dstart
        if t_svc:
            sink_emit(1, 2, col_c, ci, r[2], r[0], cat)  # SERVICE / ISSUE
        if not is_write:
            heappush(heap, (dend, seq, _RCOMP, r, ci))
            seq += 1
            work += 1

    def complete_from_sram(ci, r, cycle):
        """Service a queued read from the SRAM buffer (inline)."""
        nonlocal s_sram_in, s_sram_out, seq, work
        ri = r[2]
        kk = r[8]
        line = r[1]
        in_lock = r_lockstart[kk] <= cycle < r_locked[kk]
        if in_lock:
            s_sram_in += 1
        else:
            s_sram_out += 1
        if t_svc:
            sink_emit(1, 4, cycle, ci, ri, line, 1 if in_lock else 0)  # SRAM_SERVICE
        # inline RopEngine.on_sram_hit: consume + per-lock hit bookkeeping
        buffer_consume(line, cycle)
        if in_lock:
            for rec in reversed(rop._locks):
                if (
                    rec.channel == ci
                    and rec.rank == ri
                    and rec.start <= cycle < rec.end
                ):
                    rec.hits += 1
                    break
        heappush(heap, (cycle + sram_latency, seq, _RCOMP, r, ci))
        seq += 1
        work += 1

    def schedule_retry(ci, wake):
        nonlocal seq, work
        pending = retry_at[ci]
        if 0 <= pending <= wake:
            return
        retry_at[ci] = wake
        heappush(heap, (wake, seq, _RETRY, ci, wake))
        seq += 1
        work += 1

    def try_issue(ci, cycle):
        """Issue everything that can start now (inline Controller._try_issue).

        The FR-FCFS pick (Controller._select) is inlined at both scan
        sites with the per-request rank-lock gate: a request to a frozen
        rank contributes ``locked_until`` to the wake scan while requests
        to live ranks keep issuing — the cross-rank overlap the paper's
        staggered refresh depends on.
        """
        nonlocal seq, work
        rq = read_q[ci]
        wq = write_q[ci]
        gated[ci] = -1
        sp_wake[ci] = -1
        rls = r_lockstart
        rlk = r_locked
        brdy = b_ready
        bopn = b_open
        # lock state never changes inside one try_issue call
        locks_live = cycle < lockend[ci]
        progress = True
        while progress:
            progress = False
            # SRAM service sweep (any rank; guard order is side-effect free)
            if rop_on and rq and buf_lines and sm.state is not TRAINING:
                i = 0
                while i < len(rq):
                    if rq[i][1] in buf_lines:
                        complete_from_sram(ci, rq.pop(i), cycle)
                        progress = True
                    else:
                        i += 1
            lw = len(wq)
            if not drain[ci] and lw >= drain_high:
                drain[ci] = True
            elif drain[ci] and lw <= drain_low:
                drain[ci] = False
            if drain[ci]:
                queue = wq
            elif rq:
                queue = rq
            elif wq:
                queue = wq
            else:
                break
            # FR-FCFS scan: oldest ready row hit, else oldest ready,
            # else the earliest ungate cycle (bank ready or lock release).
            # fr/fh track the first ready / first row-hit request AT the
            # candidate wake, feeding the stored retry pick: a request
            # gated by its bank is ready the cycle the bank opens; one
            # gated by a rank lock is ready at lock end only if its bank
            # is too.
            pick = -1
            wake = -1
            fr = fh = -1
            for i, r in enumerate(queue):
                gb = r[9]
                if locks_live and rls[(kk := r[8])] <= cycle < rlk[kk]:
                    gate = rlk[kk]
                    if wake < 0 or gate < wake:
                        wake = gate
                        if brdy[gb] <= gate:
                            fr = i
                            fh = i if bopn[gb] == r[4] else -1
                        else:
                            fr = fh = -1
                    elif gate == wake and brdy[gb] <= gate:
                        if fr < 0:
                            fr = i
                        if fh < 0 and bopn[gb] == r[4]:
                            fh = i
                else:
                    gate = brdy[gb]
                    if gate <= cycle:
                        if bopn[gb] == r[4]:
                            pick = i
                            break
                        if pick < 0:
                            pick = i
                        continue
                    if wake < 0 or gate < wake:
                        wake = gate
                        fr = i
                        fh = i if bopn[gb] == r[4] else -1
                    elif gate == wake:
                        if fr < 0:
                            fr = i
                        if fh < 0 and bopn[gb] == r[4]:
                            fh = i
            if pick < 0:
                use_w = queue is wq
                if not use_w and wq:
                    # reads all gated; opportunistically try a write
                    wpick = -1
                    wwake = -1
                    ofr = ofh = -1
                    for i, r in enumerate(wq):
                        gb = r[9]
                        if locks_live and rls[(kk := r[8])] <= cycle < rlk[kk]:
                            gate = rlk[kk]
                            if wwake < 0 or gate < wwake:
                                wwake = gate
                                if brdy[gb] <= gate:
                                    ofr = i
                                    ofh = i if bopn[gb] == r[4] else -1
                                else:
                                    ofr = ofh = -1
                            elif gate == wwake and brdy[gb] <= gate:
                                if ofr < 0:
                                    ofr = i
                                if ofh < 0 and bopn[gb] == r[4]:
                                    ofh = i
                        else:
                            gate = brdy[gb]
                            if gate <= cycle:
                                if bopn[gb] == r[4]:
                                    wpick = i
                                    break
                                if wpick < 0:
                                    wpick = i
                                continue
                            if wwake < 0 or gate < wwake:
                                wwake = gate
                                ofr = i
                                ofh = i if bopn[gb] == r[4] else -1
                            elif gate == wwake:
                                if ofr < 0:
                                    ofr = i
                                if ofh < 0 and bopn[gb] == r[4]:
                                    ofh = i
                    if wpick >= 0:
                        issue(ci, wq.pop(wpick), cycle, True)
                        progress = True
                        continue
                    if wake < 0 or 0 <= wwake < wake:
                        wake = wwake
                        fr, fh, use_w = ofr, ofh, True
                    elif wwake == wake and fr < 0:
                        # the retry's read scan finds nothing ready and
                        # falls through to the opportunistic write
                        fr, fh, use_w = ofr, ofh, True
                if wake >= 0:
                    gated[ci] = wake
                    if fr >= 0:
                        sp_wake[ci] = wake
                        sp_i[ci] = fh if fh >= 0 else fr
                        sp_w[ci] = use_w
                    # inline schedule_retry(ci, wake)
                    pending = retry_at[ci]
                    if pending < 0 or pending > wake:
                        retry_at[ci] = wake
                        heappush(heap, (wake, seq, _RETRY, ci, wake))
                        seq += 1
                        work += 1
                break
            issue(ci, queue.pop(pick), cycle, queue is wq)
            progress = True

    # ------------------------------------------------------ ROP closures

    def mir_expire_all(cycle):
        """Categorize matured pending probes of every key (see module doc)."""
        for kk in range(nkeys):
            pend = mir_pending[kk]
            if not pend:
                continue
            counts = profs[kk].counts  # fetched live: a retrain rebinds it
            kc = k_cyc[kk]
            rdp = k_rdp[kk]
            still = []
            for rec in pend:
                deadline = rec[1]
                if deadline > cycle:
                    still.append(rec)
                    continue
                lo = bisect_left(kc, rec[0])
                cidx = rec[3]
                if lo < cidx:
                    lo = cidx
                a = rdp[bisect_left(kc, deadline)] - rdp[lo]
                if rec[2] > 0:
                    if a > 0:
                        counts.b_pos_a_pos += 1
                    else:
                        counts.b_pos_a_zero += 1
                elif a > 0:
                    counts.b_zero_a_pos += 1
                else:
                    counts.b_zero_a_zero += 1
            pend[:] = still

    def clear_all_pending():
        for kk in range(nkeys):
            del mir_pending[kk][:]

    def rop_lock_upkeep(cycle):
        """Per-arrival lock close + probe expiry while any lock is open."""
        cts = prof0.counts
        rop._close_stale_locks(cycle)
        if prof0.counts is not cts:  # a lock outcome retrained
            clear_all_pending()
            return
        mir_expire_all(cycle)

    def table_update(tl, th, tm, bank, addr):
        """Inline BankEntry.update (cyclic matchers, non-tumbling)."""
        prev = tl[bank]
        tl[bank] = addr
        if prev is None:
            return
        delta = addr - prev
        if delta == 0:
            return
        hist = th[bank]
        m = tm[bank]
        p2 = m[2]
        p3 = m[5]
        if (
            delta == m[0]
            and p2 is not None
            and delta == p2[m[3]]
            and p3 is not None
            and delta == p3[m[6]]
        ):
            f1 = m[1] + 1
            f2 = m[4] + 1
            f3 = m[7] + 1
            if f1 >= 255 or f2 >= 255 or f3 >= 255:
                f1 //= 2
                f2 //= 2
                f3 //= 2
            m[1] = f1
            m[4] = f2
            m[7] = f3
            m[3] = 1 - m[3]
            ph = m[6] + 1
            m[6] = 0 if ph == 3 else ph
            hist.append(delta)
            if len(hist) > 3:
                del hist[0]
            return
        hist.append(delta)
        if len(hist) > 3:
            del hist[0]
        nh = len(hist)
        capped = False
        if m[0] == delta:
            f = m[1] + 1
            m[1] = f
            if f >= 255:
                capped = True
        else:
            m[0] = delta
            m[1] = 0
        p = m[2]
        if p is not None and delta == p[m[3]]:
            f = m[4] + 1
            m[4] = f
            if f >= 255:
                capped = True
            m[3] = 1 - m[3]
        elif nh >= 2:
            m[2] = (hist[-2], hist[-1])
            m[3] = 0
            m[4] = 0
        else:
            m[2] = None
            m[3] = 0
            m[4] = 0
        p = m[5]
        if p is not None and delta == p[m[6]]:
            f = m[7] + 1
            m[7] = f
            if f >= 255:
                capped = True
            ph = m[6] + 1
            m[6] = 0 if ph == 3 else ph
        elif nh == 3:
            m[5] = (hist[0], hist[1], hist[2])
            m[6] = 0
            m[7] = 0
        else:
            m[5] = None
            m[6] = 0
            m[7] = 0
        if capped:
            m[1] //= 2
            m[4] //= 2
            m[7] //= 2

    def replay_table(kk):
        """Replay a key's deferred prediction-table feed up to its log head.

        Invoked only before a table *read*; spans that end in a refresh
        reset never get here — the reset advances ``table_upto`` past
        them, eliding feed work for tables about to be cleared.
        """
        kc = k_cyc[kk]
        upto = len(kc)
        j = table_upto[kk]
        if j >= upto:
            return
        table_upto[kk] = upto
        cd = cur_due[kk]
        kwr = k_wr[kk]
        kb = k_bank[kk]
        ka = k_addr[kk]
        tl = tb_last[kk]
        th = tb_hist[kk]
        tm = tb_m[kk]
        while j < upto:
            if table_all or not kwr[j]:
                c = kc[j]
                while cd < c:
                    cd += ref_period
                if cd - c <= window:
                    table_update(tl, th, tm, kb[j], ka[j])
            j += 1
        cur_due[kk] = cd

    def flush_table(kk):
        """Publish a key's table mirror into the real BankEntry objects."""
        tl = tb_last[kk]
        th = tb_hist[kk]
        tm = tb_m[kk]
        for b, e in enumerate(tables[kk].entries):
            e.last_addr = tl[b]
            h = e._history
            h.clear()
            h.extend(th[b])
            m = tm[b]
            m1, m2, m3 = e._matchers
            m1.pattern = (m[0],) if m[0] is not None else None
            m1.phase = 0
            m1.freq = m[1]
            m2.pattern = m[2]
            m2.phase = m[3]
            m2.freq = m[4]
            m3.pattern = m[5]
            m3.phase = m[6]
            m3.freq = m[7]

    def reset_table_mirror(kk):
        """Mirror TableEntry.reset() (refresh closed the window)."""
        tl = tb_last[kk]
        th = tb_hist[kk]
        tm = tb_m[kk]
        for b in range(nbanks):
            tl[b] = None
            th[b].clear()
            tm[b][:] = (None, 0, None, 0, 0, None, 0, 0)

    def sync_prof_window(kk, cycle):
        """Materialize a key's arrival deque for count_in_window."""
        arr = profs[kk]._arrivals
        arr.clear()
        kc = k_cyc[kk]
        kwr = k_wr[kk]
        lo = bisect_left(kc, cycle - window)
        n = len(kc)
        while lo < n:
            arr.append((kc[lo], not kwr[lo]))
            lo += 1

    def fetch_prefetch(ci, ri, pf_lines, cycle):
        """Inline Controller._fetch_prefetch_lines; returns the done cycle."""
        nonlocal s_prefetches, s_pf_cycles, s_sram_fills
        done = cycle
        coords = dict(zip(pf_lines, mapper.decode_coords(pf_lines)))
        ordered = sorted(pf_lines, key=lambda ln: coords[ln][2:])
        if sm.state is TRAINING:
            to_fetch = ordered
        else:
            to_fetch = [ln for ln in ordered if ln not in buf_lines]
        for line in to_fetch:
            c = coords[line]
            dend = plan_commit(cycle, ci, ri, c.bank, c.row, c.col, False)
            s_prefetches += 1
            if dend > done:
                done = dend
        s_pf_cycles += done - cycle
        s_sram_fills += len(to_fetch)
        cts = prof0.counts
        rop.on_prefetch_fill(ci, ri, ordered, done)
        if prof0.counts is not cts:  # a tenure close inside retrained
            clear_all_pending()
        return done

    def paused_step(st, cycle):
        """One Refresh-Pausing segment (inline Controller._paused_refresh).

        ``st`` is ``[remaining, counted, deadline, ci, ri]``; the pending
        check is rank-filtered, exactly ``_pending_for_rank``.
        """
        nonlocal s_refreshes, s_locked_cycles, s_end_cycle, seq, work
        remaining = st[0]
        if remaining <= 0:
            return
        ci = st[3]
        ri = st[4]
        rq = read_q[ci]
        wq = write_q[ci]
        if cycle + remaining < st[2]:
            pending = 0
            for r in rq:
                if r[2] == ri:
                    pending += 1
            for r in wq:
                if r[2] == ri:
                    pending += 1
            if pending > 0:
                # pause: demand goes first; re-check one segment later
                if t_ref:
                    sink_emit(2, 6, cycle, ci, ri, remaining)  # REFRESH_PAUSE
                heappush(heap, (cycle + pause_seg, seq, _PSTEP, st, 0))
                seq += 1
                work += 1
                try_issue(ci, cycle)
                return
        dur = pause_seg if pause_seg < remaining else remaining
        kk = ci * R + ri
        base_gb = kk * nbanks
        # Rank.start_refresh(cycle, duration=dur), all banks
        start = cycle
        for b in range(nbanks):
            gb = base_gb + b
            q = b_ready[gb]
            if b_busy[gb] > q:
                q = b_busy[gb]
            if b_open[gb] is not None and b_preok[gb] > q:
                q = b_preok[gb]
            if q > start:
                start = q
        end = start + dur
        for b in range(nbanks):
            gb = base_gb + b
            b_open[gb] = None
            if end > b_ready[gb]:
                b_ready[gb] = end
            if end > b_preok[gb]:
                b_preok[gb] = end
        # raising b_ready / closing rows breaks stored-pick readiness
        sp_wake[ci] = -1
        if end > r_locked[kk]:
            if start > r_locked[kk]:
                r_lockstart[kk] = start
            r_locked[kk] = end
            if end > lockend[ci]:
                lockend[ci] = end
        r_refcount[kk] += 1
        st[0] = remaining - dur
        s_locked_cycles += end - start
        if end > s_end_cycle:
            s_end_cycle = end
        if not st[1]:
            s_refreshes += 1
            st[1] = True
        if t_ref:
            sink_emit(2, 5, start, ci, ri, end, -1)  # REFRESH_WINDOW
        if st[0] > 0:
            heappush(heap, (end, seq, _PSTEP, st, 0))
            seq += 1
            work += 1
        elif rq or wq:
            schedule_retry(ci, end)

    # ------------------------------------------------------------- seeding
    # replicate the scalar push order: the controller's initial refresh
    # ticks per (channel, rank) in nested order, then each core's first op
    if refresh_enabled:
        for ci in range(C):
            for ri in range(R):
                heappush(heap, (refresh_mgr.first_tick(ci, ri), seq, _TICK, ci, ri))
                seq += 1
    for k in range(ncores):
        if c_n[k] == 0:
            fin_[k] = True
        else:
            todo += 1
            cput_[k] += c_gaps[k][0]
            when = (cput_[k] + mm1) // mult
            if when < 0:
                when = 0
            heappush(heap, (when, seq, _OP, k, 0))
            seq += 1
            work += 1

    # ------------------------------------------------------------- main loop
    # Two phases mirroring run_cores on the scalar path:
    # memory.run(until=max_cycles), then — once every core has retired —
    # memory.run(until=last_retire) for the compute tail.
    until = max_cycles
    tail = False
    while True:
        if tail or until is not None:
            nxt = heap[0][0] if heap else INF
            if tail:
                if nxt > until:
                    break
            elif nxt > until:
                if todo:
                    break
                last_retire = max(finc_) if finc_ else 0
                if last_retire <= now:
                    break
                tail = True
                until = last_retire
                continue
        elif not work:
            if todo:
                break
            last_retire = max(finc_) if finc_ else 0
            if last_retire <= now:
                break
            tail = True
            until = last_retire
            continue
        cycle, _s, tag, p1, p2 = heappop(heap)
        if tag != _TICK:
            work -= 1
        now = cycle
        if tag == _RCOMP:
            r = p1
            ci = p2
            # Controller._account_read
            lat = cycle - r[6]
            s_completed += 1
            s_lat_sum += lat
            if lat > s_lat_max:
                s_lat_max = lat
            if cycle > s_end_cycle:
                s_end_cycle = cycle
            if t_svc:
                sink_emit(1, 3, cycle, ci, r[2], r[0], lat)  # SERVICE / COMPLETE
            # Core._on_read_done
            k = r[7]
            out_[k] -= 1
            ct = cycle * mult
            if ct > cput_[k]:
                cput_[k] = ct
            if not fin_[k]:
                if idx_[k] >= c_n[k]:
                    if out_[k] == 0:
                        cput_[k] += c_tail[k]
                        fin_[k] = True
                        todo -= 1
                        fc = -(-cput_[k] // mult)
                        finc_[k] = fc if fc > cycle else cycle
                elif stalled_[k]:
                    stalled_[k] = False
                    cput_[k] += c_gaps[k][idx_[k]]
                    when = (cput_[k] + mm1) // mult
                    if when < cycle:
                        when = cycle
                    heappush(heap, (when, seq, _OP, k, 0))
                    seq += 1
                    work += 1
        elif tag == _OP:
            k = p1
            while True:
                i = idx_[k]
                line, is_wr, ci, ri, bank, row, col, kk, gb, addr = c_ops[k][i]
                r = (rid, line, ri, bank, row, col, cycle, k, kk, gb)
                rid += 1
                if is_wr:
                    # Controller.submit(WRITE)
                    write_q[ci].append(r)
                    if rop_on:
                        if line in buf_lines:
                            buffer_invalidate(line, cycle)
                        if t_req:
                            sink_emit(0, 1, cycle, ci, ri, line)  # WRITE_ARRIVAL
                        # deferred RopEngine.on_request: log the arrival
                        if t_rop:
                            rop._now = cycle
                        k_cyc[kk].append(cycle)
                        k_wr[kk].append(1)
                        rdp = k_rdp[kk]
                        rdp.append(rdp[-1])
                        k_bank[kk].append(bank)
                        k_addr[kk].append(addr)
                        if rop._locks:
                            rop_lock_upkeep(cycle)
                    elif t_req:
                        sink_emit(0, 1, cycle, ci, ri, line)
                    g = gated[ci]
                    if g > cycle:
                        # fast arrival: everything older stays gate-blocked, so
                        # the full scan reduces to checking this write alone
                        # (same drain hysteresis, same retry pushes)
                        wq = write_q[ci]
                        if not drain[ci] and len(wq) >= drain_high:
                            # entering drain changes the retry's queue choice
                            drain[ci] = True
                            sp_wake[ci] = -1
                        if r_lockstart[kk] <= cycle < r_locked[kk]:
                            gate = r_locked[kk]
                        else:
                            gate = b_ready[gb]
                        if gate <= cycle:
                            wq.pop()
                            sp_wake[ci] = -1  # issue moves bank state
                            issue(ci, r, cycle, True)
                            if drain[ci] and len(wq) <= drain_low:
                                # leaving drain mode may unblock queued reads
                                drain[ci] = False
                                try_issue(ci, cycle)
                        else:
                            if gate < g:
                                gated[ci] = gate
                            if gate <= sp_wake[ci]:
                                # this write may join (or outrank) the stored
                                # pick's ready set at the wake cycle
                                sp_wake[ci] = -1
                            pending = retry_at[ci]
                            if pending < 0 or gate < pending:
                                retry_at[ci] = gate
                                heappush(heap, (gate, seq, _RETRY, ci, gate))
                                seq += 1
                                work += 1
                    else:
                        try_issue(ci, cycle)
                else:
                    out_[k] += 1
                    # Controller.submit(READ)
                    read_q[ci].append(r)
                    if r_lockstart[kk] <= cycle < r_locked[kk]:
                        s_in_lock += 1
                        if rop_on:
                            for rec in reversed(rop._locks):
                                if (
                                    rec.channel == ci
                                    and rec.rank == ri
                                    and rec.start <= cycle < rec.end
                                ):
                                    rec.arrivals += 1
                                    break
                    if t_req:
                        sink_emit(0, 0, cycle, ci, ri, line)  # READ_ARRIVAL
                    if rop_on:
                        if t_rop:
                            rop._now = cycle
                        k_cyc[kk].append(cycle)
                        k_wr[kk].append(0)
                        rdp = k_rdp[kk]
                        rdp.append(rdp[-1] + 1)
                        k_bank[kk].append(bank)
                        k_addr[kk].append(addr)
                        if rop._locks:
                            rop_lock_upkeep(cycle)
                    g = gated[ci]
                    if g > cycle:
                        # fast arrival, read flavor: SRAM sweep first (original
                        # scan order), drain mode blocks reads without a retry
                        # push, otherwise gate-check this request alone
                        if (
                            rop_on
                            and buf_lines
                            and line in buf_lines
                            and sm.state is not TRAINING
                        ):
                            read_q[ci].pop()
                            complete_from_sram(ci, r, cycle)
                        elif not drain[ci]:
                            if r_lockstart[kk] <= cycle < r_locked[kk]:
                                gate = r_locked[kk]
                            else:
                                gate = b_ready[gb]
                            if gate <= cycle:
                                read_q[ci].pop()
                                sp_wake[ci] = -1  # issue moves bank state
                                issue(ci, r, cycle, False)
                            else:
                                if gate < g:
                                    gated[ci] = gate
                                if gate <= sp_wake[ci]:
                                    sp_wake[ci] = -1
                                pending = retry_at[ci]
                                if pending < 0 or gate < pending:
                                    retry_at[ci] = gate
                                    heappush(heap, (gate, seq, _RETRY, ci, gate))
                                    seq += 1
                                    work += 1
                    else:
                        try_issue(ci, cycle)
                # Core._do_op tail: advance / stall / finish
                i += 1
                idx_[k] = i
                if i >= c_n[k]:
                    if out_[k] == 0 and not fin_[k]:
                        cput_[k] += c_tail[k]
                        fin_[k] = True
                        todo -= 1
                        fc = -(-cput_[k] // mult)
                        finc_[k] = fc if fc > cycle else cycle
                    break
                if out_[k] >= mlp:
                    stalled_[k] = True
                    stallev_[k] += 1
                    break
                cput_[k] += c_gaps[k][i]
                when = (cput_[k] + mm1) // mult
                if when < cycle:
                    when = cycle
                # chained op: when this core's next access fires strictly
                # before everything queued (and inside the current run
                # phase), process it inline — the heap round-trip would
                # pop it right back.  Identical event order by
                # construction; seq values shift uniformly, preserving
                # every tie-break.
                if (not heap or when < heap[0][0]) and (
                    until is None or when <= until
                ):
                    cycle = when
                    now = when
                    continue
                heappush(heap, (when, seq, _OP, k, 0))
                seq += 1
                work += 1
                break
        elif tag == _RETRY:
            ci = p1
            if retry_at[ci] == p2:
                retry_at[ci] = -1
            if gated[ci] > cycle and retry_at[ci] >= 0:
                # superseded wake-up: every queued request is still
                # gate-blocked (gated is a maintained lower bound, and
                # no fill or state flip happened since it was set), and
                # an earlier retry is pending, so the rescan would fail
                # and its retry push would dedup — a provable no-op
                pass
            else:
                if sp_wake[ci] == cycle:
                    # stored retry pick: the failing scan already
                    # identified the request this wake-up selects, and
                    # every state change since would have invalidated
                    # the store — issue it directly and let try_issue
                    # continue from there
                    sp_wake[ci] = -1
                    q = write_q[ci] if sp_w[ci] else read_q[ci]
                    issue(ci, q.pop(sp_i[ci]), cycle, sp_w[ci])
                try_issue(ci, cycle)
        elif tag == _TICK:
            ci = p1
            ri = p2
            if pausing:
                paused_step([RFC, False, cycle + tick_period - RFC, ci, ri], cycle)
            else:
                rq = read_q[ci]
                wq = write_q[ci]
                pending = 0
                for r in rq:
                    if r[2] == ri:
                        pending += 1
                for r in wq:
                    if r[2] == ri:
                        pending += 1
                count = refresh_mgr.decide(ci, ri, cycle, pending)
                if count > 0:
                    # drains, prefetch fills and training-state flips can
                    # all unblock queued requests: force the next arrival
                    # through the full scan
                    gated[ci] = -1
                    sp_wake[ci] = -1
                    due = cycle
                    kk = ci * R + ri
                    if rop_on:
                        if drain_before_refresh:
                            # Controller._drain_rank: rank-filtered, cap 16
                            drained = 0
                            i = 0
                            while i < len(rq) and drained < 16:
                                if rq[i][2] == ri:
                                    issue(ci, rq.pop(i), cycle, False)
                                    drained += 1
                                else:
                                    i += 1
                            i = 0
                            while i < len(wq) and drained < 16:
                                if wq[i][2] == ri:
                                    issue(ci, wq.pop(i), cycle, True)
                                    drained += 1
                                else:
                                    i += 1
                        chans[ci].busy_cycles = busy_cyc[ci]  # for _bus_pressure
                        if t_rop:
                            # instrumented runs delegate (skip emits carry
                            # the B-count); materialize what the planner
                            # reads for this key
                            if not sm.is_training:
                                replay_table(kk)
                                flush_table(kk)
                            sync_prof_window(kk, cycle)
                            cts = prof0.counts
                            pf_lines = rop.plan_prefetch(ci, ri, cycle)
                            if prof0.counts is not cts:  # a close retrained
                                clear_all_pending()
                            if pf_lines:
                                due = fetch_prefetch(ci, ri, pf_lines, cycle)
                        else:
                            # inline RopEngine.plan_prefetch, dark path
                            cts = prof0.counts
                            rop._close_stale_locks(cycle)
                            if prof0.counts is not cts:
                                clear_all_pending()
                            if not sm.is_training:
                                kc = k_cyc[kk]
                                # half-open [cycle - window, cycle)
                                b_count = bisect_left(kc, cycle) - bisect_left(
                                    kc, cycle - window
                                )
                                if rop._bus_pressure(ci, cycle) > bus_pressure_limit:
                                    rop.pressure_skips += 1
                                    stats.prefetch_skipped += 1
                                elif not rop.prefetcher.decide(
                                    b_count, rop.lam_beta[(ci, ri)]
                                ):
                                    stats.prefetch_skipped += 1
                                else:
                                    sm.begin_prefetch()
                                    replay_table(kk)
                                    flush_table(kk)
                                    pf_lines = rop.prefetcher.candidate_lines(
                                        tables[kk], rop._mapper, ci, ri
                                    )
                                    if adaptive_depth and pf_lines:
                                        depth = max(
                                            8, int(2.0 * rop._consumed_ema) + 8
                                        )
                                        pf_lines = pf_lines[:depth]
                                    if not pf_lines:
                                        sm.end_prefetch()
                                        stats.prefetch_skipped += 1
                                    else:
                                        due = fetch_prefetch(ci, ri, pf_lines, cycle)
                    base_gb = kk * nbanks
                    for _ in range(count):
                        ref_banks = range(nbanks)
                        one_bank = -1
                        if per_bank:
                            ref_banks = refresh_mgr.banks_for(ci, ri)
                            one_bank = ref_banks[0]
                        # Rank.start_refresh(due, banks=...)
                        start = due
                        for b in ref_banks:
                            gb = base_gb + b
                            q = b_ready[gb]
                            if b_busy[gb] > q:
                                q = b_busy[gb]
                            if b_open[gb] is not None and b_preok[gb] > q:
                                q = b_preok[gb]
                            if q > start:
                                start = q
                        end = start + RFC
                        for b in ref_banks:
                            gb = base_gb + b
                            b_open[gb] = None
                            if end > b_ready[gb]:
                                b_ready[gb] = end
                            if end > b_preok[gb]:
                                b_preok[gb] = end
                        if not per_bank and end > r_locked[kk]:
                            if start > r_locked[kk]:
                                r_lockstart[kk] = start
                            r_locked[kk] = end
                            if end > lockend[ci]:
                                lockend[ci] = end
                        r_refcount[kk] += 1
                        s_refreshes += 1
                        s_locked_cycles += end - start
                        if end > s_end_cycle:
                            s_end_cycle = end
                        if t_ref:
                            sink_emit(2, 5, start, ci, ri, end, one_bank)
                        if rop_on:
                            # inline RopEngine.on_refresh_executed
                            if t_rop:
                                rop._now = start
                            if sm.is_training:
                                mir_expire_all(start)
                                kc = k_cyc[kk]
                                hi = len(kc)
                                # [start - window, start): half-open, same
                                # as the scalar profiler
                                b = bisect_left(kc, start) - bisect_left(
                                    kc, start - window
                                )
                                mir_pending[kk].append(
                                    [start, start + a_window, b, hi]
                                )
                                last_tr_adv = start
                                rop._maybe_finish_training(start)
                            rop._locks.append(
                                LockRecord(
                                    ci,
                                    ri,
                                    start,
                                    end,
                                    buffer.owner == keys[kk]
                                    and len(buf_lines) > 0,
                                )
                            )
                            reset_table_mirror(kk)  # refresh closes the window
                            table_upto[kk] = len(k_cyc[kk])  # elide the feed
                        due = end
                    if rq or wq:
                        schedule_retry(ci, due)
            heappush(heap, (cycle + tick_period, seq, _TICK, ci, ri))
            seq += 1
        else:  # _PSTEP
            paused_step(p1, cycle)

    # ------------------------------------------------------------- write-back
    total_reads = 0
    total_writes = 0
    for k, core in enumerate(cores):
        i = idx_[k]
        core._idx = i
        core._outstanding = out_[k]
        core._stalled = stalled_[k]
        core._cpu_time = cput_[k]
        core.finished = fin_[k]
        core.finish_cycle = finc_[k]
        nrd = c_rdpref[k][i]
        core.reads_issued = nrd
        core.writes_issued = i - nrd
        core.stall_events = stallev_[k]
        total_reads += nrd
        total_writes += i - nrd
    gb = 0
    kk = 0
    for ci in range(C):
        ch_obj = chans[ci]
        for rk_obj in ch_obj.ranks:
            for b in rk_obj.banks:
                b.open_row = b_open[gb]
                b.ready_at = b_ready[gb]
                b.pre_ok_at = b_preok[gb]
                b.act_cycle = b_act[gb]
                b.busy_until = b_busy[gb]
                gb += 1
            rk_obj.locked_until = r_locked[kk]
            rk_obj.lock_start = r_lockstart[kk]
            rk_obj.last_act = r_lastact[kk]
            rk_obj.wtr_until = r_wtr[kk]
            rk_obj.refresh_count = r_refcount[kk]
            rk_obj.act_count = r_actcount[kk]
            kk += 1
        ch_obj.bus_free_at = bus_free[ci]
        ch_obj.busy_cycles = busy_cyc[ci]
        controller._retry_at[ci] = -1
        controller._drain[ci] = drain[ci]
        # leftover queue contents (only reachable when max_cycles cut the
        # run short: run_cores raises and reports pending_requests)
        if read_q[ci] or write_q[ci]:
            controller.read_q[ci] = [
                Request(
                    r[0], ReqKind.READ, r[1], Coord(ci, r[2], r[3], r[4], r[5]), r[6]
                )
                for r in read_q[ci]
            ]
            controller.write_q[ci] = [
                Request(
                    r[0], ReqKind.WRITE, r[1], Coord(ci, r[2], r[3], r[4], r[5]), r[6]
                )
                for r in write_q[ci]
            ]
    stats.reads = s_reads + total_reads
    stats.writes = s_writes + total_writes
    stats.prefetches = s_prefetches
    stats.row_hits = s_row_hits
    stats.row_closed = s_row_closed
    stats.row_conflicts = s_row_conflicts
    stats.read_latency_sum = s_lat_sum
    stats.read_latency_max = s_lat_max
    stats.reads_completed = s_completed
    stats.refreshes = s_refreshes
    stats.refresh_locked_cycles = s_locked_cycles
    stats.reads_arriving_in_lock = s_in_lock
    stats.sram_hits_in_lock = s_sram_in
    stats.sram_hits_out_of_lock = s_sram_out
    stats.sram_fills = s_sram_fills
    stats.prefetch_fetch_cycles = s_pf_cycles
    stats.end_cycle = s_end_cycle
    if rop_on:
        stats.sram_invalidations = buffer.invalidations
        # materialize the deferred per-key mirrors back into the real
        # profilers and tables — finalize()/summary() then see scalar state
        for kk in range(nkeys):
            replay_table(kk)
            flush_table(kk)
            prof = profs[kk]
            kc = k_cyc[kk]
            la = last_tr_adv
            if kc and kc[-1] > la:
                la = kc[-1]
            arr = prof._arrivals
            arr.clear()
            if kc:
                kwr = k_wr[kk]
                j = bisect_left(kc, la - window)
                n = len(kc)
                while j < n:
                    arr.append((kc[j], not kwr[j]))
                    j += 1
            rdp = k_rdp[kk]
            pend = []
            for rec in mir_pending[kk]:
                p = _PendingRefresh(rec[0], rec[1], rec[2])
                lo = bisect_left(kc, rec[0])
                cidx = rec[3]
                if lo < cidx:
                    lo = cidx
                p.a_count = rdp[bisect_left(kc, rec[1])] - rdp[lo]
                pend.append(p)
            prof._pending = pend
    controller._rid = rid
    events.now = now
    events._heap.clear()
    events._work = 0
    events._seq = seq
    return None
