"""Array-native epoch simulation kernel (see :mod:`repro.kernel.epoch`)."""

from .epoch import ENGINES, last_fallback, resolve_engine, run_epoch_kernel

__all__ = ["ENGINES", "last_fallback", "resolve_engine", "run_epoch_kernel"]
