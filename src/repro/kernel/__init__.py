"""Array-native epoch simulation kernel (see :mod:`repro.kernel.epoch`)."""

from .epoch import ENGINES, resolve_engine, run_epoch_kernel

__all__ = ["ENGINES", "resolve_engine", "run_epoch_kernel"]
