"""Integration tests for the ROP engine wired into a memory controller."""


from repro import SystemConfig
from repro.core.state_machine import RopState
from repro.dram import MemorySystem


def streaming_system(
    *, training=5, sram=64, period=20, n=None, rop_kwargs=None
) -> MemorySystem:
    """A memory system fed a pure streaming read sequence."""
    kwargs = dict(training_refreshes=training, sram_lines=sram)
    kwargs.update(rop_kwargs or {})
    cfg = SystemConfig.single_core().with_rop(**kwargs)
    ms = MemorySystem(cfg)
    t = ms.controller.t
    # enough traffic to cover training plus 40 operating refreshes, capped
    # so "never finish training" configurations stay cheap
    count = n if n is not None else min(training + 40, 100) * t.refi // period
    for i in range(count):
        ms.schedule_read(i, i * period)
    return ms


class TestLifecycle:
    def test_training_then_observing(self):
        ms = streaming_system(training=5)
        ms.run()
        ms.finish()
        assert ms.rop.state in (RopState.OBSERVING, RopState.PREFETCHING)

    def test_lambda_beta_frozen_after_training(self):
        ms = streaming_system(training=5)
        ms.run()
        lb = ms.rop.lam_beta[(0, 0)]
        assert lb is not None
        assert lb.lam > 0.9  # continuous stream: busy windows stay busy

    def test_no_prefetch_during_training(self):
        ms = streaming_system(training=10**6)  # never leaves training
        ms.run()
        assert ms.stats.prefetches == 0
        assert ms.stats.sram_fills == 0

    def test_prefetches_after_training(self):
        ms = streaming_system(training=5)
        ms.run()
        assert ms.stats.prefetches > 0
        assert ms.stats.sram_fills > 0


class TestService:
    def test_stream_hits_in_lock(self):
        ms = streaming_system(training=5)
        ms.run()
        st = ms.finish()
        assert st.sram_hits_in_lock > 0
        assert st.lock_hit_rate > 0.5

    def test_armed_hit_rate_high_for_stream(self):
        ms = streaming_system(training=5)
        ms.run()
        ms.finish()
        assert ms.rop.lock_hit_rate() > 0.8

    def test_sram_latency_applied(self):
        ms = streaming_system(training=5)
        done = {}
        t = ms.controller.t
        # a read that will hit the buffer right after a fill: capture any
        # SRAM-serviced request's latency through stats instead
        ms.run()
        st = ms.finish()
        assert st.sram_hits > 0

    def test_write_invalidates_buffered_line(self):
        ms = streaming_system(training=5)
        ms.run()
        # force-fill then write to a buffered line
        ms.rop.buffer.refill((0, 0), [10**6])
        before = ms.rop.buffer.invalidations
        ms.submit_write(10**6, ms.now)
        assert ms.rop.buffer.invalidations == before + 1
        assert not ms.rop.buffer.lookup(10**6)

    def test_summary_fields(self):
        ms = streaming_system(training=5)
        ms.run()
        ms.finish()
        s = ms.rop_summary()
        for key in (
            "state",
            "lam_beta",
            "armed_locks",
            "armed_hit_rate",
            "retrains",
            "buffer_fills",
            "buffer_hits",
            "decisions_go",
        ):
            assert key in s


class TestWindows:
    def test_next_refresh_due_on_grid(self):
        ms = streaming_system()
        t = ms.controller.t
        eng = ms.rop
        assert eng.next_refresh_due(0, 0, 0) == t.refi
        assert eng.next_refresh_due(0, 0, t.refi) == t.refi
        assert eng.next_refresh_due(0, 0, t.refi + 1) == 2 * t.refi

    def test_full_window_always_observing(self):
        # window = tREFI means every cycle is within the window
        ms = streaming_system()
        eng = ms.rop
        for cycle in (0, 100, 6239, 6241):
            assert eng.in_observational_window(0, 0, cycle)

    def test_short_window(self):
        ms = streaming_system(rop_kwargs=dict(window_mult=0.1))
        eng = ms.rop
        t = ms.controller.t
        w = int(t.refi * 0.1)
        assert not eng.in_observational_window(0, 0, t.refi - w - 1)
        assert eng.in_observational_window(0, 0, t.refi - w + 1)


class TestGuards:
    def test_harm_guard_disarms_random_traffic(self):
        # pseudo-random addresses: predictions are garbage, the utilization
        # guard must fall back to training and stop burning bandwidth
        cfg = SystemConfig.single_core().with_rop(
            training_refreshes=5, min_buffer_utilization=0.25
        )
        ms = MemorySystem(cfg)
        t = ms.controller.t
        n = 60 * t.refi // 20
        x = 1
        for i in range(n):
            x = (x * 1103515245 + 12345) % (1 << 22)
            ms.schedule_read(x, i * 20)
        ms.run()
        st = ms.finish()
        # protection can act at two levels: the evidence cap keeps garbage
        # candidates near zero, and/or the utilization guard retrains.
        # Either way the bandwidth burned on prefetches must stay trivial.
        assert (
            ms.rop.sm.retrain_count >= 1
            or st.prefetches < st.reads * 0.02
        )

    def test_pressure_guard_skips_when_saturated(self):
        cfg = SystemConfig.single_core().with_rop(
            training_refreshes=5, bus_pressure_limit=0.0  # always "saturated"
        )
        ms = MemorySystem(cfg)
        t = ms.controller.t
        for i in range(20 * t.refi // 20):
            ms.schedule_read(i, i * 20)
        ms.run()
        ms.finish()
        assert ms.stats.prefetches == 0
        assert ms.rop.pressure_skips > 0

    def test_pressure_guard_disabled_at_one(self):
        ms = streaming_system(rop_kwargs=dict(bus_pressure_limit=1.0))
        ms.run()
        assert ms.stats.prefetches > 0


class TestAdaptiveDepth:
    def test_fixed_depth_fills_capacity(self):
        ms = streaming_system(sram=32, rop_kwargs=dict(adaptive_depth=False))
        ms.run()
        st = ms.finish()
        # per-arming fills reach the full capacity for a strong stream
        assert st.sram_fills / max(1, ms.rop.prefetcher.decisions_go) > 16

    def test_adaptive_depth_bounded_by_capacity(self):
        ms = streaming_system(sram=16)
        ms.run()
        st = ms.finish()
        assert st.sram_fills <= 16 * max(1, ms.rop.prefetcher.decisions_go)
