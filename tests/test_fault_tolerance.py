"""Failure-path tests for the fault-tolerant runner (ISSUE 2).

Faults are injected through :mod:`repro.harness.faults` (the
``REPRO_FAULTS`` env var), which works in worker processes under any
``--jobs`` level.  Everything runs at a sub-smoke scale so the file
stays fast despite executing many plans.
"""

import dataclasses
import json
import os
import signal
import threading
import time
import warnings

import pytest

from repro import SystemConfig
from repro.harness import (
    ConfigError,
    ExecutionPolicy,
    PlanExecutionError,
    RunScale,
    RunSpec,
    execute_plan,
    last_stats,
    reporting,
)
from repro.harness.cache import ArtifactCache, NullCache
from repro.harness.runner import clear_result_memo, run_spec

TINY = RunScale(instructions=120_000, seed=3, training_refreshes=3)

#: four distinct single-core specs (distinct benchmarks → distinct keys)
NAMES = ("gobmk", "lbm", "bzip2", "astar")


def tiny_specs(names=NAMES):
    cfg = SystemConfig.single_core()
    return [RunSpec.benchmark(n, cfg, TINY) for n in names]


def policy(**kw) -> ExecutionPolicy:
    """Test policy: near-zero backoff so retries don't slow the suite."""
    return dataclasses.replace(ExecutionPolicy(backoff_s=0.01), **kw)


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_result_memo()
    yield
    clear_result_memo()


@pytest.fixture
def faults(tmp_path, monkeypatch):
    """Install a fault table; returns a function taking {identity: directive}."""

    def install(table: dict) -> None:
        path = tmp_path / "faults.json"
        path.write_text(json.dumps(table))
        monkeypatch.setenv("REPRO_FAULTS", str(path))

    return install


class TestCrashIsolation:
    """Acceptance: a crashed worker loses only its own spec."""

    def test_crash_loses_only_that_spec_then_resumes(self, tmp_path, faults, monkeypatch):
        cache = ArtifactCache(tmp_path / "cache")
        specs = tiny_specs()
        faults({"lbm": {"mode": "crash"}})
        results = execute_plan(
            specs, jobs=2, cache=cache, policy=policy(keep_going=True)
        )
        # the other N-1 results survived and were flushed to the cache
        assert len(results) == len(specs) - 1
        survivors = [s for s in specs if s.workloads != ("lbm",)]
        for s in survivors:
            assert results.ok(s)
            assert cache._path(s.key).exists()
        # the failure names the crashed spec
        assert len(results.failures) == 1
        failure = results.failures[0]
        assert failure.workloads == ("lbm",)
        assert failure.kind == "worker-lost"
        assert failure.attempts == 3  # retried up to the attempt cap
        assert last_stats().pool_rebuilds >= 1
        assert last_stats().failed == 1

        # resume: with the fault gone, only the missing spec simulates
        monkeypatch.delenv("REPRO_FAULTS")
        clear_result_memo()
        resumed = execute_plan(specs, jobs=2, cache=cache, policy=policy())
        assert last_stats().executed == 1
        assert last_stats().cache_hits == len(specs) - 1
        assert resumed.ok(*specs)
        assert not resumed.failures


class TestTimeout:
    def test_hung_worker_is_killed_at_spec_timeout(self, tmp_path, faults):
        specs = tiny_specs(("gobmk", "lbm", "bzip2"))
        faults({"lbm": {"mode": "hang", "seconds": 600}})
        t0 = time.monotonic()
        results = execute_plan(
            specs,
            jobs=2,
            cache=NullCache(),
            policy=policy(keep_going=True, spec_timeout_s=5.0),
        )
        assert time.monotonic() - t0 < 120  # plan was not blocked forever
        assert len(results) == 2
        assert len(results.failures) == 1
        failure = results.failures[0]
        assert failure.workloads == ("lbm",)
        assert failure.kind == "timeout"
        assert failure.exc_type == "TimeoutError"
        assert last_stats().timeouts == 1


class TestRetries:
    def test_flaky_spec_succeeds_within_attempt_cap(self, tmp_path, faults):
        specs = tiny_specs(("gobmk", "lbm"))
        faults({"lbm": {"mode": "flaky", "fails": 2}})
        results = execute_plan(
            specs, jobs=2, cache=NullCache(), policy=policy(max_attempts=3)
        )
        assert results.ok(*specs)
        assert not results.failures
        # two failed calls before success → two backoff retries recorded
        assert last_stats().retries == 2

    def test_flaky_sequential_path(self, faults):
        specs = tiny_specs(("lbm",))
        faults({"lbm": {"mode": "flaky", "fails": 1}})
        results = execute_plan(
            specs, jobs=1, cache=NullCache(), policy=policy(max_attempts=3)
        )
        assert results.ok(*specs)
        assert last_stats().retries == 1

    def test_transient_exhausts_attempt_cap(self, faults):
        specs = tiny_specs(("lbm",))
        faults({"lbm": {"mode": "transient"}})
        results = execute_plan(
            specs, jobs=1, cache=NullCache(), policy=policy(keep_going=True, max_attempts=2)
        )
        assert not results.ok(specs[0])
        assert results.failures[0].kind == "transient"
        assert results.failures[0].attempts == 2
        assert last_stats().retries == 1

    def test_deterministic_error_is_not_retried(self, faults):
        specs = tiny_specs(("lbm",))
        faults({"lbm": {"mode": "error", "message": "boom"}})
        results = execute_plan(
            specs, jobs=1, cache=NullCache(), policy=policy(keep_going=True, max_attempts=5)
        )
        failure = results.failures[0]
        assert failure.kind == "error"
        assert failure.attempts == 1  # no retries for deterministic errors
        assert failure.message == "boom"
        assert "RuntimeError" in failure.traceback


class TestFailFastVsKeepGoing:
    def test_fail_fast_raises_with_failure_report(self, faults):
        specs = tiny_specs(("gobmk", "lbm"))
        faults({"lbm": {"mode": "error"}})
        with pytest.raises(PlanExecutionError) as exc:
            execute_plan(
                specs, jobs=1, cache=NullCache(), policy=policy(keep_going=False)
            )
        assert exc.value.failures[0].workloads == ("lbm",)
        assert "lbm" in str(exc.value)

    def test_fail_fast_persists_completed_results(self, tmp_path, faults):
        cache = ArtifactCache(tmp_path / "cache")
        specs = tiny_specs(("gobmk", "lbm"))  # gobmk runs first, then lbm fails
        faults({"lbm": {"mode": "error"}})
        with pytest.raises(PlanExecutionError):
            execute_plan(specs, jobs=1, cache=cache, policy=policy())
        assert cache._path(specs[0].key).exists()

    def test_keep_going_returns_partial_results(self, faults):
        specs = tiny_specs(("gobmk", "lbm", "bzip2"))
        faults({"lbm": {"mode": "error"}})
        results = execute_plan(
            specs, jobs=1, cache=NullCache(), policy=policy(keep_going=True)
        )
        assert len(results) == 2
        assert results.get(specs[1]) is None
        assert results.failure_for(specs[1]) is not None
        assert results.failure_for(specs[0]) is None


class TestInterrupt:
    def test_sigint_drains_persists_and_hints_resume(self, tmp_path, faults, capfd, monkeypatch):
        cache = ArtifactCache(tmp_path / "cache")
        # two fast specs run first; two hangers keep the plan busy while
        # the timer delivers SIGINT to the main thread
        specs = tiny_specs(("gobmk", "lbm", "bzip2", "astar"))
        faults({"bzip2": {"mode": "hang", "seconds": 600},
                "astar": {"mode": "hang", "seconds": 600}})
        timer = threading.Timer(4.0, os.kill, (os.getpid(), signal.SIGINT))
        timer.start()
        try:
            with pytest.raises(KeyboardInterrupt):
                execute_plan(specs, jobs=2, cache=cache, policy=policy(keep_going=True))
        finally:
            timer.cancel()
        # the fast specs completed and were flushed before the interrupt
        assert cache._path(specs[0].key).exists()
        assert cache._path(specs[1].key).exists()
        assert "re-run the same command to resume" in capfd.readouterr().err

        # resume: the cached specs are hits, only the missing two run
        monkeypatch.delenv("REPRO_FAULTS")
        clear_result_memo()
        resumed = execute_plan(specs, jobs=2, cache=cache, policy=policy())
        assert last_stats().cache_hits == 2
        assert last_stats().executed == 2
        assert resumed.ok(*specs)

    def test_sigint_drains_under_chunked_dispatch(
        self, tmp_path, faults, capfd, monkeypatch
    ):
        """With chunk_size=2 the fast pair shares one chunk: its harvested
        results must be persisted before the interrupt unwinds."""
        cache = ArtifactCache(tmp_path / "cache")
        specs = tiny_specs(("gobmk", "lbm", "bzip2", "astar"))
        faults({"bzip2": {"mode": "hang", "seconds": 600},
                "astar": {"mode": "hang", "seconds": 600}})
        timer = threading.Timer(4.0, os.kill, (os.getpid(), signal.SIGINT))
        timer.start()
        try:
            with pytest.raises(KeyboardInterrupt):
                execute_plan(
                    specs, jobs=2, cache=cache,
                    policy=policy(keep_going=True, chunk_size=2),
                )
        finally:
            timer.cancel()
        # the fast chunk's two specs were flushed before the interrupt
        assert cache._path(specs[0].key).exists()
        assert cache._path(specs[1].key).exists()
        assert "re-run the same command to resume" in capfd.readouterr().err

        monkeypatch.delenv("REPRO_FAULTS")
        clear_result_memo()
        resumed = execute_plan(
            specs, jobs=2, cache=cache, policy=policy(chunk_size=2)
        )
        assert last_stats().cache_hits == 2
        assert last_stats().executed == 2
        assert resumed.ok(*specs)


class TestEquivalence:
    def test_fault_tolerance_features_do_not_change_results(self):
        """All FT knobs on + no failures ≡ the sequential jobs=1 path."""
        specs = tiny_specs(("gobmk", "lbm"))
        seq = execute_plan(specs, jobs=1, cache=NullCache())
        expected = [seq[s] for s in specs]
        clear_result_memo()
        par = execute_plan(
            specs,
            jobs=2,
            cache=NullCache(),
            policy=policy(max_attempts=5, spec_timeout_s=600.0, keep_going=True),
        )
        for spec, expect in zip(specs, expected):
            got = par[spec]
            assert got.cores == expect.cores
            assert got.stats == expect.stats
            assert got.rop_summary == expect.rop_summary
            assert got.end_cycle == expect.end_cycle
        assert not par.failures


class TestPolicyResolution:
    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "7")
        monkeypatch.setenv("REPRO_SPEC_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_KEEP_GOING", "1")
        p = ExecutionPolicy.from_env()
        assert p.max_attempts == 7
        assert p.spec_timeout_s == 12.5
        assert p.keep_going

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPEC_TIMEOUT", "soon")
        with pytest.raises(ConfigError):
            ExecutionPolicy.from_env()

    def test_resolve_jobs_raises_config_error_not_systemexit(self, monkeypatch):
        from repro.harness import resolve_jobs

        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigError):
            resolve_jobs()
        # ConfigError is a ValueError, not a SystemExit, so library callers
        # can handle it
        assert issubclass(ConfigError, ValueError)
        assert not issubclass(ConfigError, SystemExit)


class TestCacheWriteWarning:
    def test_unwritable_cache_warns_once(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        cache = ArtifactCache(blocker / "cache")  # parent is a file → OSError
        with pytest.warns(RuntimeWarning, match="not writable"):
            cache.put("aa" + "0" * 38, {"x": 1})
        assert cache.write_errors == 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would fail
            cache.put("bb" + "0" * 38, {"x": 2})
        assert cache.write_errors == 2


class TestAudit:
    def test_audited_run_spec_matches_unaudited(self):
        spec = tiny_specs(("gobmk",))[0]
        plain = run_spec(spec)
        audited = run_spec(spec, audit=True)
        assert audited.cores == plain.cores
        assert audited.stats == plain.stats

    def test_audit_via_spec_field_and_events(self):
        cfg = SystemConfig.single_core()
        spec = dataclasses.replace(
            RunSpec.benchmark("gobmk", cfg, TINY, record_events=True), audit=True
        )
        result = run_spec(spec)  # full audit incl. lock/refresh checks
        assert result.events is not None
        # audit is excluded from the cache key: same artifact either way
        assert spec.key == RunSpec.benchmark("gobmk", cfg, TINY, record_events=True).key


class TestFailureReporting:
    def test_render_failures_and_stats_line(self, faults):
        specs = tiny_specs(("gobmk", "lbm"))
        faults({"lbm": {"mode": "error", "message": "injected"}})
        results = execute_plan(
            specs, jobs=1, cache=NullCache(), policy=policy(keep_going=True)
        )
        table = reporting.render_failures(results.failures)
        assert "lbm" in table and "error" in table
        line = reporting.render_runner_stats(last_stats())
        assert "1 failed" in line

    def test_clean_stats_line_has_no_failure_counters(self):
        execute_plan(tiny_specs(("gobmk",)), jobs=1, cache=NullCache())
        line = reporting.render_runner_stats(last_stats())
        assert "failed" not in line and "retries" not in line
