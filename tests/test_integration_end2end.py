"""End-to-end paper-shape assertions at reduced scale.

These are the repository's acceptance tests: each asserts one qualitative
claim of the paper's evaluation using real (but shortened) runs. They are
slower than unit tests (a few seconds each) yet short enough for CI.
"""

import pytest

from repro import RefreshMode, SystemConfig
from repro.cpu import run_cores
from repro.energy import system_energy
from repro.stats.metrics import weighted_speedup
from repro.workloads import mix_profiles, profile

#: single-core shape tests need enough refresh intervals (~140) for the
#: training phase to amortize; the 4-core tests use shorter traces
INSTR = 3_000_000
INSTR_MULTI = 1_500_000
SEED = 11


def single_runs(name, *rop_kwargs_list):
    cfg = SystemConfig.single_core()
    mt = profile(name).memory_trace(INSTR, cfg.llc, seed=SEED)
    base = run_cores([mt], cfg)
    ideal = run_cores([mt], cfg.with_refresh_mode(RefreshMode.NONE))
    rops = [run_cores([mt], cfg.with_rop(**kw)) for kw in rop_kwargs_list]
    return cfg, base, ideal, rops


class TestFig1Shape:
    def test_refresh_costs_performance_for_intensive(self):
        _, base, ideal, _ = single_runs("lbm")
        degradation = ideal.ipc / base.ipc - 1
        assert 0.01 < degradation < 0.12  # paper: up to 7.3 %

    def test_refresh_barely_hurts_non_intensive(self):
        _, base, ideal, _ = single_runs("gobmk")
        assert ideal.ipc / base.ipc - 1 < 0.01

    def test_refresh_costs_energy(self):
        cfg, base, ideal, _ = single_runs("gobmk")
        e_base = system_energy(base.stats, cfg)
        e_ideal = system_energy(
            ideal.stats, cfg.with_refresh_mode(RefreshMode.NONE)
        )
        overhead = e_base.total / e_ideal.total - 1
        assert 0.05 < overhead < 0.60  # paper: avg 26.5 %, up to 41.6 %


class TestFig7Shape:
    def test_rop_recovers_most_refresh_loss_for_stream(self):
        _, base, ideal, (rop,) = single_runs("lbm", dict(training_refreshes=10))
        gap = ideal.ipc - base.ipc
        recovered = (rop.ipc - base.ipc) / gap
        assert recovered > 0.5

    def test_rop_never_hurts_materially(self):
        for name in ("gcc", "omnetpp"):
            _, base, _, (rop,) = single_runs(name, dict(training_refreshes=10))
            assert rop.ipc / base.ipc > 0.99


class TestFig9Shape:
    def test_hit_rate_above_threshold_for_stream(self):
        _, _, _, (rop,) = single_runs("lbm", dict(training_refreshes=10))
        assert rop.rop_summary["armed_hit_rate"] > 0.6

    def test_hit_rate_grows_with_buffer(self):
        _, _, _, rops = single_runs(
            "libquantum",
            dict(training_refreshes=10, sram_lines=16, adaptive_depth=False),
            dict(training_refreshes=10, sram_lines=128, adaptive_depth=False),
        )
        small, large = (r.rop_summary["armed_hit_rate"] for r in rops)
        assert large >= small


class TestFig8Shape:
    def test_rop_energy_not_worse(self):
        # at short scale the background savings and prefetch read energy
        # nearly cancel; at paper scale ROP saves energy (EXPERIMENTS.md).
        # Here we assert the overhead is bounded.
        cfg, base, _, (rop,) = single_runs("lbm", dict(training_refreshes=10))
        e_base = system_energy(base.stats, cfg)
        e_rop = system_energy(rop.stats, cfg.with_rop())
        assert e_rop.total < e_base.total * 1.02


class TestFig10Shape:
    @pytest.fixture(scope="class")
    def wl_runs(self):
        from repro import LlcConfig

        share = LlcConfig(size_bytes=1 * 1024 * 1024)
        profiles = mix_profiles("WL1")
        traces = [p.memory_trace(INSTR_MULTI, share, seed=SEED) for p in profiles]
        base_cfg = SystemConfig.quad_core(rank_partitioned=False)
        alone = [run_cores([t], base_cfg).ipc for t in traces]

        def ws(cfg):
            return weighted_speedup(run_cores(traces, cfg).ipcs, alone)

        return {
            "Baseline": ws(base_cfg),
            "RP": ws(SystemConfig.quad_core()),
            "ROP": ws(SystemConfig.quad_core().with_rop(training_refreshes=10)),
        }

    def test_rank_partitioning_wins(self, wl_runs):
        assert wl_runs["RP"] > wl_runs["Baseline"] * 1.05

    def test_rop_at_least_matches_rp(self, wl_runs):
        assert wl_runs["ROP"] > wl_runs["RP"] * 0.98

    def test_rop_beats_baseline_clearly(self, wl_runs):
        # paper: up to 1.8X, geomean 1.29X vs Baseline
        assert wl_runs["ROP"] > wl_runs["Baseline"] * 1.1


class TestDeterminism:
    def test_full_pipeline_reproducible(self):
        def once():
            cfg = SystemConfig.single_core().with_rop(training_refreshes=10)
            mt = profile("bwaves").memory_trace(400_000, cfg.llc, seed=3)
            r = run_cores([mt], cfg)
            return (r.ipc, r.stats.sram_hits_in_lock, r.stats.refreshes)

        assert once() == once()
