"""Whole-system property tests: randomized workloads must satisfy every
physical invariant of the memory model (see repro.stats.invariants)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import RefreshMode, SystemConfig
from repro.dram import MemorySystem
from repro.stats.invariants import InvariantViolation, RequestLog, check_run

workload_strategy = st.lists(
    st.tuples(
        st.integers(0, 1 << 20),  # line
        st.integers(1, 60),  # inter-arrival gap (cycles)
        st.booleans(),  # is_write
    ),
    min_size=1,
    max_size=400,
)


def replay(cfg, workload):
    ms = MemorySystem(cfg, record_events=True)
    log = RequestLog()
    log.attach(ms)
    cycle = 0
    for line, gap, is_write in workload:
        cycle += gap
        if is_write:
            ms.schedule_write(line, cycle)
        else:
            ms.schedule_read(line, cycle)
    ms.run()
    ms.finish()
    return ms, log


@given(workload=workload_strategy)
@settings(max_examples=40, deadline=None)
def test_baseline_invariants(workload):
    ms, log = replay(SystemConfig.single_core(), workload)
    check_run(log, ms)


@given(workload=workload_strategy)
@settings(max_examples=25, deadline=None)
def test_rop_invariants(workload):
    cfg = SystemConfig.single_core().with_rop(training_refreshes=3)
    ms, log = replay(cfg, workload)
    check_run(log, ms)


@given(workload=workload_strategy)
@settings(max_examples=15, deadline=None)
def test_multirank_invariants(workload):
    ms, log = replay(SystemConfig.quad_core(), workload)
    check_run(log, ms)


@given(
    workload=workload_strategy,
    mode=st.sampled_from(
        [RefreshMode.FGR_2X, RefreshMode.PER_BANK, RefreshMode.PAUSING, RefreshMode.ELASTIC]
    ),
)
@settings(max_examples=20, deadline=None)
def test_alt_refresh_mode_invariants(workload, mode):
    cfg = SystemConfig.single_core().with_refresh_mode(mode)
    ms, log = replay(cfg, workload)
    # refresh-rate bookkeeping differs per mode; physical invariants only
    check_run(log, ms, check_refresh=False)


def test_per_bank_refresh_other_banks_keep_serving():
    """Regression: per-bank refresh freezes one bank, not the rank.

    A read stream alternating across banks keeps completing while single
    banks refresh; the lock-exclusion audit must not mistake the
    recorded per-bank windows for rank-wide locks (found by Hypothesis).
    """
    from repro.telemetry import Kind

    cfg = SystemConfig.single_core().with_refresh_mode(RefreshMode.PER_BANK)
    workload = [(i * 97, 25, False) for i in range(400)]
    ms, log = replay(cfg, workload)
    check_run(log, ms, check_refresh=False)
    # sanity: the run refreshed, and the windows carry the frozen bank
    ev = ms.recorder.rank_events(0, 0)
    assert len(ev.refresh_starts) > 0
    snap = ms.recorder.sink.snapshot()
    banks = snap["b"][snap["kind"] == int(Kind.REFRESH_WINDOW)]
    assert (banks >= 0).all()


def test_attach_detach_restores_submit():
    ms = MemorySystem(SystemConfig.single_core())
    original = ms.controller.submit
    log = RequestLog().attach(ms)
    assert ms.controller.submit != original
    log.detach()
    # bound methods compare equal (same function, same instance)
    assert ms.controller.submit == original
    log.detach()  # idempotent


def test_attach_twice_rejected():
    ms = MemorySystem(SystemConfig.single_core())
    log = RequestLog().attach(ms)
    with pytest.raises(RuntimeError):
        log.attach(ms)
    log.detach()


def test_context_manager_detaches():
    ms = MemorySystem(SystemConfig.single_core())
    original = ms.controller.submit
    with RequestLog().attach(ms) as log:
        ms.schedule_read(0, 5)
        ms.run()
        ms.finish()
    assert ms.controller.submit == original
    assert len(log.requests) == 1
    check_run(log, ms)


def test_violation_detected():
    """The checker itself must catch a fabricated violation."""
    ms, log = replay(SystemConfig.single_core(), [(0, 5, False)])
    log.requests[0].complete_cycle = log.requests[0].arrival - 1
    with pytest.raises(InvariantViolation):
        check_run(log, ms)


def test_read_never_completed_detected():
    ms, log = replay(SystemConfig.single_core(), [(0, 5, False)])
    log.requests[0].complete_cycle = -1
    with pytest.raises(InvariantViolation):
        check_run(log, ms)


def test_violation_is_structured():
    """Violations carry (site, cycle, detail) for aggregation/rendering."""
    ms, log = replay(SystemConfig.single_core(), [(0, 5, False)])
    log.requests[0].complete_cycle = log.requests[0].arrival - 1
    with pytest.raises(InvariantViolation) as info:
        check_run(log, ms)
    exc = info.value
    assert exc.site == "causality"
    assert exc.cycle == log.requests[0].complete_cycle
    assert "completes before arrival" in exc.detail
    # the rendered message embeds site and cycle
    assert "[causality]" in str(exc)
    assert f"@cycle {exc.cycle}" in str(exc)


def test_violation_without_cycle_renders_without_anchor():
    exc = InvariantViolation("service-accounting", "read never completed")
    assert exc.cycle == -1
    assert str(exc).startswith("[service-accounting]")
    assert "@cycle" not in str(exc)


def test_violation_is_assertion_error_subclass():
    # the runner's failure taxonomy keys off AssertionError → "invariant"
    assert issubclass(InvariantViolation, AssertionError)
