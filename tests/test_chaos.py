"""In-suite mini chaos soak (ISSUE 7).

A scaled-down version of ``scripts/chaos_soak.py``: one plan runs
fault-free, then again in a fresh cache dir with every chaos site armed
at a fixed seed.  The chaos run must complete with zero failed specs and
per-spec digests bit-identical to the fault-free run.  The full-size
soak (≥48 specs, CI job ``chaos-soak``) uses the same machinery.
"""

import dataclasses

import pytest

from repro import SystemConfig
from repro.harness import RunScale, RunSpec, execute_plan
from repro.harness.chaos import fired
from repro.harness.quarantine import list_bundles, result_digest
from repro.harness.runner import ExecutionPolicy, clear_result_memo, last_stats
from repro.workloads.spec_profiles import clear_trace_cache

TINY = RunScale(instructions=60_000, seed=3, training_refreshes=3)
NAMES = ("gobmk", "lbm", "bzip2", "astar")
CHAOS_SEED = 23


def build_specs():
    base = SystemConfig.single_core()
    rop = base.with_rop(training_refreshes=TINY.training_refreshes)
    return [
        RunSpec.benchmark(name, cfg, TINY)
        for name in NAMES
        for cfg in (base, rop)
    ]


@pytest.fixture(autouse=True)
def fresh_memos(monkeypatch):
    from repro.harness import set_cache_enabled

    set_cache_enabled(None)
    monkeypatch.setenv("REPRO_CACHE", "on")
    clear_trace_cache()
    clear_result_memo()
    yield
    clear_trace_cache()
    clear_result_memo()


def run_plan(monkeypatch, cache_dir, chaos=None):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    monkeypatch.setenv("REPRO_ENGINE", "epoch")
    if chaos:
        monkeypatch.setenv("REPRO_CHAOS", chaos)
    else:
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
    clear_trace_cache()
    clear_result_memo()
    specs = build_specs()
    # max_attempts=8: a pool break charges an attempt to every in-flight
    # casualty, so under a crash storm an *innocent* spec can lose several
    # attempts to chunk-mates; the default budget of 3 is sized for real
    # faults, not a storm of injected ones
    results = execute_plan(
        specs,
        jobs=2,
        policy=dataclasses.replace(
            ExecutionPolicy(backoff_s=0.01), keep_going=True, max_attempts=8
        ),
    )
    return specs, results


def test_mini_soak_is_bit_identical_under_chaos(tmp_path, monkeypatch):
    specs, clean = run_plan(monkeypatch, tmp_path / "clean")
    assert not clean.failures
    expected = {s.key: result_digest(clean[s]) for s in specs}

    _, chaotic = run_plan(
        monkeypatch, tmp_path / "chaos", chaos=f"{CHAOS_SEED}:0.5"
    )
    counts = fired(CHAOS_SEED)
    # the fixed seed must actually produce a storm, or this test is a no-op
    assert sum(counts.values()) >= 3, f"chaos storm too quiet: {counts}"

    assert not chaotic.failures
    assert chaotic.ok(*specs)
    for spec in specs:
        assert result_digest(chaotic[spec]) == expected[spec.key], spec.label
    # fired markers are claimed *before* the destructive act, so they
    # upper-bound every downstream witness: a worker SIGTERMed by a pool
    # break can die between claiming an epoch fault and landing its
    # quarantine bundle, and a crash that loses a finished chunk's records
    # drops its fallback entries from the ledger (the retry does not
    # refire a once-only fault).  Exact counting is covered by the
    # deterministic single-site tests in test_resilience.py.
    faults = counts.get("epoch-fault", 0)
    bundles = list_bundles(tmp_path / "chaos")
    assert len(bundles) <= faults
    assert last_stats().engine_fallbacks <= faults
    if faults:
        assert bundles, "epoch faults fired but no quarantine bundle survived"
