"""Unit tests for the text reporting helpers."""

import math


from repro.harness.reporting import format_table


def test_format_table_alignment():
    out = format_table(["a", "long_header"], [["x", "1"], ["yyyy", "22"]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    # every row fits within the same formatted width structure
    assert "long_header" in lines[0]
    assert set(lines[1]) <= {"-", " "}


def test_format_table_coerces_cells():
    out = format_table(["n"], [[42], [3.5]])
    assert "42" in out and "3.5" in out


def test_format_table_empty_rows():
    out = format_table(["h1", "h2"], [])
    assert out.splitlines()[0].startswith("h1")


def test_render_fig1_includes_average():
    from repro.harness.reporting import render_fig1

    rows = [
        {
            "benchmark": "x",
            "ipc_baseline": 1.0,
            "ipc_norefresh": 1.05,
            "perf_degradation_pct": 5.0,
            "energy_overhead_pct": 20.0,
        }
    ]
    out = render_fig1(rows)
    assert "AVERAGE" in out and "5.00%" in out


def test_render_fig10_geomean():
    from repro.harness.reporting import render_fig10_11

    rows = [
        {
            "mix": "WLx",
            "norm_ws": {"Baseline": 1.0, "ROP": 1.2},
            "norm_energy": {"Baseline": 1.0, "ROP": 0.9},
        },
        {
            "mix": "WLy",
            "norm_ws": {"Baseline": 1.0, "ROP": 1.05},
            "norm_energy": {"Baseline": 1.0, "ROP": 0.95},
        },
    ]
    out = render_fig10_11(rows)
    assert "GEOMEAN" in out
    gm = math.sqrt(1.2 * 1.05)
    assert f"{gm:.3f}" in out
