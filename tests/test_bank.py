"""Unit tests for the bank row-buffer state machine."""

import pytest

from repro.dram.bank import Bank
from repro.dram.request import ServiceKind
from repro.dram.timings import DDR4_1600 as T


@pytest.fixture
def bank():
    return Bank()


def test_first_access_is_closed(bank):
    plan = bank.plan(100, row=5, is_write=False, t=T)
    assert plan.category is ServiceKind.DRAM_CLOSED
    assert plan.col_cycle == 100 + T.rcd
    assert plan.data_end == 100 + T.rcd + T.cl + T.burst


def test_row_hit_after_commit(bank):
    p1 = bank.plan(0, 5, False, T)
    bank.commit(p1, 5, False, T)
    p2 = bank.plan(p1.col_cycle + T.ccd, 5, False, T)
    assert p2.category is ServiceKind.DRAM_HIT
    assert p2.col_cycle == p1.col_cycle + T.ccd


def test_conflict_pays_precharge(bank):
    p1 = bank.plan(0, 5, False, T)
    bank.commit(p1, 5, False, T)
    late = p1.col_cycle + 1000  # all recovery windows elapsed
    p2 = bank.plan(late, 9, False, T)
    assert p2.category is ServiceKind.DRAM_CONFLICT
    assert p2.col_cycle == late + T.rp + T.rcd


def test_conflict_waits_for_ras(bank):
    p1 = bank.plan(0, 5, False, T)
    bank.commit(p1, 5, False, T)
    # immediately conflicting: precharge must wait for tRAS from activate
    p2 = bank.plan(p1.col_cycle + T.ccd, 9, False, T)
    assert p2.act_cycle >= p1.act_cycle + T.ras + T.rp


def test_write_recovery_delays_precharge(bank):
    p1 = bank.plan(0, 5, True, T)
    bank.commit(p1, 5, True, T)
    expected_pre_ok = p1.col_cycle + T.cwl + T.burst + T.wr
    assert bank.pre_ok_at >= expected_pre_ok


def test_ccd_spacing_enforced(bank):
    p1 = bank.plan(0, 5, False, T)
    bank.commit(p1, 5, False, T)
    p2 = bank.plan(p1.col_cycle, 5, False, T)  # ask too early
    assert p2.col_cycle >= p1.col_cycle + T.ccd


def test_not_before_gate(bank):
    plan = bank.plan(0, 5, False, T, not_before=500)
    assert plan.act_cycle >= 500


def test_act_gate_applies_to_activation(bank):
    plan = bank.plan(0, 5, False, T, act_gate=300)
    assert plan.act_cycle >= 300


def test_act_gate_ignored_for_hit(bank):
    p1 = bank.plan(0, 5, False, T)
    bank.commit(p1, 5, False, T)
    p2 = bank.plan(p1.col_cycle + T.ccd, 5, False, T, act_gate=10**6)
    assert p2.category is ServiceKind.DRAM_HIT  # no new ACT needed


def test_close_for_refresh(bank):
    p1 = bank.plan(0, 5, False, T)
    bank.commit(p1, 5, False, T)
    bank.close_for_refresh(2000)
    assert bank.open_row is None
    assert bank.ready_at >= 2000
    p2 = bank.plan(100, 5, False, T)
    assert p2.category is ServiceKind.DRAM_CLOSED
    assert p2.act_cycle >= 2000


def test_quiesce_covers_in_flight_row_cycle(bank):
    p1 = bank.plan(0, 5, False, T)
    bank.commit(p1, 5, False, T)
    assert bank.quiesce_at() >= p1.act_cycle + T.ras


def test_plan_has_no_side_effects(bank):
    before = (bank.open_row, bank.ready_at, bank.pre_ok_at)
    bank.plan(50, 7, True, T)
    assert (bank.open_row, bank.ready_at, bank.pre_ok_at) == before


def test_write_then_read_same_row(bank):
    p1 = bank.plan(0, 3, True, T)
    bank.commit(p1, 3, True, T)
    p2 = bank.plan(p1.col_cycle + T.ccd, 3, False, T)
    assert p2.category is ServiceKind.DRAM_HIT


def test_data_window_length_is_burst(bank):
    for is_write in (False, True):
        plan = Bank().plan(0, 1, is_write, T)
        assert plan.data_end - plan.data_start == T.burst
