"""Unit tests for the discrete-event queue."""

import pytest

from repro.events import EventQueue


def test_events_fire_in_time_order():
    q = EventQueue()
    fired = []
    q.push(30, lambda c: fired.append((30, c)))
    q.push(10, lambda c: fired.append((10, c)))
    q.push(20, lambda c: fired.append((20, c)))
    q.run()
    assert fired == [(10, 10), (20, 20), (30, 30)]


def test_same_cycle_insertion_order():
    q = EventQueue()
    fired = []
    for tag in ("a", "b", "c"):
        q.push(5, lambda c, t=tag: fired.append(t))
    q.run()
    assert fired == ["a", "b", "c"]


def test_now_tracks_dispatch():
    q = EventQueue()
    q.push(17, lambda c: None)
    q.run()
    assert q.now == 17


def test_push_in_past_rejected():
    q = EventQueue()
    q.push(10, lambda c: None)
    q.run()
    with pytest.raises(ValueError):
        q.push(5, lambda c: None)


def test_run_until_inclusive():
    q = EventQueue()
    fired = []
    q.push(10, lambda c: fired.append(10))
    q.push(11, lambda c: fired.append(11))
    q.run(until=10)
    assert fired == [10]
    q.run(until=11)
    assert fired == [10, 11]


def test_events_scheduled_during_dispatch():
    q = EventQueue()
    fired = []

    def first(c):
        fired.append("first")
        q.push(c + 5, lambda c2: fired.append("second"))

    q.push(1, first)
    q.run()
    assert fired == ["first", "second"]


def test_housekeeping_does_not_sustain_idle_run():
    q = EventQueue()
    count = [0]

    def tick(c):
        count[0] += 1
        q.push(c + 10, tick, housekeeping=True)

    q.push(10, tick, housekeeping=True)
    q.run()  # no work pending: stops immediately
    assert count[0] == 0


def test_housekeeping_runs_while_work_pending():
    q = EventQueue()
    ticks = []

    def tick(c):
        ticks.append(c)
        q.push(c + 10, tick, housekeeping=True)

    q.push(10, tick, housekeeping=True)
    q.push(35, lambda c: None)  # work event at 35
    q.run()
    assert ticks == [10, 20, 30]


def test_housekeeping_runs_with_explicit_until():
    q = EventQueue()
    ticks = []

    def tick(c):
        ticks.append(c)
        q.push(c + 10, tick, housekeeping=True)

    q.push(10, tick, housekeeping=True)
    q.run(until=45)
    assert ticks == [10, 20, 30, 40]


def test_work_pending_counter():
    q = EventQueue()
    q.push(1, lambda c: None)
    q.push(2, lambda c: None, housekeeping=True)
    assert q.work_pending == 1
    q.step()
    assert q.work_pending == 0


def test_max_events_bound():
    q = EventQueue()
    for i in range(5):
        q.push(i + 1, lambda c: None)
    assert q.run(max_events=3) == 3
    assert len(q) == 2


def test_peek_cycle():
    q = EventQueue()
    assert q.peek_cycle() is None
    q.push(9, lambda c: None)
    assert q.peek_cycle() == 9


def test_step_empty_queue():
    assert EventQueue().step() is False
