"""Tests for the telemetry subsystem: sink, exporters, metrics, wiring.

Covers the contract the rest of the repository relies on:

* the ring buffer's wraparound / drop / grow semantics and per-category
  accounting;
* telemetry-on vs telemetry-off runs are **bit-identical** (the sink only
  observes);
* the exported Chrome trace-event JSON is structurally valid for
  Perfetto;
* metrics merge deterministically, so ``jobs=1`` and ``jobs=N`` plans
  produce identical merged metrics;
* the :class:`~repro.stats.collectors.EventRecorder` shim reproduces the
  pre-telemetry per-rank event lists (Figs. 2–4 inputs) exactly.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro import SystemConfig
from repro.cpu import run_cores
from repro.harness import RunScale
from repro.harness.runner import (
    PlanResults,
    RunSpec,
    RunnerStats,
    clear_result_memo,
    execute_plan,
)
from repro.harness.cache import NullCache
from repro.stats.collectors import EventRecorder
from repro.stats.refresh_analysis import analyze_rank, blocked_per_refresh
from repro.telemetry import (
    Category,
    Kind,
    MetricsRegistry,
    NULL_SINK,
    PhaseCode,
    TraceSink,
    chrome_trace,
    kind_name,
    write_chrome_trace,
    write_csv,
    write_jsonl,
)
from repro.workloads import profile

TINY = RunScale(instructions=120_000, seed=3, training_refreshes=3)


def tiny_run(sink=None, *, rop=True, instructions=120_000):
    cfg = SystemConfig.single_core()
    if rop:
        cfg = cfg.with_rop(training_refreshes=3)
    mt = profile("lbm").memory_trace(instructions, cfg.llc, seed=3)
    return run_cores([mt], cfg, sink=sink), cfg


# --------------------------------------------------------------- ring buffer


class TestTraceSink:
    def test_emit_and_snapshot_order(self):
        sink = TraceSink(capacity=8)
        for i in range(5):
            sink.emit(Category.REQUEST, Kind.READ_ARRIVAL, i * 10, 0, 0, a=i)
        snap = sink.snapshot()
        assert snap["cycle"].tolist() == [0, 10, 20, 30, 40]
        assert snap["a"].tolist() == [0, 1, 2, 3, 4]
        assert len(sink) == 5 and sink.emitted == 5 and sink.dropped == 0

    def test_wrap_overwrites_oldest_and_charges_its_category(self):
        sink = TraceSink(capacity=4, policy="wrap")
        sink.emit(Category.REFRESH, Kind.REFRESH_WINDOW, 0, a=10)
        for i in range(1, 6):
            sink.emit(Category.REQUEST, Kind.READ_ARRIVAL, i)
        snap = sink.snapshot()
        # capacity 4: cycles 2..5 survive, the REFRESH event and cycle-1
        # arrival were overwritten
        assert snap["cycle"].tolist() == [2, 3, 4, 5]
        assert sink.dropped == 2
        assert sink.dropped_by_category[Category.REFRESH] == 1
        assert sink.dropped_by_category[Category.REQUEST] == 1
        assert sink.emitted == 6  # drops don't un-count emissions

    def test_drop_policy_rejects_incoming(self):
        sink = TraceSink(capacity=2, policy="drop")
        for i in range(5):
            sink.emit(Category.SRAM, Kind.SRAM_HIT, i)
        assert sink.snapshot()["cycle"].tolist() == [0, 1]
        assert sink.dropped == 3
        assert sink.dropped_by_category[Category.SRAM] == 3

    def test_grow_policy_keeps_everything(self):
        sink = TraceSink(capacity=2, policy="grow")
        for i in range(9):
            sink.emit(Category.ROP, Kind.PHASE, i, a=i % 3)
        assert sink.snapshot()["cycle"].tolist() == list(range(9))
        assert sink.dropped == 0
        assert sink.capacity >= 9

    def test_wraparound_snapshot_is_chronological(self):
        sink = TraceSink(capacity=3, policy="wrap")
        for i in range(7):  # head wraps twice and lands mid-array
            sink.emit(Category.SERVICE, Kind.ISSUE, i)
        assert sink.snapshot()["cycle"].tolist() == [4, 5, 6]

    def test_category_mask(self):
        sink = TraceSink(capacity=8, categories={Category.REFRESH})
        assert sink.wants(Category.REFRESH)
        assert not sink.wants(Category.REQUEST)
        sink.emit(Category.REQUEST, Kind.READ_ARRIVAL, 1)
        sink.emit(Category.REFRESH, Kind.REFRESH_WINDOW, 2, a=5)
        assert len(sink) == 1 and sink.masked == 1
        sink.enable(Category.REQUEST)
        sink.emit(Category.REQUEST, Kind.READ_ARRIVAL, 3)
        assert len(sink) == 2

    def test_select_filters(self):
        sink = TraceSink(capacity=16)
        sink.emit(Category.REQUEST, Kind.READ_ARRIVAL, 1, 0, 0)
        sink.emit(Category.REQUEST, Kind.WRITE_ARRIVAL, 2, 0, 1)
        sink.emit(Category.REFRESH, Kind.REFRESH_WINDOW, 3, 0, 1, a=9)
        reads = sink.select(kind=Kind.READ_ARRIVAL)
        assert reads["cycle"].tolist() == [1]
        rank1 = sink.select(rank=1)
        assert rank1["cycle"].tolist() == [2, 3]
        ref = sink.select(category=Category.REFRESH, rank=1)
        assert ref["a"].tolist() == [9]

    def test_summary_and_counts(self):
        sink = TraceSink(capacity=4)
        sink.emit(Category.REQUEST, Kind.READ_ARRIVAL, 1)
        sink.emit(Category.REQUEST, Kind.READ_ARRIVAL, 2)
        s = sink.summary()
        assert s["stored"] == 2 and s["policy"] == "wrap"
        assert s["by_category"]["request"]["emitted"] == 2
        assert sink.counts_by_kind() == {"read_arrival": 2}

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            TraceSink(capacity=0)
        with pytest.raises(ValueError):
            TraceSink(policy="bogus")

    def test_null_sink_is_inert(self):
        assert not NULL_SINK.enabled
        assert not NULL_SINK.wants(Category.REQUEST)
        NULL_SINK.emit(Category.REQUEST, Kind.READ_ARRIVAL, 1)
        assert len(NULL_SINK) == 0
        assert len(NULL_SINK.snapshot()["cycle"]) == 0

    def test_kind_name(self):
        assert kind_name(int(Kind.REFRESH_WINDOW)) == "refresh_window"
        assert kind_name(9999) == "kind9999"


# ------------------------------------------------------------ invariance


class TestTelemetryInvariance:
    def test_run_bit_identical_with_and_without_sink(self):
        off, _ = tiny_run(sink=None)
        sink = TraceSink()
        on, _ = tiny_run(sink=sink)
        assert sink.emitted > 0  # telemetry actually collected
        assert on.cores == off.cores
        assert vars(on.stats) == vars(off.stats)
        assert on.end_cycle == off.end_cycle
        assert on.rop_summary == off.rop_summary
        assert on.metrics == off.metrics  # metrics derive from scalars only

    def test_spec_key_excludes_telemetry(self):
        spec = RunSpec.benchmark("lbm", SystemConfig.single_core(), TINY)
        assert dataclasses.replace(spec, telemetry=True).key == spec.key

    def test_telemetry_spec_bypasses_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        spec = RunSpec.benchmark("gobmk", SystemConfig.single_core(), TINY)
        execute_plan([spec], jobs=1, cache=NullCache())
        live = dataclasses.replace(spec, telemetry=True)
        res = execute_plan([live], jobs=1, cache=NullCache())
        assert res.stats.memo_hits == 0  # memo hit would leave no trace
        assert res.stats.executed == 1
        traces = list(tmp_path.glob("*.trace.json"))
        assert len(traces) == 1
        json.loads(traces[0].read_text())  # valid JSON


# --------------------------------------------------------------- exporters


class TestExporters:
    def test_chrome_trace_schema(self):
        sink = TraceSink()
        result, cfg = tiny_run(sink=sink)
        doc = chrome_trace(sink, cfg.effective_timings().tck_ns, label="t")
        events = doc["traceEvents"]
        assert events, "no events exported"
        for e in events:
            assert {"ph", "pid", "tid"} <= set(e)
            if e["ph"] in ("X", "i", "C"):
                assert "ts" in e and "name" in e
            if e["ph"] == "X":
                assert e["dur"] >= 0
        names = {e.get("name") for e in events}
        assert "refresh freeze" in names  # per-rank duration spans
        assert "read" in names  # request instants
        phases = {e["name"] for e in events if e.get("cat") == "rop-phase"}
        assert "training" in phases and "observing" in phases
        # per-channel/rank tracks announced via metadata events
        meta = [e for e in events if e["ph"] == "M"]
        assert {"process_name", "thread_name"} <= {e["name"] for e in meta}

    def test_refresh_spans_match_lock_cycles(self):
        sink = TraceSink()
        result, cfg = tiny_run(sink=sink)
        ref = sink.select(kind=Kind.REFRESH_WINDOW)
        locked = int((ref["a"] - ref["cycle"]).sum())
        assert locked == result.stats.refresh_locked_cycles

    def test_write_chrome_trace_jsonl_csv(self, tmp_path):
        sink = TraceSink(capacity=16)
        sink.emit(Category.REQUEST, Kind.READ_ARRIVAL, 5, 0, 0, a=42)
        sink.emit(Category.REFRESH, Kind.REFRESH_WINDOW, 10, 0, 0, a=20)
        p = write_chrome_trace(sink, 1.25, tmp_path / "t.trace.json")
        doc = json.loads(p.read_text())
        assert doc["otherData"]["clock_period_ns"] == 1.25
        p = write_jsonl(sink, tmp_path / "t.jsonl")
        lines = [json.loads(ln) for ln in p.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["kind_name"] == "read_arrival"
        assert lines[1]["category"] == "refresh"
        write_csv(sink, tmp_path / "t.csv")
        rows = (tmp_path / "t.csv").read_text().splitlines()
        assert rows[0].startswith("cycle,") and len(rows) == 3

    def test_phase_codes_cover_machine_states(self):
        assert {p.name for p in PhaseCode} == {"TRAINING", "OBSERVING", "PREFETCHING"}


# ----------------------------------------------------------------- metrics


class TestMetricsRegistry:
    def test_counters_sum_and_gauges_average(self):
        a = MetricsRegistry()
        a.count("x", 2)
        a.gauge("ipc", 1.0)
        a.gauge("lat.max", 50)
        b = MetricsRegistry()
        b.count("x", 3)
        b.gauge("ipc", 3.0)
        b.gauge("lat.max", 40)
        m = MetricsRegistry.merge([a.snapshot(), b.snapshot()])
        assert m["counters"]["x"] == 5
        assert MetricsRegistry.gauge_value(m, "ipc") == pytest.approx(2.0)
        assert MetricsRegistry.gauge_value(m, "lat.max") == 50

    def test_merge_is_order_independent(self):
        snaps = []
        for i in range(4):
            r = MetricsRegistry()
            r.count("n", i)
            r.gauge("g", float(i), weight=i + 1)
            r.gauge("g.min", float(i))
            r.observe("h", 10.0 * i, bounds=(5, 25))
            snaps.append(r.snapshot())
        fwd = MetricsRegistry.merge(snaps)
        rev = MetricsRegistry.merge(list(reversed(snaps)))
        assert json.dumps(fwd, sort_keys=True) == json.dumps(rev, sort_keys=True)

    def test_histogram_buckets_and_overflow(self):
        r = MetricsRegistry()
        for v in (1, 6, 30, 1000):
            r.observe("lat", v, bounds=(5, 25))
        h = r.snapshot()["histograms"]["lat"]
        assert h["counts"] == [1, 1, 2]
        assert h["sum"] == 1037.0

    def test_histogram_bounds_mismatch_raises(self):
        a = MetricsRegistry()
        a.observe("h", 1, bounds=(5,))
        b = MetricsRegistry()
        b.observe("h", 1, bounds=(9,))
        with pytest.raises(ValueError):
            MetricsRegistry.merge([a.snapshot(), b.snapshot()])

    def test_from_run_attached_to_result(self):
        result, _ = tiny_run()
        m = result.metrics
        assert m["counters"]["dram.reads"] == result.stats.reads
        assert m["counters"]["cpu.instructions"] == result.cores[0].instructions
        assert MetricsRegistry.gauge_value(m, "cpu.ipc") == pytest.approx(result.ipc)
        assert m["counters"]["rop.buffer_fills"] == result.rop_summary["buffer_fills"]

    def test_jobs_equivalence_of_merged_metrics(self):
        cfg = SystemConfig.single_core()
        specs = [
            RunSpec.benchmark("gobmk", cfg, TINY),
            RunSpec.benchmark("lbm", cfg, TINY),
            RunSpec.benchmark("gobmk", cfg.with_rop(training_refreshes=3), TINY),
        ]
        seq = execute_plan(specs, jobs=1, cache=NullCache())
        clear_result_memo()
        par = execute_plan(specs, jobs=2, cache=NullCache())
        m_seq, m_par = seq.merged_metrics(), par.merged_metrics()
        assert m_seq["counters"]  # non-trivial merge
        assert json.dumps(m_seq, sort_keys=True) == json.dumps(m_par, sort_keys=True)

    def test_render_metrics(self):
        from repro.harness import reporting

        result, _ = tiny_run()
        out = reporting.render_metrics(result.metrics)
        assert "dram.reads" in out and "counter" in out
        only_rop = reporting.render_metrics(result.metrics, prefix="rop.")
        assert "rop.buffer_fills" in only_rop and "dram.reads" not in only_rop
        assert reporting.render_metrics({}) == "(no metrics recorded)"


# --------------------------------------------------- EventRecorder shim


class TestRecorderShim:
    def test_direct_api_round_trip(self):
        rec = EventRecorder(channels=1, ranks=2)
        rec.on_request(0, 0, 5, True)
        rec.on_request(0, 0, 7, False)
        rec.on_request(0, 1, 9, True)
        rec.on_refresh(0, 0, 100, 260)
        ev = rec.rank_events(0, 0)
        assert ev.read_arrivals == [5]
        assert ev.write_arrivals == [7]
        assert ev.refresh_starts == [100] and ev.refresh_ends == [260]
        assert rec.rank_events(0, 1).read_arrivals == [9]
        assert set(rec.all_events()) == {(0, 0), (0, 1)}

    def test_materialized_lists_are_plain_ints(self):
        rec = EventRecorder(channels=1, ranks=1)
        rec.on_request(0, 0, 3, True)
        ev = rec.rank_events()
        assert type(ev.read_arrivals[0]) is int  # np.int64 would change pickles

    def test_refresh_analysis_unchanged_by_shim(self):
        """Figs. 2–4 / Table I inputs survive the recorder→sink migration."""
        from repro.dram.memory_system import MemorySystem

        cfg = SystemConfig.single_core()
        ms = MemorySystem(cfg, record_events=True)
        rng = np.random.default_rng(7)
        for i, cyc in enumerate(np.sort(rng.integers(0, 40_000, size=300))):
            if i % 5 == 0:
                ms.submit_write(int(i), int(cyc))
            else:
                ms.schedule_read(int(i), int(cyc))
        ms.run(until=50_000)
        ms.finish()
        ev = ms.recorder.rank_events(0, 0)
        # reference lists rebuilt straight from the sink columns
        snap = ms.sink.snapshot()
        mine = (snap["channel"] == 0) & (snap["rank"] == 0)
        reads = snap["cycle"][mine & (snap["kind"] == int(Kind.READ_ARRIVAL))]
        assert ev.read_arrivals == reads.tolist()
        windows = snap["kind"] == int(Kind.REFRESH_WINDOW)
        assert ev.refresh_starts == snap["cycle"][mine & windows].tolist()
        assert ev.refresh_ends == snap["a"][mine & windows].tolist()
        wa = analyze_rank(ev, ms.controller.t.refi)
        assert wa.refreshes == len(ev.refresh_starts) > 0
        assert len(blocked_per_refresh(ev)) == wa.refreshes  # Fig. 3 path


# ------------------------------------------------------- harness & CLI


class TestHarnessWiring:
    def test_runner_stats_surface_cache_write_errors(self):
        from repro.harness import reporting

        stats = RunnerStats(requested=1, unique=1, cache_write_errors=2)
        assert "2 cache write errors" in reporting.render_runner_stats(stats)
        clean = RunnerStats(requested=1, unique=1)
        assert "cache write errors" not in reporting.render_runner_stats(clean)

    def test_cache_write_errors_counted(self, tmp_path):
        from repro.harness.cache import ArtifactCache

        class FailingCache(ArtifactCache):
            def put(self, key, value):
                self.write_errors += 1

        cache = FailingCache(tmp_path)
        spec = RunSpec.benchmark("gobmk", SystemConfig.single_core(), TINY)
        clear_result_memo()
        res = execute_plan([spec], jobs=1, cache=cache)
        assert res.stats.cache_write_errors == 1

    def test_merged_metrics_empty_plan(self):
        res = PlanResults({}, RunnerStats())
        assert res.merged_metrics() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestCli:
    def test_version_flag(self, capsys):
        from repro import __version__
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_info_shows_version(self, capsys):
        from repro import __version__
        from repro.cli import main

        assert main(["info"]) == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_trace_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "lbm.trace.json"
        code = main(
            ["trace", "lbm", "--instructions", "120000", "--out", str(out)]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        names = {e.get("name") for e in doc["traceEvents"]}
        assert "refresh freeze" in names
        printed = capsys.readouterr().out
        assert "events stored" in printed and "perfetto" in printed.lower()

    def test_trace_subcommand_csv(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "t.csv"
        assert main(
            ["trace", "gobmk", "--instructions", "120000", "--format", "csv",
             "--out", str(out), "--baseline"]
        ) == 0
        assert out.read_text().startswith("cycle,")

    def test_telemetry_flag_writes_worker_traces(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        # register teardown restores: main() sets these via os.environ
        monkeypatch.setenv("REPRO_TELEMETRY", "")
        monkeypatch.setenv("REPRO_TRACE_DIR", "")
        from repro.harness import set_cache_enabled

        try:
            code = main(
                ["analyze", "gobmk", "--instructions", "120000", "--telemetry",
                 "--trace-dir", str(tmp_path), "--no-cache"]
            )
        finally:
            set_cache_enabled(None)  # --no-cache sets a process-wide override
        assert code == 0
        assert list(tmp_path.glob("*.trace.json"))
        assert "telemetry:" in capsys.readouterr().out
