"""Unit tests for the deterministic RNG utilities."""

import numpy as np

from repro.rng import derive_seed, make_rng


def test_derive_seed_deterministic():
    assert derive_seed(42, "a") == derive_seed(42, "a")


def test_derive_seed_tag_sensitivity():
    assert derive_seed(42, "a") != derive_seed(42, "b")


def test_derive_seed_parent_sensitivity():
    assert derive_seed(1, "x") != derive_seed(2, "x")


def test_derive_seed_is_64bit():
    for seed in (0, 1, 2**63, 2**64 - 1):
        child = derive_seed(seed, "tag")
        assert 0 <= child < 2**64


def test_derive_seed_negative_parent_masked():
    # negative parents are masked to 64 bits rather than erroring
    assert derive_seed(-1, "t") == derive_seed(2**64 - 1, "t")


def test_make_rng_reproducible():
    a = make_rng(7).random(5)
    b = make_rng(7).random(5)
    assert np.array_equal(a, b)


def test_make_rng_tagged_streams_differ():
    a = make_rng(7, "x").random(5)
    b = make_rng(7, "y").random(5)
    assert not np.array_equal(a, b)


def test_make_rng_returns_generator():
    assert isinstance(make_rng(0), np.random.Generator)
