"""Tests for the trace-characterization utilities."""

import numpy as np
import pytest

from repro import AddressMapScheme, LlcConfig, MemoryOrganization
from repro.workloads import profile
from repro.workloads.analysis import (
    bank_dwells,
    characterize,
    delta_predictability,
)
from repro.workloads.trace import AccessTrace


def trace_of(lines, gap=10, writes=None, tail=0):
    n = len(lines)
    return AccessTrace.from_lists(
        [gap] * n,
        lines,
        writes if writes is not None else [False] * n,
        tail_instructions=tail,
    )


class TestDeltaPredictability:
    def test_pure_stream_near_one(self):
        lines = np.arange(1000, dtype=np.int64)
        assert delta_predictability(lines) > 0.99

    def test_stride_near_one(self):
        lines = np.arange(0, 7000, 7, dtype=np.int64)
        assert delta_predictability(lines) > 0.99

    def test_period3_pattern_high(self):
        deltas = [1, 1, 6] * 300
        lines = np.cumsum(np.asarray([0] + deltas, dtype=np.int64))
        assert delta_predictability(lines) > 0.9

    def test_random_near_zero(self):
        rng = np.random.default_rng(0)
        lines = rng.integers(0, 1 << 30, size=2000).astype(np.int64)
        assert delta_predictability(lines) < 0.05

    def test_tiny_trace(self):
        assert delta_predictability(np.asarray([1, 2], dtype=np.int64)) == 0.0


class TestBankDwells:
    def test_single_bank_stream(self):
        org = MemoryOrganization()
        lines = np.arange(100, dtype=np.int64)  # within one dwell region
        d = bank_dwells(lines, org)
        assert d.tolist() == [100]

    def test_bank_hop(self):
        org = MemoryOrganization()
        from repro.dram.address_mapping import AddressMapper

        m = AddressMapper(org, AddressMapScheme.BANK_LOCALITY)
        dwell = m.bank_dwell_lines
        lines = np.arange(dwell - 2, dwell + 2, dtype=np.int64)
        d = bank_dwells(lines, org)
        assert d.tolist() == [2, 2]

    def test_interleaved_mapping_short_dwells(self):
        org = MemoryOrganization()
        lines = np.arange(1024, dtype=np.int64)
        loc = bank_dwells(lines, org, AddressMapScheme.BANK_LOCALITY)
        conv = bank_dwells(lines, org, AddressMapScheme.ROW_RANK_BANK_COL)
        assert loc.mean() > conv.mean()

    def test_empty(self):
        assert len(bank_dwells(np.empty(0, dtype=np.int64), MemoryOrganization())) == 0


class TestCharacterize:
    def test_mpki(self):
        tr = trace_of(list(range(100)), gap=10)
        prof = characterize(tr)
        assert prof.mpki == pytest.approx(100 / 1000 * 1000)

    def test_write_fraction(self):
        tr = trace_of(list(range(10)), writes=[True] * 4 + [False] * 6)
        assert characterize(tr).write_fraction == pytest.approx(0.4)

    def test_continuous_trace_fully_busy(self):
        tr = trace_of(list(range(5000)), gap=10)
        prof = characterize(tr, window_instr=1000)
        assert prof.busy_window_fraction == 1.0
        assert prof.busy_persistence == 1.0

    def test_bursty_trace_persistences(self):
        # 1 access, then silence for many windows, repeatedly
        gaps, lines = [], []
        for burst in range(20):
            for i in range(50):
                gaps.append(10)
                lines.append(burst * 10_000 + i)
            gaps.append(100_000)  # long idle
            lines.append(burst * 10_000 + 999)
        tr = AccessTrace.from_lists(gaps, lines, [False] * len(lines))
        prof = characterize(tr, window_instr=10_000)
        assert prof.busy_window_fraction < 0.5
        assert prof.quiet_persistence > 0.5

    def test_profiles_match_intensity_class(self):
        llc = LlcConfig(size_bytes=2 * 1024 * 1024)
        heavy = characterize(profile("lbm").memory_trace(500_000, llc, seed=1))
        light = characterize(profile("gobmk").memory_trace(500_000, llc, seed=1))
        assert heavy.mpki > light.mpki
        assert heavy.busy_window_fraction > light.busy_window_fraction

    def test_stream_profile_predictable(self):
        llc = LlcConfig(size_bytes=2 * 1024 * 1024)
        tr = profile("libquantum").memory_trace(500_000, llc, seed=1)
        prof = characterize(tr)
        assert prof.delta_predictability > 0.5
        # interleaved write-backs chop same-bank runs; the dwell still far
        # exceeds the ~1 of a uniformly random stream
        assert prof.mean_bank_dwell > 3
