"""Integration tests for the multi-core co-simulation."""


from repro import SystemConfig
from repro.cpu.multicore import place_traces, run_cores
from repro.workloads.trace import AccessTrace


def stream_trace(n=800, gap=4, start=0):
    return AccessTrace.from_lists(
        [gap] * n, list(range(start, start + n)), [False] * n
    )


def test_single_core_result_fields():
    r = run_cores([stream_trace()], SystemConfig.single_core())
    assert len(r.cores) == 1
    assert r.ipc > 0
    assert r.cores[0].instructions == stream_trace().total_instructions
    assert r.rop_summary is None


def test_four_cores_all_finish():
    traces = [stream_trace(start=i * 10_000) for i in range(4)]
    r = run_cores(traces, SystemConfig.quad_core())
    assert len(r.cores) == 4
    assert all(c.ipc > 0 for c in r.cores)


def test_rank_partitioning_places_cores_in_own_ranks():
    cfg = SystemConfig.quad_core(rank_partitioned=True)
    traces = [stream_trace(n=10) for _ in range(4)]
    placed = place_traces(traces, cfg)
    from repro.dram.address_mapping import AddressMapper

    mapper = AddressMapper(cfg.organization, cfg.address_map)
    for i, tr in enumerate(placed):
        ranks = {mapper.decode(int(l)).rank for l in tr.lines}
        assert ranks == {i}


def test_unpartitioned_placement_disjoint():
    cfg = SystemConfig.quad_core(rank_partitioned=False)
    traces = [stream_trace(n=50) for _ in range(4)]
    placed = place_traces(traces, cfg)
    all_lines = [set(t.lines.tolist()) for t in placed]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not (all_lines[i] & all_lines[j])


def test_partitioning_reduces_interference():
    # four streams: partitioned ranks isolate them, shared mapping collides
    traces = [stream_trace(n=3000, gap=2) for _ in range(4)]
    shared = run_cores(traces, SystemConfig.quad_core(rank_partitioned=False))
    part = run_cores(traces, SystemConfig.quad_core(rank_partitioned=True))
    assert sum(part.ipcs) > sum(shared.ipcs)


def test_interference_slows_cores_vs_alone():
    tr = stream_trace(n=3000, gap=2)
    alone = run_cores([tr], SystemConfig.quad_core(rank_partitioned=False))
    together = run_cores(
        [tr] * 4, SystemConfig.quad_core(rank_partitioned=False)
    )
    assert max(together.ipcs) <= alone.ipc + 1e-9


def test_record_events_exposed():
    r = run_cores([stream_trace()], SystemConfig.single_core(), record_events=True)
    assert r.events is not None
    assert (0, 0) in r.events


def test_end_cycle_covers_compute_tail():
    tr = AccessTrace.from_lists([0], [0], [False], tail_instructions=400_000)
    r = run_cores([tr], SystemConfig.single_core())
    # 400 k instructions ≈ 100 k memory cycles: refreshes kept running
    assert r.stats.end_cycle >= 90_000
    assert r.stats.refreshes >= 14


def test_deterministic_multicore():
    def once():
        traces = [stream_trace(n=1500, start=i * 5_000) for i in range(4)]
        r = run_cores(traces, SystemConfig.quad_core())
        return (tuple(r.ipcs), r.stats.end_cycle, r.stats.row_hits)

    assert once() == once()
