"""Epoch-kernel equivalence gates: the array-native engine must be a
bit-exact drop-in for the scalar event-queue interpreter.

Four angles, ordered from the committed configurations outward:

* **corpus identity** — every system flavor the validation corpus can
  name produces byte-identical pickled results under both engines;
* **observer invariance** — attaching a telemetry sink changes nothing
  about an epoch-engine result (the sink observes, never steers);
* **fan-out invariance** — ``jobs=1`` and ``jobs=2`` plan executions
  under ``REPRO_ENGINE=epoch`` return identical result sets;
* **metamorphic fuzz** — Hypothesis drives both engines with the
  adversarial trace/config strategies of :mod:`repro.validation.fuzz`
  and asserts digest equality on every generated point (configurations
  the epoch kernel declines are exercised through its scalar fallback,
  which must also be invisible).
"""

from __future__ import annotations

import hashlib
import os
import pickle

import pytest
from hypothesis import given, settings

from repro import SystemConfig
from repro.cpu.multicore import run_cores
from repro.kernel import ENGINES, resolve_engine
from repro.telemetry import TraceSink
from repro.harness.runner import core_llc_share
from repro.validation.corpus import _SYSTEMS
from repro.validation.fuzz import config_and_traces
from repro.workloads import mix_profiles, profile

INSTR = 60_000


def _digest(result) -> str:
    return hashlib.sha256(pickle.dumps(result)).hexdigest()


def _run(cfg, engine: str, sink=None):
    trace = profile("lbm").memory_trace(INSTR, cfg.llc, seed=1)
    return run_cores([trace], cfg, engine=engine, sink=sink)


def _run_mix(cfg, mix: str, engine: str, sink=None):
    share = core_llc_share(cfg.llc.size_bytes)
    traces = [
        p.memory_trace(INSTR, share, seed=1) for p in mix_profiles(mix)
    ]
    return run_cores(traces, cfg, engine=engine, sink=sink)


class TestEngineResolution:
    def test_default_is_scalar(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine() == "scalar"

    def test_env_and_argument_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "epoch")
        assert resolve_engine() == "epoch"
        assert resolve_engine("scalar") == "scalar"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("vector")
        assert set(ENGINES) == {"scalar", "epoch"}


class TestCorpusDigestIdentity:
    @pytest.mark.parametrize("system", sorted(_SYSTEMS))
    def test_scalar_and_epoch_agree(self, system):
        cfg = _SYSTEMS[system]()
        assert _digest(_run(cfg, "scalar")) == _digest(_run(cfg, "epoch"))


class TestMulticoreCorpusDigestIdentity:
    """The generalized kernel on the paper's 4-core systems (ISSUE 9)."""

    @pytest.mark.parametrize(
        "system", sorted(s for s in _SYSTEMS if s.startswith("quad_"))
    )
    def test_scalar_and_epoch_agree_on_mixes(self, system):
        cfg = _SYSTEMS[system]()
        assert _digest(_run_mix(cfg, "WL1", "scalar")) == _digest(
            _run_mix(cfg, "WL1", "epoch")
        )

    def test_mix_runs_produce_no_fallbacks(self):
        cfg = _SYSTEMS["quad_rop"]()
        declined: list[str] = []
        share = core_llc_share(cfg.llc.size_bytes)
        traces = [
            p.memory_trace(INSTR, share, seed=1) for p in mix_profiles("WL2")
        ]
        run_cores(traces, cfg, engine="epoch", fallback_reasons=declined)
        assert declined == []


class TestRefreshPolicyKernelSupport:
    """Zoo policies either ride the kernels or decline with a reason."""

    @pytest.mark.parametrize(
        "system,fragment",
        [("darp", "darp"), ("sarp", "sarp"), ("rop_darp", "darp")],
    )
    def test_policies_decline_with_structured_reason(self, system, fragment):
        cfg = _SYSTEMS[system]()
        declined: list[str] = []
        trace = profile("lbm").memory_trace(INSTR, cfg.llc, seed=1)
        run_cores([trace], cfg, engine="epoch", fallback_reasons=declined)
        assert len(declined) == 1
        assert "refresh-policy" in declined[0]
        assert fragment in declined[0]

    def test_raidr_rides_the_kernel_without_fallback(self):
        cfg = _SYSTEMS["raidr"]()
        declined: list[str] = []
        trace = profile("lbm").memory_trace(INSTR, cfg.llc, seed=1)
        run_cores([trace], cfg, engine="epoch", fallback_reasons=declined)
        assert declined == []


class TestObserverInvariance:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_sink_does_not_change_the_result(self, engine):
        cfg = SystemConfig.single_core().with_rop()
        plain = _run(cfg, engine)
        observed = _run(cfg, engine, sink=TraceSink())
        assert _digest(plain) == _digest(observed)


class TestFanOutInvariance:
    def test_jobs1_equals_jobs2_under_epoch(self, tmp_path, monkeypatch):
        from repro.harness import RunScale, RunSpec, execute_plan
        from repro.harness.runner import clear_result_memo

        monkeypatch.setenv("REPRO_ENGINE", "epoch")
        scale = RunScale.named("smoke")
        base = SystemConfig.single_core()
        rop = base.with_rop(training_refreshes=scale.training_refreshes)
        specs = [
            RunSpec.benchmark(name, cfg, scale)
            for name in ("lbm", "libquantum")
            for cfg in (base, rop)
        ]
        digests = {}
        for jobs in (1, 2):
            monkeypatch.setenv(
                "REPRO_CACHE_DIR", str(tmp_path / f"jobs{jobs}")
            )
            clear_result_memo()
            results = execute_plan(specs, jobs=jobs)
            digests[jobs] = {s.key: _digest(results[s]) for s in specs}
        assert digests[1] == digests[2]

    def test_jobs1_equals_jobs2_for_mixes_under_epoch(self, tmp_path, monkeypatch):
        from repro.harness import RunScale, RunSpec, execute_plan
        from repro.harness.runner import clear_result_memo

        monkeypatch.setenv("REPRO_ENGINE", "epoch")
        scale = RunScale(instructions=INSTR, seed=1, training_refreshes=3)
        base = SystemConfig.quad_core()
        rop = base.with_rop(training_refreshes=scale.training_refreshes)
        specs = [
            RunSpec.mix(mix, cfg, scale)
            for mix in ("WL1", "WL2")
            for cfg in (base, rop)
        ]
        digests = {}
        for jobs in (1, 2):
            monkeypatch.setenv(
                "REPRO_CACHE_DIR", str(tmp_path / f"jobs{jobs}")
            )
            clear_result_memo()
            results = execute_plan(specs, jobs=jobs)
            digests[jobs] = {s.key: _digest(results[s]) for s in specs}
            assert len(results.engine_fallbacks) == 0
        assert digests[1] == digests[2]


class TestMetamorphicFuzz:
    @settings(max_examples=int(os.environ.get("REPRO_FUZZ_EXAMPLES", "25")))
    @given(config_and_traces())
    def test_engines_agree_on_adversarial_points(self, point):
        cfg, traces = point
        scalar = run_cores(list(traces), cfg, engine="scalar")
        epoch = run_cores(list(traces), cfg, engine="epoch")
        assert _digest(scalar) == _digest(epoch)
