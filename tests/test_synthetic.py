"""Unit + property tests for the synthetic workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rng import make_rng
from repro.workloads.synthetic import PhaseModel, generate_trace, pattern_addresses


def model(**kw):
    defaults = dict(
        busy_instr=5_000,
        idle_instr=5_000,
        access_density=0.2,
        pattern_frac=0.3,
        ws_frac=0.3,
        pattern="stream",
    )
    defaults.update(kw)
    return PhaseModel(**defaults)


class TestPatternAddresses:
    def test_stream(self):
        lines, cur = pattern_addresses("stream", 5, 100, 1 << 20, make_rng(0))
        assert list(lines) == [101, 102, 103, 104, 105]
        assert cur == 105

    def test_stride(self):
        lines, _ = pattern_addresses("stride", 4, 0, 1 << 20, make_rng(0), stride=7)
        assert list(lines) == [7, 14, 21, 28]

    def test_multidelta(self):
        lines, _ = pattern_addresses(
            "multidelta", 6, 0, 1 << 20, make_rng(0), deltas=(1, 1, 6)
        )
        assert list(lines) == [1, 2, 8, 9, 10, 16]

    def test_chase_is_deterministic_per_seed(self):
        a, _ = pattern_addresses("chase", 10, 0, 1 << 16, make_rng(3))
        b, _ = pattern_addresses("chase", 10, 0, 1 << 16, make_rng(3))
        assert np.array_equal(a, b)

    def test_wraps_modulo_space(self):
        lines, _ = pattern_addresses("stream", 5, (1 << 10) - 3, 1 << 10, make_rng(0))
        assert all(0 <= l < (1 << 10) for l in lines)

    def test_zero_count(self):
        lines, cur = pattern_addresses("stream", 0, 42, 1 << 10, make_rng(0))
        assert len(lines) == 0 and cur == 42

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            pattern_addresses("zigzag", 5, 0, 1 << 10, make_rng(0))


class TestPhaseModel:
    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            model(pattern_frac=0.8, ws_frac=0.4)

    def test_pattern_validation(self):
        with pytest.raises(ValueError):
            model(pattern="bogus")

    def test_density_validation(self):
        with pytest.raises(ValueError):
            model(access_density=0)


class TestGenerateTrace:
    def test_instruction_budget_exact(self):
        tr = generate_trace(model(), 50_000, seed=1)
        assert tr.total_instructions == 50_000

    def test_deterministic(self):
        a = generate_trace(model(), 20_000, seed=5)
        b = generate_trace(model(), 20_000, seed=5)
        assert np.array_equal(a.lines, b.lines)
        assert np.array_equal(a.gaps, b.gaps)

    def test_seed_changes_trace(self):
        a = generate_trace(model(), 20_000, seed=5)
        b = generate_trace(model(), 20_000, seed=6)
        assert not np.array_equal(a.lines, b.lines)

    def test_write_fraction_approximate(self):
        tr = generate_trace(model(write_frac=0.3), 200_000, seed=1)
        frac = tr.write_count / len(tr)
        assert frac == pytest.approx(0.3, abs=0.05)

    def test_no_idle_model(self):
        tr = generate_trace(model(idle_instr=0), 30_000, seed=2)
        assert tr.total_instructions == 30_000

    def test_address_regions_disjoint(self):
        m = model(pattern_frac=0.4, ws_frac=0.3, ws_lines=1 << 10, hot_lines=1 << 6)
        tr = generate_trace(m, 100_000, seed=3)
        lines = tr.lines
        pattern = lines < m.cursor_space
        ws = (lines >= m.cursor_space) & (lines < m.cursor_space + m.ws_lines)
        hot = lines >= m.cursor_space + m.ws_lines
        assert pattern.any() and ws.any() and hot.any()
        assert int(hot.sum()) + int(ws.sum()) + int(pattern.sum()) == len(lines)
        assert lines[hot].max() < m.cursor_space + m.ws_lines + m.hot_lines

    def test_ws_runs_sequential(self):
        m = model(pattern_frac=0.0, ws_frac=1.0, ws_run=4, ws_lines=1 << 12)
        tr = generate_trace(m, 20_000, seed=4)
        deltas = np.diff(tr.lines)
        # with pure run-structured ws traffic, most deltas are +1
        assert (deltas == 1).mean() > 0.5

    def test_burstiness_shapes_gaps(self):
        bursty = generate_trace(
            model(busy_instr=2_000, idle_instr=50_000), 500_000, seed=7
        )
        smooth = generate_trace(model(idle_instr=0), 500_000, seed=7)
        assert bursty.gaps.max() > 10 * smooth.gaps.max()

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            generate_trace(model(), 0, seed=1)


@given(
    total=st.integers(1_000, 60_000),
    seed=st.integers(0, 2**32 - 1),
    density=st.floats(0.05, 0.5),
)
@settings(max_examples=40, deadline=None)
def test_budget_and_bounds_property(total, seed, density):
    m = model(access_density=density)
    tr = generate_trace(m, total, seed=seed)
    assert tr.total_instructions == total
    assert (tr.lines >= 0).all()
    assert (tr.gaps >= 0).all()
