"""Unit tests for the trace container."""

import numpy as np
import pytest

from repro.workloads.trace import AccessTrace, concat_traces


def simple(n=5, tail=0):
    return AccessTrace.from_lists(
        [2] * n, list(range(n)), [i % 2 == 0 for i in range(n)], tail_instructions=tail
    )


def test_length_and_counts():
    tr = simple(5)
    assert len(tr) == 5
    assert tr.read_count == 2
    assert tr.write_count == 3


def test_total_instructions():
    tr = simple(5, tail=7)
    assert tr.total_instructions == 17


def test_footprint():
    tr = AccessTrace.from_lists([1, 1, 1], [5, 5, 9], [False] * 3)
    assert tr.footprint_lines == 2


def test_mismatched_lengths_rejected():
    with pytest.raises(ValueError):
        AccessTrace.from_lists([1], [1, 2], [False])


def test_negative_gaps_rejected():
    with pytest.raises(ValueError):
        AccessTrace.from_lists([-1], [1], [False])


def test_slice():
    tr = simple(5, tail=9)
    sub = tr.slice(1, 3)
    assert list(sub.lines) == [1, 2]
    assert sub.tail_instructions == 0  # interior slice loses the tail
    assert tr.slice(0, 5).tail_instructions == 9


def test_offset_lines():
    tr = simple(3)
    moved = tr.offset_lines(1000)
    assert list(moved.lines) == [1000, 1001, 1002]
    assert moved.total_instructions == tr.total_instructions


def test_save_load_roundtrip(tmp_path):
    tr = simple(5, tail=3)
    path = tmp_path / "trace.npz"
    tr.save(path)
    back = AccessTrace.load(path)
    assert np.array_equal(back.gaps, tr.gaps)
    assert np.array_equal(back.lines, tr.lines)
    assert np.array_equal(back.writes, tr.writes)
    assert back.tail_instructions == 3


def test_concat_preserves_instructions():
    a = simple(3, tail=5)
    b = simple(2, tail=1)
    joined = concat_traces([a, b])
    assert joined.total_instructions == a.total_instructions + b.total_instructions
    assert len(joined) == 5
    # a's tail becomes part of b's first gap
    assert joined.gaps[3] == b.gaps[0] + 5


def test_concat_empty_rejected():
    with pytest.raises(ValueError):
        concat_traces([])


def test_concat_single():
    a = simple(3, tail=2)
    j = concat_traces([a])
    assert j.total_instructions == a.total_instructions
