"""Unit tests for the trace-driven core model."""

import pytest

from repro import CoreConfig, RefreshMode, SystemConfig
from repro.cpu.core import Core
from repro.dram import MemorySystem
from repro.workloads.trace import AccessTrace


def run_core(trace, core_cfg=None, sys_cfg=None):
    cfg = sys_cfg or SystemConfig.single_core().with_refresh_mode(RefreshMode.NONE)
    ms = MemorySystem(cfg)
    core = Core(0, trace, ms, core_cfg or cfg.core)
    core.start()
    ms.run()
    return core, ms


def test_empty_trace_finishes_immediately():
    tr = AccessTrace.from_lists([], [], [])
    core, _ = run_core(tr)
    assert core.finished


def test_compute_only_ipc_is_one():
    # one access then a long compute tail: IPC ≈ 1 at base_cpi = 1
    tr = AccessTrace.from_lists([0], [0], [False], tail_instructions=100_000)
    core, _ = run_core(tr)
    assert core.finished
    assert core.ipc == pytest.approx(1.0, rel=0.01)


def test_memory_bound_ipc_below_one():
    n = 2000
    tr = AccessTrace.from_lists([1] * n, list(range(0, 10 * n, 10)), [False] * n)
    core, _ = run_core(tr)
    assert core.finished
    assert core.ipc < 0.5


def test_mlp_limits_outstanding():
    n = 500
    tr = AccessTrace.from_lists([0] * n, list(range(n)), [False] * n)
    core, ms = run_core(tr, core_cfg=CoreConfig(mlp=2))
    assert core.finished
    assert core.stall_events > 0


def test_higher_mlp_not_slower():
    n = 1000
    lines = [(i * 977) % 8192 for i in range(n)]
    tr = AccessTrace.from_lists([2] * n, lines, [False] * n)
    slow, _ = run_core(tr, core_cfg=CoreConfig(mlp=1))
    fast, _ = run_core(tr, core_cfg=CoreConfig(mlp=8))
    assert fast.cpu_cycles <= slow.cpu_cycles


def test_writes_do_not_stall():
    n = 500
    writes = AccessTrace.from_lists([1] * n, list(range(n)), [True] * n)
    core, _ = run_core(writes, core_cfg=CoreConfig(mlp=1))
    # posted writes: the core retires at full speed
    assert core.ipc == pytest.approx(1.0, rel=0.15)
    assert core.stall_events == 0


def test_counts_match_trace():
    tr = AccessTrace.from_lists(
        [1] * 6, list(range(6)), [False, True, False, True, True, False]
    )
    core, ms = run_core(tr)
    assert core.reads_issued == 3
    assert core.writes_issued == 3
    assert ms.stats.reads == 3
    assert ms.stats.writes == 3


def test_base_cpi_scales_time():
    tr = AccessTrace.from_lists([0], [0], [False], tail_instructions=10_000)
    slow, _ = run_core(tr, core_cfg=CoreConfig(base_cpi=2.0))
    fast, _ = run_core(tr, core_cfg=CoreConfig(base_cpi=1.0))
    assert slow.cpu_cycles == pytest.approx(2 * fast.cpu_cycles, rel=0.05)


def test_cpu_clock_mult_conversion():
    tr = AccessTrace.from_lists([0], [0], [False], tail_instructions=4_000)
    core, _ = run_core(tr, core_cfg=CoreConfig(cpu_clock_mult=4))
    # 4000 CPU cycles ≈ 1000 memory cycles
    assert core.finish_cycle == pytest.approx(1_000, rel=0.1)


def test_refresh_slows_memory_bound_core():
    n = 4000
    tr = AccessTrace.from_lists([5] * n, list(range(n)), [False] * n)
    with_ref, _ = run_core(tr, sys_cfg=SystemConfig.single_core())
    without, _ = run_core(
        tr, sys_cfg=SystemConfig.single_core().with_refresh_mode(RefreshMode.NONE)
    )
    assert with_ref.cpu_cycles > without.cpu_cycles
