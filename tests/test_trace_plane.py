"""Trace-plane lifecycle tests (ISSUE 4).

The plane persists LLC-filtered memory traces as raw ``.npy`` artifacts
that any number of processes memory-map.  These tests cover the full
lifecycle: materialize once / reuse across specs, survival of worker
crashes, invalidation when the content key changes, and corruption
recovery (torn entries are misses, never crashes).
"""

import dataclasses
import json

import numpy as np
import pytest

from repro import SystemConfig
from repro.config import LlcConfig
from repro.harness import RunScale, RunSpec, execute_plan
from repro.harness.runner import ExecutionPolicy, clear_result_memo
from repro.harness.trace_plane import (
    NullTracePlane,
    TracePlane,
    get_trace_plane,
    trace_plane_dir,
)
from repro.workloads import profile
from repro.workloads.spec_profiles import clear_trace_cache
from repro.workloads.trace import AccessTrace

TINY = RunScale(instructions=120_000, seed=3, training_refreshes=3)
LLC = LlcConfig(size_bytes=256 * 1024, ways=4)


@pytest.fixture(autouse=True)
def plane_env(tmp_path, monkeypatch):
    """Point the cache (and so the plane) at a fresh directory, cache ON."""
    from repro.harness import set_cache_enabled

    set_cache_enabled(None)  # drop any leaked process-wide override
    monkeypatch.setenv("REPRO_CACHE", "on")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_trace_cache()
    clear_result_memo()
    yield tmp_path
    clear_trace_cache()
    clear_result_memo()


def policy(**kw) -> ExecutionPolicy:
    return dataclasses.replace(ExecutionPolicy(backoff_s=0.01), **kw)


class TestStoreLoad:
    def test_roundtrip_returns_mmap_views(self):
        plane = get_trace_plane()
        assert isinstance(plane, TracePlane)
        first = profile("gobmk").memory_trace(50_000, LLC, seed=9)
        assert plane.stores == 1
        # the handed-out trace is already the mmap readback
        assert isinstance(first.gaps, np.memmap)

        clear_trace_cache()  # force the disk path
        second = profile("gobmk").memory_trace(50_000, LLC, seed=9)
        assert plane.hits >= 1
        assert isinstance(second.lines, np.memmap)
        assert (first.gaps == second.gaps).all()
        assert (first.lines == second.lines).all()
        assert (first.writes == second.writes).all()
        assert first.tail_instructions == second.tail_instructions

    def test_artifacts_on_disk_under_plane_dir(self):
        profile("gobmk").memory_trace(50_000, LLC, seed=9)
        root = trace_plane_dir()
        assert list(root.glob("*/*.gaps.npy"))
        assert list(root.glob("*/*.meta.json"))

    def test_meta_commit_marker_written_last_semantics(self, tmp_path):
        """An entry without its commit marker is invisible (a plain miss)."""
        plane = TracePlane(tmp_path / "plane")
        trace = AccessTrace.from_lists([1, 2], [10, 20], [False, True], 5)
        stored = plane.store("ab" + "0" * 38, trace)
        assert stored is not None
        plane._meta_path("ab" + "0" * 38).unlink()
        assert plane.load("ab" + "0" * 38) is None
        assert plane.corrupt == 0  # marker-less != corrupt

    def test_disabled_cache_uses_null_plane(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        assert isinstance(get_trace_plane(), NullTracePlane)
        clear_trace_cache()
        trace = profile("gobmk").memory_trace(50_000, LLC, seed=9)
        assert not isinstance(trace.gaps, np.memmap)  # plain in-memory trace


class TestReadOnly:
    """Plane-backed arrays are shared pages: writes must be impossible.

    Every ``SpecProfile.memory_trace`` consumer was audited to only
    *read* the arrays (``tolist`` copies, arithmetic allocates, the
    epoch kernel's columnar decode allocates); these tests pin the
    contract so a future consumer that scribbles into the shared mmap
    fails loudly instead of corrupting every other process's trace.
    """

    def test_plane_arrays_are_not_writeable(self):
        trace = profile("gobmk").memory_trace(50_000, LLC, seed=9)
        for name in ("gaps", "lines", "writes"):
            arr = getattr(trace, name)
            assert isinstance(arr, np.memmap)
            assert not arr.flags.writeable
            with pytest.raises((ValueError, OSError)):
                arr[0] = arr[0]

    def test_disk_readback_is_not_writeable(self):
        profile("gobmk").memory_trace(50_000, LLC, seed=9)
        clear_trace_cache()  # force the plane.load path
        trace = profile("gobmk").memory_trace(50_000, LLC, seed=9)
        assert not trace.gaps.flags.writeable
        assert not trace.lines.flags.writeable
        assert not trace.writes.flags.writeable

    def test_slice_views_inherit_read_only(self):
        trace = profile("gobmk").memory_trace(50_000, LLC, seed=9)
        sub = trace.slice(0, min(8, len(trace)))
        assert not sub.lines.flags.writeable

    def test_simulation_leaves_plane_arrays_intact(self):
        """A full run over a plane-backed trace must not mutate it."""
        cfg = SystemConfig.single_core().with_rop(training_refreshes=2)
        trace = profile("gobmk").memory_trace(50_000, cfg.llc, seed=9)
        snapshot = (
            np.array(trace.gaps), np.array(trace.lines), np.array(trace.writes)
        )
        from repro.cpu.multicore import run_cores

        for engine in ("scalar", "epoch"):
            run_cores([trace], cfg, engine=engine)
        assert (trace.gaps == snapshot[0]).all()
        assert (trace.lines == snapshot[1]).all()
        assert (trace.writes == snapshot[2]).all()


class TestCorruption:
    def test_torn_array_is_dropped_and_recomputed(self):
        plane = get_trace_plane()
        # snapshot to the heap: the corruption below clobbers live mmaps
        original = np.array(profile("gobmk").memory_trace(50_000, LLC, seed=9).lines)
        key = profile("gobmk").trace_key(50_000, LLC, seed=9)
        # truncate one array: simulates a torn write or foreign bytes
        path = plane._array_path(key, "lines")
        path.write_bytes(path.read_bytes()[:16])
        clear_trace_cache()
        recomputed = profile("gobmk").memory_trace(50_000, LLC, seed=9)
        assert plane.corrupt >= 1
        assert (recomputed.lines == original).all()

    def test_garbage_meta_is_dropped(self):
        plane = get_trace_plane()
        profile("gobmk").memory_trace(50_000, LLC, seed=9)
        key = profile("gobmk").trace_key(50_000, LLC, seed=9)
        plane._meta_path(key).write_text("{not json")
        assert plane.load(key) is None
        assert plane.corrupt >= 1
        # every backing file was unlinked with the bad marker
        assert not any(p.exists() for p in plane.paths(key))

    def test_stale_schema_invalidates(self):
        plane = get_trace_plane()
        profile("gobmk").memory_trace(50_000, LLC, seed=9)
        key = profile("gobmk").trace_key(50_000, LLC, seed=9)
        meta = json.loads(plane._meta_path(key).read_text())
        meta["schema"] = -1
        plane._meta_path(key).write_text(json.dumps(meta))
        assert plane.load(key) is None

    def test_corrupt_entry_is_quarantined_for_triage(self):
        """A torn entry's surviving files move to quarantine, not the void."""
        plane = get_trace_plane()
        profile("gobmk").memory_trace(50_000, LLC, seed=9)
        key = profile("gobmk").trace_key(50_000, LLC, seed=9)
        path = plane._array_path(key, "lines")
        torn_bytes = path.read_bytes()[:16]
        path.write_bytes(torn_bytes)
        assert plane.load(key) is None
        assert plane.quarantined == 1
        assert not any(p.exists() for p in plane.paths(key))
        qdir = plane.root.parent / "quarantine"
        moved = sorted(p.name for p in qdir.iterdir())
        assert len(moved) == 4  # three arrays + the commit marker
        assert all(n.endswith(".quar") for n in moved)
        # the torn bytes survive verbatim for offline triage
        torn = next(p for p in qdir.iterdir() if ".lines." in p.name)
        assert torn.read_bytes() == torn_bytes


class TestPlanLifecycle:
    def test_trace_materialized_once_and_shared_across_specs(self):
        """Baseline and ROP specs of one benchmark share one artifact."""
        cfg = SystemConfig.single_core()
        rop = cfg.with_rop(training_refreshes=TINY.training_refreshes)
        specs = [
            RunSpec.benchmark("gobmk", cfg, TINY),
            RunSpec.benchmark("gobmk", rop, TINY),
        ]
        plane = get_trace_plane()
        results = execute_plan(specs, jobs=1)
        assert results.ok(*specs)
        assert plane.stores == 1  # one trace, two consumers

        # a later plan (fresh memo, same cache dir) mmaps instead of storing
        clear_trace_cache()
        clear_result_memo()
        plane2 = get_trace_plane()
        hits_before = plane2.hits
        profile("gobmk").memory_trace(TINY.instructions, cfg.llc, seed=TINY.seed)
        assert plane2.hits == hits_before + 1
        assert plane2.stores == 1

    def test_artifacts_survive_worker_crash(self, tmp_path, monkeypatch):
        """A crashed worker must not tear the shared trace artifacts."""
        faults = tmp_path / "faults.json"
        faults.write_text(json.dumps({"lbm": {"mode": "crash"}}))
        monkeypatch.setenv("REPRO_FAULTS", str(faults))
        cfg = SystemConfig.single_core()
        specs = [RunSpec.benchmark(n, cfg, TINY) for n in ("gobmk", "lbm", "bzip2")]
        results = execute_plan(specs, jobs=2, policy=policy(keep_going=True))
        assert len(results) == 2  # innocents completed
        plane = get_trace_plane()
        # the parent prewarmed every trace, including the crasher's, and
        # all of them are still loadable afterwards
        for name in ("gobmk", "lbm", "bzip2"):
            key = profile(name).trace_key(TINY.instructions, cfg.llc, seed=TINY.seed)
            assert plane._read(key) is not None, name

    def test_content_key_invalidation(self):
        """Changing the seed or the LLC geometry addresses a new artifact."""
        plane = get_trace_plane()
        p = profile("gobmk")
        base_key = p.trace_key(50_000, LLC, seed=9)
        assert p.trace_key(50_000, LLC, seed=10) != base_key
        assert p.trace_key(50_000, LlcConfig(size_bytes=1 << 20), seed=9) != base_key
        assert p.trace_key(60_000, LLC, seed=9) != base_key
        assert p.trace_key(50_000, LLC, seed=9) == base_key

        p.memory_trace(50_000, LLC, seed=9)
        p.memory_trace(50_000, LLC, seed=10)
        p.memory_trace(50_000, LlcConfig(size_bytes=1 << 20), seed=9)
        assert plane.stores == 3  # three distinct artifacts, no aliasing


def _racing_store(root, key, barrier, q):
    """Child-process body: store one trace into the shared plane dir."""
    plane = TracePlane(root)
    n = 2000
    trace = AccessTrace.from_lists(
        [1] * n, list(range(n)), [False] * n, 5
    )
    barrier.wait()  # maximize writer overlap
    out = plane.store(key, trace)
    q.put((plane.stores, out is not None))


class TestConcurrency:
    def test_concurrent_prewarms_store_once(self):
        """Two processes racing on one key: the advisory lock picks one
        writer; the loser reads the winner's committed entry back."""
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        plane = get_trace_plane()
        key = "cc" + "7" * 38
        barrier = ctx.Barrier(2)
        q = ctx.Queue()
        procs = [
            ctx.Process(target=_racing_store, args=(plane.root, key, barrier, q))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        outcomes = [q.get(timeout=30) for _ in procs]
        for p in procs:
            p.join(timeout=30)
        assert sum(stores for stores, _ in outcomes) == 1
        assert all(ok for _, ok in outcomes)
        assert plane._read(key) is not None
