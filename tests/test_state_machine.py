"""Unit tests for the Training/Observing/Prefetching state machine."""

import pytest

from repro.core.state_machine import RopState, RopStateMachine


def make(training=5, threshold=0.6, window=4, min_util=0.0, backoff=1):
    return RopStateMachine(
        training,
        threshold,
        window,
        min_buffer_utilization=min_util,
        training_backoff_cap=backoff,
    )


def test_starts_training():
    assert make().state is RopState.TRAINING
    assert make().is_training


def test_training_completes_after_n_refreshes():
    sm = make(training=3)
    assert not sm.on_training_refresh()
    assert not sm.on_training_refresh()
    assert sm.on_training_refresh()
    assert sm.state is RopState.OBSERVING


def test_training_refresh_ignored_when_observing():
    sm = make(training=1)
    sm.on_training_refresh()
    assert not sm.on_training_refresh()


def test_complete_training_idempotent():
    sm = make()
    sm.complete_training()
    sm.complete_training()
    assert sm.phases_completed == 1


def test_prefetch_transitions():
    sm = make(training=1)
    sm.on_training_refresh()
    sm.begin_prefetch()
    assert sm.state is RopState.PREFETCHING
    sm.end_prefetch()
    assert sm.state is RopState.OBSERVING


def test_begin_prefetch_noop_while_training():
    sm = make()
    sm.begin_prefetch()
    assert sm.state is RopState.TRAINING


def test_hit_rate_fallback():
    sm = make(training=1, threshold=0.6, window=4)
    sm.on_training_refresh()
    # four informative locks, all misses → hit rate 0 < 0.6
    triggered = [sm.on_lock_outcome(2, 0) for _ in range(4)]
    assert triggered[-1]
    assert sm.state is RopState.TRAINING
    assert sm.retrain_count == 1


def test_good_hit_rate_stays_observing():
    sm = make(training=1, threshold=0.6, window=4)
    sm.on_training_refresh()
    for _ in range(10):
        assert not sm.on_lock_outcome(4, 4)
    assert sm.state is RopState.OBSERVING


def test_quiet_locks_not_informative():
    sm = make(training=1, window=2)
    sm.on_training_refresh()
    for _ in range(10):
        assert not sm.on_lock_outcome(0, 0)
    assert sm.state is RopState.OBSERVING


def test_recent_hit_rate():
    sm = make(training=1, window=4)
    sm.on_training_refresh()
    sm.on_lock_outcome(4, 3)
    assert sm.recent_hit_rate == pytest.approx(0.75)


def test_buffer_utilization_guard():
    sm = make(training=1, window=8, min_util=0.25)
    sm.on_training_refresh()
    # util window is half the hit window (min 4): four useless tenures trip
    results = [sm.on_buffer_outcome(10, 0) for _ in range(4)]
    assert results[-1]
    assert sm.state is RopState.TRAINING


def test_buffer_guard_disabled_by_default():
    sm = make(training=1, window=4, min_util=0.0)
    sm.on_training_refresh()
    for _ in range(10):
        assert not sm.on_buffer_outcome(10, 0)


def test_good_utilization_survives():
    sm = make(training=1, window=8, min_util=0.25)
    sm.on_training_refresh()
    for _ in range(10):
        assert not sm.on_buffer_outcome(10, 5)
    assert sm.state is RopState.OBSERVING


def test_backoff_doubles_training():
    sm = make(training=5, window=4, min_util=0.25, backoff=8)
    assert sm.effective_training_refreshes == 5
    sm.complete_training()
    for _ in range(4):
        sm.on_buffer_outcome(10, 0)
    assert sm.effective_training_refreshes == 10
    sm.complete_training()
    for _ in range(4):
        sm.on_buffer_outcome(10, 0)
    assert sm.effective_training_refreshes == 20


def test_backoff_capped():
    sm = make(training=5, window=4, min_util=0.25, backoff=4)
    for _ in range(6):
        sm.complete_training()
        for _ in range(4):
            sm.on_buffer_outcome(10, 0)
    assert sm.effective_training_refreshes == 20  # 5 × cap 4


def test_retrain_clears_outcome_windows():
    sm = make(training=1, threshold=0.6, window=4)
    sm.on_training_refresh()
    for _ in range(4):
        sm.on_lock_outcome(2, 0)  # trips
    sm.complete_training()
    # window was cleared: three more bad locks are not yet enough
    for _ in range(3):
        assert not sm.on_lock_outcome(2, 0)
