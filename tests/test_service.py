"""End-to-end tests for the simulation service (ISSUE 8).

Drives the real asyncio HTTP server (``start_service`` on an ephemeral
port) with a raw asyncio-streams client — the same wire path ``curl``
and ``scripts/load_soak.py`` use. Covers the acceptance list:
submit→poll→fetch with bit-identical digests, idempotent resubmission
through the fingerprint-as-ETag contract, concurrent clients collapsing
to one simulation per unique spec, failed-spec plans surfacing the
failure table, and jobs=N ≡ jobs=1 over HTTP.

The suite forces ``REPRO_CACHE=on`` with a fresh ``REPRO_CACHE_DIR``
per test (CI runs the wider suite with the cache off), so service
state never leaks between tests.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.harness import cached_result, execute_plan, spec_fingerprint
from repro.harness.cache import get_cache
from repro.harness.cache_gc import usage
from repro.harness.quarantine import result_digest
from repro.harness.runner import clear_result_memo, run_spec
from repro.service import (
    PlanRequestError,
    parse_plan_request,
    plan_fingerprint,
    spec_from_descriptor,
    start_service,
)
from repro.service.store import JobStore, jobs_dir

#: tiny instruction budget: every simulation here is ~tens of ms
INSTRUCTIONS = 60_000


@pytest.fixture(autouse=True)
def _fresh_cache(tmp_path, monkeypatch):
    """Cache ON, pointed at a per-test dir, memo cleared around each test."""
    monkeypatch.setenv("REPRO_CACHE", "on")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_result_memo()
    yield
    clear_result_memo()


def descriptor(workload: str, system: str = "baseline", **extra) -> dict:
    return {
        "workloads": [workload],
        "system": system,
        "instructions": INSTRUCTIONS,
        "seed": 2,
        **extra,
    }


PLAN = {"specs": [descriptor("lbm"), descriptor("gobmk")]}


# --------------------------------------------------------------------------
# raw asyncio HTTP client (one-shot connections, Connection: close)


async def request(port: int, method: str, path: str, body: dict | None = None,
                  headers: dict | None = None):
    """Returns (status, headers-dict, parsed-JSON-or-None)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    lines = [
        f"{method} {path} HTTP/1.1",
        "Host: test",
        "Connection: close",
        f"Content-Length: {len(payload)}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, rest = raw.partition(b"\r\n\r\n")
    head_lines = head.decode().split("\r\n")
    status = int(head_lines[0].split()[1])
    hdrs = {}
    for hline in head_lines[1:]:
        name, _, value = hline.partition(":")
        hdrs[name.strip().lower()] = value.strip()
    doc = json.loads(rest) if rest else None
    return status, hdrs, doc


async def wait_done(port: int, job_id: str, timeout_s: float = 90) -> dict:
    async def poll():
        while True:
            status, _, doc = await request(port, "GET", f"/plans/{job_id}")
            assert status == 200
            if doc["state"] in ("done", "failed"):
                return doc
            await asyncio.sleep(0.05)

    return await asyncio.wait_for(poll(), timeout_s)


def serve(coro_fn, *, jobs: int = 1):
    """Run ``coro_fn(handle)`` against a live service, then tear down."""

    async def _main():
        handle = await start_service(jobs=jobs)
        try:
            return await coro_fn(handle)
        finally:
            await handle.close()

    return asyncio.run(_main())


# --------------------------------------------------------------------------
# the wire codec


class TestPlanRequestCodec:
    def test_descriptor_round_trips_to_runspec(self):
        spec = spec_from_descriptor(descriptor("lbm", system="rop",
                                               training_refreshes=3), 0)
        assert spec.workloads == ("lbm",)
        assert spec.instructions == INSTRUCTIONS
        assert spec.config.rop is not None

    def test_plan_fingerprint_is_order_and_dup_independent(self):
        a = [spec_from_descriptor(descriptor("lbm"), 0),
             spec_from_descriptor(descriptor("gobmk"), 1)]
        b = [spec_from_descriptor(descriptor("gobmk"), 0),
             spec_from_descriptor(descriptor("lbm"), 1),
             spec_from_descriptor(descriptor("lbm"), 2)]
        assert plan_fingerprint(a) == plan_fingerprint(b)

    @pytest.mark.parametrize(
        "doc",
        [
            None,
            {},
            {"specs": []},
            {"specs": [{"workloads": [], "system": "baseline"}]},
            {"specs": [{"workloads": ["nope"], "system": "baseline"}]},
            {"specs": [{"workloads": ["lbm"], "system": "warp-drive"}]},
            {"specs": [{"workloads": ["lbm"], "system": "baseline",
                        "instructions": 1}]},
            {"specs": [{"workloads": ["lbm"], "system": "baseline",
                        "seed": -4}]},
            {"specs": [{"workloads": ["lbm"], "system": "baseline",
                        "training_refreshes": 3}]},  # non-ROP system
            {"specs": [descriptor("lbm")], "jobs": 0},
        ],
    )
    def test_bad_requests_raise_client_safe_errors(self, doc):
        with pytest.raises(PlanRequestError):
            parse_plan_request(doc)


# --------------------------------------------------------------------------
# the public fingerprint / cached-result API (satellite 1)


class TestFingerprintApi:
    def test_spec_fingerprint_is_the_cache_address(self):
        spec = spec_from_descriptor(descriptor("lbm"), 0)
        assert spec_fingerprint(spec) == spec.key
        assert cached_result(spec.key) is None
        results = execute_plan([spec], jobs=1)
        assert cached_result(spec.key) is not None
        assert result_digest(cached_result(spec.key)) == result_digest(
            results[spec]
        )


# --------------------------------------------------------------------------
# HTTP end-to-end


class TestSubmitPollFetch:
    def test_cold_submit_poll_fetch_digest_identity(self):
        async def scenario(handle):
            port = handle.port
            status, hdrs, doc = await request(port, "POST", "/plans", PLAN)
            assert status == 202
            assert hdrs.get("x-cache") == "miss"
            assert doc["created"] is True
            job = await wait_done(port, doc["id"])
            assert job["state"] == "done"
            assert job["failures"] == []
            assert job["stats"]["executed"] == 2
            assert job["metrics"]  # plan-wide merged metrics present
            out = {}
            for spec in job["specs"]:
                status, hdrs, body = await request(
                    port, "GET", f"/results/{spec['fingerprint']}"
                )
                assert status == 200
                assert hdrs.get("x-cache") == "hit"
                assert hdrs.get("etag") == f'"{spec["fingerprint"]}"'
                out[spec["fingerprint"]] = body["digest"]
            return out

        digests = serve(scenario)
        # byte-identity with the CLI path: same digests as run_spec
        for raw in PLAN["specs"]:
            spec = spec_from_descriptor(raw, 0)
            assert digests[spec.key] == result_digest(run_spec(spec))

    def test_idempotent_resubmit_hits_cache_with_etag(self):
        async def scenario(handle):
            port = handle.port
            _, _, doc = await request(port, "POST", "/plans", PLAN)
            job_id = doc["id"]
            await wait_done(port, job_id)
            # resubmit: instant 200, same id, nothing re-simulated
            status, hdrs, doc = await request(port, "POST", "/plans", PLAN)
            assert status == 200
            assert doc["id"] == job_id
            assert doc["created"] is False
            assert hdrs.get("x-cache") == "hit"
            assert hdrs.get("etag") == f'"{job_id}"'
            # 304 via If-None-Match on both POST and GET
            status, _, body = await request(
                port, "POST", "/plans", PLAN,
                headers={"If-None-Match": f'"{job_id}"'})
            assert (status, body) == (304, None)
            status, _, body = await request(
                port, "GET", f"/plans/{job_id}",
                headers={"If-None-Match": f'"{job_id}"'})
            assert (status, body) == (304, None)
            _, _, metrics = await request(port, "GET", "/metrics")
            return metrics

        metrics = serve(scenario)
        assert metrics["counters"]["service.plans.warm_hits"] >= 1

    def test_warm_store_completes_new_job_synchronously(self):
        # pre-fill the artifact cache through the CLI-equivalent path
        execute_plan(
            [spec_from_descriptor(raw, i) for i, raw in enumerate(PLAN["specs"])],
            jobs=1,
        )
        clear_result_memo()  # force the service through the disk store

        async def scenario(handle):
            return await request(handle.port, "POST", "/plans", PLAN)

        status, hdrs, doc = serve(scenario)
        assert status == 200  # no 202/poll cycle: served from the store
        assert hdrs.get("x-cache") == "hit"
        assert doc["state"] == "done"
        assert doc["stats"]["cache_hits"] == 2

    def test_concurrent_clients_one_simulation_per_unique_spec(self):
        async def scenario(handle):
            port = handle.port
            posts = await asyncio.gather(
                *(request(port, "POST", "/plans", PLAN) for _ in range(6))
            )
            ids = {doc["id"] for _, _, doc in posts}
            assert len(ids) == 1  # all six collapse onto one job
            assert sum(doc["created"] for _, _, doc in posts) == 1
            job = await wait_done(port, ids.pop())
            return job

        job = serve(scenario, jobs=2)
        assert job["state"] == "done"
        # 6 submissions × 2 specs, but exactly 2 simulations happened
        assert job["stats"]["executed"] == 2

    def test_failed_spec_surfaces_failure_table(self, tmp_path, monkeypatch):
        faults = tmp_path / "faults.json"
        faults.write_text(json.dumps({"lbm": {"mode": "error"}}))
        monkeypatch.setenv("REPRO_FAULTS", str(faults))

        async def scenario(handle):
            port = handle.port
            _, _, doc = await request(port, "POST", "/plans", PLAN)
            return await wait_done(port, doc["id"])

        job = serve(scenario)
        assert job["state"] == "failed"
        assert len(job["failures"]) == 1
        failure = job["failures"][0]
        assert failure["label"].startswith("lbm")
        assert failure["kind"] == "error"
        # the healthy spec still simulated despite its sibling's fault
        assert job["stats"]["failed"] == 1

    def test_http_jobs2_digest_equals_inprocess_jobs1(self, tmp_path,
                                                      monkeypatch):
        async def scenario(handle):
            port = handle.port
            _, _, doc = await request(
                port, "POST", "/plans", {**PLAN, "jobs": 2}
            )
            job = await wait_done(port, doc["id"])
            assert job["state"] == "done"
            out = {}
            for spec in job["specs"]:
                _, _, body = await request(
                    port, "GET", f"/results/{spec['fingerprint']}"
                )
                out[spec["fingerprint"]] = body["digest"]
            return out

        via_http = serve(scenario)
        # independent jobs=1 run in a *different* fresh cache dir
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-b"))
        clear_result_memo()
        for raw in PLAN["specs"]:
            spec = spec_from_descriptor(raw, 0)
            assert via_http[spec.key] == result_digest(run_spec(spec))


class TestHttpEdges:
    def test_routing_and_error_statuses(self):
        async def scenario(handle):
            port = handle.port
            out = {}
            out["health"] = await request(port, "GET", "/healthz")
            out["unknown_job"] = await request(port, "GET", "/plans/deadbeef")
            out["unknown_result"] = await request(
                port, "GET", "/results/deadbeef")
            out["bad_json"] = await request(
                port, "POST", "/plans", {"specs": "nope"})
            out["no_route"] = await request(port, "GET", "/nope")
            out["bad_method"] = await request(port, "DELETE", "/plans")
            return out

        out = serve(scenario)
        status, _, doc = out["health"]
        assert status == 200 and doc["status"] == "ok"
        assert doc["jobs"] == {"queued": 0, "running": 0, "done": 0, "failed": 0}
        assert out["unknown_job"][0] == 404
        assert out["unknown_result"][0] == 404
        assert "hint" in out["unknown_result"][2]
        assert out["bad_json"][0] == 400
        assert out["no_route"][0] == 404
        assert out["bad_method"][0] == 405

    def test_metrics_counts_requests(self):
        async def scenario(handle):
            port = handle.port
            await request(port, "GET", "/healthz")
            await request(port, "GET", "/healthz")
            _, _, doc = await request(port, "GET", "/metrics")
            return doc

        doc = serve(scenario)
        assert doc["counters"]["http.requests.get.healthz"] == 2
        assert "http.latency_ms" in doc["histograms"]


# --------------------------------------------------------------------------
# store: journal + crash recovery


class TestJobStore:
    def test_submit_is_idempotent_and_journaled(self):
        store = JobStore()
        job, created = store.submit("fp1", PLAN["specs"], ["k1", "k2"],
                                    ["lbm/baseline", "gobmk/baseline"], 1)
        again, created2 = store.submit("fp1", PLAN["specs"], ["k1", "k2"],
                                       ["lbm/baseline", "gobmk/baseline"], 1)
        assert created and not created2
        assert again is job
        files = list(jobs_dir(get_cache().root).glob("*.json"))
        assert len(files) == 1

    def test_recovery_requeues_interrupted_jobs(self):
        store = JobStore()
        queued, _ = store.submit("fp-q", PLAN["specs"], ["k1"], ["l"], 1)
        running, _ = store.submit("fp-r", PLAN["specs"], ["k2"], ["l"], 1)
        store.mark_running(running)
        done, _ = store.submit("fp-d", PLAN["specs"], ["k3"], ["l"], 1)
        store.finish(done, stats={"executed": 1})
        # a fresh store over the same journal dir = a restarted server
        reborn = JobStore()
        requeued = {job.id for job in reborn.recover()}
        assert requeued == {"fp-q", "fp-r"}
        assert reborn.get("fp-r").state == "queued"
        assert reborn.get("fp-r").started_s is None
        assert reborn.get("fp-d").state == "done"

    def test_torn_journal_entries_are_skipped(self):
        store = JobStore()
        store.submit("fp-ok", PLAN["specs"], ["k1"], ["l"], 1)
        torn = jobs_dir(get_cache().root) / "torn.json"
        torn.write_text('{"id": "torn", "sch')
        reborn = JobStore()
        recovered = {job.id for job in reborn.recover()}
        assert recovered == {"fp-ok"}


# --------------------------------------------------------------------------
# cache stats extensions (satellite 2)


class TestCacheStatsExtensions:
    def test_usage_reports_quarantine_and_chaos(self):
        root = get_cache().root
        (root / "quarantine").mkdir(parents=True)
        (root / "quarantine" / "case.json").write_text("{}" * 40)
        (root / "chaos" / "seed-7").mkdir(parents=True)
        (root / "chaos" / "seed-7" / "marker").write_text("x")
        stats = usage(root)
        assert stats["quarantined"] == 1
        assert stats["quarantine_bytes"] == 80
        assert stats["chaos_seeds"] == ["seed-7"]
        assert stats["chaos_markers"] == 1
        assert stats["chaos_bytes"] == 1

    def test_usage_zero_when_dirs_absent(self):
        stats = usage(get_cache().root)
        assert stats["quarantined"] == 0
        assert stats["chaos_seeds"] == []
