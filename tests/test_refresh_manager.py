"""Unit tests for refresh scheduling policies."""


from repro import MemoryOrganization, RefreshConfig, RefreshMode
from repro.dram.refresh import RefreshManager
from repro.dram.timings import DDR4_1600 as T


def make(mode=RefreshMode.AUTO_1X, ranks=4, stagger=True, postpone_max=8):
    org = MemoryOrganization(ranks=ranks)
    cfg = RefreshConfig(mode=mode, stagger=stagger, postpone_max=postpone_max)
    return RefreshManager(cfg, T, org)


def test_auto_always_issues_one():
    mgr = make()
    for pending in (0, 5, 100):
        assert mgr.decide(0, 0, 10_000, pending) == 1


def test_none_mode_disabled():
    mgr = make(mode=RefreshMode.NONE)
    assert not mgr.enabled


def test_staggered_first_ticks():
    mgr = make(ranks=4)
    ticks = [mgr.first_tick(0, r) for r in range(4)]
    assert ticks[0] == T.refi
    diffs = [ticks[i + 1] - ticks[i] for i in range(3)]
    assert all(d == T.refi // 4 for d in diffs)


def test_unstaggered_first_ticks_coincide():
    mgr = make(ranks=4, stagger=False)
    assert len({mgr.first_tick(0, r) for r in range(4)}) == 1


def test_single_rank_stagger_noop():
    mgr = make(ranks=1)
    assert mgr.first_tick(0, 0) == T.refi


def test_elastic_postpones_under_demand():
    mgr = make(mode=RefreshMode.ELASTIC)
    assert mgr.decide(0, 0, T.refi, pending_demand=3) == 0
    assert mgr.owed(0, 0) == 1


def test_elastic_repays_debt_when_idle():
    mgr = make(mode=RefreshMode.ELASTIC)
    for _ in range(3):
        assert mgr.decide(0, 0, 0, pending_demand=1) == 0
    assert mgr.decide(0, 0, 0, pending_demand=0) == 4  # 3 owed + this tick
    assert mgr.owed(0, 0) == 0


def test_elastic_forced_at_postpone_cap():
    mgr = make(mode=RefreshMode.ELASTIC, postpone_max=4)
    issued = []
    for _ in range(6):
        issued.append(mgr.decide(0, 0, 0, pending_demand=10))
    # debt is capped: after 3 postponements the 4th tick must issue all 4
    assert issued[:3] == [0, 0, 0]
    assert issued[3] == 4


def test_elastic_debt_is_per_rank():
    mgr = make(mode=RefreshMode.ELASTIC)
    mgr.decide(0, 0, 0, pending_demand=1)
    assert mgr.owed(0, 0) == 1
    assert mgr.owed(0, 1) == 0


def test_per_bank_round_robin():
    mgr = make(mode=RefreshMode.PER_BANK)
    org_banks = 8
    seen = [mgr.banks_for(0, 0) for _ in range(org_banks * 2)]
    assert [b[0] for b in seen[:8]] == list(range(8))
    assert [b[0] for b in seen[8:]] == list(range(8))


def test_all_bank_modes_return_none():
    for mode in (RefreshMode.AUTO_1X, RefreshMode.ELASTIC):
        assert make(mode=mode).banks_for(0, 0) is None


def test_period_matches_timings():
    assert make().period == T.refi
