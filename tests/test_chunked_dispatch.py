"""Chunked-dispatch x fault-tolerance tests (ISSUE 4).

Batching K specs per future must not change results, and every
fault-tolerance guarantee stays *per spec*: a crash mid-chunk isolates
the culprit, a deterministic error never costs chunk-mates their
results, and retries resubmit only the failed spec.
"""

import dataclasses
import hashlib
import json
import pickle

import pytest

from repro import SystemConfig
from repro.harness import (
    ConfigError,
    ExecutionPolicy,
    RunScale,
    RunSpec,
    execute_plan,
    last_stats,
)
from repro.harness.cache import NullCache
from repro.harness.runner import _auto_chunk_size, clear_result_memo

TINY = RunScale(instructions=120_000, seed=3, training_refreshes=3)
NAMES = ("gobmk", "lbm", "bzip2", "astar", "gcc", "omnetpp")


def tiny_specs(names=NAMES):
    cfg = SystemConfig.single_core()
    return [RunSpec.benchmark(n, cfg, TINY) for n in names]


def policy(**kw) -> ExecutionPolicy:
    return dataclasses.replace(ExecutionPolicy(backoff_s=0.01), **kw)


def digest(result) -> str:
    return hashlib.sha256(pickle.dumps(result)).hexdigest()


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_result_memo()
    yield
    clear_result_memo()


@pytest.fixture
def faults(tmp_path, monkeypatch):
    def install(table: dict) -> None:
        path = tmp_path / "faults.json"
        path.write_text(json.dumps(table))
        monkeypatch.setenv("REPRO_FAULTS", str(path))

    return install


class TestEquivalence:
    def test_chunked_equals_sequential_bit_for_bit(self):
        specs = tiny_specs()
        seq = execute_plan(specs, jobs=1, cache=NullCache())
        expected = {s.key: digest(seq[s]) for s in specs}
        clear_result_memo()
        chunked = execute_plan(
            specs, jobs=2, cache=NullCache(), policy=policy(chunk_size=3)
        )
        assert {s.key: digest(chunked[s]) for s in specs} == expected
        stats = last_stats()
        assert stats.chunks == 2  # 6 specs / chunk of 3
        assert not chunked.failures

    def test_chunked_equals_unchunked_parallel(self):
        specs = tiny_specs(("gobmk", "lbm", "bzip2", "astar"))
        unchunked = execute_plan(
            specs, jobs=2, cache=NullCache(), policy=policy(chunk_size=1)
        )
        expected = {s.key: digest(unchunked[s]) for s in specs}
        clear_result_memo()
        chunked = execute_plan(
            specs, jobs=2, cache=NullCache(), policy=policy(chunk_size=4)
        )
        assert {s.key: digest(chunked[s]) for s in specs} == expected


class TestCrashMidChunk:
    def test_crash_isolates_culprit_and_retries_only_it(self, faults):
        """Acceptance: a crash mid-chunk loses only the crashing spec."""
        specs = tiny_specs()
        faults({"lbm": {"mode": "crash"}})
        results = execute_plan(
            specs, jobs=2, cache=NullCache(),
            policy=policy(keep_going=True, chunk_size=3),
        )
        # the culprit is attributed precisely, chunk-mates survive
        assert len(results) == len(specs) - 1
        assert len(results.failures) == 1
        failure = results.failures[0]
        assert failure.workloads == ("lbm",)
        assert failure.kind == "worker-lost"
        assert failure.attempts == 3  # retried serially up to the cap
        assert last_stats().pool_rebuilds >= 1

        # the surviving results equal a clean unchunked run
        faults({})
        clear_result_memo()
        clean = execute_plan(specs, jobs=1, cache=NullCache())
        for s in specs:
            if s.workloads != ("lbm",):
                assert digest(results[s]) == digest(clean[s])

    def test_error_mid_chunk_spares_chunk_mates(self, faults):
        """A deterministic error is classified in the worker: chunk-mates
        complete in the same dispatch, nothing is re-run."""
        specs = tiny_specs()
        faults({"bzip2": {"mode": "error", "message": "boom"}})
        results = execute_plan(
            specs, jobs=2, cache=NullCache(),
            policy=policy(keep_going=True, chunk_size=3),
        )
        assert len(results) == len(specs) - 1
        failure = results.failures[0]
        assert failure.workloads == ("bzip2",)
        assert failure.kind == "error"
        assert failure.attempts == 1  # deterministic: no retries
        assert failure.message == "boom"
        stats = last_stats()
        assert stats.retries == 0  # chunk-mates were never resubmitted
        assert stats.chunks == 2


class TestRetriesWithinChunks:
    def test_flaky_spec_retried_alone(self, faults):
        specs = tiny_specs(("gobmk", "lbm", "bzip2", "astar"))
        faults({"lbm": {"mode": "flaky", "fails": 2}})
        results = execute_plan(
            specs, jobs=2, cache=NullCache(),
            policy=policy(max_attempts=3, chunk_size=4),
        )
        assert results.ok(*specs)
        assert not results.failures
        stats = last_stats()
        # exactly the flaky spec's two failed calls were retried; its
        # three chunk-mates ran once (first chunk + 2 single-spec retries)
        assert stats.retries == 2
        assert stats.chunks == 3

    def test_results_match_sequential_despite_retries(self, faults):
        specs = tiny_specs(("gobmk", "lbm", "bzip2", "astar"))
        seq = execute_plan(specs, jobs=1, cache=NullCache())
        expected = {s.key: digest(seq[s]) for s in specs}
        clear_result_memo()
        faults({"gobmk": {"mode": "flaky", "fails": 1}})
        retried = execute_plan(
            specs, jobs=2, cache=NullCache(),
            policy=policy(max_attempts=3, chunk_size=2),
        )
        assert {s.key: digest(retried[s]) for s in specs} == expected


class TestChunkSizing:
    def test_auto_chunk_size(self):
        assert _auto_chunk_size(4, 1) == 1  # sequential: no batching
        assert _auto_chunk_size(4, 8) == 1  # fewer specs than workers
        assert _auto_chunk_size(16, 2) == 2  # ~4 waves per worker
        assert _auto_chunk_size(72, 4) == 4
        assert _auto_chunk_size(10_000, 4) == 8  # capped

    def test_spec_timeout_forces_single_spec_chunks(self):
        specs = tiny_specs(("gobmk", "lbm", "bzip2", "astar"))
        execute_plan(
            specs, jobs=2, cache=NullCache(),
            policy=policy(chunk_size=4, spec_timeout_s=600.0),
        )
        assert last_stats().chunks == len(specs)

    def test_chunk_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK", "5")
        assert ExecutionPolicy.from_env().chunk_size == 5
        monkeypatch.setenv("REPRO_CHUNK", "auto")
        assert ExecutionPolicy.from_env().chunk_size is None
        monkeypatch.setenv("REPRO_CHUNK", "lots")
        with pytest.raises(ConfigError):
            ExecutionPolicy.from_env()
