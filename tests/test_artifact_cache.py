"""Tests for the content-keyed artifact cache (harness/cache.py)."""

import pickle

import pytest

from repro import LlcConfig, RefreshMode, SystemConfig
from repro.harness.cache import (
    MISS,
    ArtifactCache,
    NullCache,
    cache_enabled,
    default_cache_dir,
    fingerprint,
    get_cache,
    set_cache_enabled,
)


class TestFingerprint:
    def test_stable_across_calls(self):
        cfg = SystemConfig.single_core()
        assert fingerprint("x", cfg) == fingerprint("x", cfg)

    def test_equal_configs_share_fingerprint(self):
        # independently constructed but identical configs → same key
        assert fingerprint(SystemConfig.single_core()) == fingerprint(
            SystemConfig.single_core()
        )

    def test_any_config_field_changes_key(self):
        cfg = SystemConfig.single_core()
        variants = [
            cfg.with_refresh_mode(RefreshMode.NONE),
            cfg.with_rop(),
            cfg.with_rop(sram_lines=32),
            cfg.with_llc_size(1 << 20),
            SystemConfig.quad_core(),
        ]
        keys = {fingerprint(v) for v in variants} | {fingerprint(cfg)}
        assert len(keys) == len(variants) + 1

    def test_scalars_and_tuples(self):
        assert fingerprint("a", 1, (2, 3)) != fingerprint("a", 1, (2, 4))
        assert fingerprint(1) != fingerprint(1.5)

    def test_rejects_unfingerprintable(self):
        with pytest.raises(TypeError):
            fingerprint(object())


class TestArtifactCache:
    def test_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("ab" + "0" * 38, {"x": 1})
        assert cache.get("ab" + "0" * 38) == {"x": 1}
        assert cache.hits == 1

    def test_miss_returns_default(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.get("cd" + "0" * 38, MISS) is MISS
        assert cache.misses == 1

    def test_corrupted_entry_recovers(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = "ef" + "0" * 38
        cache.put(key, [1, 2, 3])
        path = cache._path(key)
        path.write_bytes(b"\x80garbage-not-a-pickle")
        # corrupted entry: treated as a miss, file removed, no crash
        assert cache.get(key, MISS) is MISS
        assert cache.corrupt == 1
        assert not path.exists()
        cache.put(key, [1, 2, 3])
        assert cache.get(key) == [1, 2, 3]

    def test_truncated_entry_recovers(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = "0f" + "1" * 38
        cache.put(key, list(range(100)))
        path = cache._path(key)
        path.write_bytes(pickle.dumps(list(range(100)))[:10])
        assert cache.get(key, MISS) is MISS
        assert cache.corrupt == 1

    def test_torn_pickle_moves_to_quarantine(self, tmp_path):
        """Corrupt entries are evidence: moved for triage, never deleted."""
        cache = ArtifactCache(tmp_path)
        key = "ab" + "2" * 38
        cache.put(key, list(range(50)))
        torn_bytes = pickle.dumps(list(range(50)))[:7]
        cache._path(key).write_bytes(torn_bytes)
        assert cache.get(key, MISS) is MISS
        assert cache.quarantined == 1
        qdir = tmp_path / "quarantine"
        moved = list(qdir.iterdir())
        assert len(moved) == 1
        assert moved[0].name.endswith(".quar")
        assert moved[0].read_bytes() == torn_bytes
        # the renamed file never rejoins the store: a fresh put works and
        # clear() only sees the live entry
        cache.put(key, [1, 2])
        assert cache.get(key) == [1, 2]
        assert cache.clear() == 1

    def test_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for i in range(5):
            cache.put(f"{i:02d}" + "0" * 38, i)
        assert cache.clear() == 5
        assert cache.get("00" + "0" * 38, MISS) is MISS


class TestGlobalCache:
    def test_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "on")  # CI exports REPRO_CACHE=off
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == tmp_path
        assert get_cache().root == tmp_path

    def test_disable_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        assert not cache_enabled()
        assert isinstance(get_cache(), NullCache)

    def test_disable_via_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "on")  # CI exports REPRO_CACHE=off
        try:
            set_cache_enabled(False)
            assert isinstance(get_cache(), NullCache)
        finally:
            set_cache_enabled(None)
        assert get_cache().enabled

    def test_null_cache_is_inert(self):
        null = NullCache()
        null.put("k", 1)
        assert null.get("k", MISS) is MISS

    def test_trace_persisted_through_cache(self, tmp_path, monkeypatch):
        from repro.workloads import profile
        from repro.workloads.spec_profiles import clear_trace_cache

        monkeypatch.setenv("REPRO_CACHE", "on")  # CI exports REPRO_CACHE=off
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        llc = LlcConfig(size_bytes=256 * 1024, ways=4)
        clear_trace_cache()
        t1 = profile("gobmk").memory_trace(50_000, llc, seed=9)
        # traces persist through the trace plane (raw .npy arrays + commit
        # marker), not the pickle cache — workers mmap them instead
        plane = tmp_path / "trace-plane"
        assert any(plane.glob("*/*.npy")), "trace not written to trace plane"
        assert any(plane.glob("*/*.meta.json")), "trace plane commit marker missing"
        clear_trace_cache()  # force the disk path
        t2 = profile("gobmk").memory_trace(50_000, llc, seed=9)
        assert (t1.gaps == t2.gaps).all()
        assert (t1.lines == t2.lines).all()
        assert (t1.writes == t2.writes).all()
        assert t1.tail_instructions == t2.tail_instructions
        clear_trace_cache()
