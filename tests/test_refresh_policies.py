"""Unit tests for the pluggable refresh-policy zoo (DARP / SARP / RAIDR).

Covers the policy registry round-trip, each new policy's scheduling
mechanics in isolation, the subarray lock semantics on ``Rank``/``Bank``,
the per-policy golden models' failpoint trip tests, and the regression
that Elastic Refresh's owed counters — now owned by the policy object —
survive a round-trip through the artifact cache.
"""

from __future__ import annotations

import hashlib
import json
import pickle

import pytest

from repro import MemoryOrganization, RefreshConfig, RefreshMode, SystemConfig
from repro.dram.rank import Rank
from repro.dram.refresh import (
    REFRESH_POLICIES,
    ElasticRefresh,
    RefreshManager,
    RefreshPolicy,
    register_policy,
)
from repro.dram.timings import DDR4_1600 as T
from repro.dram.timings import DENSITY_TRFC_NS
from repro.validation.golden import validate_traces
from repro.workloads.trace import AccessTrace


def make(mode=RefreshMode.AUTO_1X, ranks=1, banks=8, **kwargs):
    org = MemoryOrganization(ranks=ranks, banks=banks)
    cfg = RefreshConfig(mode=mode, **kwargs)
    return RefreshManager(cfg, T, org)


def mixed_trace(n=3000, seed=7):
    import random

    rng = random.Random(seed)
    return AccessTrace.from_lists(
        [rng.randrange(1, 40) for _ in range(n)],
        [rng.randrange(0, 1 << 18) for _ in range(n)],
        [rng.random() < 0.3 for _ in range(n)],
    )


class TestRegistry:
    def test_every_mode_has_a_policy(self):
        for mode in RefreshMode:
            assert mode in REFRESH_POLICIES, f"no policy registered for {mode}"

    def test_manager_round_trips_each_mode(self):
        for mode in RefreshMode:
            mgr = make(mode=mode)
            assert isinstance(mgr.policy, REFRESH_POLICIES[mode])
            assert mgr.policy.mode is mode
            assert mode in type(mgr.policy).modes

    def test_unregistered_mode_is_a_clear_error(self):
        saved = REFRESH_POLICIES.pop(RefreshMode.AUTO_1X)
        try:
            with pytest.raises(ValueError, match="no RefreshPolicy registered"):
                make(mode=RefreshMode.AUTO_1X)
        finally:
            REFRESH_POLICIES[RefreshMode.AUTO_1X] = saved

    def test_register_policy_decorator(self):
        @register_policy(RefreshMode.AUTO_1X)
        class Custom(RefreshPolicy):
            pass

        try:
            assert REFRESH_POLICIES[RefreshMode.AUTO_1X] is Custom
            assert isinstance(make().policy, Custom)
        finally:
            from repro.dram.refresh import AutoRefresh

            register_policy(RefreshMode.AUTO_1X)(AutoRefresh)

    def test_kernel_decline_surface(self):
        assert make(mode=RefreshMode.DARP).kernel_decline is not None
        assert make(mode=RefreshMode.SARP).kernel_decline is not None
        for mode in (RefreshMode.AUTO_1X, RefreshMode.RAIDR, RefreshMode.ELASTIC):
            assert make(mode=mode).kernel_decline is None


class TestDarp:
    def test_idle_bank_gets_the_refresh(self):
        mgr = make(mode=RefreshMode.DARP)
        assert mgr.decide(0, 0, 1000, 0, set()) == 1
        assert mgr.banks_for(0, 0) == [0]  # round-robin accrual starts at 0

    def test_all_banks_busy_postpones(self):
        mgr = make(mode=RefreshMode.DARP)
        assert mgr.decide(0, 0, 1000, 8, set(range(8))) == 0
        assert mgr.owed(0, 0) == 1

    def test_most_owed_idle_bank_wins(self):
        mgr = make(mode=RefreshMode.DARP)
        busy = set(range(8))
        for _ in range(3):  # accrue debt on banks 0, 1, 2
            assert mgr.decide(0, 0, 0, 8, busy) == 0
        # bank 3 accrues this tick; bank 0 is still busy → lowest-id idle
        # bank with the (tied) highest debt is bank 1
        assert mgr.decide(0, 0, 0, 1, {0}) == 1
        assert mgr.banks_for(0, 0) == [1]

    def test_forced_dump_beyond_postpone_budget(self):
        mgr = make(mode=RefreshMode.DARP, postpone_max=2)
        busy = set(range(8))
        counts = [mgr.decide(0, 0, 0, 8, busy) for _ in range(17)]
        # bank 0 accrues at ticks 0/8/16; at tick 16 its debt hits 3 > 2
        assert counts[:16] == [0] * 16
        assert counts[16] == 3
        assert [mgr.banks_for(0, 0) for _ in range(3)] == [[0], [0], [0]]

    def test_budget_zero_is_in_order_per_bank(self):
        mgr = make(mode=RefreshMode.DARP, postpone_max=0)
        order = []
        for _ in range(16):
            assert mgr.decide(0, 0, 0, 8, set(range(8))) == 1
            order.extend(mgr.banks_for(0, 0))
        assert order == list(range(8)) * 2

    def test_piggyback_skips_banks_with_pending_reads(self):
        mgr = make(mode=RefreshMode.DARP)
        busy = set(range(8))
        for _ in range(3):  # debt on banks 0, 1, 2
            mgr.decide(0, 0, 0, 8, busy)
        assert mgr.piggyback_banks(0, 0, {1}) == [0, 2]
        assert mgr.owed(0, 0) == 1  # bank 1 still owes its refresh

    def test_piggyback_is_noop_without_debt(self):
        mgr = make(mode=RefreshMode.DARP)
        assert mgr.piggyback_banks(0, 0, set()) == []


class TestSarp:
    def test_round_robin_banks_rotating_subarrays(self):
        mgr = make(mode=RefreshMode.SARP, subarrays_per_bank=4)
        seen = [(mgr.banks_for(0, 0)[0]) for _ in range(16)]
        assert seen == list(range(8)) * 2
        assert [mgr.subarray_for(0, 0, 0) for _ in range(5)] == [0, 1, 2, 3, 0]
        assert mgr.subarray_for(0, 0, 1) == 0  # per-bank rotation is independent

    def test_subarray_conflict_blocks_same_subarray_only(self):
        rank = Rank(8)
        sub_rows = 256
        rank.sub_rows = sub_rows
        start, end = rank.start_subarray_refresh(1000, T, 0, 2, sub_rows)
        assert (start, end) == (1000, 1000 + T.rfc)
        # same subarray (row 2*256..3*256): column gate waits out the lock
        blocked = rank.plan(1000, 0, 2 * sub_rows + 5, False, T)
        assert blocked.col_cycle >= end
        # other subarray of the same bank proceeds immediately
        free = rank.plan(1000, 0, 7, False, T)
        assert free.col_cycle < end
        # other banks are untouched
        other = rank.plan(1000, 1, 2 * sub_rows + 5, False, T)
        assert other.col_cycle < end

    def test_subarray_refresh_respects_quiesce_and_serializes(self):
        rank = Rank(8)
        rank.sub_rows = 256
        plan = rank.plan(500, 0, 10, False, T)
        rank.commit(plan, 0, 10, False, T)
        s1, e1 = rank.start_subarray_refresh(500, T, 0, 0, 256)
        assert s1 >= rank.banks[0].busy_until or s1 >= 500
        s2, _e2 = rank.start_subarray_refresh(s1, T, 0, 1, 256)
        assert s2 >= e1  # back-to-back subarray locks serialize per bank

    def test_open_row_closed_only_when_in_refreshing_subarray(self):
        rank = Rank(8)
        rank.sub_rows = 256
        plan = rank.plan(0, 0, 300, False, T)  # row 300 → subarray 1
        rank.commit(plan, 0, 300, False, T)
        rank.start_subarray_refresh(plan.data_end + 1, T, 0, 0, 256)
        assert rank.banks[0].open_row == 300  # subarray 0 lock leaves it open
        rank.start_subarray_refresh(plan.data_end + 1, T, 0, 1, 256)
        assert rank.banks[0].open_row is None


class TestRaidr:
    def test_bin_slot_arithmetic(self):
        mgr = make(
            mode=RefreshMode.RAIDR,
            raidr_window_ticks=8,
            raidr_bins=(0.5, 0.25, 0.25),
        )
        pol = mgr.policy
        assert (pol.window, pol.n64, pol.n128) == (8, 4, 2)
        # 4 windows: 64ms slots 4×4, 128ms slots alternate (4 fires),
        # 256ms slots every fourth window (2 fires)
        fired = sum(1 for i in range(32) if pol.fires(i))
        assert fired == 16 + 4 + 2

    def test_all_64ms_bins_fire_every_tick(self):
        mgr = make(mode=RefreshMode.RAIDR, raidr_bins=(1.0, 0.0, 0.0))
        assert all(mgr.decide(0, 0, i, 0) == 1 for i in range(64))

    def test_tick_counters_are_per_rank(self):
        mgr = make(
            mode=RefreshMode.RAIDR,
            ranks=2,
            raidr_window_ticks=4,
            raidr_bins=(0.25, 0.5, 0.25),
        )
        a = [mgr.decide(0, 0, i, 0) for i in range(8)]
        b = [mgr.decide(0, 1, i, 0) for i in range(8)]
        assert a == b  # independent counters replay the same schedule
        assert 0 < sum(a) < 8  # the grid really is decimated


class TestElasticOwnership:
    def test_owed_state_lives_on_the_policy(self):
        mgr = make(mode=RefreshMode.ELASTIC, ranks=2)
        assert isinstance(mgr.policy, ElasticRefresh)
        assert not hasattr(mgr, "_owed")
        mgr.decide(0, 1, 0, pending_demand=3)
        assert mgr.policy._owed[(0, 1)] == 1
        assert mgr.owed(0, 1) == 1
        assert mgr.owed(0, 0) == 0

    def test_owed_behavior_survives_artifact_cache_round_trip(
        self, tmp_path, monkeypatch
    ):
        from repro.harness import RunScale, RunSpec, execute_plan
        from repro.harness.runner import clear_result_memo

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cfg = SystemConfig.single_core().with_refresh_mode(RefreshMode.ELASTIC)
        spec = RunSpec.benchmark("lbm", cfg, RunScale.named("smoke"))
        clear_result_memo()
        cold = execute_plan([spec], jobs=1)[spec]
        clear_result_memo()
        warm = execute_plan([spec], jobs=1)[spec]
        assert hashlib.sha256(pickle.dumps(cold)).hexdigest() == hashlib.sha256(
            pickle.dumps(warm)
        ).hexdigest()
        assert warm.stats.refreshes == cold.stats.refreshes


class TestGoldenTripWires:
    """Each new golden model must fire under its REPRO_FAULTS failpoint."""

    def _trip(self, monkeypatch, tmp_path, check, skew, cfg):
        faults = tmp_path / "faults.json"
        faults.write_text(json.dumps({f"golden:{check}": skew}))
        monkeypatch.setenv("REPRO_FAULTS", str(faults))
        _result, mismatches = validate_traces([mixed_trace()], cfg)
        assert any(m.check == check for m in mismatches)
        monkeypatch.delenv("REPRO_FAULTS")
        _result, clean = validate_traces([mixed_trace()], cfg)
        assert clean == []

    def test_darp_schedule_trips(self, monkeypatch, tmp_path):
        cfg = SystemConfig.single_core().with_refresh_mode(RefreshMode.DARP)
        self._trip(monkeypatch, tmp_path, "darp-schedule", 7, cfg)

    def test_sarp_exclusion_trips(self, monkeypatch, tmp_path):
        cfg = SystemConfig.single_core().with_refresh_mode(RefreshMode.SARP)
        self._trip(monkeypatch, tmp_path, "sarp-exclusion", 1, cfg)

    def test_raidr_bins_trips(self, monkeypatch, tmp_path):
        cfg = (
            SystemConfig.single_core()
            .with_refresh_mode(RefreshMode.RAIDR)
            .with_refresh_opts(raidr_window_ticks=8)
        )
        self._trip(monkeypatch, tmp_path, "raidr-bins", 7, cfg)


class TestDensityAxis:
    def test_density_stretches_trfc_only(self):
        for gbit, ns in DENSITY_TRFC_NS.items():
            t = T.for_density(gbit)
            assert t.rfc == T.cycles(ns)
            assert t.refi == T.refi
        with pytest.raises(ValueError, match="unknown density"):
            T.for_density(64)

    def test_config_with_density(self):
        cfg = SystemConfig.single_core().with_density(32)
        assert cfg.timings.rfc == T.cycles(DENSITY_TRFC_NS[32])
