"""Unit/integration tests for the memory controller: FR-FCFS, write
draining, refresh blocking, bus serialization."""

import pytest

from repro import RefreshMode, SchedulerConfig, SystemConfig
from repro.dram import MemorySystem
from repro.dram.request import ServiceKind


def make_system(**kwargs) -> MemorySystem:
    cfg = SystemConfig.single_core(**kwargs)
    return MemorySystem(cfg)


def line_in_bank(ms: MemorySystem, bank: int, row: int, col: int = 0, rank: int = 0) -> int:
    from repro.dram.request import Coord

    return ms.controller.mapper.encode(Coord(0, rank, bank, row, col))


class TestBasicService:
    def test_single_read_latency(self):
        ms = make_system()
        t = ms.controller.t
        req = ms.submit_read(0, 0)
        ms.run()
        # closed bank: tRCD + CL + burst
        assert req.complete_cycle == t.rcd + t.cl + t.burst
        assert req.service is ServiceKind.DRAM_CLOSED

    def test_row_hit_sequence(self):
        ms = make_system()
        r1 = ms.submit_read(0, 0)
        r2 = ms.submit_read(1, 0)  # same row, next line
        ms.run()
        assert r2.service is ServiceKind.DRAM_HIT
        assert r2.complete_cycle > r1.complete_cycle

    def test_writes_complete_silently(self):
        ms = make_system()
        ms.submit_write(0, 0)
        ms.run()
        assert ms.stats.writes == 1
        assert ms.controller.pending_requests() == 0

    def test_reads_counted(self):
        ms = make_system()
        for i in range(10):
            ms.schedule_read(i, i * 50)
        ms.run()
        assert ms.stats.reads == 10
        assert ms.stats.reads_completed == 10

    def test_on_complete_callback_fires(self):
        ms = make_system()
        done = []
        ms.submit_read(0, 0, on_complete=done.append)
        ms.run()
        assert len(done) == 1
        assert done[0] > 0


class TestFrFcfs:
    def test_row_hit_preferred_over_older_conflict(self):
        ms = make_system()
        # warm read opens row 0 and keeps the bank busy for a few cycles,
        # so both followers queue and the scheduler gets to reorder them
        ms.submit_read(line_in_bank(ms, 0, 0), 0)
        conflict_done = []
        hit_done = []
        ms.schedule_read(line_in_bank(ms, 0, 1), 1, on_complete=conflict_done.append)
        ms.schedule_read(
            line_in_bank(ms, 0, 0, col=5), 2, on_complete=hit_done.append
        )
        ms.run()
        # the younger row hit was serviced before the older conflict
        assert ms.stats.row_hits == 1
        assert ms.stats.row_conflicts == 1
        assert hit_done[0] < conflict_done[0]

    def test_bank_parallelism(self):
        ms = make_system()
        r1 = ms.submit_read(line_in_bank(ms, 0, 0), 0)
        r2 = ms.submit_read(line_in_bank(ms, 1, 0), 0)
        ms.run()
        t = ms.controller.t
        # second bank activates in parallel (only rrd + bus apart), far less
        # than a serialized second closed access
        assert r2.complete_cycle < r1.complete_cycle + t.read_closed_latency


class TestWriteDrain:
    def test_drain_hysteresis(self):
        sched = SchedulerConfig(write_drain_high=8, write_drain_low=2)
        ms = make_system(scheduler=sched)
        for i in range(8):
            ms.submit_write(i * 1000, 0)
        ms.run()
        # all writes drained below the low watermark
        assert sum(len(q) for q in ms.controller.write_q) <= 2

    def test_reads_prioritized_below_watermark(self):
        ms = make_system()
        w = ms.submit_write(line_in_bank(ms, 0, 3), 0)
        r = ms.submit_read(line_in_bank(ms, 1, 0), 0)
        ms.run()
        # the read is not stuck behind the buffered write
        assert r.complete_cycle > 0

    def test_work_conserving_writes(self):
        # with no reads at all, writes still flow out
        ms = make_system()
        for i in range(5):
            ms.submit_write(i, 0)
        ms.run()
        assert sum(len(q) for q in ms.controller.write_q) == 0


class TestRefreshBlocking:
    def test_refresh_blocks_read(self):
        ms = make_system()
        t = ms.controller.t
        # arrive just after the first refresh tick
        req = ms.schedule_read(0, t.refi + 1)
        ms.run()
        # first refresh starts at tREFI; the read waits for the unlock
        reads = ms.stats
        assert reads.reads_arriving_in_lock == 1
        assert reads.read_latency_max >= t.rfc - 10

    def test_refresh_count_matches_time(self):
        ms = make_system()
        t = ms.controller.t
        horizon = 10 * t.refi + 100
        ms.schedule_read(0, horizon - 50)  # keep work alive to the horizon
        ms.run(until=horizon)
        assert ms.stats.refreshes == 10

    def test_no_refresh_mode(self):
        ms = MemorySystem(
            SystemConfig.single_core().with_refresh_mode(RefreshMode.NONE)
        )
        ms.schedule_read(0, 100_000)
        ms.run()
        assert ms.stats.refreshes == 0

    def test_refresh_closes_rows(self):
        ms = make_system()
        t = ms.controller.t
        ms.submit_read(0, 0)
        ms.run()
        ms.schedule_read(1, t.refi + t.rfc + 10)  # same row, after refresh
        ms.run()
        # the refresh precharged the row: second access is closed, not a hit
        assert ms.stats.row_closed == 2

    def test_fgr_modes_refresh_more_often(self):
        counts = {}
        for mode in (RefreshMode.AUTO_1X, RefreshMode.FGR_2X, RefreshMode.FGR_4X):
            ms = MemorySystem(SystemConfig.single_core().with_refresh_mode(mode))
            t0 = SystemConfig.single_core().timings
            ms.schedule_read(0, 20 * t0.refi)
            ms.run()
            counts[mode] = ms.stats.refreshes
        assert counts[RefreshMode.FGR_2X] == pytest.approx(
            2 * counts[RefreshMode.AUTO_1X], abs=2
        )
        assert counts[RefreshMode.FGR_4X] == pytest.approx(
            4 * counts[RefreshMode.AUTO_1X], abs=4
        )

    def test_elastic_postpones_then_catches_up(self):
        ms = MemorySystem(
            SystemConfig.single_core().with_refresh_mode(RefreshMode.ELASTIC)
        )
        t = ms.controller.t
        # keep demand pending across several ticks
        for i in range(400):
            ms.schedule_read(i * 7919 % 100000, 10 + i * 40)
        ms.run(until=6 * t.refi)
        # refreshes were issued (possibly in catch-up bursts) — none lost
        assert ms.stats.refreshes >= 3

    def test_per_bank_mode_runs(self):
        ms = MemorySystem(
            SystemConfig.single_core().with_refresh_mode(RefreshMode.PER_BANK)
        )
        t = ms.controller.t
        ms.schedule_read(0, 20 * t.refi)
        ms.run()
        assert ms.stats.refreshes > 0
        # per-bank tRFC is shorter
        assert t.rfc < SystemConfig.single_core().timings.rfc


class TestBus:
    def test_bus_serializes_bursts(self):
        ms = make_system()
        t = ms.controller.t
        reqs = [ms.submit_read(line_in_bank(ms, b, 0), 0) for b in range(4)]
        ms.run()
        windows = sorted((r.complete_cycle - t.burst, r.complete_cycle) for r in reqs)
        for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
            assert s2 >= e1  # no overlapping data transfers

    def test_busy_cycles_accumulate(self):
        ms = make_system()
        for i in range(6):
            ms.schedule_read(i * 1000, i * 100)
        ms.run()
        t = ms.controller.t
        assert ms.controller.channels[0].busy_cycles == 6 * t.burst


class TestDeterminism:
    def test_identical_runs_identical_stats(self):
        def run_once():
            ms = make_system()
            for i in range(500):
                ms.schedule_read((i * 37) % 4096, i * 17)
                if i % 3 == 0:
                    ms.schedule_write((i * 91) % 4096, i * 17 + 5)
            ms.run()
            s = ms.finish()
            return (
                s.reads_completed,
                s.read_latency_sum,
                s.row_hits,
                s.row_conflicts,
                s.refreshes,
                s.end_cycle,
            )

        assert run_once() == run_once()
