"""Unit tests for the SRAM prefetch buffer."""

import pytest

from repro.core.sram_buffer import SramBuffer


def test_capacity_enforced():
    buf = SramBuffer(4)
    stored = buf.refill((0, 0), range(10))
    assert stored == 4
    assert len(buf) == 4


def test_invalid_capacity():
    with pytest.raises(ValueError):
        SramBuffer(0)


def test_lookup_does_not_count_hit():
    buf = SramBuffer(4)
    buf.refill((0, 0), [1, 2])
    assert buf.lookup(1)
    assert buf.hits == 0


def test_consume_counts_hit():
    buf = SramBuffer(4)
    buf.refill((0, 0), [1, 2])
    assert buf.consume(1)
    assert buf.hits == 1


def test_consume_miss():
    buf = SramBuffer(4)
    buf.refill((0, 0), [1])
    assert not buf.consume(99)
    assert buf.hits == 0


def test_consume_does_not_evict():
    buf = SramBuffer(4)
    buf.refill((0, 0), [1])
    buf.consume(1)
    assert buf.lookup(1)  # multiple hits on the same line are allowed


def test_refill_flushes_previous_contents():
    buf = SramBuffer(4)
    buf.refill((0, 0), [1, 2])
    buf.refill((0, 1), [3])
    assert not buf.lookup(1)
    assert buf.lookup(3)
    assert buf.owner == (0, 1)


def test_fills_accumulate():
    buf = SramBuffer(4)
    buf.refill((0, 0), [1, 2])
    buf.refill((0, 0), [3])
    assert buf.fills == 3


def test_invalidate_present():
    buf = SramBuffer(4)
    buf.refill((0, 0), [5])
    assert buf.invalidate(5)
    assert not buf.lookup(5)
    assert buf.invalidations == 1


def test_invalidate_absent_is_noop():
    buf = SramBuffer(4)
    assert not buf.invalidate(5)
    assert buf.invalidations == 0


def test_flush():
    buf = SramBuffer(4)
    buf.refill((0, 0), [1, 2])
    buf.flush()
    assert len(buf) == 0
    assert buf.owner is None


def test_contains_dunder():
    buf = SramBuffer(4)
    buf.refill((0, 0), [7])
    assert 7 in buf and 8 not in buf
