"""Unit tests for configuration dataclasses and derived values."""

import pytest

from repro import (
    AddressMapScheme,
    CoreConfig,
    LlcConfig,
    MemoryOrganization,
    RefreshMode,
    RopConfig,
    SystemConfig,
    WindowBase,
)
from repro.dram.timings import DDR4_1600


class TestMemoryOrganization:
    def test_default_capacity(self):
        org = MemoryOrganization()
        # 1 rank × 8 banks × 64 Ki rows × 128 lines × 64 B = 4 GiB
        assert org.capacity_bytes == 4 * 1024**3

    def test_line_hierarchy(self):
        org = MemoryOrganization(ranks=2)
        assert org.lines_per_rank == org.banks * org.lines_per_bank
        assert org.total_lines == 2 * org.lines_per_rank


class TestLlc:
    def test_sets_power_of_two(self):
        llc = LlcConfig(size_bytes=2 * 1024 * 1024, ways=16)
        assert llc.sets == 2 * 1024 * 1024 // (16 * 64)

    def test_bad_geometry_raises(self):
        with pytest.raises(ValueError):
            LlcConfig(size_bytes=3 * 1024 * 1024, ways=16).sets


class TestRopConfig:
    def test_window_trefi_default(self):
        cfg = RopConfig()
        assert cfg.window_cycles(DDR4_1600) == DDR4_1600.refi

    def test_window_trfc_base(self):
        cfg = RopConfig(window_base=WindowBase.TRFC, window_mult=2.0)
        assert cfg.window_cycles(DDR4_1600) == 2 * DDR4_1600.rfc

    def test_window_mult_fractional(self):
        cfg = RopConfig(window_mult=0.5)
        assert cfg.window_cycles(DDR4_1600) == DDR4_1600.refi // 2


class TestSystemConfig:
    def test_single_core_defaults(self):
        cfg = SystemConfig.single_core()
        assert cfg.organization.ranks == 1
        assert cfg.llc.size_bytes == 2 * 1024 * 1024
        assert not cfg.rop.enabled

    def test_quad_core_defaults(self):
        cfg = SystemConfig.quad_core()
        assert cfg.organization.ranks == 4
        assert cfg.llc.size_bytes == 4 * 1024 * 1024
        assert cfg.address_map is AddressMapScheme.RANK_PARTITIONED

    def test_quad_core_unpartitioned(self):
        cfg = SystemConfig.quad_core(rank_partitioned=False)
        assert cfg.address_map is AddressMapScheme.BANK_LOCALITY

    def test_with_rop_enables(self):
        cfg = SystemConfig.single_core().with_rop(sram_lines=32)
        assert cfg.rop.enabled and cfg.rop.sram_lines == 32

    def test_with_refresh_mode(self):
        cfg = SystemConfig.single_core().with_refresh_mode(RefreshMode.NONE)
        assert not cfg.refresh.enabled

    def test_with_llc_size(self):
        cfg = SystemConfig.single_core().with_llc_size(1 << 20)
        assert cfg.llc.size_bytes == 1 << 20

    def test_effective_timings_auto(self):
        cfg = SystemConfig.single_core()
        assert cfg.effective_timings() is cfg.timings

    def test_effective_timings_fgr2(self):
        cfg = SystemConfig.single_core().with_refresh_mode(RefreshMode.FGR_2X)
        t = cfg.effective_timings()
        assert t.refi == cfg.timings.refi // 2

    def test_effective_timings_fgr4(self):
        cfg = SystemConfig.single_core().with_refresh_mode(RefreshMode.FGR_4X)
        assert cfg.effective_timings().refi == cfg.timings.refi // 4

    def test_effective_timings_per_bank(self):
        cfg = SystemConfig.single_core().with_refresh_mode(RefreshMode.PER_BANK)
        t = cfg.effective_timings()
        assert t.refi == cfg.timings.refi // cfg.organization.banks
        assert t.rfc < cfg.timings.rfc

    def test_config_immutable(self):
        cfg = SystemConfig.single_core()
        with pytest.raises(Exception):
            cfg.address_map = AddressMapScheme.RANK_PARTITIONED  # type: ignore

    def test_core_defaults(self):
        core = CoreConfig()
        assert core.cpu_clock_mult == 4
        assert core.mlp >= 1
