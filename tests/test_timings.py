"""Unit tests for DDR4 timing parameters (Table III values)."""


import pytest

from repro.dram.timings import DDR4_1600, DDR4_2400


def test_ddr4_1600_clock_period():
    assert DDR4_1600.tck_ns == pytest.approx(1.25)


def test_trefi_is_7_8_us():
    # Table III: tREFI = 7.8 µs → 6240 cycles at 1.25 ns
    assert DDR4_1600.refi == 6240


def test_trfc_is_350_ns():
    # Table III: tRFC = 350 ns for an 8 Gb device in 1x mode
    assert DDR4_1600.rfc == 280


def test_refresh_duty_cycle():
    # tRFC / tREFI ≈ 4.5 % of time frozen
    assert DDR4_1600.refresh_duty_cycle == pytest.approx(280 / 6240)


def test_rc_is_ras_plus_rp():
    assert DDR4_1600.rc == DDR4_1600.ras + DDR4_1600.rp


def test_latency_orderings():
    t = DDR4_1600
    assert t.read_hit_latency < t.read_closed_latency < t.read_conflict_latency


def test_burst_is_four_cycles():
    # BL8 at double data rate occupies 4 controller cycles
    assert DDR4_1600.burst == 4


def test_cycles_roundtrip():
    t = DDR4_1600
    assert t.cycles(350.0) == 280
    assert t.ns(280) == pytest.approx(350.0)


def test_cycles_ceiling():
    assert DDR4_1600.cycles(1.26) == 2  # just over one period rounds up
    assert DDR4_1600.cycles(1.25) == 1


def test_with_refresh_override():
    t = DDR4_1600.with_refresh(refi=100, rfc=10)
    assert (t.refi, t.rfc) == (100, 10)
    # other fields untouched
    assert t.cl == DDR4_1600.cl


def test_fgr_mode_1_identity():
    assert DDR4_1600.fine_grained(1) is DDR4_1600


def test_fgr_2x_halves_refi():
    t = DDR4_1600.fine_grained(2)
    assert t.refi == DDR4_1600.refi // 2
    # JEDEC 8 Gb: tRFC2 = 260 ns — shrinks sub-linearly
    assert t.rfc == DDR4_1600.cycles(260.0)
    assert t.rfc > DDR4_1600.rfc // 2


def test_fgr_4x_quarter_refi():
    t = DDR4_1600.fine_grained(4)
    assert t.refi == DDR4_1600.refi // 4
    assert t.rfc == DDR4_1600.cycles(160.0)


def test_fgr_invalid_mode():
    with pytest.raises(ValueError):
        DDR4_1600.fine_grained(3)


def test_fgr_total_lock_time_grows():
    # fine-grained modes trade more REFs for shorter locks; the *total*
    # locked time per 64 ms period increases (the paper's FGR discussion)
    base = DDR4_1600.rfc / DDR4_1600.refi
    for mode in (2, 4):
        t = DDR4_1600.fine_grained(mode)
        assert t.rfc / t.refi > base


def test_ddr4_2400_faster_clock():
    assert DDR4_2400.tck_ns < DDR4_1600.tck_ns
    # same wall-clock constraints → more cycles per constraint
    assert DDR4_2400.refi > DDR4_1600.refi


def test_write_latency_components():
    t = DDR4_1600
    assert t.write_hit_latency == t.cwl + t.burst
    assert t.cwl < t.cl
