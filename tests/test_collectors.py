"""Unit tests for stats collectors."""

import numpy as np

from repro.stats.collectors import ControllerStats, EventRecorder, RankEvents


class TestControllerStats:
    def test_defaults_zero(self):
        s = ControllerStats()
        assert s.reads == 0 and s.avg_read_latency == 0.0
        assert s.lock_hit_rate == 0.0
        assert s.row_hit_rate == 0.0

    def test_avg_latency(self):
        s = ControllerStats(reads_completed=4, read_latency_sum=100)
        assert s.avg_read_latency == 25.0

    def test_lock_hit_rate(self):
        s = ControllerStats(reads_arriving_in_lock=10, sram_hits_in_lock=6)
        assert s.lock_hit_rate == 0.6

    def test_row_hit_rate(self):
        s = ControllerStats(row_hits=6, row_closed=2, row_conflicts=2)
        assert s.row_hit_rate == 0.6

    def test_sram_hits_total(self):
        s = ControllerStats(sram_hits_in_lock=3, sram_hits_out_of_lock=4)
        assert s.sram_hits == 7

    def test_demand_accesses(self):
        s = ControllerStats(reads=5, writes=3, prefetches=100)
        assert s.demand_accesses == 8  # prefetches are not demand

    def test_merge_sums_counters(self):
        a = ControllerStats(reads=5, read_latency_max=30, end_cycle=100)
        b = ControllerStats(reads=7, read_latency_max=80, end_cycle=50)
        a.merge(b)
        assert a.reads == 12
        assert a.read_latency_max == 80  # max, not sum
        assert a.end_cycle == 100  # max, not sum


class TestEventRecorder:
    def test_per_rank_separation(self):
        rec = EventRecorder(channels=1, ranks=2)
        rec.on_request(0, 0, 10, is_read=True)
        rec.on_request(0, 1, 20, is_read=False)
        rec.on_refresh(0, 1, 100, 380)
        ev0 = rec.rank_events(0, 0)
        ev1 = rec.rank_events(0, 1)
        assert ev0.read_arrivals == [10] and ev0.write_arrivals == []
        assert ev1.write_arrivals == [20]
        assert ev1.refresh_starts == [100] and ev1.refresh_ends == [380]

    def test_all_events_keys(self):
        rec = EventRecorder(channels=2, ranks=2)
        assert set(rec.all_events()) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_arrays_snapshot(self):
        ev = RankEvents(read_arrivals=[3, 1, 2])
        arrays = ev.arrays()
        assert arrays["reads"].dtype == np.int64
        assert list(arrays["reads"]) == [3, 1, 2]
        assert len(arrays["refresh_starts"]) == 0
