"""Shared fixtures: small, fast configurations for unit/integration tests."""

from __future__ import annotations

import os

import pytest

from repro import (
    LlcConfig,
    MemoryOrganization,
    RefreshMode,
    SystemConfig,
)
from repro.dram.timings import DDR4_1600

try:
    from hypothesis import HealthCheck, settings

    # Two pinned profiles so property tests behave identically everywhere:
    # "dev" (default) keeps example counts modest for fast local runs;
    # "ci" (HYPOTHESIS_PROFILE=ci) runs more examples, derandomized so CI
    # failures reproduce exactly. Both disable the wall-clock deadline —
    # whole-system simulation examples legitimately take tens of ms.
    settings.register_profile(
        "dev",
        deadline=None,
        max_examples=25,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile(
        "ci",
        deadline=None,
        max_examples=50,
        derandomize=True,
        print_blob=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    pass


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_cache(tmp_path_factory):
    """Point the persistent artifact cache at a per-session temp dir.

    Keeps the test suite hermetic: no reads from (or writes to) the
    user's ``~/.cache/repro-artifacts``, and no stale artifacts from a
    previous code version influencing results.
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-artifacts"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture
def timings():
    """The paper's DDR4-1600 timing set."""
    return DDR4_1600


@pytest.fixture
def small_org():
    """A small geometry (fast decode, small footprints) for unit tests."""
    return MemoryOrganization(channels=1, ranks=2, banks=4, rows=1 << 10, columns=32)


@pytest.fixture
def single_core_config():
    """The paper's single-core system (1 rank, 2 MB LLC)."""
    return SystemConfig.single_core()


@pytest.fixture
def quad_core_config():
    """The paper's 4-core system (4 ranks, rank partitioning, 4 MB LLC)."""
    return SystemConfig.quad_core()


@pytest.fixture
def tiny_llc():
    """A 64 KB LLC so eviction paths are exercised with short traces."""
    return LlcConfig(size_bytes=64 * 1024, ways=4)


@pytest.fixture
def no_refresh_config(single_core_config):
    """Idealized memory (refresh disabled)."""
    return single_core_config.with_refresh_mode(RefreshMode.NONE)


@pytest.fixture
def rop_config(single_core_config):
    """Single-core system with ROP enabled at default parameters."""
    return single_core_config.with_rop()
