"""Shared fixtures: small, fast configurations for unit/integration tests."""

from __future__ import annotations

import pytest

from repro import (
    CoreConfig,
    LlcConfig,
    MemoryOrganization,
    RefreshMode,
    SystemConfig,
)
from repro.dram.timings import DDR4_1600


@pytest.fixture
def timings():
    """The paper's DDR4-1600 timing set."""
    return DDR4_1600


@pytest.fixture
def small_org():
    """A small geometry (fast decode, small footprints) for unit tests."""
    return MemoryOrganization(channels=1, ranks=2, banks=4, rows=1 << 10, columns=32)


@pytest.fixture
def single_core_config():
    """The paper's single-core system (1 rank, 2 MB LLC)."""
    return SystemConfig.single_core()


@pytest.fixture
def quad_core_config():
    """The paper's 4-core system (4 ranks, rank partitioning, 4 MB LLC)."""
    return SystemConfig.quad_core()


@pytest.fixture
def tiny_llc():
    """A 64 KB LLC so eviction paths are exercised with short traces."""
    return LlcConfig(size_bytes=64 * 1024, ways=4)


@pytest.fixture
def no_refresh_config(single_core_config):
    """Idealized memory (refresh disabled)."""
    return single_core_config.with_refresh_mode(RefreshMode.NONE)


@pytest.fixture
def rop_config(single_core_config):
    """Single-core system with ROP enabled at default parameters."""
    return single_core_config.with_rop()
