"""Unit + property tests for the VLDP-variant prediction table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.prediction_table import (
    FILL_UP_CONFIDENCE,
    FREQ_CAP,
    BankEntry,
    PredictionTable,
)

LIMIT = 1 << 20


def feed(entry: BankEntry, deltas, start=1000):
    addr = start
    for d in deltas:
        addr += d
        entry.update(addr)
    return addr


class TestBankEntry:
    def test_pure_stream_locks_order1(self):
        e = BankEntry(0)
        last = feed(e, [1] * 50)
        assert e.d1 == 1
        assert e.f1 == 48  # first delta anchors, the rest match
        assert e.project(1, 4, LIMIT) == [last + 1, last + 2, last + 3, last + 4]

    def test_stride_pattern(self):
        e = BankEntry(0)
        last = feed(e, [7] * 20)
        assert e.d1 == 7
        assert e.project(1, 3, LIMIT) == [last + 7, last + 14, last + 21]

    def test_period2_pattern_phase_correct(self):
        e = BankEntry(0)
        last = feed(e, [2, 1] * 30)
        # last delta consumed was 1 → the next must be 2
        proj = e.project(2, 4, LIMIT)
        assert proj == [last + 2, last + 3, last + 5, last + 6]
        assert e.f2 > 20

    def test_period3_pattern_phase_correct(self):
        e = BankEntry(0)
        last = feed(e, [1, 1, 6] * 30)
        proj = e.project(3, 6, LIMIT)
        assert proj == [last + 1, last + 2, last + 8, last + 9, last + 10, last + 16]
        assert e.f3 > 60

    def test_period3_all_phases(self):
        # whatever rotation the stream stops at, projection continues right
        base = [1, 1, 6]
        for stop in (1, 2, 3):
            e = BankEntry(0)
            seq = base * 10 + base[:stop]
            last = feed(e, seq)
            nxt = base[stop % 3]
            assert e.project(3, 1, LIMIT) == [last + nxt], f"stop={stop}"

    def test_zero_delta_ignored(self):
        e = BankEntry(0)
        # first update only sets the baseline; the two zero deltas carry no
        # information → two observed +1 deltas: anchor + one match
        feed(e, [1, 0, 1, 0, 1])
        assert e.d1 == 1
        assert e.f1 == 1

    def test_noise_resets_frequency(self):
        e = BankEntry(0)
        feed(e, [1] * 20 + [999])
        assert e.f1 == 0
        assert e.d1 == 999

    def test_relock_after_noise(self):
        e = BankEntry(0)
        feed(e, [1] * 10 + [999] + [1] * 10)
        assert e.d1 == 1 and e.f1 >= 8

    def test_projection_clamps_to_bank(self):
        e = BankEntry(0)
        last = feed(e, [1] * 10, start=LIMIT - 20)
        proj = e.project(1, 100, LIMIT)
        assert proj and proj[-1] == LIMIT - 1

    def test_negative_stride_projection(self):
        e = BankEntry(0)
        last = feed(e, [-2] * 10, start=1000)
        assert e.project(1, 3, LIMIT) == [last - 2, last - 4, last - 6]

    def test_projection_stops_below_zero(self):
        e = BankEntry(0)
        feed(e, [-5] * 3, start=20)
        proj = e.project(1, 100, LIMIT)
        assert all(p >= 0 for p in proj)
        assert len(proj) <= 2

    def test_overflow_halves_all(self):
        e = BankEntry(0)
        feed(e, [1] * (FREQ_CAP + 10))
        assert 0 < e.f1 < FREQ_CAP

    def test_unknown_pattern_projects_nothing(self):
        e = BankEntry(0)
        assert e.project(1, 5, LIMIT) == []
        e.update(100)
        assert e.project(2, 5, LIMIT) == []

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            BankEntry(0).project(4, 1, LIMIT)

    def test_reset_clears_state(self):
        e = BankEntry(0)
        feed(e, [1] * 10)
        e.reset()
        assert e.last_addr is None and e.weight == 0

    def test_weight_sums_frequencies(self):
        e = BankEntry(0)
        feed(e, [1] * 10)
        assert e.weight == e.f1 + e.f2 + e.f3


class TestTumblingAblation:
    def test_tumbling_order1_matches(self):
        e = BankEntry(0, tumbling=True)
        feed(e, [3] * 10)
        assert e.d1 == 3 and e.f1 == 8

    def test_tumbling_pairs(self):
        e = BankEntry(0, tumbling=True)
        # baseline access consumes the first +1, so observed deltas are
        # 2,1,2,1,… → tumbling pairs are uniformly (2, 1)
        feed(e, [1, 2] * 10)
        assert e.d2 == (2, 1)
        assert e.f2 == 8

    def test_tumbling_period3_misphases(self):
        # the literal tumbling reading cannot lock onto a period-3 pattern
        # with its period-2 matcher, and its period-3 tuples depend on
        # alignment — this is why the cyclic matcher is the default
        e = BankEntry(0, tumbling=True)
        feed(e, [1, 1, 6] * 20)
        cyc = BankEntry(0)
        feed(cyc, [1, 1, 6] * 20)
        assert cyc.f3 > e.f2  # cyclic order-3 lock beats tumbling pair lock


class TestPredictionTable:
    def test_budget_split_proportional(self):
        t = PredictionTable(banks=2, lines_per_bank=LIMIT)
        feed(t.entries[0], [1] * 30)
        feed(t.entries[1], [1] * 10)
        b = t.bank_budgets(40)
        assert sum(b) <= 40
        assert b[0] > b[1] > 0

    def test_budget_zero_without_patterns(self):
        t = PredictionTable(banks=4, lines_per_bank=LIMIT)
        assert t.bank_budgets(64) == [0, 0, 0, 0]
        assert t.predict(64) == []

    def test_predict_caps_at_capacity(self):
        t = PredictionTable(banks=1, lines_per_bank=LIMIT)
        feed(t.entries[0], [1] * 100)
        assert len(t.predict(16)) == 16

    def test_predict_unique(self):
        t = PredictionTable(banks=2, lines_per_bank=LIMIT)
        feed(t.entries[0], [1] * 50)
        feed(t.entries[1], [2] * 50)
        picks = t.predict(64)
        assert len(picks) == len(set(picks))

    def test_fill_up_extends_confident_pattern(self):
        t = PredictionTable(banks=1, lines_per_bank=LIMIT)
        feed(t.entries[0], [1] * 50)  # f1, f2, f3 all confident
        picks = t.predict(32)
        # duplicates between orders are transparent: full budget delivered
        assert len(picks) == 32

    def test_fill_up_denied_to_weak_pattern(self):
        t = PredictionTable(banks=1, lines_per_bank=LIMIT)
        # fewer repeats than the confidence bar: projections are capped at
        # f × FILL_UP_CONFIDENCE per order, far below the full budget
        feed(t.entries[0], [1] * (FILL_UP_CONFIDENCE - 1))
        picks = t.predict(64)
        assert 0 < len(picks) <= 3 * FILL_UP_CONFIDENCE**2

    def test_predictions_point_forward(self):
        t = PredictionTable(banks=1, lines_per_bank=LIMIT)
        last = feed(t.entries[0], [1] * 50)
        assert all(off > last for _, off in t.predict(16))

    def test_reset_all(self):
        t = PredictionTable(banks=2, lines_per_bank=LIMIT)
        feed(t.entries[0], [1] * 10)
        t.reset()
        assert t.total_weight() == 0


# ---------------------------------------------------------------- properties


@given(
    deltas=st.lists(st.integers(min_value=-64, max_value=64), min_size=1, max_size=200),
    start=st.integers(min_value=10_000, max_value=100_000),
)
@settings(max_examples=100, deadline=None)
def test_entry_never_crashes_and_projects_in_range(deltas, start):
    e = BankEntry(0)
    feed(e, deltas, start=start)
    for order in (1, 2, 3):
        for off in e.project(order, 32, LIMIT):
            assert 0 <= off < LIMIT


@given(
    pattern=st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=3),
    reps=st.integers(min_value=10, max_value=40),
)
@settings(max_examples=60, deadline=None)
def test_periodic_pattern_projection_is_exact(pattern, reps):
    """For any cyclic positive pattern repeated enough, the order-k
    projection reproduces the true continuation exactly."""
    k = len(pattern)
    e = BankEntry(0)
    last = feed(e, pattern * reps)
    true_next = []
    addr = last
    i = 0
    for _ in range(8):
        addr += pattern[i % k]
        true_next.append(addr)
        i += 1
    assert e.project(k, 8, 10**9) == true_next


@given(capacity=st.integers(min_value=1, max_value=128))
@settings(max_examples=40, deadline=None)
def test_predict_respects_capacity(capacity):
    t = PredictionTable(banks=4, lines_per_bank=LIMIT)
    for b in range(4):
        feed(t.entries[b], [b + 1] * 30)
    assert len(t.predict(capacity)) <= capacity
