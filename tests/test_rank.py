"""Unit tests for rank-level gating (tRRD, tFAW, tWTR) and refresh locks."""

import pytest

from repro.dram.rank import Rank
from repro.dram.timings import DDR4_1600 as T


@pytest.fixture
def rank():
    return Rank(num_banks=8)


def _commit(rank, now, bank, row, is_write=False):
    plan = rank.plan(now, bank, row, is_write, T)
    rank.commit(plan, bank, row, is_write, T)
    return plan


def test_rrd_spacing_between_banks(rank):
    p1 = _commit(rank, 0, 0, 1)
    p2 = rank.plan(0, 1, 1, False, T)
    assert p2.act_cycle >= p1.act_cycle + T.rrd


def test_faw_limits_four_activates(rank):
    plans = [_commit(rank, 0, b, 1) for b in range(5)]
    acts = [p.act_cycle for p in plans]
    # the fifth ACT must wait for the rolling four-activate window
    assert acts[4] >= acts[0] + T.faw


def test_wtr_gates_following_read(rank):
    pw = _commit(rank, 0, 0, 1, is_write=True)
    pr = rank.plan(pw.col_cycle + T.ccd, 1, 1, False, T)
    # read column command must respect write-to-read turnaround
    assert pr.col_cycle >= pw.col_cycle + T.cwl + T.burst + T.wtr


def test_write_not_gated_by_wtr(rank):
    pw = _commit(rank, 0, 0, 1, is_write=True)
    pw2 = rank.plan(pw.col_cycle + T.ccd, 1, 1, True, T)
    assert pw2.col_cycle < pw.col_cycle + T.cwl + T.burst + T.wtr


def test_refresh_locks_all_banks(rank):
    start, end = rank.start_refresh(1000, T)
    assert start == 1000 and end == 1000 + T.rfc
    assert rank.is_locked(1000)
    assert rank.is_locked(end - 1)
    assert not rank.is_locked(end)
    for b in rank.banks:
        assert b.open_row is None
        assert b.ready_at >= end


def test_lock_window_has_physical_start(rank):
    rank.start_refresh(1000, T)
    # cycles before the REF begins are NOT locked
    assert not rank.is_locked(999)
    assert rank.lock_start == 1000


def test_refresh_waits_for_quiesce(rank):
    p = _commit(rank, 0, 0, 5)
    start, end = rank.start_refresh(1, T)
    assert start >= p.act_cycle + T.ras  # cannot cut the row cycle short


def test_per_bank_refresh_leaves_others_usable(rank):
    start, end = rank.start_refresh(100, T, banks=[2])
    assert rank.banks[2].ready_at >= end
    # other banks untouched, rank-level lock not set
    assert rank.banks[3].ready_at < end
    assert not rank.is_locked(start)


def test_back_to_back_refreshes_extend_lock(rank):
    s1, e1 = rank.start_refresh(100, T)
    s2, e2 = rank.start_refresh(e1, T)
    assert s2 == e1
    assert rank.lock_start == 100  # one merged window
    assert rank.locked_until == e2


def test_refresh_counts(rank):
    rank.start_refresh(0, T)
    rank.start_refresh(10000, T)
    assert rank.refresh_count == 2


def test_plan_after_lock_starts_at_unlock(rank):
    _, end = rank.start_refresh(0, T)
    plan = rank.plan(10, 0, 1, False, T)
    assert plan.act_cycle >= end


def test_act_count_tracks_activates(rank):
    _commit(rank, 0, 0, 1)
    _commit(rank, 1000, 0, 1)  # row hit: no new ACT
    assert rank.act_count == 1
