"""Integration tests for the MemorySystem facade and ROP end-to-end
behaviour at the memory level."""


from repro import RefreshMode, SystemConfig
from repro.dram import MemorySystem


def stream(ms, n, period=20, start_line=0):
    for i in range(n):
        ms.schedule_read(start_line + i, i * period)


class TestFacade:
    def test_run_returns_event_count(self):
        ms = MemorySystem(SystemConfig.single_core())
        stream(ms, 10)
        assert ms.run() > 0

    def test_finish_finalizes(self):
        ms = MemorySystem(SystemConfig.single_core().with_rop())
        stream(ms, 100)
        ms.run()
        st = ms.finish()
        assert st.end_cycle > 0

    def test_now_property(self):
        ms = MemorySystem(SystemConfig.single_core())
        ms.submit_read(0, 0)
        ms.run()
        assert ms.now == ms.events.now > 0

    def test_rop_summary_none_when_disabled(self):
        ms = MemorySystem(SystemConfig.single_core())
        assert ms.rop_summary() is None

    def test_drain_flushes_queues(self):
        ms = MemorySystem(SystemConfig.single_core())
        for i in range(30):
            ms.submit_write(i * 100, 0)
        ms.drain()
        assert ms.controller.pending_requests() == 0

    def test_shared_event_queue(self):
        from repro.events import EventQueue

        q = EventQueue()
        ms = MemorySystem(SystemConfig.single_core(), events=q)
        assert ms.events is q


class TestRefreshOverheadShape:
    """The paper's central premise at the raw memory level."""

    def test_refresh_increases_avg_latency(self):
        def avg_lat(mode):
            ms = MemorySystem(SystemConfig.single_core().with_refresh_mode(mode))
            stream(ms, 5000)
            ms.run()
            return ms.finish().avg_read_latency

        assert avg_lat(RefreshMode.AUTO_1X) > avg_lat(RefreshMode.NONE)

    def test_rop_recovers_latency(self):
        def run(cfg):
            ms = MemorySystem(cfg)
            stream(ms, 8000)
            ms.run()
            return ms.finish()

        base = run(SystemConfig.single_core())
        # short run: shrink training so ROP actually operates
        rop = run(SystemConfig.single_core().with_rop(training_refreshes=5))
        ideal = run(SystemConfig.single_core().with_refresh_mode(RefreshMode.NONE))
        assert ideal.avg_read_latency < rop.avg_read_latency < base.avg_read_latency

    def test_rop_serves_reads_during_lock(self):
        ms = MemorySystem(SystemConfig.single_core().with_rop(training_refreshes=5))
        stream(ms, 10_000)
        ms.run()
        st = ms.finish()
        assert st.sram_hits_in_lock > 0
        # SRAM-serviced requests carry the SRAM service kind
        assert st.sram_hits == st.sram_hits_in_lock + st.sram_hits_out_of_lock

    def test_max_latency_bounded_by_lock(self):
        ms = MemorySystem(SystemConfig.single_core())
        stream(ms, 3000)
        ms.run()
        st = ms.finish()
        t = ms.controller.t
        # worst demand read waits for ~one full lock plus service/queueing
        assert st.read_latency_max < 3 * t.rfc


class TestPrefetchAccounting:
    def test_prefetches_counted_separately(self):
        ms = MemorySystem(SystemConfig.single_core().with_rop(training_refreshes=5))
        stream(ms, 10_000)
        ms.run()
        st = ms.finish()
        assert st.prefetches > 0
        assert st.reads == 10_000  # demand reads unaffected by prefetch count

    def test_prefetch_delay_accounted(self):
        ms = MemorySystem(SystemConfig.single_core().with_rop(training_refreshes=5))
        stream(ms, 10_000)
        ms.run()
        st = ms.finish()
        assert st.prefetch_fetch_cycles > 0

    def test_resident_lines_not_refetched(self):
        # feed a *stalled* stream: the same lines stay in the buffer across
        # refreshes and must not be fetched twice
        cfg = SystemConfig.single_core().with_rop(training_refreshes=2)
        ms = MemorySystem(cfg)
        t = ms.controller.t
        # very slow stream: ~6 reads per refresh interval
        for i in range(120):
            ms.schedule_read(i, i * 1000)
        ms.run()
        st = ms.finish()
        assert st.sram_fills <= st.prefetches + 1


class TestEventRecording:
    def test_recorder_captures_requests_and_refreshes(self):
        ms = MemorySystem(SystemConfig.single_core(), record_events=True)
        stream(ms, 2000)
        ms.run()
        ev = ms.recorder.rank_events(0, 0)
        assert len(ev.read_arrivals) == 2000
        assert len(ev.refresh_starts) == ms.stats.refreshes
        assert all(e - s == ms.controller.t.rfc for s, e in zip(ev.refresh_starts, ev.refresh_ends))
