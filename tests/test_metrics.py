"""Unit tests for performance metrics."""

import pytest

from repro.stats.metrics import (
    geomean,
    normalize,
    percent_change,
    speedup,
    weighted_speedup,
)


def test_weighted_speedup_no_interference():
    assert weighted_speedup([1.0, 2.0], [1.0, 2.0]) == pytest.approx(2.0)


def test_weighted_speedup_half_speed():
    assert weighted_speedup([0.5, 1.0], [1.0, 2.0]) == pytest.approx(1.0)


def test_weighted_speedup_mismatch():
    with pytest.raises(ValueError):
        weighted_speedup([1.0], [1.0, 2.0])


def test_weighted_speedup_zero_alone():
    with pytest.raises(ValueError):
        weighted_speedup([1.0], [0.0])


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([3.0]) == pytest.approx(3.0)


def test_geomean_validation():
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, -2.0])


def test_normalize():
    assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]
    with pytest.raises(ValueError):
        normalize([1.0], 0.0)


def test_percent_change():
    assert percent_change(1.1, 1.0) == pytest.approx(10.0)
    assert percent_change(0.9, 1.0) == pytest.approx(-10.0)
    with pytest.raises(ValueError):
        percent_change(1.0, 0.0)


def test_speedup():
    assert speedup(2.0, 1.0) == 2.0
    with pytest.raises(ValueError):
        speedup(1.0, 0.0)
