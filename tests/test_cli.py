"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "DDR4-1600" in out
    assert "tREFI=6240" in out
    assert "WL1" in out


def test_compare_smoke(capsys):
    assert main(["compare", "gobmk", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "gobmk" in out and "IPC" in out


def test_analyze_smoke(capsys):
    assert main(["analyze", "gobmk", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "λ@1x" in out or "non-blocking" in out


def test_fig1_smoke(capsys):
    assert main(["fig", "1", "gobmk", "--scale", "smoke"]) == 0
    assert "AVERAGE" in capsys.readouterr().out


def test_fig_unknown(capsys):
    assert main(["fig", "99", "gobmk", "--scale", "smoke"]) == 2


def test_instructions_override(capsys):
    assert main(["compare", "gobmk", "--instructions", "200000"]) == 0
    assert "requests" in capsys.readouterr().out


def test_schemes_smoke(capsys):
    assert main(["schemes", "gobmk", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "pausing" in out and "rop" in out


def test_parser_structure():
    parser = build_parser()
    args = parser.parse_args(["fig", "7", "lbm", "--scale", "smoke", "--seed", "9"])
    assert args.figure == "7"
    assert args.benchmarks == ["lbm"]
    assert args.seed == 9
    assert args.jobs is None and args.no_cache is False


def test_parser_runner_flags():
    args = build_parser().parse_args(
        ["fig", "1", "gobmk", "--scale", "smoke", "--jobs", "4", "--no-cache"]
    )
    assert args.jobs == 4
    assert args.no_cache is True


def test_fig_reports_runner_stats(capsys):
    from repro.harness import set_cache_enabled

    try:
        assert main(["fig", "1", "gobmk", "--scale", "smoke",
                     "--jobs", "1", "--no-cache"]) == 0
    finally:
        set_cache_enabled(None)  # --no-cache sets a process-wide override
    out = capsys.readouterr().out
    assert "AVERAGE" in out
    assert "runner:" in out and "jobs=1" in out
