"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "DDR4-1600" in out
    assert "tREFI=6240" in out
    assert "WL1" in out


def test_compare_smoke(capsys):
    assert main(["compare", "gobmk", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "gobmk" in out and "IPC" in out


def test_analyze_smoke(capsys):
    assert main(["analyze", "gobmk", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "λ@1x" in out or "non-blocking" in out


def test_fig1_smoke(capsys):
    assert main(["fig", "1", "gobmk", "--scale", "smoke"]) == 0
    assert "AVERAGE" in capsys.readouterr().out


def test_fig_unknown(capsys):
    assert main(["fig", "99", "gobmk", "--scale", "smoke"]) == 2


def test_instructions_override(capsys):
    assert main(["compare", "gobmk", "--instructions", "200000"]) == 0
    assert "requests" in capsys.readouterr().out


def test_schemes_smoke(capsys):
    assert main(["schemes", "gobmk", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "pausing" in out and "rop" in out


def test_parser_structure():
    parser = build_parser()
    args = parser.parse_args(["fig", "7", "lbm", "--scale", "smoke", "--seed", "9"])
    assert args.figure == "7"
    assert args.benchmarks == ["lbm"]
    assert args.seed == 9
    assert args.jobs is None and args.no_cache is False


def test_parser_runner_flags():
    args = build_parser().parse_args(
        ["fig", "1", "gobmk", "--scale", "smoke", "--jobs", "4", "--no-cache"]
    )
    assert args.jobs == 4
    assert args.no_cache is True


def test_fig_reports_runner_stats(capsys):
    from repro.harness import set_cache_enabled

    try:
        assert main(["fig", "1", "gobmk", "--scale", "smoke",
                     "--jobs", "1", "--no-cache"]) == 0
    finally:
        set_cache_enabled(None)  # --no-cache sets a process-wide override
    out = capsys.readouterr().out
    assert "AVERAGE" in out
    assert "runner:" in out and "jobs=1" in out


def test_parser_fault_tolerance_flags():
    args = build_parser().parse_args(
        ["fig", "1", "gobmk", "--spec-timeout", "30", "--retries", "5",
         "--keep-going", "--audit"]
    )
    assert args.spec_timeout == 30.0
    assert args.retries == 5
    assert args.keep_going is True and args.fail_fast is False
    with pytest.raises(SystemExit):  # --keep-going and --fail-fast conflict
        build_parser().parse_args(["fig", "1", "x", "--keep-going", "--fail-fast"])


def test_flags_install_execution_policy():
    from argparse import Namespace

    from repro.cli import _runner_opts
    from repro.harness import current_policy, set_execution_policy

    try:
        jobs = _runner_opts(Namespace(no_cache=False, jobs=3, spec_timeout=90.0,
                                      retries=4, keep_going=True, fail_fast=False,
                                      audit=True))
        assert jobs == 3
        policy = current_policy()
        assert policy.spec_timeout_s == 90.0
        assert policy.max_attempts == 4
        assert policy.keep_going and policy.audit
    finally:
        set_execution_policy(None)


def test_bad_repro_jobs_exits_2(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_JOBS", "banana")
    assert main(["fig", "1", "gobmk", "--instructions", "120000", "--no-cache"]) == 2
    err = capsys.readouterr().err
    assert "REPRO_JOBS" in err
    from repro.harness import set_cache_enabled

    set_cache_enabled(None)


def test_fail_fast_exits_1_with_report(tmp_path, monkeypatch, capsys):
    import json

    faults = tmp_path / "faults.json"
    faults.write_text(json.dumps({"gobmk": {"mode": "error", "message": "kaboom"}}))
    monkeypatch.setenv("REPRO_FAULTS", str(faults))
    monkeypatch.setenv("REPRO_CACHE", "off")
    from repro.harness.runner import clear_result_memo

    clear_result_memo()
    assert main(["fig", "1", "gobmk", "--instructions", "120000"]) == 1
    err = capsys.readouterr().err
    assert "gobmk" in err and "kaboom" in err


def test_keep_going_renders_survivors_and_failures(tmp_path, monkeypatch, capsys):
    import json

    faults = tmp_path / "faults.json"
    faults.write_text(json.dumps({"gobmk": {"mode": "error"}}))
    monkeypatch.setenv("REPRO_FAULTS", str(faults))
    monkeypatch.setenv("REPRO_CACHE", "off")
    from repro.harness.runner import clear_result_memo

    clear_result_memo()
    assert main(["fig", "1", "gobmk", "lbm", "--instructions", "120000",
                 "--keep-going"]) == 0
    captured = capsys.readouterr()
    assert "lbm" in captured.out          # the surviving benchmark rendered
    assert "spec(s) failed" in captured.err  # and the failure was listed
