"""Unit + property tests for address interleaving schemes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import AddressMapScheme, MemoryOrganization
from repro.dram.address_mapping import AddressMapper
from repro.dram.request import Coord

ORG = MemoryOrganization(channels=1, ranks=4, banks=8, rows=1 << 12, columns=128)
SCHEMES = list(AddressMapScheme)


@pytest.fixture(params=SCHEMES, ids=[s.value for s in SCHEMES])
def mapper(request):
    return AddressMapper(ORG, request.param)


# ---------------------------------------------------------------- round trips


@given(line=st.integers(min_value=0, max_value=ORG.total_lines - 1))
@settings(max_examples=200, deadline=None)
def test_decode_encode_roundtrip_all_schemes(line):
    for scheme in SCHEMES:
        m = AddressMapper(ORG, scheme)
        assert m.encode(m.decode(line)) == line, scheme


@given(
    chan=st.integers(0, ORG.channels - 1),
    rank=st.integers(0, ORG.ranks - 1),
    bank=st.integers(0, ORG.banks - 1),
    row=st.integers(0, ORG.rows - 1),
    col=st.integers(0, ORG.columns - 1),
)
@settings(max_examples=200, deadline=None)
def test_encode_decode_roundtrip_all_schemes(chan, rank, bank, row, col):
    coord = Coord(chan, rank, bank, row, col)
    for scheme in SCHEMES:
        m = AddressMapper(ORG, scheme)
        assert m.decode(m.encode(coord)) == coord, scheme


def test_decode_is_bijection_prefix(mapper):
    seen = set()
    for line in range(4096):
        c = mapper.decode(line)
        assert c not in seen
        seen.add(c)


# ---------------------------------------------------------------- scheme shape


def test_conventional_consecutive_lines_share_row():
    m = AddressMapper(ORG, AddressMapScheme.ROW_RANK_BANK_COL)
    c0, c1 = m.decode(0), m.decode(1)
    assert (c0.row, c0.bank, c0.rank) == (c1.row, c1.bank, c1.rank)
    assert c1.col == c0.col + 1


def test_conventional_bank_hop_after_row():
    m = AddressMapper(ORG, AddressMapScheme.ROW_RANK_BANK_COL)
    c = m.decode(ORG.columns)  # first line past one row
    assert c.bank == 1 and c.col == 0


def test_bank_locality_dwell():
    m = AddressMapper(ORG, AddressMapScheme.BANK_LOCALITY)
    dwell = m.bank_dwell_lines
    assert dwell == ORG.columns << 6  # default row_low_bits = 6
    banks = {m.decode(i).bank for i in range(dwell)}
    assert banks == {m.decode(0).bank}
    assert m.decode(dwell).bank != m.decode(0).bank


def test_conventional_dwell_is_one_row():
    m = AddressMapper(ORG, AddressMapScheme.ROW_RANK_BANK_COL)
    assert m.bank_dwell_lines == ORG.columns


def test_rank_partitioned_top_bits():
    m = AddressMapper(ORG, AddressMapScheme.RANK_PARTITIONED)
    slice_lines = ORG.total_lines // ORG.ranks
    for rank in range(ORG.ranks):
        base = m.partition_base(rank)
        assert base == rank * slice_lines
        assert m.decode(base).rank == rank
        assert m.decode(base + slice_lines - 1).rank == rank


def test_partition_base_requires_partitioned_scheme():
    m = AddressMapper(ORG, AddressMapScheme.BANK_LOCALITY)
    with pytest.raises(ValueError):
        m.partition_base(0)


def test_rank_of(mapper):
    line = 12345
    c = mapper.decode(line)
    assert mapper.rank_of(line) == (c.channel, c.rank)


def test_encode_out_of_range_rejected(mapper):
    with pytest.raises(ValueError):
        mapper.encode(Coord(0, ORG.ranks, 0, 0, 0))
    with pytest.raises(ValueError):
        mapper.encode(Coord(0, 0, 0, ORG.rows, 0))


def test_non_power_of_two_geometry_rejected():
    with pytest.raises(ValueError):
        AddressMapper(
            MemoryOrganization(ranks=3), AddressMapScheme.BANK_LOCALITY
        )


def test_row_low_bits_clamped_to_row_bits():
    org = MemoryOrganization(rows=16)  # only 4 row bits
    m = AddressMapper(org, AddressMapScheme.BANK_LOCALITY, row_low_bits=10)
    # round trip must still hold with clamped split
    for line in range(0, org.total_lines, 97):
        assert m.encode(m.decode(line)) == line


# ------------------------------------------------------- vectorized pre-decode


@given(
    lines=st.lists(
        st.integers(min_value=0, max_value=ORG.total_lines - 1),
        min_size=0, max_size=64,
    )
)
@settings(max_examples=100, deadline=None)
def test_decode_array_matches_scalar_decode(lines):
    import numpy as np

    arr = np.asarray(lines, dtype=np.int64)
    for scheme in SCHEMES:
        m = AddressMapper(ORG, scheme)
        chan, rank, bank, row, col = m.decode_array(arr)
        expected = [m.decode(line) for line in lines]
        got = list(zip(chan.tolist(), rank.tolist(), bank.tolist(),
                       row.tolist(), col.tolist()))
        assert got == [tuple(c) for c in expected], scheme


def test_decode_coords_returns_coord_instances(mapper):
    import numpy as np

    lines = np.arange(0, ORG.total_lines, 997, dtype=np.int64)
    coords = mapper.decode_coords(lines)
    assert len(coords) == len(lines)
    for line, coord in zip(lines.tolist(), coords):
        assert isinstance(coord, Coord)
        assert coord == mapper.decode(line)
        assert mapper.encode(coord) == line
