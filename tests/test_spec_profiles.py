"""Tests for the calibrated SPEC CPU2006 stand-in profiles (Table II)."""

import pytest

from repro import LlcConfig
from repro.workloads import (
    INTENSIVE,
    NON_INTENSIVE,
    SPEC_PROFILES,
    WORKLOAD_MIXES,
    mix_intensity,
    mix_profiles,
    profile,
)
from repro.workloads.spec_profiles import clear_trace_cache

LLC = LlcConfig(size_bytes=2 * 1024 * 1024)


def test_twelve_benchmarks():
    assert len(SPEC_PROFILES) == 12


def test_table2_intensity_split():
    # Table II: six intensive, six non-intensive
    assert set(INTENSIVE) == {
        "GemsFDTD",
        "lbm",
        "bwaves",
        "gcc",
        "libquantum",
        "cactusADM",
    }
    assert len(NON_INTENSIVE) == 6


def test_profile_lookup():
    assert profile("lbm").name == "lbm"
    with pytest.raises(KeyError):
        profile("nosuchbench")


def test_paper_targets_recorded():
    # Table I values are carried for every profile
    assert profile("bzip2").paper_lambda == pytest.approx(0.84)
    assert profile("bzip2").paper_beta == pytest.approx(0.94)
    assert profile("lbm").paper_beta == 0.0


def test_cpu_trace_deterministic():
    a = profile("gcc").cpu_trace(50_000, seed=2)
    b = profile("gcc").cpu_trace(50_000, seed=2)
    assert (a.lines == b.lines).all()


def test_profiles_have_distinct_streams():
    a = profile("gcc").cpu_trace(50_000, seed=2)
    b = profile("wrf").cpu_trace(50_000, seed=2)
    assert len(a) != len(b) or not (a.lines[: len(b)] == b.lines[: len(a)]).all()


def test_memory_trace_memoized():
    clear_trace_cache()
    a = profile("astar").memory_trace(100_000, LLC, seed=1)
    b = profile("astar").memory_trace(100_000, LLC, seed=1)
    assert a is b  # cached object identity
    clear_trace_cache()


def test_memory_trace_llc_dependence():
    clear_trace_cache()
    small = profile("gcc").memory_trace(400_000, LlcConfig(size_bytes=1 << 20), seed=1)
    large = profile("gcc").memory_trace(400_000, LlcConfig(size_bytes=1 << 23), seed=1)
    assert len(large) <= len(small)
    clear_trace_cache()


@pytest.mark.parametrize("name", list(SPEC_PROFILES))
def test_intensity_ordering(name):
    """Intensive benchmarks produce markedly more memory traffic (MPKI).

    Short traces overstate phase-structured benchmarks whose dwells exceed
    the trace (wrf), so the non-intensive bound is generous here; the
    long-run separation is asserted by the benchmark harness outputs.
    """
    p = profile(name)
    mt = p.memory_trace(2_000_000, LLC, seed=1)
    mpki = len(mt) / 2000
    if p.intensive:
        assert mpki > 4, f"{name} classified intensive but has {mpki:.1f} MPKI"
    else:
        assert mpki < 8, f"{name} classified non-intensive but has {mpki:.1f} MPKI"


def test_mixes_are_four_wide():
    assert len(WORKLOAD_MIXES) == 6
    for mix, members in WORKLOAD_MIXES.items():
        assert len(members) == 4
        for m in members:
            assert m in SPEC_PROFILES


def test_mix_intensity_monotone():
    # WL1 is the most intensive mix; intensity declines towards WL6
    intensities = [mix_intensity(f"WL{i}") for i in range(1, 7)]
    assert intensities[0] == 4
    assert intensities == sorted(intensities, reverse=True)


def test_mix_profiles_resolution():
    profs = mix_profiles("WL1")
    assert len(profs) == 4
    with pytest.raises(KeyError):
        mix_profiles("WL9")
