"""Unit tests for the probabilistic prefetch throttle and candidate
generation."""

import pytest

from repro import AddressMapScheme, MemoryOrganization, RopConfig
from repro.core.prediction_table import PredictionTable
from repro.core.prefetcher import Prefetcher
from repro.core.profiler import LambdaBeta
from repro.dram.address_mapping import AddressMapper
from repro.rng import make_rng


def make(probabilistic=True, sram_lines=64, seed=1):
    cfg = RopConfig(enabled=True, probabilistic=probabilistic, sram_lines=sram_lines)
    return Prefetcher(cfg, make_rng(seed))


def rate(prefetcher, b_count, lam, beta, n=4000):
    lb = LambdaBeta(lam, beta)
    return sum(prefetcher.decide(b_count, lb) for _ in range(n)) / n


def test_lambda_controls_go_rate_when_busy():
    # B>0 → prefetch with probability λ
    assert rate(make(), 5, 0.8, 0.5) == pytest.approx(0.8, abs=0.03)
    assert rate(make(), 5, 0.2, 0.5) == pytest.approx(0.2, abs=0.03)


def test_beta_controls_skip_rate_when_idle():
    # B=0 → skip with probability β
    assert rate(make(), 0, 0.5, 0.9) == pytest.approx(0.1, abs=0.03)
    assert rate(make(), 0, 0.5, 0.1) == pytest.approx(0.9, abs=0.03)


def test_no_profile_means_no_prefetch():
    p = make()
    assert not p.decide(10, None)
    assert not p.decide(0, None)


def test_deterministic_given_seed():
    a = [make(seed=7).decide(3, LambdaBeta(0.5, 0.5)) for _ in range(1)]
    b = [make(seed=7).decide(3, LambdaBeta(0.5, 0.5)) for _ in range(1)]
    assert a == b


def test_non_probabilistic_mode():
    p = make(probabilistic=False)
    assert p.decide(1, None)  # any window traffic → go, even unprofiled
    assert not p.decide(0, LambdaBeta(1.0, 0.0))


def test_decision_counters():
    p = make(probabilistic=False)
    p.decide(1, None)
    p.decide(0, None)
    assert (p.decisions_go, p.decisions_skip) == (1, 1)


def test_candidate_lines_translate_offsets():
    org = MemoryOrganization(ranks=2)
    mapper = AddressMapper(org, AddressMapScheme.BANK_LOCALITY)
    table = PredictionTable(org.banks, org.lines_per_bank)
    # feed bank 3 a stream
    addr = 5000
    for _ in range(20):
        addr += 1
        table.update(3, addr)
    p = make(sram_lines=8)
    lines = p.candidate_lines(table, mapper, channel=0, rank=1)
    assert len(lines) == 8
    for line in lines:
        c = mapper.decode(line)
        assert (c.channel, c.rank, c.bank) == (0, 1, 3)
    offsets = [mapper.decode(l).row * org.columns + mapper.decode(l).col for l in lines]
    assert offsets == list(range(addr + 1, addr + 9))


def test_candidate_lines_empty_table():
    org = MemoryOrganization()
    mapper = AddressMapper(org, AddressMapScheme.BANK_LOCALITY)
    table = PredictionTable(org.banks, org.lines_per_bank)
    assert make().candidate_lines(table, mapper, 0, 0) == []
