"""Unit + property tests for the Pattern Profiler (λ/β computation)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.profiler import CategoryCounts, PatternProfiler

W = 100


def make():
    return PatternProfiler(window=W)


def test_invalid_window():
    with pytest.raises(ValueError):
        PatternProfiler(window=0)


def test_b_pos_a_pos():
    p = make()
    p.on_request(50, True)  # inside B-window of refresh at 100
    p.on_refresh(100)
    p.on_request(150, True)  # inside A-window
    p.advance(300)
    assert p.counts.b_pos_a_pos == 1


def test_b_pos_a_zero():
    p = make()
    p.on_request(50, True)
    p.on_refresh(100)
    p.advance(300)
    assert p.counts.b_pos_a_zero == 1


def test_b_zero_a_pos():
    p = make()
    p.on_refresh(100)
    p.on_request(150, True)
    p.advance(300)
    assert p.counts.b_zero_a_pos == 1


def test_b_zero_a_zero():
    p = make()
    p.on_refresh(100)
    p.advance(300)
    assert p.counts.b_zero_a_zero == 1


def test_writes_count_for_b_not_a():
    p = make()
    p.on_request(50, False)  # a write before the refresh
    p.on_refresh(100)
    p.on_request(150, False)  # a write after: must NOT count as A
    p.advance(300)
    assert p.counts.b_pos_a_zero == 1


def test_window_boundaries():
    # the B-window is closed-open: [T − W, T)
    p = make()
    p.on_request(0, True)  # exactly W before: included (closed low end)
    p.on_refresh(100)
    p.advance(300)
    assert p.counts.b_pos_a_zero == 1

    p2 = make()
    p2.on_refresh(100)
    p2.on_request(100, True)  # at the refresh instant: belongs to A, not B
    p2.advance(300)
    # arrival at T counts toward A (the window after), not B
    assert p2.counts.b_zero_a_pos == 1


def test_a_window_is_half_open():
    p = make()
    p.on_refresh(100)
    p.on_request(199, True)  # last cycle inside [100, 200)
    p.advance(400)
    assert p.counts.b_zero_a_pos == 1

    p2 = make()
    p2.on_refresh(100)
    p2.advance(200)  # deadline reached: record already closed
    p2.on_request(200, True)
    p2.advance(400)
    assert p2.counts.b_zero_a_zero == 1


def test_lambda_beta_computation():
    p = make()
    # 2× (B>0, A>0); 1× (B>0, A=0); 1× (B=0, A=0)
    for t0 in (1000, 2000):
        p.on_request(t0 - 10, True)
        p.on_refresh(t0)
        p.on_request(t0 + 10, True)
    p.on_request(2990, True)
    p.on_refresh(3000)
    p.on_refresh(5000)
    p.finalize(6000)
    lb = p.lambda_beta()
    assert lb.lam == pytest.approx(2 / 3)
    assert lb.beta == pytest.approx(1.0)


def test_lambda_beta_defaults_when_undefined():
    p = make()
    lb = p.lambda_beta()
    assert lb.lam == 1.0 and lb.beta == 1.0


def test_overlapping_a_windows():
    p = PatternProfiler(window=1000)
    p.on_refresh(100)
    p.on_refresh(600)  # A-windows overlap
    p.on_request(700, True)  # inside both
    p.finalize(5000)
    assert p.counts.b_zero_a_pos + p.counts.b_pos_a_pos == 2


def test_count_in_window_prunes_old():
    p = make()
    p.on_request(10, True)
    p.on_request(500, True)
    assert p.count_in_window(550) == 1  # the request at 10 was pruned


def test_reset_clears_counts_keeps_nothing_pending():
    p = make()
    p.on_request(50, True)
    p.on_refresh(100)
    p.reset()
    p.advance(1000)
    assert p.counts.total == 0


def test_dominant_fraction():
    c = CategoryCounts(b_pos_a_pos=6, b_pos_a_zero=1, b_zero_a_pos=1, b_zero_a_zero=2)
    assert c.total == 10
    assert c.dominant_fraction == pytest.approx(0.8)


def test_dominant_fraction_empty():
    assert CategoryCounts().dominant_fraction == 0.0


# ---------------------------------------------------------------- properties


@given(
    req_times=st.lists(st.integers(0, 5000), max_size=60),
    refresh_times=st.lists(st.integers(100, 4000), min_size=1, max_size=8, unique=True),
)
@settings(max_examples=100, deadline=None)
def test_profiler_matches_bruteforce(req_times, refresh_times):
    """The streaming profiler agrees with a brute-force recount."""
    req_times = sorted(req_times)
    refresh_times = sorted(refresh_times)
    p = PatternProfiler(window=W)
    events = [(t, "req") for t in req_times] + [(t, "ref") for t in refresh_times]
    events.sort(key=lambda e: (e[0], e[1] == "req"))  # refresh first on ties
    for t, kind in events:
        if kind == "req":
            p.on_request(t, True)
        else:
            p.on_refresh(t)
    p.finalize(10_000)

    expect = CategoryCounts()
    for rt in refresh_times:
        b = sum(1 for t in req_times if rt - W <= t < rt)
        a = sum(1 for t in req_times if rt <= t < rt + W)
        if b and a:
            expect.b_pos_a_pos += 1
        elif b:
            expect.b_pos_a_zero += 1
        elif a:
            expect.b_zero_a_pos += 1
        else:
            expect.b_zero_a_zero += 1
    assert p.counts == expect
