"""Every example script must run end-to-end (tiny arguments where possible).

The examples are the repository's public face; this keeps them executable
as the library evolves.
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *argv: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *argv],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


def test_examples_directory_contents():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "spec_single_core.py",
        "multiprogram_speedup.py",
        "refresh_analysis.py",
        "custom_workload.py",
    } <= present


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Baseline (auto-refresh)" in out
    assert "ROP (64-line SRAM buffer)" in out
    assert "Fig-9 hit rate" in out


def test_spec_single_core():
    out = run_example("spec_single_core.py", "gobmk", "--instructions", "400000")
    assert "Fig. 1" in out and "Figs. 7/8/9" in out
    assert "gobmk" in out


def test_multiprogram_speedup():
    out = run_example("multiprogram_speedup.py", "WL6", "--instructions", "400000")
    assert "WS Baseline-RP" in out
    assert "WL6" in out


def test_refresh_analysis():
    out = run_example("refresh_analysis.py", "gobmk", "--instructions", "400000")
    assert "Table I" in out and "Fig. 2" in out
    assert "λ@1x" in out


def test_custom_workload():
    out = run_example("custom_workload.py", timeout=360)
    assert "stencil" in out and "pointer chase" in out
    assert "recovered" in out
